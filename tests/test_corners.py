"""Unit tests for repro.process.corners."""

import pytest

from repro.config import ProcessConfig
from repro.errors import ProcessError
from repro.process.corners import ProcessCorner, enumerate_corners, nominal_corner


class TestProcessCorner:
    def test_nominal(self):
        c = nominal_corner()
        assert c.is_nominal
        assert c.defocus_nm == 0.0
        assert c.dose == 1.0

    def test_non_nominal(self):
        assert not ProcessCorner("x", 25.0, 1.0).is_nominal
        assert not ProcessCorner("x", 0.0, 0.98).is_nominal

    def test_bad_dose_rejected(self):
        with pytest.raises(ProcessError):
            ProcessCorner("x", 0.0, 0.0)


class TestEnumeration:
    def test_paper_window_five_conditions(self):
        corners = enumerate_corners(ProcessConfig())
        assert len(corners) == 5
        assert corners[0].is_nominal

    def test_without_nominal(self):
        corners = enumerate_corners(ProcessConfig(), include_nominal=False)
        assert len(corners) == 4
        assert not any(c.is_nominal for c in corners)

    def test_corner_values(self):
        corners = enumerate_corners(ProcessConfig(defocus_range_nm=25, dose_range=0.02))
        pairs = {(c.defocus_nm, c.dose) for c in corners}
        assert pairs == {
            (0.0, 1.0),
            (0.0, 0.98),
            (0.0, 1.02),
            (25.0, 0.98),
            (25.0, 1.02),
        }

    def test_degenerate_dose_range_collapses(self):
        corners = enumerate_corners(ProcessConfig(defocus_range_nm=25, dose_range=0.0))
        pairs = {(c.defocus_nm, c.dose) for c in corners}
        assert pairs == {(0.0, 1.0), (25.0, 1.0)}

    def test_fully_degenerate_window(self):
        corners = enumerate_corners(ProcessConfig(defocus_range_nm=0, dose_range=0.0))
        assert len(corners) == 1
        assert corners[0].is_nominal

    def test_bad_ranges_rejected(self):
        with pytest.raises(ProcessError):
            ProcessConfig(defocus_range_nm=-1)
        with pytest.raises(ProcessError):
            ProcessConfig(dose_range=1.0)
