"""Unit tests for the per-iteration forward cache (ForwardContext)."""

import numpy as np
import pytest

from repro.opc.state import ForwardContext
from repro.process.corners import ProcessCorner, nominal_corner


@pytest.fixture()
def mask(tiny_sim):
    m = np.zeros(tiny_sim.grid.shape)
    m[24:40, 24:40] = 0.8
    return m


class TestCaching:
    def test_fields_computed_once_per_focus(self, tiny_sim, mask):
        ctx = ForwardContext(mask, tiny_sim)
        # Two dose corners at the same focus share one field stack.
        a = ctx.fields(ProcessCorner("a", 25.0, 0.98))
        b = ctx.fields(ProcessCorner("b", 25.0, 1.02))
        nom = ctx.fields(nominal_corner())
        assert a is b  # identical object: served from cache
        assert nom is not a
        assert sorted(ctx._fields) == [0.0, 25.0]
        # The batched engine computed fft2(M) exactly once for both foci.
        assert ctx.cache_info().mask_ffts == 1

    def test_legacy_mode_computes_fields_per_focus(self, tiny_sim, mask, monkeypatch):
        calls = []
        original = tiny_sim.fields

        def counting_fields(m, corner=None):
            calls.append(corner.defocus_nm if corner else 0.0)
            return original(m, corner)

        monkeypatch.setattr(tiny_sim, "fields", counting_fields)
        ctx = ForwardContext(mask, tiny_sim, batched=False)
        ctx.fields(ProcessCorner("a", 25.0, 0.98))
        ctx.fields(ProcessCorner("b", 25.0, 1.02))
        ctx.fields(nominal_corner())
        assert sorted(calls) == [0.0, 25.0]

    def test_aerial_cached_per_dose(self, tiny_sim, mask):
        ctx = ForwardContext(mask, tiny_sim)
        a = ctx.aerial(ProcessCorner("a", 0.0, 0.98))
        b = ctx.aerial(ProcessCorner("b", 0.0, 0.98))
        assert a is b  # identical object: served from cache

    def test_soft_image_cached(self, tiny_sim, mask):
        ctx = ForwardContext(mask, tiny_sim)
        assert ctx.soft_image() is ctx.soft_image()

    def test_dose_scales_within_shared_fields(self, tiny_sim, mask):
        ctx = ForwardContext(mask, tiny_sim)
        lo = ctx.aerial(ProcessCorner("lo", 0.0, 0.98))
        hi = ctx.aerial(ProcessCorner("hi", 0.0, 1.02))
        assert np.allclose(hi, lo * (1.02 / 0.98))


class TestGradientPath:
    def test_zero_intensity_gradient_zero_mask_gradient(self, tiny_sim, mask):
        ctx = ForwardContext(mask, tiny_sim)
        grad = ctx.intensity_gradient_to_mask(np.zeros(tiny_sim.grid.shape))
        assert np.allclose(grad, 0.0)

    def test_gradient_is_real_and_shaped(self, tiny_sim, mask):
        ctx = ForwardContext(mask, tiny_sim)
        df_di = np.ones(tiny_sim.grid.shape)
        grad = ctx.intensity_gradient_to_mask(df_di)
        assert grad.shape == mask.shape
        assert grad.dtype == np.float64

    def test_dose_factor_applied(self, tiny_sim, mask):
        ctx = ForwardContext(mask, tiny_sim)
        df_di = np.ones(tiny_sim.grid.shape)
        base = ctx.intensity_gradient_to_mask(df_di, ProcessCorner("x", 0.0, 1.0))
        scaled = ctx.intensity_gradient_to_mask(df_di, ProcessCorner("y", 0.0, 1.02))
        assert np.allclose(scaled, 1.02 * base)
