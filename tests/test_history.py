"""Unit tests for repro.opc.history."""

from repro.opc.history import IterationRecord, OptimizationHistory


def record(i, objective=1.0, **kw):
    defaults = dict(gradient_rms=0.1, step_size=1.0)
    defaults.update(kw)
    return IterationRecord(iteration=i, objective=objective, **defaults)


class TestOptimizationHistory:
    def test_empty(self):
        history = OptimizationHistory()
        assert len(history) == 0
        assert history.final is None
        assert history.objectives == []

    def test_append_and_iterate(self):
        history = OptimizationHistory()
        for i in range(3):
            history.append(record(i, objective=10.0 - i))
        assert len(history) == 3
        assert [r.iteration for r in history] == [0, 1, 2]
        assert history.final.objective == 8.0

    def test_series_extraction(self):
        history = OptimizationHistory()
        history.append(record(0, objective=5.0, step_size=2.0))
        history.append(record(1, objective=3.0, step_size=6.0))
        assert history.objectives == [5.0, 3.0]
        assert history.series("step_size") == [2.0, 6.0]
        assert history.series("gradient_rms") == [0.1, 0.1]

    def test_optional_metrics_default_none(self):
        r = record(0)
        assert r.epe_violations is None
        assert r.pv_band_nm2 is None
        assert r.score is None

    def test_term_values_default_empty(self):
        assert record(0).term_values == {}

    def test_records_frozen(self):
        import dataclasses

        import pytest

        r = record(0)
        with pytest.raises(dataclasses.FrozenInstanceError):
            r.objective = 2.0
