"""Golden-file regression test: pins the physics against silent drift.

The fingerprint in ``tests/golden/b1_reduced.json`` was produced by a
verified build (optics cross-checked against the Abbe reference,
gradients against finite differences).  Everything in the pipeline is
deterministic, so any mismatch means the numerical behaviour changed —
either an intentional model change (regenerate the golden file and say
so in the commit) or a bug.

Float tolerances are tight (1e-6 relative) rather than exact to allow
benign BLAS/FFT library variation across platforms.
"""

import json
from pathlib import Path

import pytest

from repro.config import OptimizerConfig
from repro.geometry.raster import rasterize_layout
from repro.opc.mosaic import MosaicFast
from repro.workloads.iccad2013 import load_benchmark
from repro.workloads.random_layout import random_layout

GOLDEN_PATH = Path(__file__).parent / "golden" / "b1_reduced.json"
HISTORY_PATH = Path(__file__).parent / "golden" / "mosaic_fast_history.json"


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text())


@pytest.fixture(scope="module")
def setup(sim):
    layout = load_benchmark("B1")
    target = rasterize_layout(layout, sim.grid).astype(float)
    return layout, target


class TestForwardModelGolden:
    def test_target_raster(self, golden, setup, sim):
        _, target = setup
        assert int(target.sum()) == golden["target_pixels"]

    def test_aerial_statistics(self, golden, setup, sim):
        _, target = setup
        intensity = sim.aerial(target)
        assert float(intensity.max()) == pytest.approx(golden["aerial_max"], rel=1e-6)
        assert float(intensity.mean()) == pytest.approx(golden["aerial_mean"], rel=1e-6)

    def test_unprintable_without_opc(self, golden, setup, sim):
        _, target = setup
        assert int(sim.print_binary(target).sum()) == golden["printed_pixels"] == 0

    def test_kernel_spectrum(self, golden, sim):
        weights = sim.kernels_at(0.0).weights
        assert len(weights) == len(golden["kernel_weights"])
        for measured, expected in zip(weights, golden["kernel_weights"]):
            assert float(measured) == pytest.approx(expected, rel=1e-6)

    def test_pv_band(self, golden, setup, sim):
        _, target = setup
        assert sim.pv_band_area(target) == golden["pv_band_area"]


class TestOptimizerGolden:
    @pytest.fixture(scope="class")
    def result(self, reduced_config, sim, setup):
        layout, _ = setup
        config = OptimizerConfig(max_iterations=10, use_jump=False)
        return MosaicFast(reduced_config, optimizer_config=config, simulator=sim).solve(layout)

    def test_objective_trajectory(self, golden, result):
        objectives = result.optimization.history.objectives
        assert objectives[0] == pytest.approx(golden["opc"]["first_objective"], rel=1e-6)
        assert objectives[-1] == pytest.approx(golden["opc"]["last_objective"], rel=1e-6)

    def test_final_mask(self, golden, result):
        assert int(result.mask.sum()) == golden["opc"]["mask_pixels"]
        assert result.score.epe_violations == golden["opc"]["epe_violations"]
        assert result.score.pv_band_nm2 == golden["opc"]["pv_band_nm2"]


class TestMosaicFastHistoryGolden:
    """The batched engine reproduces the checked-in 10-iteration trajectory.

    Regenerate with ``tests/golden/generate_mosaic_fast_history.py`` after
    an intentional model change.
    """

    @pytest.fixture(scope="class")
    def history_golden(self):
        return json.loads(HISTORY_PATH.read_text())

    @pytest.fixture(scope="class")
    def history_result(self, reduced_config, sim, history_golden):
        layout = random_layout(history_golden["layout_seed"])
        assert layout.num_shapes == history_golden["layout_shapes"]
        config = OptimizerConfig(
            max_iterations=history_golden["iterations"], use_jump=False
        )
        return MosaicFast(
            reduced_config, optimizer_config=config, simulator=sim
        ).solve(layout)

    def test_objective_trajectory(self, history_golden, history_result):
        objectives = history_result.optimization.history.objectives
        assert len(objectives) == history_golden["iterations"]
        for measured, expected in zip(objectives, history_golden["objectives"]):
            assert measured == pytest.approx(expected, rel=1e-6)

    def test_per_term_values(self, history_golden, history_result):
        records = history_result.optimization.history.records
        for record, expected in zip(records, history_golden["term_values"]):
            assert set(record.term_values) == set(expected)
            for name, value in expected.items():
                assert record.term_values[name] == pytest.approx(value, rel=1e-6)

    def test_final_mask_and_score(self, history_golden, history_result):
        assert int(history_result.mask.sum()) == history_golden["mask_pixels"]
        assert (
            history_result.score.epe_violations == history_golden["epe_violations"]
        )
        assert history_result.score.pv_band_nm2 == pytest.approx(
            history_golden["pv_band_nm2"], rel=1e-6
        )
