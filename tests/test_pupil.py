"""Unit tests for repro.optics.pupil."""

import numpy as np
import pytest

from repro.config import OpticsConfig
from repro.optics.pupil import defocus_phase, pupil_values

OPTICS = OpticsConfig()


class TestPupil:
    def test_dc_passes(self):
        assert pupil_values(np.array(0.0), np.array(0.0), OPTICS) == 1.0

    def test_cutoff(self):
        cutoff = OPTICS.numerical_aperture / OPTICS.wavelength_nm
        inside = pupil_values(np.array(cutoff * 0.99), np.array(0.0), OPTICS)
        outside = pupil_values(np.array(cutoff * 1.01), np.array(0.0), OPTICS)
        assert inside == 1.0
        assert outside == 0.0

    def test_nominal_pupil_is_real(self):
        fx = np.linspace(-0.01, 0.01, 21)
        p = pupil_values(fx, np.zeros_like(fx), OPTICS, defocus_nm=0.0)
        assert np.allclose(p.imag, 0.0)

    def test_defocus_unit_modulus_inside(self):
        fx = np.linspace(-0.005, 0.005, 11)
        p = pupil_values(fx, np.zeros_like(fx), OPTICS, defocus_nm=25.0)
        assert np.allclose(np.abs(p), 1.0)

    def test_defocus_zero_outside_cutoff(self):
        p = pupil_values(np.array(0.02), np.array(0.0), OPTICS, defocus_nm=25.0)
        assert p == 0.0

    def test_broadcast_shapes(self):
        fx = np.zeros((4, 5))
        fy = np.zeros((4, 5))
        assert pupil_values(fx, fy, OPTICS).shape == (4, 5)


class TestDefocusPhase:
    def test_zero_defocus_zero_phase(self):
        assert defocus_phase(np.array(0.003), np.array(0.0), 193.0, 0.0) == 0.0

    def test_zero_at_dc(self):
        assert defocus_phase(np.array(0.0), np.array(0.0), 193.0, 25.0) == pytest.approx(0.0)

    def test_sign_flips_with_defocus(self):
        plus = defocus_phase(np.array(0.005), np.array(0.0), 193.0, 25.0)
        minus = defocus_phase(np.array(0.005), np.array(0.0), 193.0, -25.0)
        assert plus == pytest.approx(-minus)

    def test_monotone_in_frequency(self):
        f = np.linspace(0, 0.007, 20)
        phases = defocus_phase(f, np.zeros_like(f), 193.0, 25.0)
        # Defocus phase magnitude grows with radial frequency.
        assert np.all(np.diff(np.abs(phases)) >= 0)

    def test_evanescent_clamped(self):
        # Beyond n/lambda the sqrt argument goes negative; must stay finite.
        phase = defocus_phase(np.array(0.02), np.array(0.0), 193.0, 25.0)
        assert np.isfinite(phase)
