"""Workload-spec parsing shared by the CLI and the job service."""

import pytest

from repro.errors import ReproError
from repro.workloads import (
    load_workload,
    parse_synth_spec,
    validate_workload_spec,
)
from repro.workloads.generator import synthetic_canvas


class TestParseSynthSpec:
    def test_basic(self):
        assert parse_synth_spec("synth:2048x1024") == (2048.0, 1024.0, 0)

    def test_with_seed(self):
        assert parse_synth_spec("synth:512x512:7") == (512.0, 512.0, 7)

    def test_uppercase_x(self):
        assert parse_synth_spec("synth:100X200") == (100.0, 200.0, 0)

    @pytest.mark.parametrize(
        "spec",
        [
            "synth:",             # no dims
            "synth:2048",         # missing height
            "synth:ax2048",       # non-numeric width
            "synth:2048x2048:x",  # non-integer seed
            "synth:2048x2048:1:2",  # extra field
            "synth:0x2048",       # zero width
            "synth:-10x10",       # negative width
        ],
    )
    def test_malformed_rejected(self, spec):
        with pytest.raises(ReproError):
            parse_synth_spec(spec)

    def test_not_a_synth_spec(self):
        with pytest.raises(ReproError, match="not a synth spec"):
            parse_synth_spec("B1")


class TestValidateWorkloadSpec:
    def test_kinds(self, tmp_path):
        assert validate_workload_spec("B1") == "benchmark"
        assert validate_workload_spec("synth:256x256") == "synth"
        glp = tmp_path / "layout.glp"
        glp.write_text("")
        assert validate_workload_spec(str(glp)) == "path"

    def test_paths_rejected_when_disallowed(self, tmp_path):
        glp = tmp_path / "layout.glp"
        glp.write_text("")
        with pytest.raises(ReproError, match="file paths are not accepted"):
            validate_workload_spec(str(glp), allow_paths=False)

    def test_nonsense_rejected(self):
        with pytest.raises(ReproError, match="neither"):
            validate_workload_spec("definitely-not-a-layout")

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            validate_workload_spec("")

    def test_malformed_synth_fails_eagerly(self):
        # The service-side 400: validation must not require building
        # the layout (or a worker) to notice a bad spec.
        with pytest.raises(ReproError):
            validate_workload_spec("synth:balloonxcat", allow_paths=False)


class TestLoadWorkload:
    def test_synth_matches_generator(self):
        layout = load_workload("synth:1024x1024:3")
        direct = synthetic_canvas(1024.0, 1024.0, seed=3)
        assert layout.num_shapes == direct.num_shapes
        assert layout.clip == direct.clip

    def test_benchmark(self):
        assert load_workload("B1").num_shapes > 0

    def test_cli_delegates(self):
        # The CLI loader is the same code path (the satellite contract:
        # CLI and service validate identically).
        from repro.cli import _load_layout

        assert _load_layout("B1").name == load_workload("B1").name
