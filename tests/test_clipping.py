"""Tests for rectilinear polygon clipping and ``Layout.clip_to``."""

import pytest

from repro.errors import GeometryError
from repro.geometry.clipping import clip_polygon_to_rect
from repro.geometry.layout import Layout
from repro.geometry.polygon import Polygon
from repro.geometry.rect import Rect
from repro.workloads.generator import u_shape


def _vertex_set(poly: Polygon) -> set:
    return set(poly.vertices)


class TestClipPolygon:
    def test_fully_inside_is_identity(self):
        poly = Polygon.from_rect(Rect(10, 10, 30, 30))
        out = clip_polygon_to_rect(poly, Rect(0, 0, 100, 100))
        assert len(out) == 1
        assert _vertex_set(out[0]) == _vertex_set(poly)

    def test_fully_outside_is_empty(self):
        poly = Polygon.from_rect(Rect(10, 10, 30, 30))
        assert clip_polygon_to_rect(poly, Rect(50, 50, 100, 100)) == []

    def test_touching_boundary_only_is_empty(self):
        # Shares an edge with the window but no interior overlap.
        poly = Polygon.from_rect(Rect(0, 0, 10, 10))
        assert clip_polygon_to_rect(poly, Rect(10, 0, 20, 10)) == []

    def test_partial_rect_overlap(self):
        poly = Polygon.from_rect(Rect(10, 10, 50, 50))
        out = clip_polygon_to_rect(poly, Rect(0, 0, 30, 30))
        assert len(out) == 1
        assert _vertex_set(out[0]) == {(10, 10), (30, 10), (30, 30), (10, 30)}
        assert out[0].area == pytest.approx(400.0)

    def test_coordinates_are_exact_copies(self):
        # The clipped vertices must reuse the input/window coordinates
        # bit-for-bit — downstream code relies on exact equality.
        x = 10.1 + 0.2  # a value with float round-off
        poly = Polygon.from_rect(Rect(x, 5.0, 60.0, 55.0))
        out = clip_polygon_to_rect(poly, Rect(0.0, 0.0, 40.0, 40.0))
        xs = {vx for vx, _ in out[0].vertices}
        assert x in xs and 40.0 in xs

    def test_u_shape_splits_into_two_legs(self):
        # Clip off the bottom bar of a U: the two legs must come back as
        # two separate polygons, not one polygon with a bridge edge.
        poly = u_shape(0, 0, span=360, height=300, width=70)
        out = clip_polygon_to_rect(poly, Rect(-10, 100, 370, 310))
        assert len(out) == 2
        assert sum(p.area for p in out) == pytest.approx(2 * 70 * 200)

    def test_u_shape_bottom_kept_is_single(self):
        poly = u_shape(0, 0, span=360, height=300, width=70)
        out = clip_polygon_to_rect(poly, Rect(-10, -10, 370, 50))
        assert len(out) == 1
        assert out[0].area == pytest.approx(360 * 50)

    def test_concave_clip_has_no_phantom_edges(self):
        # Every emitted segment must lie on the input boundary or the
        # window boundary — no Sutherland-Hodgman-style bridges.
        poly = u_shape(0, 0, span=360, height=300, width=70)
        window = Rect(-10, 100, 370, 310)
        legs = {(0.0, 70.0), (290.0, 360.0)}
        for piece in clip_polygon_to_rect(poly, window):
            for (x0, y0), (x1, y1) in piece.segments():
                if x0 == x1:
                    assert x0 in (0.0, 70.0, 290.0, 360.0)
                else:
                    assert y0 in (100.0, 300.0)
                    assert any(lo <= min(x0, x1) and max(x0, x1) <= hi for lo, hi in legs)


class TestLayoutClipTo:
    def test_rebases_to_origin(self):
        layout = Layout("chip", clip=Rect(0, 0, 1000, 1000))
        layout.add(Rect(100, 200, 300, 400))
        clipped = layout.clip_to(Rect(50, 150, 450, 550))
        assert clipped.clip == Rect(0, 0, 400, 400)
        assert clipped.num_shapes == 1
        assert clipped.polygons[0].bbox == Rect(50, 50, 250, 250)

    def test_default_name_embeds_offset(self):
        layout = Layout("chip", clip=Rect(0, 0, 1000, 1000))
        layout.add(Rect(100, 100, 200, 200))
        assert layout.clip_to(Rect(64, 128, 564, 628)).name == "chip[64,128]"
        assert layout.clip_to(Rect(0, 0, 500, 500), name="t0").name == "t0"

    def test_shapes_crossing_the_window_are_cut(self):
        layout = Layout("chip", clip=Rect(0, 0, 1000, 1000))
        layout.add(Rect(0, 0, 600, 100))
        clipped = layout.clip_to(Rect(400, 0, 1000, 1000))
        assert clipped.num_shapes == 1
        assert clipped.polygons[0].bbox == Rect(0, 0, 200, 100)

    def test_empty_window_gives_empty_layout(self):
        layout = Layout("chip", clip=Rect(0, 0, 1000, 1000))
        layout.add(Rect(0, 0, 100, 100))
        clipped = layout.clip_to(Rect(500, 500, 900, 900))
        assert clipped.num_shapes == 0

    def test_window_may_exceed_the_clip(self):
        # Tile windows of edge tiles extend past the chip; the content
        # there is simply empty.
        layout = Layout("chip", clip=Rect(0, 0, 1000, 1000))
        layout.add(Rect(0, 0, 100, 100))
        clipped = layout.clip_to(Rect(-200, -200, 800, 800))
        assert clipped.clip == Rect(0, 0, 1000, 1000)
        assert clipped.polygons[0].bbox == Rect(200, 200, 300, 300)

    def test_degenerate_window_rejected(self):
        layout = Layout("chip", clip=Rect(0, 0, 1000, 1000))
        with pytest.raises(GeometryError):
            layout.clip_to(Rect(100, 100, 100, 500))
