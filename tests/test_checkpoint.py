"""Checkpoint/resume tests: on-disk format, atomicity, and the
kill-at-iteration-k → resume → identical-trajectory acceptance path."""

import json
import os
import signal
import zipfile

import numpy as np
import pytest

from repro.config import OptimizerConfig
from repro.errors import CheckpointError, OptimizationError
from repro.geometry.layout import Layout
from repro.geometry.rect import Rect
from repro.geometry.raster import rasterize_layout
from repro.obs import Instrumentation
from repro.opc.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointConfig,
    OptimizerCheckpoint,
    latest_checkpoint,
    list_checkpoints,
    load_checkpoint,
    save_checkpoint,
)
from repro.opc.objectives import ImageDifferenceObjective
from repro.opc.optimizer import GradientDescentOptimizer


def _state(iteration=3, shape=(4, 4), step_scale=0.5):
    rng = np.random.default_rng(iteration)
    return OptimizerCheckpoint(
        iteration=iteration,
        params=rng.normal(size=shape),
        adam_m=rng.normal(size=shape),
        adam_v=rng.random(shape),
        best_params=rng.normal(size=shape),
        best_value=0.125,
        best_iteration=2,
        step_scale=step_scale,
        theta_m=4.0,
        grid_shape=shape,
    )


class TestCheckpointConfig:
    def test_validation(self, tmp_path):
        with pytest.raises(CheckpointError):
            CheckpointConfig(tmp_path, every=0)
        with pytest.raises(CheckpointError):
            CheckpointConfig(tmp_path, keep=-1)

    def test_path_accepts_str(self, tmp_path):
        assert CheckpointConfig(str(tmp_path)).path == tmp_path


class TestSaveLoad:
    def test_round_trip_is_exact(self, tmp_path):
        state = _state()
        path = save_checkpoint(CheckpointConfig(tmp_path), state)
        assert path.name == "ckpt_000003.npz"
        loaded = load_checkpoint(path)
        for key in ("params", "adam_m", "adam_v", "best_params"):
            np.testing.assert_array_equal(getattr(loaded, key), getattr(state, key))
        assert loaded.iteration == state.iteration
        assert loaded.best_value == state.best_value
        assert loaded.best_iteration == state.best_iteration
        assert loaded.step_scale == state.step_scale
        assert loaded.theta_m == state.theta_m
        assert tuple(loaded.grid_shape) == tuple(state.grid_shape)

    def test_save_creates_directory(self, tmp_path):
        nested = tmp_path / "a" / "b"
        save_checkpoint(CheckpointConfig(nested), _state())
        assert list_checkpoints(nested)

    def test_no_temp_files_left_behind(self, tmp_path):
        save_checkpoint(CheckpointConfig(tmp_path), _state())
        assert [p.name for p in sorted(tmp_path.iterdir())] == ["ckpt_000003.npz"]

    def test_retention_prunes_oldest(self, tmp_path):
        config = CheckpointConfig(tmp_path, keep=2)
        for i in (1, 2, 3, 4):
            save_checkpoint(config, _state(iteration=i))
        names = [p.name for p in list_checkpoints(tmp_path)]
        assert names == ["ckpt_000003.npz", "ckpt_000004.npz"]

    def test_keep_zero_retains_everything(self, tmp_path):
        config = CheckpointConfig(tmp_path, keep=0)
        for i in (1, 2, 3, 4):
            save_checkpoint(config, _state(iteration=i))
        assert len(list_checkpoints(tmp_path)) == 4

    def test_load_from_directory_picks_latest(self, tmp_path):
        config = CheckpointConfig(tmp_path, keep=0)
        for i in (1, 5, 3):
            save_checkpoint(config, _state(iteration=i))
        assert load_checkpoint(tmp_path).iteration == 5
        assert latest_checkpoint(tmp_path).name == "ckpt_000005.npz"

    def test_latest_checkpoint_empty(self, tmp_path):
        assert latest_checkpoint(tmp_path) is None
        assert latest_checkpoint(tmp_path / "missing") is None

    def test_history_round_trips(self, tmp_path):
        from repro.opc.history import IterationRecord, OptimizationHistory

        state = _state()
        state.history = OptimizationHistory(records=[
            IterationRecord(iteration=0, objective=4.0, gradient_rms=0.1,
                            step_size=1.0, term_values={"image": 4.0}),
            IterationRecord(iteration=1, objective=3.5, gradient_rms=0.09,
                            step_size=1.0),
        ])
        path = save_checkpoint(CheckpointConfig(tmp_path), state)
        loaded = load_checkpoint(path)
        assert loaded.history.objectives == [4.0, 3.5]
        assert loaded.history.records[0].term_values == {"image": 4.0}


class TestLoadErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="does not exist"):
            load_checkpoint(tmp_path / "nope.npz")

    def test_empty_directory(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoints"):
            load_checkpoint(tmp_path)

    def test_corrupt_file(self, tmp_path):
        bad = tmp_path / "ckpt_000001.npz"
        bad.write_bytes(b"this is not an npz archive")
        with pytest.raises(CheckpointError, match="cannot read"):
            load_checkpoint(bad)

    def test_missing_keys(self, tmp_path):
        bad = tmp_path / "ckpt_000001.npz"
        np.savez(bad, params=np.zeros((2, 2)))
        with pytest.raises(CheckpointError, match="missing keys"):
            load_checkpoint(bad)

    def test_version_mismatch(self, tmp_path):
        path = save_checkpoint(CheckpointConfig(tmp_path), _state())
        # Rewrite the archive with a bumped version field.
        with np.load(path, allow_pickle=False) as archive:
            payload = {k: archive[k] for k in archive.files}
        meta = json.loads(str(payload["meta_json"]))
        meta["version"] = CHECKPOINT_VERSION + 1
        payload["meta_json"] = np.array(json.dumps(meta))
        np.savez(path, **payload)
        with pytest.raises(CheckpointError, match="format version"):
            load_checkpoint(path)

    def test_validate_against_mismatches(self):
        state = _state(shape=(4, 4))
        with pytest.raises(CheckpointError, match="grid"):
            state.validate_against((8, 8), 4.0)
        with pytest.raises(CheckpointError, match="theta_m"):
            state.validate_against((4, 4), 2.0)


@pytest.fixture()
def problem(tiny_sim):
    layout = Layout.from_rects("sq", [Rect(384, 384, 640, 640)])
    target = rasterize_layout(layout, tiny_sim.grid).astype(float)
    config = OptimizerConfig(max_iterations=20, step_size=8.0,
                             gradient_rms_tol=0.0)
    return target, config


def _optimizer(tiny_sim, target, config, **kwargs):
    return GradientDescentOptimizer(
        tiny_sim, ImageDifferenceObjective(target, gamma=2), config, **kwargs
    )


class TestOptimizerCheckpointing:
    def test_periodic_checkpoints_written(self, tiny_sim, problem, tmp_path):
        target, config = problem
        events = []
        obs = Instrumentation.collecting(events_sink=events.append)
        opt = _optimizer(
            tiny_sim, target, config, obs=obs,
            checkpoint=CheckpointConfig(tmp_path, every=5, keep=0),
        )
        opt.run(target)
        # 20 iterations @ every=5 -> checkpoints at 5, 10, 15, 20.
        names = [p.name for p in list_checkpoints(tmp_path)]
        assert names == [f"ckpt_{i:06d}.npz" for i in (5, 10, 15, 20)]
        assert obs.metrics.counter("checkpoints_written").value == 4
        ckpt_events = [e for e in events if e["event"] == "checkpoint"]
        assert [e["iteration"] for e in ckpt_events] == [5, 10, 15, 20]
        assert all(e["reason"] == "periodic" for e in ckpt_events)

    def test_kill_and_resume_reproduces_run(self, tiny_sim, problem, tmp_path):
        """Acceptance: a run killed at iteration 10 resumes from its
        checkpoint to a final history equal (rel <= 1e-6) to the
        uninterrupted run's."""
        target, config = problem
        full = _optimizer(tiny_sim, target, config).run(target)
        assert len(full.history) == 20

        def kill_at_10(iteration, mask, record):
            if iteration == 10:
                raise KeyboardInterrupt
            return record

        ckpt = CheckpointConfig(tmp_path, every=5)
        with pytest.raises(KeyboardInterrupt):
            _optimizer(
                tiny_sim, target, config,
                iteration_callback=kill_at_10, checkpoint=ckpt,
            ).run(target)
        # The interrupt flushed the last committed state (iteration 10).
        assert latest_checkpoint(tmp_path).name == "ckpt_000010.npz"

        events = []
        obs = Instrumentation.collecting(events_sink=events.append)
        resumed = _optimizer(tiny_sim, target, config, obs=obs).run(
            target, resume_from=tmp_path
        )
        assert any(e["event"] == "resume" and e["iteration"] == 10 for e in events)
        run_start = next(e for e in events if e["event"] == "run_start")
        assert run_start["resumed_at"] == 10

        assert len(resumed.history) == 20
        np.testing.assert_allclose(
            resumed.history.objectives, full.history.objectives, rtol=1e-6
        )
        np.testing.assert_allclose(
            resumed.history.series("gradient_rms"),
            full.history.series("gradient_rms"),
            rtol=1e-6,
        )
        np.testing.assert_allclose(resumed.mask, full.mask, atol=1e-9)
        assert resumed.best_iteration == full.best_iteration

    def test_resume_from_explicit_file(self, tiny_sim, problem, tmp_path):
        target, config = problem
        _optimizer(
            tiny_sim, target, config,
            checkpoint=CheckpointConfig(tmp_path, every=5, keep=0),
        ).run(target)
        mid = tmp_path / "ckpt_000010.npz"
        resumed = _optimizer(tiny_sim, target, config).run(target, resume_from=mid)
        assert len(resumed.history) == 20
        assert resumed.history.records[10].iteration == 10

    def test_resume_rejects_exhausted_checkpoint(self, tiny_sim, problem, tmp_path):
        target, config = problem
        _optimizer(
            tiny_sim, target, config,
            checkpoint=CheckpointConfig(tmp_path, every=5, keep=0),
        ).run(target)
        short = OptimizerConfig(max_iterations=10, step_size=8.0)
        with pytest.raises(OptimizationError, match="nothing to resume"):
            _optimizer(tiny_sim, target, short).run(
                target, resume_from=tmp_path / "ckpt_000020.npz"
            )

    def test_resume_rejects_wrong_grid(self, sim, tiny_sim, problem, tmp_path):
        target, config = problem
        _optimizer(
            tiny_sim, target, config,
            checkpoint=CheckpointConfig(tmp_path, every=5),
        ).run(target)
        big_target = np.zeros(sim.grid.shape)
        with pytest.raises(CheckpointError, match="grid"):
            GradientDescentOptimizer(
                sim, ImageDifferenceObjective(big_target, gamma=2), config
            ).run(big_target, resume_from=tmp_path)

    def test_sigint_flushes_final_checkpoint(self, tiny_sim, problem, tmp_path):
        """The cooperative SIGINT path: the signal sets a flag and the
        loop flushes the committed state at the iteration boundary."""
        target, config = problem
        events = []
        obs = Instrumentation.collecting(events_sink=events.append)

        def send_sigint(iteration, mask, record):
            if iteration == 7:
                os.kill(os.getpid(), signal.SIGINT)
            return record

        with pytest.raises(KeyboardInterrupt):
            _optimizer(
                tiny_sim, target, config, obs=obs,
                iteration_callback=send_sigint,
                checkpoint=CheckpointConfig(tmp_path, every=100),
            ).run(target)
        # Boundary after iteration 7 -> checkpoint carries iteration=8.
        assert latest_checkpoint(tmp_path).name == "ckpt_000008.npz"
        flush = [e for e in events if e["event"] == "checkpoint"]
        assert flush and flush[-1]["reason"] == "sigint"
        assert any(e["event"] == "interrupted" for e in events)
        # The previous SIGINT handler was restored.
        assert signal.getsignal(signal.SIGINT) is signal.default_int_handler

    def test_checkpoint_files_are_valid_zip(self, tiny_sim, problem, tmp_path):
        target, config = problem
        _optimizer(
            tiny_sim, target, config,
            checkpoint=CheckpointConfig(tmp_path, every=5),
        ).run(target)
        for path in list_checkpoints(tmp_path):
            assert zipfile.is_zipfile(path)
