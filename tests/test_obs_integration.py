"""Integration tests: instrumentation threaded through the ILT stack."""

import json

import numpy as np
import pytest

from repro.config import LithoConfig, OptimizerConfig
from repro.geometry.layout import Layout
from repro.geometry.raster import rasterize_layout
from repro.geometry.rect import Rect
from repro.litho.simulator import LithographySimulator
from repro.obs import EventEmitter, Instrumentation
from repro.opc.history import OptimizationHistory
from repro.opc.objectives import ImageDifferenceObjective
from repro.opc.optimizer import GradientDescentOptimizer
from repro.workloads.iccad2013 import load_benchmark


@pytest.fixture()
def obs_sim(tiny_config):
    """Fresh instrumented simulator (cold kernel cache)."""
    return LithographySimulator(tiny_config, obs=Instrumentation.collecting())


@pytest.fixture()
def square_setup(tiny_config):
    layout = Layout.from_rects("sq", [Rect(384, 384, 640, 640)])
    grid = tiny_config.grid
    return layout, rasterize_layout(layout, grid).astype(float)


def run_optimizer(sim, target, events_sink=None, **overrides):
    config = OptimizerConfig(
        max_iterations=overrides.pop("max_iterations", 5),
        use_jump=overrides.pop("use_jump", False),
        **overrides,
    )
    if events_sink is not None:
        sim.obs.events = EventEmitter(events_sink)
    objective = ImageDifferenceObjective(target, gamma=2)
    return GradientDescentOptimizer(sim, objective, config).run(target)


class TestKernelCacheObservability:
    def test_two_corner_pv_band_builds_each_kernel_set_once(self, tiny_config):
        """A PV-band evaluation across the focus/dose corners must build
        exactly one kernel set per distinct defocus value — never more."""
        sim = LithographySimulator(tiny_config, obs=Instrumentation.collecting())
        mask = np.zeros(sim.grid.shape)
        mask[24:40, 24:40] = 1.0
        distinct_defocus = {c.defocus_nm for c in sim.corners()}
        assert len(distinct_defocus) == 2  # nominal focus + full defocus

        sim.pv_band(mask)
        info = sim.cache_info()
        assert info.misses == len(distinct_defocus)
        assert info.size == len(distinct_defocus)
        assert info.defocus_values_nm == tuple(sorted(distinct_defocus))
        assert info.hits == len(sim.corners()) - info.misses

        # A second evaluation is served entirely from the cache.
        sim.pv_band(mask)
        info2 = sim.cache_info()
        assert info2.misses == info.misses
        assert info2.hits == info.hits + len(sim.corners())

    def test_cache_metrics_mirror_cache_info(self, tiny_config):
        sim = LithographySimulator(tiny_config, obs=Instrumentation.collecting())
        sim.prewarm()
        sim.kernels_at(0.0)
        info = sim.cache_info()
        metrics = sim.obs.metrics
        assert metrics.counter("kernel_cache_hits").value == info.hits
        assert metrics.counter("kernel_cache_misses").value == info.misses

    def test_cache_info_works_without_obs(self, tiny_config):
        sim = LithographySimulator(tiny_config)
        sim.kernels_at(0.0)
        sim.kernels_at(0.0)
        info = sim.cache_info()
        assert (info.hits, info.misses, info.size) == (1, 1, 1)


class TestOptimizerInstrumentation:
    def test_span_total_covers_runtime(self, obs_sim, square_setup):
        _, target = square_setup
        result = run_optimizer(obs_sim, target)
        tracer = obs_sim.obs.tracer
        optimize_total = tracer.total("optimize")
        assert optimize_total >= 0.9 * result.runtime_s
        assert optimize_total <= 1.1 * result.runtime_s
        stats = tracer.stats()
        assert stats["optimize/iteration"].count == result.iterations
        assert "optimize/iteration/objective" in stats
        assert "optimize/final_eval" in stats

    def test_counters_and_histogram(self, obs_sim, square_setup):
        _, target = square_setup
        result = run_optimizer(obs_sim, target)
        metrics = obs_sim.obs.metrics
        assert metrics.counter("iterations_total").value == result.iterations
        assert metrics.counter("forward_evals_total").value > 0
        assert metrics.histogram("gradient_rms").count == result.iterations
        assert metrics.gauge("best_objective").value is not None
        # Registered even though this run neither jumped nor backtracked.
        assert "line_search_backtracks" in metrics
        assert "jump_activations" in metrics

    def test_jump_activations_counted(self, obs_sim, square_setup):
        _, target = square_setup
        run_optimizer(
            obs_sim, target, max_iterations=7, use_jump=True,
            jump_period=3, jump_factor=2.0,
        )
        # Jumps at iterations 3 and 6.
        assert obs_sim.obs.metrics.counter("jump_activations").value == 2

    def test_one_event_per_iteration_plus_lifecycle(self, obs_sim, square_setup):
        _, target = square_setup
        seen = []
        result = run_optimizer(obs_sim, target, events_sink=seen.append)
        kinds = [e["event"] for e in seen]
        assert kinds[0] == "run_start"
        assert kinds[-1] == "run_end"
        assert kinds.count("iteration") == result.iterations
        iteration_events = [e for e in seen if e["event"] == "iteration"]
        assert [e["iteration"] for e in iteration_events] == list(
            range(result.iterations)
        )
        assert seen[-1]["converged"] == result.converged
        assert seen[-1]["runtime_s"] == pytest.approx(result.runtime_s)

    def test_event_stream_round_trips_into_history(
        self, obs_sim, square_setup, tmp_path
    ):
        _, target = square_setup
        path = tmp_path / "events.jsonl"
        result = run_optimizer(obs_sim, target, events_sink=path)
        obs_sim.obs.events.close()
        restored = OptimizationHistory.from_jsonl(path)
        assert restored.records == result.history.records

    def test_disabled_obs_same_trajectory(self, tiny_sim, square_setup):
        """Instrumentation must not perturb the optimization itself."""
        _, target = square_setup
        plain = run_optimizer(tiny_sim, target)
        instrumented_sim = LithographySimulator(
            tiny_sim.config, obs=Instrumentation.collecting()
        )
        traced = run_optimizer(instrumented_sim, target)
        assert plain.history.objectives == traced.history.objectives
        assert plain.history.series("step_size") == traced.history.series("step_size")


class TestLineSearchStepRecording:
    def test_recorded_step_is_post_backtrack(self, tiny_sim, square_setup):
        """Satellite fix: history must show the *accepted* step size."""
        _, target = square_setup
        sim = LithographySimulator(tiny_sim.config, obs=Instrumentation.collecting())
        config = OptimizerConfig(
            max_iterations=6,
            step_size=64.0,  # absurd on purpose: forces backtracking
            use_jump=False,
            use_line_search=True,
            line_search_shrink=0.5,
            line_search_max_steps=4,
        )
        objective = ImageDifferenceObjective(target, gamma=2)
        result = GradientDescentOptimizer(sim, objective, config).run(target)
        steps = result.history.series("step_size")
        backtracks = sim.obs.metrics.counter("line_search_backtracks").value
        assert backtracks > 0
        # Every recorded step is one of the discrete backtracking levels.
        levels = {64.0 * 0.5**k for k in range(config.line_search_max_steps)}
        assert set(steps) <= levels
        # At least one step was actually shrunk below the configured size.
        assert min(steps) < 64.0

    def test_no_line_search_records_configured_step(self, tiny_sim, square_setup):
        _, target = square_setup
        config = OptimizerConfig(
            max_iterations=3, step_size=8.0, use_jump=False, use_line_search=False
        )
        objective = ImageDifferenceObjective(target, gamma=2)
        result = GradientDescentOptimizer(tiny_sim, objective, config).run(target)
        assert set(result.history.series("step_size")) == {8.0}


class TestHistoryJsonl:
    def test_to_jsonl_round_trip(self, tmp_path):
        from repro.opc.history import IterationRecord

        history = OptimizationHistory()
        history.append(
            IterationRecord(
                iteration=0, objective=2.0, gradient_rms=0.5, step_size=1.0,
                term_values={"image_difference": 1.5, "pvband": 0.5},
            )
        )
        history.append(
            IterationRecord(
                iteration=1, objective=1.0, gradient_rms=0.1, step_size=0.5,
                epe_violations=3, pv_band_nm2=12.5, score=65.0,
            )
        )
        text = history.to_jsonl()
        assert OptimizationHistory.from_jsonl(text).records == history.records

        path = tmp_path / "history.jsonl"
        history.to_jsonl(path)
        assert OptimizationHistory.from_jsonl(path).records == history.records
        assert OptimizationHistory.from_jsonl(str(path)).records == history.records

    def test_from_jsonl_skips_lifecycle_events(self):
        lines = [
            json.dumps({"event": "run_start", "max_iterations": 5}),
            json.dumps(
                {
                    "event": "iteration", "iteration": 0, "objective": 1.0,
                    "gradient_rms": 0.2, "step_size": 2.0, "term_values": {},
                    "epe_violations": None, "pv_band_nm2": None, "score": None,
                }
            ),
            "",
            json.dumps({"event": "run_end", "converged": False}),
        ]
        history = OptimizationHistory.from_jsonl(lines)
        assert len(history) == 1
        assert history.records[0].objective == 1.0

    def test_empty_history(self):
        assert OptimizationHistory().to_jsonl() == ""
        assert len(OptimizationHistory.from_jsonl("")) == 0


class TestHarnessObservability:
    def test_per_cell_spans_and_events(self, reduced_config, sim):
        from repro.harness import run_experiment
        from repro.opc.mosaic import MosaicFast

        events = []
        obs = Instrumentation.collecting(events_sink=events.append)
        solvers = [
            (
                "fast",
                lambda: MosaicFast(
                    reduced_config,
                    optimizer_config=OptimizerConfig(max_iterations=2),
                    simulator=sim,
                ),
            )
        ]
        result = run_experiment(solvers, [load_benchmark("B1")], obs=obs)
        assert ("fast", "B1") in result.scores
        stats = obs.tracer.stats()
        assert "experiment" in stats
        assert "experiment/cell:fast:B1" in stats
        assert obs.metrics.counter("harness_cells_total").value == 1
        cell_events = [e for e in events if e["event"] == "cell"]
        assert len(cell_events) == 1
        assert cell_events[0]["solver"] == "fast"
        assert cell_events[0]["layout"] == "B1"
