"""Tests for the Abbe reference imaging model and SOCS cross-validation."""

import numpy as np
import pytest

from repro.config import GridSpec, OpticsConfig
from repro.errors import GridError
from repro.optics.abbe import AbbeImager
from repro.optics.hopkins import aerial_image
from repro.optics.kernels import build_socs_kernels

GRID = GridSpec(shape=(96, 96), pixel_nm=8.0)
OPTICS = OpticsConfig(num_kernels=8)


@pytest.fixture(scope="module")
def abbe():
    return AbbeImager(GRID, OPTICS)


@pytest.fixture()
def mask():
    m = np.zeros(GRID.shape)
    m[32:64, 40:56] = 1.0
    return m


class TestAbbeBasics:
    def test_open_frame_unit(self, abbe):
        intensity = abbe.aerial_image(np.ones(GRID.shape))
        assert intensity.mean() == pytest.approx(1.0, abs=1e-9)

    def test_dark_frame_zero(self, abbe):
        assert np.allclose(abbe.aerial_image(np.zeros(GRID.shape)), 0.0)

    def test_non_negative(self, abbe, mask):
        assert abbe.aerial_image(mask).min() >= 0.0

    def test_dose_linear(self, abbe, mask):
        base = abbe.aerial_image(mask)
        assert np.allclose(abbe.aerial_image(mask, dose=1.02), 1.02 * base)

    def test_shift_invariance(self, abbe, mask):
        shifted = np.roll(mask, (7, -5), axis=(0, 1))
        assert np.allclose(
            np.roll(abbe.aerial_image(mask), (7, -5), axis=(0, 1)),
            abbe.aerial_image(shifted),
            atol=1e-10,
        )

    def test_shape_checked(self, abbe):
        with pytest.raises(GridError):
            abbe.aerial_image(np.zeros((16, 16)))


class TestSOCSCrossValidation:
    """The library's core numerical claim: the SOCS factorization agrees
    with the direct Abbe sum to the kernel-truncation error."""

    def test_full_rank_socs_matches_abbe_exactly(self, abbe, mask):
        # Keep every kernel the decomposition offers: truncation-free.
        full_optics = OpticsConfig(num_kernels=100_000)
        kernels = build_socs_kernels(GRID, full_optics)
        socs = aerial_image(mask, kernels)
        reference = abbe.aerial_image(mask)
        assert np.allclose(socs, reference, atol=1e-10)

    def test_truncated_socs_close(self, abbe, mask):
        kernels = build_socs_kernels(GRID, OPTICS)  # h = 8
        socs = aerial_image(mask, kernels)
        reference = abbe.aerial_image(mask)
        assert np.abs(socs - reference).max() < 0.03

    def test_truncation_error_decreases(self, abbe, mask):
        reference = abbe.aerial_image(mask)
        errors = []
        for h in (2, 4, 8, 16):
            kernels = build_socs_kernels(GRID, OpticsConfig(num_kernels=h))
            errors.append(np.abs(aerial_image(mask, kernels) - reference).max())
        assert errors[0] > errors[-1]
        assert all(a >= b - 1e-12 for a, b in zip(errors, errors[1:]))

    def test_defocus_agreement(self, mask):
        abbe_df = AbbeImager(GRID, OPTICS, defocus_nm=25.0)
        full_optics = OpticsConfig(num_kernels=100_000)
        kernels = build_socs_kernels(GRID, full_optics, defocus_nm=25.0)
        assert np.allclose(
            aerial_image(mask, kernels), abbe_df.aerial_image(mask), atol=1e-10
        )

    def test_abbe_slower_per_image(self, abbe, mask):
        # Sanity on the design rationale: Abbe sums ~10x more terms.
        kernels = build_socs_kernels(GRID, OPTICS)
        assert abbe.num_source_points > kernels.num_kernels
