"""Tests for the CLI verify command."""

from repro.cli import build_parser, main


class TestVerifyParser:
    def test_defaults(self):
        args = build_parser().parse_args(["verify", "B1"])
        assert args.mode == "fast"
        assert args.svg is None

    def test_svg_option(self):
        args = build_parser().parse_args(["verify", "B1", "--svg", "out.svg"])
        assert args.svg == "out.svg"


class TestVerifyCommand:
    def test_clean_solve_exit_zero(self, capsys, tmp_path):
        svg = tmp_path / "b1.svg"
        code = main(["verify", "B1", "--mode", "fast", "--svg", str(svg)])
        out = capsys.readouterr().out
        assert code == 0
        assert "CLEAN" in out
        assert svg.exists()
        assert svg.read_text().startswith("<svg")

    def test_violating_solve_exit_two(self, capsys):
        # The rule-based baseline cannot fully fix the jogged clip B6.
        code = main(["verify", "B6", "--mode", "rulebased"])
        out = capsys.readouterr().out
        if code == 2:
            assert "VIOLATIONS PRESENT" in out
        else:  # pragma: no cover - rule-based got lucky at this scale
            assert code == 0
