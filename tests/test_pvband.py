"""Unit tests for repro.process.pvband."""

import numpy as np
import pytest
from hypothesis import given, strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import GridError, ProcessError
from repro.process.pvband import pv_band, pv_band_area


def block(lo, hi, size=16):
    img = np.zeros((size, size), dtype=bool)
    img[lo:hi, lo:hi] = True
    return img


class TestPVBand:
    def test_identical_images_empty_band(self):
        band = pv_band([block(4, 12), block(4, 12), block(4, 12)])
        assert band.sum() == 0

    def test_nested_images_ring(self):
        outer = block(3, 13)
        inner = block(5, 11)
        band = pv_band([outer, inner])
        assert band.sum() == outer.sum() - inner.sum()
        assert band[3, 3]
        assert not band[6, 6]

    def test_band_is_union_minus_intersection(self):
        a = block(2, 8)
        b = block(6, 12)
        band = pv_band([a, b])
        assert np.array_equal(band, (a | b) & ~(a & b))

    def test_order_invariant(self):
        imgs = [block(3, 13), block(5, 11), block(4, 12)]
        assert np.array_equal(pv_band(imgs), pv_band(imgs[::-1]))

    def test_single_image_empty_band(self):
        assert pv_band([block(4, 12)]).sum() == 0

    def test_no_images_rejected(self):
        with pytest.raises(ProcessError):
            pv_band([])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(GridError):
            pv_band([block(4, 12, size=16), block(4, 12, size=32)])

    def test_non_binary_rejected(self):
        with pytest.raises(GridError):
            pv_band([np.full((4, 4), 0.5)])

    @given(
        st.lists(
            hnp.arrays(np.bool_, (8, 8)),
            min_size=1,
            max_size=5,
        )
    )
    def test_band_excludes_always_and_never_printed(self, images):
        band = pv_band(images)
        union = np.logical_or.reduce(images)
        intersection = np.logical_and.reduce(images)
        assert not np.any(band & ~union)
        assert not np.any(band & intersection)


class TestPVBandArea:
    def test_area_scales_with_pixel(self):
        imgs = [block(3, 13), block(5, 11)]
        assert pv_band_area(imgs, pixel_nm=1.0) == 100 - 36
        assert pv_band_area(imgs, pixel_nm=4.0) == (100 - 36) * 16

    def test_bad_pixel_rejected(self):
        with pytest.raises(ProcessError):
            pv_band_area([block(3, 13)], pixel_nm=0.0)
