"""Tests for sub-pixel EPE measurement from aerial intensity."""

import numpy as np
import pytest

from repro.config import GridSpec
from repro.errors import GridError
from repro.geometry.edges import generate_sample_points
from repro.geometry.layout import Layout
from repro.geometry.rect import Rect
from repro.metrics.epe import measure_epe, measure_epe_subpixel, subpixel_edge_position

GRID = GridSpec(shape=(64, 64), pixel_nm=4.0)
CLIP = Rect(0, 0, 256, 256)


def ramp_image(edge_at_nm: float, horizontal_edge: bool = True, slope=0.01):
    """Synthetic intensity: 1 inside, ramping through 0.5 exactly at
    ``edge_at_nm`` along the relevant axis."""
    coords = (np.arange(64) + 0.5) * 4.0
    profile = 0.5 + slope * (edge_at_nm - coords)  # decreasing outward (up)
    profile = np.clip(profile, 0.0, 1.0)
    if horizontal_edge:
        return np.tile(profile[:, None], (1, 64))
    return np.tile(profile[None, :], (64, 1))


@pytest.fixture()
def layout():
    return Layout.from_rects("sq", [Rect(64, 64, 192, 192)], clip=CLIP)


class TestSubpixelEdgePosition:
    def test_exact_fractional_edge(self, layout):
        samples = generate_sample_points(layout, GRID)
        top = next(s for s in samples if s.orientation.value == "H" and s.y == 192)
        aerial = ramp_image(edge_at_nm=194.7)
        pos = subpixel_edge_position(aerial, top, GRID, 0.5, max_search_nm=40)
        assert pos == pytest.approx(194.7, abs=0.05)

    def test_vertical_edge(self, layout):
        samples = generate_sample_points(layout, GRID)
        right = next(s for s in samples if s.orientation.value == "V" and s.x == 192)
        coords = (np.arange(64) + 0.5) * 4.0
        profile = np.clip(0.5 + 0.01 * (190.2 - coords), 0, 1)
        aerial = np.tile(profile[None, :], (64, 1))
        pos = subpixel_edge_position(aerial, right, GRID, 0.5, max_search_nm=40)
        assert pos == pytest.approx(190.2, abs=0.05)

    def test_no_crossing_returns_none(self, layout):
        samples = generate_sample_points(layout, GRID)
        aerial = np.full(GRID.shape, 0.1)  # never reaches threshold
        assert subpixel_edge_position(aerial, samples[0], GRID, 0.5, 40) is None

    def test_shape_checked(self, layout):
        samples = generate_sample_points(layout, GRID)
        with pytest.raises(GridError):
            subpixel_edge_position(np.zeros((8, 8)), samples[0], GRID, 0.5, 40)


class TestMeasureEPESubpixel:
    def test_fractional_epe_reported(self, layout):
        # Top edge printed 2.7 nm outside the 192 nm target line: the
        # binary measurement can only say 0 or 4 nm at this grid.
        aerial = ramp_image(edge_at_nm=194.7)
        report = measure_epe_subpixel(aerial, layout, GRID)
        top = [
            m for m in report.measurements
            if m.sample.orientation.value == "H" and m.sample.y == 192
        ]
        assert all(m.epe_nm == pytest.approx(2.7, abs=0.1) for m in top)
        assert all(not m.violation for m in top)

    def test_sign_convention_matches_binary_path(self, sim):
        """On a real simulation both paths agree within a pixel."""
        layout = Layout.from_rects("big", [Rect(256, 256, 768, 768)])
        from repro.geometry.raster import rasterize_layout
        from repro.mask.rules import apply_edge_bias

        target = rasterize_layout(layout, sim.grid).astype(float)
        mask = apply_edge_bias(target, 12.0, sim.grid)
        aerial = sim.aerial(mask)
        printed = sim.print_binary(mask)
        binary_report = measure_epe(printed, layout, sim.grid)
        subpixel_report = measure_epe_subpixel(
            aerial, layout, sim.grid, threshold=sim.config.resist.threshold
        )
        for b, s in zip(binary_report.measurements, subpixel_report.measurements):
            assert b.epe_nm is not None and s.epe_nm is not None
            assert abs(b.epe_nm - s.epe_nm) <= sim.grid.pixel_nm

    def test_unprintable_feature_all_violations(self, sim):
        layout = Layout.from_rects("thin", [Rect(262, 476, 762, 548)])
        from repro.geometry.raster import rasterize_layout

        target = rasterize_layout(layout, sim.grid).astype(float)
        aerial = sim.aerial(target)  # 72 nm line never reaches threshold
        report = measure_epe_subpixel(aerial, layout, sim.grid)
        assert report.num_violations == report.num_samples

    def test_subpixel_resolution_finer_than_grid(self, sim):
        """The headline: sub-pixel EPE varies continuously while the
        binary path quantizes to multiples of the pixel size."""
        layout = Layout.from_rects("big", [Rect(256, 256, 768, 768)])
        from repro.geometry.raster import rasterize_layout
        from repro.mask.rules import apply_edge_bias

        target = rasterize_layout(layout, sim.grid).astype(float)
        mask = apply_edge_bias(target, 12.0, sim.grid)
        report = measure_epe_subpixel(
            sim.aerial(mask), layout, sim.grid, threshold=0.5
        )
        values = {round(m.epe_nm, 3) for m in report.measurements}
        quantized = {
            v for v in values if abs(v / sim.grid.pixel_nm - round(v / sim.grid.pixel_nm)) < 1e-9
        }
        assert len(quantized) < len(values)  # most values are fractional
