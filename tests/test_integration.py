"""Cross-module integration tests: full user workflows end to end."""

import numpy as np
import pytest

from repro.config import OptimizerConfig
from repro.geometry.layout import Layout
from repro.geometry.raster import rasterize_layout
from repro.geometry.rect import Rect
from repro.io.gds_lite import read_gds, write_gds
from repro.io.glp import read_glp, write_glp
from repro.mask.cleanup import CleanupConfig, cleanup_mask
from repro.metrics.cd import gauges_for_layout, measure_gauges
from repro.metrics.mrc import check_mask_rules
from repro.metrics.score import contest_score
from repro.opc.mosaic import MosaicFast
from repro.process.window_analysis import sweep_process_window
from repro.workloads.iccad2013 import load_benchmark


@pytest.fixture(scope="module")
def solved_b1(reduced_config, sim):
    solver = MosaicFast(
        reduced_config, optimizer_config=OptimizerConfig(max_iterations=20), simulator=sim
    )
    return solver.solve(load_benchmark("B1"))


class TestFullFlow:
    def test_glp_to_optimized_mask(self, tmp_path, reduced_config, sim, solved_b1):
        """Persist a layout, reload it, optimize, and verify the same score
        components come out (determinism across the I/O boundary)."""
        layout = load_benchmark("B1")
        path = tmp_path / "b1.glp"
        write_glp(layout, path)
        reloaded = read_glp(path)
        result = MosaicFast(
            reduced_config,
            optimizer_config=OptimizerConfig(max_iterations=20),
            simulator=sim,
        ).solve(reloaded)
        assert result.score.epe_violations == solved_b1.score.epe_violations
        assert result.score.pv_band_nm2 == solved_b1.score.pv_band_nm2
        assert np.array_equal(result.mask, solved_b1.mask)

    def test_gds_to_optimized_mask(self, tmp_path, reduced_config, sim, solved_b1):
        layout = load_benchmark("B1")
        path = tmp_path / "b1.gds"
        write_gds(layout, path)
        reloaded = read_gds(path)
        result = MosaicFast(
            reduced_config,
            optimizer_config=OptimizerConfig(max_iterations=20),
            simulator=sim,
        ).solve(reloaded)
        assert np.array_equal(result.mask, solved_b1.mask)

    def test_score_recomposition(self, sim, solved_b1):
        """contest_score must be reproducible from the stored mask."""
        layout = load_benchmark("B1")
        again = contest_score(
            sim, solved_b1.mask, layout, runtime_s=solved_b1.runtime_s
        )
        assert again.epe_violations == solved_b1.score.epe_violations
        assert again.pv_band_nm2 == solved_b1.score.pv_band_nm2
        assert again.total == pytest.approx(solved_b1.score.total)

    def test_optimize_cleanup_recheck(self, sim, solved_b1):
        """Post-OPC manufacturability flow: cleanup then re-verify."""
        layout = load_benchmark("B1")
        grid = sim.grid
        cleaned = cleanup_mask(
            solved_b1.mask,
            grid,
            CleanupConfig(min_figure_area_nm2=300, max_pinhole_area_nm2=300, smooth=False),
        )
        score = contest_score(sim, cleaned, layout)
        assert score.epe_violations <= solved_b1.score.epe_violations
        report = check_mask_rules(cleaned, grid, min_width_nm=8, min_space_nm=8)
        assert report.width_violation_px <= check_mask_rules(
            solved_b1.mask, grid, min_width_nm=8, min_space_nm=8
        ).width_violation_px

    def test_cd_and_window_after_opc(self, sim, solved_b1):
        """Analysis flow: CDs on gauges + process-window sweep."""
        layout = load_benchmark("B1")
        grid = sim.grid
        printed = sim.print_binary(solved_b1.mask)
        gauges = gauges_for_layout(layout)
        measurements = measure_gauges(printed, gauges, grid)
        assert all(m.cd_nm is not None for m in measurements)
        assert all(abs(m.error_nm) <= 20 for m in measurements)

        window = sweep_process_window(
            sim, solved_b1.mask, layout,
            defocus_values_nm=(0.0, 25.0), dose_values=(0.98, 1.0, 1.02),
        )
        assert window.pass_fraction() == 1.0  # the contest window passes


class TestDeterminism:
    def test_same_inputs_same_mask(self, reduced_config, sim):
        layout = load_benchmark("B2")
        cfg = OptimizerConfig(max_iterations=6)
        a = MosaicFast(reduced_config, optimizer_config=cfg, simulator=sim).solve(layout)
        b = MosaicFast(reduced_config, optimizer_config=cfg, simulator=sim).solve(layout)
        assert np.array_equal(a.mask, b.mask)
        assert a.score.total - a.score.runtime_s == pytest.approx(
            b.score.total - b.score.runtime_s
        )

    def test_fresh_simulator_same_result(self, reduced_config, sim):
        from repro.litho.simulator import LithographySimulator

        layout = load_benchmark("B2")
        cfg = OptimizerConfig(max_iterations=4)
        shared = MosaicFast(reduced_config, optimizer_config=cfg, simulator=sim).solve(layout)
        fresh_sim = LithographySimulator(reduced_config)
        fresh = MosaicFast(reduced_config, optimizer_config=cfg, simulator=fresh_sim).solve(layout)
        assert np.array_equal(shared.mask, fresh.mask)


class TestGridScaleConsistency:
    def test_epe_free_mask_transfers_qualitatively(self, reduced_config, sim):
        """A layout whose biased mask prints cleanly at 4 nm/px also does
        at 8 nm/px — the physics, not the grid, determines the result."""
        from repro.config import GridSpec, LithoConfig
        from repro.litho.simulator import LithographySimulator
        from repro.mask.rules import apply_edge_bias

        layout = Layout.from_rects("big", [Rect(256, 256, 768, 768)])
        coarse_cfg = LithoConfig(
            grid=GridSpec(shape=(128, 128), pixel_nm=8.0),
            optics=reduced_config.optics,
        )
        coarse_sim = LithographySimulator(coarse_cfg)
        for simulator in (sim, coarse_sim):
            target = rasterize_layout(layout, simulator.grid).astype(float)
            biased = apply_edge_bias(target, 16.0, simulator.grid)
            score = contest_score(simulator, biased, layout, grid=simulator.grid)
            assert score.epe_violations == 0
            assert score.shape_violations == 0
