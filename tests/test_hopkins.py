"""Unit tests for repro.optics.hopkins, including the adjoint gradient check.

The whole module is parametrized over every registered array backend
(see the ``backend`` fixture in ``conftest.py``): numpy float64 is the
bitwise reference, numpy float32 exercises the single-precision policy,
and torch/cupy run wherever those libraries are installed.  Comparison
floors widen from the float64 values to the float32 noise floor when the
backend's policy dtype is single precision.
"""

import numpy as np
import pytest

from repro.config import GridSpec, OpticsConfig
from repro.errors import GridError
from repro.optics.hopkins import (
    aerial_image,
    backproject_fields,
    field_stack,
    weight_fields,
)
from repro.optics.kernels import build_socs_kernels
from repro.xp import get_backend

GRID = GridSpec(shape=(64, 64), pixel_nm=16.0)
OPTICS = OpticsConfig(num_kernels=4)


@pytest.fixture(scope="module")
def kernels():
    return build_socs_kernels(GRID, OPTICS)


@pytest.fixture()
def mask():
    m = np.zeros(GRID.shape)
    m[24:40, 28:36] = 1.0
    return m


def atol_for(backend, tight=1e-10):
    """Absolute comparison floor: tight for float64, float32 noise else."""
    return tight if backend.precision == "float64" else 2e-6


class TestAerialImage:
    def test_non_negative(self, kernels, mask, backend):
        assert aerial_image(mask, kernels, xp=backend).min() >= 0.0

    def test_dose_scales_linearly(self, kernels, mask, backend):
        base = aerial_image(mask, kernels, dose=1.0, xp=backend)
        hot = aerial_image(mask, kernels, dose=1.02, xp=backend)
        assert np.allclose(hot, 1.02 * base, atol=atol_for(backend, 1e-12))

    def test_shift_invariance(self, kernels, mask, backend):
        shifted_mask = np.roll(mask, (5, -3), axis=(0, 1))
        base = aerial_image(mask, kernels, xp=backend)
        shifted = aerial_image(shifted_mask, kernels, xp=backend)
        assert np.allclose(
            np.roll(base, (5, -3), axis=(0, 1)), shifted, atol=atol_for(backend)
        )

    def test_reuses_precomputed_fields(self, kernels, mask, backend):
        fields = field_stack(mask, kernels, xp=backend)
        direct = aerial_image(mask, kernels, xp=backend)
        reused = aerial_image(mask, kernels, fields=fields, xp=backend)
        assert np.array_equal(direct, reused)

    def test_shape_mismatch_rejected(self, kernels, backend):
        with pytest.raises(GridError):
            aerial_image(np.zeros((32, 32)), kernels, xp=backend)

    def test_intensity_additive_for_disjoint_far_features(self, kernels, backend):
        # Features far beyond the coherence length image independently.
        a = np.zeros(GRID.shape)
        a[4:8, 4:8] = 1.0
        b = np.zeros(GRID.shape)
        b[56:60, 56:60] = 1.0
        together = aerial_image(a + b, kernels, xp=backend)
        separate = aerial_image(a, kernels, xp=backend) + aerial_image(
            b, kernels, xp=backend
        )
        # Compare near feature a only (far from cross-terms).
        assert np.allclose(together[:16, :16], separate[:16, :16], atol=5e-3)

    def test_matches_reference_backend(self, kernels, mask, backend, backend_close):
        reference = aerial_image(mask, kernels, xp="numpy")
        image = aerial_image(mask, kernels, xp=backend)
        backend_close(image, reference, backend, what="aerial image")


class TestFieldStack:
    def test_shape(self, kernels, mask, backend):
        fields = field_stack(mask, kernels, xp=backend)
        assert tuple(fields.shape) == (kernels.num_kernels,) + GRID.shape

    def test_intensity_consistency(self, kernels, mask, backend):
        fields = backend.to_numpy(field_stack(mask, kernels, xp=backend))
        manual = np.einsum("k,kij->ij", kernels.weights, np.abs(fields) ** 2)
        image = aerial_image(mask, kernels, xp=backend)
        assert np.allclose(manual, image, atol=atol_for(backend, 1e-12))

    def test_matches_reference_backend(self, kernels, mask, backend, backend_close):
        reference = field_stack(mask, kernels, xp="numpy")
        fields = backend.to_numpy(field_stack(mask, kernels, xp=backend))
        backend_close(fields, reference, backend, what="field stack")


class TestAdjointGradient:
    """Finite-difference check of the imaging-operator adjoint — the
    foundation of every objective gradient in the library.

    Central differences with ``eps = 1e-6`` are meaningless below
    float32 resolution, so single-precision backends are instead held
    to the float64 reference gradient within the float32 gate."""

    def _analytic_gradient(self, kernels, mask, target, backend):
        # Analytic gradient: dF/dI = 2 (I - target); backproject.
        fields = field_stack(mask, kernels, xp=backend)
        intensity = aerial_image(mask, kernels, fields=fields, xp=backend)
        df_di = 2.0 * (intensity - target)
        weighted = weight_fields(df_di, fields, backend)
        return backproject_fields(weighted, kernels, xp=backend)

    def test_gradient_matches_finite_difference(self, kernels, mask, backend):
        target = np.roll(mask, 1, axis=0)
        grad = self._analytic_gradient(kernels, mask, target, backend)

        if backend.precision != "float64":
            reference = self._analytic_gradient(
                kernels, mask, target, get_backend("numpy")
            )
            scale = np.max(np.abs(reference))
            assert np.allclose(
                grad, reference, rtol=backend.equivalence_rtol,
                atol=backend.equivalence_rtol * scale,
            )
            return

        def objective(m: np.ndarray) -> float:
            return float(np.sum((aerial_image(m, kernels, xp=backend) - target) ** 2))

        rng = np.random.default_rng(7)
        eps = 1e-6
        for _ in range(8):
            i, j = rng.integers(0, GRID.shape[0]), rng.integers(0, GRID.shape[1])
            bumped = mask.copy()
            bumped[i, j] += eps
            fd = (objective(bumped) - objective(mask)) / eps
            assert fd == pytest.approx(grad[i, j], rel=1e-3, abs=1e-8)

    def test_weighted_fields_shape_checked(self, kernels, mask, backend):
        with pytest.raises(GridError):
            backproject_fields(
                np.zeros((2,) + GRID.shape, dtype=complex), kernels, xp=backend
            )

    def test_backprojection_is_real(self, kernels, mask, backend):
        fields = field_stack(mask, kernels, xp=backend)
        out = backproject_fields(fields, kernels, xp=backend)
        assert out.dtype == backend.float_dtype
