"""Unit tests for repro.optics.hopkins, including the adjoint gradient check."""

import numpy as np
import pytest

from repro.config import GridSpec, OpticsConfig
from repro.errors import GridError
from repro.optics.hopkins import aerial_image, backproject_fields, field_stack
from repro.optics.kernels import build_socs_kernels

GRID = GridSpec(shape=(64, 64), pixel_nm=16.0)
OPTICS = OpticsConfig(num_kernels=4)


@pytest.fixture(scope="module")
def kernels():
    return build_socs_kernels(GRID, OPTICS)


@pytest.fixture()
def mask():
    m = np.zeros(GRID.shape)
    m[24:40, 28:36] = 1.0
    return m


class TestAerialImage:
    def test_non_negative(self, kernels, mask):
        assert aerial_image(mask, kernels).min() >= 0.0

    def test_dose_scales_linearly(self, kernels, mask):
        base = aerial_image(mask, kernels, dose=1.0)
        hot = aerial_image(mask, kernels, dose=1.02)
        assert np.allclose(hot, 1.02 * base)

    def test_shift_invariance(self, kernels, mask):
        shifted_mask = np.roll(mask, (5, -3), axis=(0, 1))
        base = aerial_image(mask, kernels)
        shifted = aerial_image(shifted_mask, kernels)
        assert np.allclose(np.roll(base, (5, -3), axis=(0, 1)), shifted, atol=1e-10)

    def test_reuses_precomputed_fields(self, kernels, mask):
        fields = field_stack(mask, kernels)
        direct = aerial_image(mask, kernels)
        reused = aerial_image(mask, kernels, fields=fields)
        assert np.array_equal(direct, reused)

    def test_shape_mismatch_rejected(self, kernels):
        with pytest.raises(GridError):
            aerial_image(np.zeros((32, 32)), kernels)

    def test_intensity_additive_for_disjoint_far_features(self, kernels):
        # Features far beyond the coherence length image independently.
        a = np.zeros(GRID.shape)
        a[4:8, 4:8] = 1.0
        b = np.zeros(GRID.shape)
        b[56:60, 56:60] = 1.0
        together = aerial_image(a + b, kernels)
        separate = aerial_image(a, kernels) + aerial_image(b, kernels)
        # Compare near feature a only (far from cross-terms).
        assert np.allclose(together[:16, :16], separate[:16, :16], atol=5e-3)


class TestFieldStack:
    def test_shape(self, kernels, mask):
        fields = field_stack(mask, kernels)
        assert fields.shape == (kernels.num_kernels,) + GRID.shape

    def test_intensity_consistency(self, kernels, mask):
        fields = field_stack(mask, kernels)
        manual = np.einsum("k,kij->ij", kernels.weights, np.abs(fields) ** 2)
        assert np.allclose(manual, aerial_image(mask, kernels))


class TestAdjointGradient:
    """Finite-difference check of the imaging-operator adjoint — the
    foundation of every objective gradient in the library."""

    def test_gradient_matches_finite_difference(self, kernels, mask):
        target = np.roll(mask, 1, axis=0)

        def objective(m: np.ndarray) -> float:
            return float(np.sum((aerial_image(m, kernels) - target) ** 2))

        # Analytic gradient: dF/dI = 2 (I - target); backproject.
        fields = field_stack(mask, kernels)
        intensity = aerial_image(mask, kernels, fields=fields)
        df_di = 2.0 * (intensity - target)
        grad = backproject_fields(df_di[None] * fields, kernels)

        rng = np.random.default_rng(7)
        eps = 1e-6
        for _ in range(8):
            i, j = rng.integers(0, GRID.shape[0]), rng.integers(0, GRID.shape[1])
            bumped = mask.copy()
            bumped[i, j] += eps
            fd = (objective(bumped) - objective(mask)) / eps
            assert fd == pytest.approx(grad[i, j], rel=1e-3, abs=1e-8)

    def test_weighted_fields_shape_checked(self, kernels, mask):
        with pytest.raises(GridError):
            backproject_fields(np.zeros((2,) + GRID.shape, dtype=complex), kernels)

    def test_backprojection_is_real(self, kernels, mask):
        fields = field_stack(mask, kernels)
        out = backproject_fields(fields, kernels)
        assert out.dtype == np.float64
