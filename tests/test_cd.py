"""Tests for critical-dimension metrics."""

import numpy as np
import pytest

from repro.config import GridSpec
from repro.errors import GridError
from repro.geometry.layout import Layout
from repro.geometry.raster import rasterize_layout
from repro.geometry.rect import Rect
from repro.metrics.cd import (
    Gauge,
    cd_uniformity,
    gauges_for_layout,
    measure_cd,
    measure_gauges,
)

GRID = GridSpec(shape=(128, 128), pixel_nm=1.0)
CLIP = Rect(0, 0, 128, 128)


def line_image(y0=40, y1=60, x0=20, x1=100):
    img = np.zeros(GRID.shape, dtype=bool)
    img[y0:y1, x0:x1] = True
    return img


class TestMeasureCD:
    def test_vertical_cut_measures_height(self):
        img = line_image()
        gauge = Gauge("g", x=60, y=50, horizontal=False, target_cd_nm=20)
        m = measure_cd(img, gauge, GRID)
        assert m.cd_nm == 20
        assert m.error_nm == 0

    def test_horizontal_cut_measures_length(self):
        img = line_image()
        gauge = Gauge("g", x=60, y=50, horizontal=True, target_cd_nm=80)
        assert measure_cd(img, gauge, GRID).cd_nm == 80

    def test_unprinted_gauge_none(self):
        img = np.zeros(GRID.shape, dtype=bool)
        gauge = Gauge("g", x=60, y=50, horizontal=False, target_cd_nm=20)
        m = measure_cd(img, gauge, GRID)
        assert m.cd_nm is None
        assert m.error_nm is None

    def test_signed_error(self):
        img = line_image(y0=42, y1=58)  # 16 printed vs 20 target
        gauge = Gauge("g", x=60, y=50, horizontal=False, target_cd_nm=20)
        assert measure_cd(img, gauge, GRID).error_nm == -4

    def test_pixel_scaling(self):
        grid = GridSpec(shape=(64, 64), pixel_nm=4.0)
        img = np.zeros(grid.shape, dtype=bool)
        img[10:15, 5:40] = True  # 5 px = 20 nm tall
        gauge = Gauge("g", x=80, y=48, horizontal=False, target_cd_nm=20)
        assert measure_cd(img, gauge, grid).cd_nm == 20

    def test_shape_mismatch_rejected(self):
        gauge = Gauge("g", x=1, y=1, horizontal=True, target_cd_nm=1)
        with pytest.raises(GridError):
            measure_cd(np.zeros((8, 8), dtype=bool), gauge, GRID)


class TestUniformity:
    def _m(self, cds):
        gauge = Gauge("g", 0, 0, True, 10)
        return [
            [type("M", (), {"cd_nm": cd, "gauge": gauge})() for cd in row]
            for row in cds
        ]

    def test_identical_conditions_zero(self):
        measurements = self._m([[20, 30], [20, 30]])
        assert cd_uniformity(measurements) == 0.0

    def test_worst_gauge_reported(self):
        measurements = self._m([[20, 30], [22, 38]])
        assert cd_uniformity(measurements) == 8.0

    def test_unprinted_is_infinite(self):
        measurements = self._m([[20, 30], [None, 30]])
        assert cd_uniformity(measurements) == float("inf")

    def test_empty_rejected(self):
        with pytest.raises(GridError):
            cd_uniformity([])


class TestAutoGauges:
    def test_one_gauge_per_shape(self):
        layout = Layout.from_rects(
            "t", [Rect(10, 40, 90, 60), Rect(100, 10, 120, 90)], clip=CLIP
        )
        gauges = gauges_for_layout(layout)
        assert len(gauges) == 2

    def test_measures_narrow_axis(self):
        layout = Layout.from_rects("t", [Rect(10, 40, 90, 60)], clip=CLIP)
        gauge = gauges_for_layout(layout)[0]
        assert not gauge.horizontal  # wide horizontal line: cut vertically
        assert gauge.target_cd_nm == 20

    def test_perfect_print_zero_error(self):
        layout = Layout.from_rects("t", [Rect(10, 40, 90, 60)], clip=CLIP)
        target = rasterize_layout(layout, GRID)
        measurements = measure_gauges(target, gauges_for_layout(layout), GRID)
        assert all(m.error_nm == 0 for m in measurements)

    def test_cd_through_simulator(self, sim):
        # End-to-end: CD of a printed wide line is below drawn (underprint).
        layout = Layout.from_rects("wide", [Rect(256, 448, 768, 576)])
        target = rasterize_layout(layout, sim.grid).astype(float)
        printed = sim.print_binary(target)
        gauges = gauges_for_layout(layout)
        m = measure_gauges(printed, gauges, sim.grid)[0]
        assert m.cd_nm is not None
        assert m.error_nm < 0
