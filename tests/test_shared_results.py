"""Shared-memory tile-result transport: equality, accounting, and failure.

The pool no longer pickles solved window masks through the result pipe:
workers park the mask in a ``multiprocessing.shared_memory`` segment and
send a ~100-byte :class:`~repro.fullchip.scheduler.SharedMaskRef`
instead (``share_result=True``).  These tests pin three properties:

* the masks coming back through shared memory are **identical** to the
  pickling path's, tile for tile;
* the transport is **observable** — ``fullchip_result_bytes_shared`` /
  ``fullchip_result_bytes_pickled`` counters prove which channel the
  bytes crossed;
* the failure modes are graceful: a lost segment fails only its tile,
  and export failure falls back to pickling rather than losing a solve.
"""

import numpy as np
import pytest

from repro.config import GridSpec, LithoConfig, OpticsConfig, OptimizerConfig
from repro.errors import OpticsError
from repro.fullchip import TileJob, build_tile_plan, run_tile_jobs
from repro.fullchip.scheduler import (
    SharedMaskRef,
    TileResult,
    absorb_shared_mask,
    export_shared_mask,
    solve_tile_job,
)
from repro.geometry.rect import Rect
from repro.harness import CellStatus
from repro.obs import Instrumentation
from repro.workloads.generator import synthetic_canvas

PIXEL_NM = 16.0
PROBE_NM = 1024.0


@pytest.fixture(scope="module")
def fc_litho() -> LithoConfig:
    return LithoConfig(
        grid=GridSpec(shape=(64, 64), pixel_nm=PIXEL_NM),
        optics=OpticsConfig(num_kernels=4),
    )


def _jobs(fc_litho, share_result):
    plan = build_tile_plan(Rect(0, 0, 2048, 1024), 1024.0, 192.0, PIXEL_NM)
    layout = synthetic_canvas(2048.0, 1024.0, seed=2)
    return [
        TileJob(
            tile=tile,
            layout=tile.clip_layout(layout),
            litho=fc_litho,
            optimizer=OptimizerConfig(max_iterations=3, use_jump=False),
            probe_extent_nm=PROBE_NM,
            share_result=share_result,
        )
        for tile in plan
    ]


class TestExportAbsorbRoundTrip:
    def _result(self, mask):
        return TileResult(
            index=(0, 0),
            status=CellStatus(status="solved", attempts=1, runtime_s=0.1),
            mask=mask,
        )

    def test_round_trip_is_lossless(self, rng):
        mask = rng.random((48, 48))
        exported = export_shared_mask(self._result(mask.copy()))
        assert exported.mask is None
        assert exported.mask_ref is not None
        assert exported.mask_ref.nbytes == mask.nbytes
        obs = Instrumentation.collecting()
        absorbed = absorb_shared_mask(exported, obs)
        assert absorbed.mask_ref is None
        np.testing.assert_array_equal(absorbed.mask, mask)
        assert (
            obs.metrics.counter("fullchip_result_bytes_shared").value == mask.nbytes
        )
        assert obs.metrics.counter("fullchip_result_bytes_pickled").value == 0

    def test_maskless_results_pass_through(self):
        failed = TileResult(
            index=(0, 0),
            status=CellStatus(status="failed", attempts=1, runtime_s=0.1,
                              error="boom"),
        )
        assert export_shared_mask(failed) is failed
        assert failed.mask_ref is None
        obs = Instrumentation.collecting()
        absorb_shared_mask(failed, obs)
        assert obs.metrics.counter("fullchip_result_bytes_shared").value == 0
        assert obs.metrics.counter("fullchip_result_bytes_pickled").value == 0

    def test_pickled_mask_counted_on_absorb(self, rng):
        mask = rng.random((16, 16))
        obs = Instrumentation.collecting()
        absorbed = absorb_shared_mask(self._result(mask), obs)
        assert absorbed.mask is mask
        assert (
            obs.metrics.counter("fullchip_result_bytes_pickled").value == mask.nbytes
        )
        assert obs.metrics.counter("fullchip_result_bytes_shared").value == 0

    def test_lost_segment_fails_only_the_tile(self):
        orphan = TileResult(
            index=(1, 1),
            status=CellStatus(status="solved", attempts=1, runtime_s=0.1),
            mask=None,
            mask_ref=SharedMaskRef(
                name="repro_no_such_segment", shape=(8, 8), dtype="float64",
                nbytes=512,
            ),
        )
        absorbed = absorb_shared_mask(orphan, Instrumentation.collecting())
        assert not absorbed.ok
        assert absorbed.mask is None
        assert absorbed.mask_ref is None
        assert "repro_no_such_segment" in absorbed.status.error


class TestJobValidation:
    def test_backend_spec_validated_and_canonicalized(self, fc_litho):
        plan = build_tile_plan(Rect(0, 0, 1024, 1024), 1024.0, 192.0, PIXEL_NM)
        tile = plan.tile_at((0, 0))
        window = tile.clip_layout(synthetic_canvas(1024.0, 1024.0, seed=2))
        good = TileJob(
            tile=tile, layout=window, litho=fc_litho, backend="numpy:float64"
        )
        assert good.backend == "numpy"
        with pytest.raises(OpticsError):
            TileJob(tile=tile, layout=window, litho=fc_litho, backend="bogus")


class TestSharedResultTransport:
    def test_inline_jobs_share_and_match(self, fc_litho):
        """workers=1: export+absorb run in-process; masks stay identical."""
        obs = Instrumentation.collecting()
        shared = run_tile_jobs(_jobs(fc_litho, True), workers=1, obs=obs)
        plain = run_tile_jobs(_jobs(fc_litho, False), workers=1)
        assert all(r.ok for r in shared)
        for a, b in zip(shared, plain):
            assert a.mask_ref is None
            np.testing.assert_array_equal(a.mask, b.mask)
        assert obs.metrics.counter("fullchip_result_bytes_shared").value > 0

    @pytest.mark.slow
    def test_pool_stops_pickling_masks(self, fc_litho):
        """workers=2: masks cross via shared memory only, identically."""
        obs_shared = Instrumentation.collecting()
        shared = run_tile_jobs(_jobs(fc_litho, True), workers=2, obs=obs_shared)
        obs_plain = Instrumentation.collecting()
        plain = run_tile_jobs(_jobs(fc_litho, False), workers=2, obs=obs_plain)

        assert all(r.ok for r in shared) and all(r.ok for r in plain)
        total_bytes = sum(r.mask.nbytes for r in shared)
        metrics = obs_shared.metrics
        assert metrics.counter("fullchip_result_bytes_shared").value == total_bytes
        assert metrics.counter("fullchip_result_bytes_pickled").value == 0
        # The pickling run accounts the same bytes on the other channel.
        assert (
            obs_plain.metrics.counter("fullchip_result_bytes_pickled").value
            == total_bytes
        )
        assert obs_plain.metrics.counter("fullchip_result_bytes_shared").value == 0
        for a, b in zip(shared, plain):
            assert a.index == b.index
            np.testing.assert_array_equal(a.mask, b.mask)
