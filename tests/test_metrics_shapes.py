"""Unit tests for repro.metrics.shapes (hole / shape-violation detection)."""

import numpy as np

from repro.metrics.shapes import count_holes, count_shape_violations


def donut(size=24, outer=(4, 20), inner=(10, 14)):
    img = np.zeros((size, size), dtype=bool)
    img[outer[0]:outer[1], outer[0]:outer[1]] = True
    img[inner[0]:inner[1], inner[0]:inner[1]] = False
    return img


class TestCountHoles:
    def test_solid_block_no_holes(self):
        img = np.zeros((16, 16), dtype=bool)
        img[4:12, 4:12] = True
        assert count_holes(img) == 0

    def test_donut_one_hole(self):
        assert count_holes(donut()) == 1

    def test_two_holes(self):
        img = np.zeros((24, 24), dtype=bool)
        img[2:22, 2:22] = True
        img[5:8, 5:8] = False
        img[14:18, 14:18] = False
        assert count_holes(img) == 2

    def test_open_notch_not_a_hole(self):
        img = np.zeros((16, 16), dtype=bool)
        img[4:12, 4:12] = True
        img[6:10, 10:16] = False  # notch reaches the border region
        assert count_holes(img) == 0

    def test_empty_image(self):
        assert count_holes(np.zeros((8, 8), dtype=bool)) == 0

    def test_full_image(self):
        assert count_holes(np.ones((8, 8), dtype=bool)) == 0

    def test_diagonal_gap_is_still_a_hole(self):
        # Background uses 4-connectivity: a diagonal-only escape route
        # does not connect the enclosed region to the outside.
        img = np.ones((7, 7), dtype=bool)
        img[3, 3] = False
        img[0:3, 0:3] = False  # corner background touching border
        assert count_holes(img) == 1


class TestShapeViolations:
    def test_healthy_print(self):
        target = np.zeros((16, 16), dtype=bool)
        target[4:12, 4:12] = True
        assert count_shape_violations(target, target) == 0

    def test_hole_counts(self):
        assert count_shape_violations(donut()) == 1

    def test_extra_component_counts(self):
        target = np.zeros((24, 24), dtype=bool)
        target[4:10, 4:10] = True
        printed = target.copy()
        printed[16:20, 16:20] = True  # spurious printed SRAF
        assert count_shape_violations(printed, target) == 1

    def test_merged_components_not_counted(self):
        # Two target features bridging into one printed component is not
        # counted by the component check (printed <= target components).
        target = np.zeros((24, 24), dtype=bool)
        target[4:8, 4:20] = True
        target[12:16, 4:20] = True
        printed = np.zeros((24, 24), dtype=bool)
        printed[4:16, 4:20] = True
        assert count_shape_violations(printed, target) == 0

    def test_without_target_only_holes(self):
        printed = donut()
        assert count_shape_violations(printed) == 1
