"""Tests for repro.utils (sigmoid, validation, timer)."""

import time

import numpy as np
import pytest
from hypothesis import given, strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import GridError
from repro.utils.timer import Timer
from repro.utils.validation import (
    ensure_binary_image,
    ensure_image,
    ensure_same_shape,
    sigmoid,
)


class TestSigmoid:
    def test_center(self):
        assert sigmoid(np.array(0.0)) == pytest.approx(0.5)
        assert sigmoid(np.array(0.3), center=0.3) == pytest.approx(0.5)

    def test_steepness(self):
        shallow = sigmoid(np.array(1.0), steepness=1.0)
        steep = sigmoid(np.array(1.0), steepness=10.0)
        assert steep > shallow

    def test_extreme_values_do_not_overflow(self):
        # The exponent clamp keeps exp() finite; results saturate smoothly.
        out = sigmoid(np.array([-1e10, 1e10]), steepness=50.0)
        assert np.all(np.isfinite(out))
        assert out[0] < 1e-100
        assert out[1] == 1.0

    @given(
        hnp.arrays(
            np.float64,
            (3, 3),
            elements=st.floats(min_value=-1e6, max_value=1e6),
        ),
        st.floats(min_value=0.1, max_value=100.0),
    )
    def test_bounded_and_monotone(self, x, steepness):
        out = sigmoid(x, steepness)
        assert np.all((out >= 0) & (out <= 1))
        flat = np.sort(x.ravel())
        assert np.all(np.diff(sigmoid(flat, steepness)) >= 0)

    def test_symmetry(self):
        x = np.linspace(-3, 3, 13)
        assert np.allclose(sigmoid(x) + sigmoid(-x), 1.0)


class TestEnsureImage:
    def test_passes_float(self):
        out = ensure_image(np.zeros((3, 3), dtype=np.float32))
        assert out.dtype == np.float64

    def test_rejects_1d(self):
        with pytest.raises(GridError):
            ensure_image(np.zeros(5))

    def test_rejects_nan(self):
        bad = np.zeros((2, 2))
        bad[0, 0] = np.nan
        with pytest.raises(GridError):
            ensure_image(bad)


class TestEnsureBinary:
    def test_bool_passthrough(self):
        img = np.zeros((2, 2), dtype=bool)
        assert ensure_binary_image(img) is img

    def test_int_01_accepted(self):
        out = ensure_binary_image(np.array([[0, 1], [1, 0]]))
        assert out.dtype == bool

    def test_fractional_rejected(self):
        with pytest.raises(GridError):
            ensure_binary_image(np.array([[0.5, 1.0]]))


class TestEnsureSameShape:
    def test_matching(self):
        ensure_same_shape(np.zeros((2, 2)), np.ones((2, 2)))

    def test_mismatch(self):
        with pytest.raises(GridError):
            ensure_same_shape(np.zeros((2, 2)), np.zeros((3, 3)))


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as t:
            time.sleep(0.01)
        assert t.elapsed >= 0.01

    def test_lap_monotone(self):
        with Timer() as t:
            first = t.lap()
            second = t.lap()
        assert second >= first
