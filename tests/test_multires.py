"""Tests for the multiresolution (coarse-to-fine) solver."""

import numpy as np
import pytest

from repro.config import GridSpec, LithoConfig, OptimizerConfig
from repro.errors import OptimizationError
from repro.opc.multires import MultiResolutionSolver, coarsen_config, upsample_mask
from repro.opc.mosaic import MosaicFast
from repro.workloads.iccad2013 import load_benchmark


class TestUpsample:
    def test_pixel_replication(self):
        mask = np.array([[0.0, 1.0], [0.5, 0.25]])
        up = upsample_mask(mask, 2)
        assert up.shape == (4, 4)
        assert np.all(up[0:2, 2:4] == 1.0)
        assert np.all(up[2:4, 0:2] == 0.5)

    def test_factor_one_is_copy(self):
        mask = np.random.default_rng(0).uniform(size=(4, 4))
        up = upsample_mask(mask, 1)
        assert np.array_equal(up, mask)
        up[0, 0] = 9.0
        assert mask[0, 0] != 9.0

    def test_bad_factor_rejected(self):
        with pytest.raises(OptimizationError):
            upsample_mask(np.zeros((2, 2)), 0)

    def test_preserves_mean(self):
        mask = np.random.default_rng(1).uniform(size=(8, 8))
        assert upsample_mask(mask, 4).mean() == pytest.approx(mask.mean())


class TestCoarsenConfig:
    def test_same_physical_extent(self, reduced_config):
        coarse = coarsen_config(reduced_config, 2)
        assert coarse.grid.extent_nm == reduced_config.grid.extent_nm
        assert coarse.grid.shape == (128, 128)
        assert coarse.grid.pixel_nm == 8.0

    def test_other_configs_untouched(self, reduced_config):
        coarse = coarsen_config(reduced_config, 2)
        assert coarse.optics == reduced_config.optics
        assert coarse.resist == reduced_config.resist

    def test_indivisible_grid_rejected(self):
        config = LithoConfig(grid=GridSpec(shape=(250, 250), pixel_nm=4.0))
        with pytest.raises(OptimizationError):
            coarsen_config(config, 4)


class TestMultiResolutionSolver:
    def test_bad_factor_rejected(self, reduced_config):
        with pytest.raises(OptimizationError):
            MultiResolutionSolver(reduced_config, factor=1)

    def test_solves_with_quality(self, reduced_config, sim):
        solver = MultiResolutionSolver(
            reduced_config,
            solver_cls=MosaicFast,
            factor=2,
            simulator=sim,
        )
        result = solver.solve(load_benchmark("B1"))
        assert result.score.epe_violations <= 2
        assert result.score.shape_violations == 0
        assert result.mask.shape == sim.grid.shape

    def test_runtime_includes_both_stages(self, reduced_config, sim):
        solver = MultiResolutionSolver(
            reduced_config, solver_cls=MosaicFast, factor=2, simulator=sim
        )
        result = solver.solve(load_benchmark("B1"))
        assert result.runtime_s == pytest.approx(result.score.runtime_s)
        assert result.runtime_s > 0

    def test_faster_than_full_resolution(self, reduced_config, sim):
        # The headline claim: warm-started refinement needs far fewer
        # fine-grid iterations, so wall-clock drops.
        full = MosaicFast(reduced_config, simulator=sim)
        multires = MultiResolutionSolver(
            reduced_config, solver_cls=MosaicFast, factor=2, simulator=sim
        )
        layout = load_benchmark("B4")
        full_result = full.solve(layout)
        multi_result = multires.solve(layout)
        assert multi_result.runtime_s < full_result.runtime_s
        # Quality stays comparable (within 40% on score, no violations).
        assert multi_result.score.epe_violations <= 1
        assert multi_result.score.total <= 1.4 * full_result.score.total
