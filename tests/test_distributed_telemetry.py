"""Distributed telemetry: worker spools, parent merge, trace export, report.

The load-bearing acceptance test runs a real 2-worker full-chip solve
with a telemetry directory and checks the whole pipeline end to end:
every tile leaves an atomic spool file, the parent's merged counters
equal the spool-file sums, and the exported ``trace.json`` is a valid
Chrome trace with one lane per process and the worker's nested
solve/iteration spans inside each ``tile:`` span.  The null-twin test
pins the other contract — telemetry off leaves no files behind.
"""

import json
import os

import pytest

from repro.cli import main
from repro.config import (
    GridSpec,
    LithoConfig,
    OpticsConfig,
    OptimizerConfig,
    ProcessConfig,
    ResistConfig,
)
from repro.errors import ReproError
from repro.fullchip import FullChipConfig, FullChipEngine
from repro.obs import Instrumentation, MetricsRegistry, Tracer
from repro.obs.distributed import (
    SPOOL_DIRNAME,
    TileTelemetry,
    WorkerTelemetryConfig,
    iter_spool_files,
    merge_tile_telemetry,
    read_spool,
    spool_filename,
    summarize_worker,
    worker_instrumentation,
    write_spool,
)
from repro.obs.export import (
    TraceLane,
    chrome_trace_events,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.metrics import Histogram
from repro.obs.report import (
    RUN_FILENAME,
    TRACE_FILENAME,
    bench_direction,
    compare_bench,
    diagnose_history,
    load_run,
    render_bench_check,
    render_run_report,
)
from repro.obs.trace import TraceSlice
from repro.opc.history import IterationRecord, OptimizationHistory
from repro.workloads.generator import synthetic_canvas

PIXEL_NM = 16.0
PROBE_NM = 1024.0


def _fc_litho() -> LithoConfig:
    return LithoConfig(
        grid=GridSpec(shape=(64, 64), pixel_nm=PIXEL_NM),
        optics=OpticsConfig(num_kernels=4),
        resist=ResistConfig(),
        process=ProcessConfig(),
    )


@pytest.fixture(scope="module")
def telemetry_run(tmp_path_factory):
    """One telemetry-enabled 2-worker solve, shared by the whole module."""
    run_dir = tmp_path_factory.mktemp("telemetry_run")
    obs = Instrumentation.collecting(trace=True, metrics=True, timeline=True)
    engine = FullChipEngine(
        _fc_litho(),
        optimizer=OptimizerConfig(max_iterations=3, use_jump=False),
        config=FullChipConfig(
            tile_nm=1024.0,
            probe_extent_nm=PROBE_NM,
            workers=2,
            telemetry_dir=str(run_dir),
        ),
        obs=obs,
    )
    layout = synthetic_canvas(2048.0, 2048.0, seed=5)
    result = engine.solve(layout)
    return run_dir, obs, result


class TestAcceptance:
    def test_every_tile_leaves_a_spool_file(self, telemetry_run):
        run_dir, _, result = telemetry_run
        assert result.all_ok
        assert result.telemetry_dir == run_dir
        spools = iter_spool_files(run_dir / SPOOL_DIRNAME)
        assert len(spools) == len(result.tile_results) == 4
        names = {f"tile_r{r.index[0]}_c{r.index[1]}" for r in result.tile_results}
        assert {p.name for p in spools} == {spool_filename(n) for n in names}

    def test_merged_counters_equal_spool_sums(self, telemetry_run):
        run_dir, obs, result = telemetry_run
        spool_total = 0
        for path in iter_spool_files(run_dir / SPOOL_DIRNAME):
            data = read_spool(path)
            counter = data.metrics.get("iterations_total")
            assert counter and counter["type"] == "counter"
            spool_total += int(counter["value"])
        merged = obs.metrics.as_dict()["iterations_total"]["value"]
        assert spool_total > 0
        assert merged == spool_total
        # The picklable summaries agree with the spool files too.
        assert sum(r.telemetry.iterations for r in result.tile_results) == spool_total

    def test_parent_report_nests_worker_spans(self, telemetry_run):
        _, obs, result = telemetry_run
        stats = obs.tracer.stats()
        r0 = result.tile_results[0].index
        tile_name = f"tile_r{r0[0]}_c{r0[1]}"
        prefix = f"fullchip.solve/fullchip.tiles/tile:{tile_name}"
        assert f"{prefix}/solve" in stats
        assert f"{prefix}/solve/optimize/iteration" in stats
        assert stats[f"{prefix}/solve/optimize/iteration"].count == 3

    def test_chrome_trace_is_valid_with_process_lanes(self, telemetry_run):
        run_dir, _, result = telemetry_run
        with open(run_dir / TRACE_FILENAME) as handle:
            document = json.load(handle)
        assert validate_chrome_trace(document) == []
        events = document["traceEvents"]
        lanes = {
            e["pid"]: e["args"]["name"]
            for e in events
            if e.get("ph") == "M" and e.get("name") == "process_name"
        }
        # At least the parent plus one worker process (with 2 pool
        # workers and 4 tiles, usually parent + 2 workers).
        assert len(lanes) >= 2
        assert lanes[os.getpid()] == "parent"
        worker_pids = {p for p in lanes if p != os.getpid()}
        assert worker_pids == {r.telemetry.pid for r in result.tile_results}
        # Nested per-tile spans: each worker lane holds the tile span
        # and the optimizer iterations inside it.
        r0 = result.tile_results[0].index
        tile_name = f"tile_r{r0[0]}_c{r0[1]}"
        paths = {e["args"]["path"] for e in events if e.get("ph") == "X"}
        assert f"tile:{tile_name}" in paths
        assert f"tile:{tile_name}/solve/optimize/iteration" in paths
        assert "fullchip.solve" in paths  # parent lane

    def test_run_json_records_tiles_and_cache(self, telemetry_run):
        run_dir, _, result = telemetry_run
        run = load_run(run_dir)
        assert run["kind"] == "fullchip_run"
        assert run["workers"] == 2
        assert len(run["tiles"]) == 4
        for tile in run["tiles"]:
            assert tile["telemetry"]["iterations"] == 3
        assert run["ambit_cache"]["entries"] >= 1

    def test_report_renders_from_artifacts_alone(self, telemetry_run):
        run_dir, _, result = telemetry_run
        report = render_run_report(run_dir)
        assert "2x2 tiles" in report and "2 worker(s)" in report
        assert "ambit model cache" in report
        for r in result.tile_results:
            assert f"tile_r{r.index[0]}_c{r.index[1]}" in report
        assert "fullchip.solve" in report  # phase breakdown
        assert "iterations_total" in report  # metrics summary
        assert "--- convergence ---" in report
        assert "3 iters" in report

    def test_report_cli_renders_run_dir(self, telemetry_run, capsys):
        run_dir, _, _ = telemetry_run
        assert main(["report", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "--- convergence ---" in out and "tile_r0_c0" in out

    def test_report_cli_rejects_non_run_dir(self, tmp_path, capsys):
        assert main(["report", str(tmp_path)]) == 1
        assert RUN_FILENAME in capsys.readouterr().err


class TestNullTwin:
    def test_no_telemetry_dir_leaves_no_artifacts(self, tmp_path):
        engine = FullChipEngine(
            _fc_litho(),
            optimizer=OptimizerConfig(max_iterations=2, use_jump=False),
            config=FullChipConfig(tile_nm=1024.0, probe_extent_nm=PROBE_NM),
        )
        result = engine.solve(synthetic_canvas(2048.0, 2048.0, seed=5))
        assert result.all_ok
        assert result.telemetry_dir is None
        assert all(r.telemetry is None for r in result.tile_results)
        # The disabled singleton stayed inert: no spans, no metrics.
        assert engine.obs is Instrumentation.disabled()
        assert engine.obs.tracer.stats() == {}
        # And nothing was spooled anywhere under the test sandbox.
        assert list(tmp_path.rglob("spool_*.jsonl")) == []

    def test_merge_none_is_noop(self):
        obs = Instrumentation.collecting()
        merge_tile_telemetry(obs, None)
        assert obs.metrics.as_dict() == {}
        assert obs.tracer.stats() == {}


class TestSpoolRoundTrip:
    def _worker_bundle(self):
        obs, events = worker_instrumentation(
            WorkerTelemetryConfig(spool_dir="unused", timeline=True)
        )
        with obs.tracer.span("tile:t"):
            with obs.tracer.span("solve"):
                obs.metrics.counter("iterations_total").inc(5)
                obs.metrics.gauge("final_objective").set(1.25)
                obs.events.emit("iteration", iteration=0, objective=2.0)
        return obs, events

    def test_write_then_read_preserves_everything(self, tmp_path):
        obs, events = self._worker_bundle()
        path = write_spool(tmp_path, "tile_r0_c0", obs, events)
        assert path == tmp_path / spool_filename("tile_r0_c0")
        data = read_spool(path)
        assert data.tile == "tile_r0_c0"
        assert data.pid == os.getpid()
        assert {s["path"] for s in data.spans} == {"tile:t", "tile:t/solve"}
        assert [s.path for s in data.slices] == ["tile:t/solve", "tile:t"]
        assert data.metrics["iterations_total"]["value"] == 5
        assert data.events == [
            {"event": "iteration", "iteration": 0, "objective": 2.0}
        ]

    def test_summary_matches_bundle(self, tmp_path):
        obs, events = self._worker_bundle()
        summary = summarize_worker("tile_r0_c0", obs, events)
        assert summary.iterations == 5
        assert summary.events_count == 1
        assert summary.pid == os.getpid()
        round_tripped = TileTelemetry.from_dict(
            json.loads(json.dumps(summary.as_dict()))
        )
        assert round_tripped == summary

    def test_bad_lines_are_skipped(self, tmp_path):
        path = tmp_path / spool_filename("t")
        path.write_text(
            json.dumps({"kind": "header", "tile": "t", "pid": 7})
            + "\n{truncated\n"
            + json.dumps({"kind": "metric", "name": "c", "type": "counter", "value": 1})
            + "\n"
        )
        data = read_spool(path)
        assert data.tile == "t" and data.pid == 7
        assert data.metrics["c"]["value"] == 1

    def test_merge_folds_summary_into_parent(self):
        obs, events = self._worker_bundle()
        summary = summarize_worker("tile_r0_c0", obs, events)
        parent = Instrumentation.collecting()
        with parent.tracer.span("fullchip.tiles"):
            merge_tile_telemetry(parent, summary, under="fullchip.tiles")
            merge_tile_telemetry(parent, summary, under="fullchip.tiles")
        assert parent.metrics.as_dict()["iterations_total"]["value"] == 10
        stats = parent.tracer.stats()
        assert stats["fullchip.tiles/tile:t/solve"].count == 2


class TestMergeSemantics:
    def test_histogram_bucket_mismatch_raises(self):
        hist = Histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(ValueError, match="h"):
            hist.merge_dict(
                {"buckets": [1.0, 5.0], "counts": [0, 0, 0], "count": 0, "sum": 0.0}
            )

    def test_merge_snapshot_sums_and_merges(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for registry, n in ((a, 2), (b, 3)):
            registry.counter("c").inc(n)
            registry.gauge("g").set(float(n))
            registry.histogram("h", buckets=(1.0, 2.0)).observe(float(n))
        a.merge_snapshot(b.as_dict())
        merged = a.as_dict()
        assert merged["c"]["value"] == 5
        assert merged["g"]["value"] == 3.0
        assert merged["h"]["count"] == 2
        assert merged["h"]["sum"] == 5.0


class TestChromeTraceExport:
    def test_lanes_become_metadata_plus_x_events(self, tmp_path):
        lanes = [
            TraceLane(pid=1, label="parent", slices=[
                TraceSlice(path="fullchip.solve", ts_us=0.0, dur_us=100.0),
            ]),
            TraceLane(pid=2, label="tile_r0_c0", sort_index=1, slices=[
                TraceSlice(path="tile:t/solve", ts_us=10.0, dur_us=50.0, failed=True),
            ]),
        ]
        events = chrome_trace_events(lanes)
        metadata = [e for e in events if e["ph"] == "M"]
        assert {e["name"] for e in metadata} == {
            "process_name", "process_sort_index"
        }
        assert len(metadata) == 4  # two records per pid
        x_events = [e for e in events if e["ph"] == "X"]
        assert [e["name"] for e in x_events] == ["fullchip.solve", "solve"]
        assert x_events[1]["args"]["failed"] is True
        path = write_chrome_trace(tmp_path / "trace.json", lanes)
        document = json.loads(path.read_text())
        assert validate_chrome_trace(document) == []

    def test_validator_flags_broken_traces(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({"traceEvents": 3}) != []
        orphan = {
            "traceEvents": [
                {"name": "s", "ph": "X", "ts": 0, "dur": 1, "pid": 9, "tid": 0}
            ]
        }
        problems = validate_chrome_trace(orphan)
        assert any("no process_name lane" in p for p in problems)
        negative = {
            "traceEvents": [
                {"name": "process_name", "ph": "M", "pid": 1, "tid": 0,
                 "args": {"name": "p"}},
                {"name": "s", "ph": "X", "ts": -5, "dur": 1, "pid": 1, "tid": 0},
            ]
        }
        assert any("bad ts" in p for p in validate_chrome_trace(negative))


class TestConvergenceDiagnostics:
    def _history(self, objectives, steps=None):
        history = OptimizationHistory()
        steps = steps or [0.1] * len(objectives)
        for i, (objective, step) in enumerate(zip(objectives, steps)):
            history.append(
                IterationRecord(
                    iteration=i, objective=objective, gradient_rms=0.1,
                    step_size=step, term_values={"epe": objective / 2},
                )
            )
        return history

    def test_monotone_descent_is_clean(self):
        diag = diagnose_history(self._history([10.0, 8.0, 6.0, 4.0, 2.0, 1.0]))
        assert not diag.stalled and not diag.oscillating
        assert diag.flags == []
        assert diag.best_objective == 1.0
        assert diag.final_terms == {"epe": 0.5}

    def test_flat_tail_flags_stall(self):
        objectives = [10.0, 5.0] + [4.0] * 8
        diag = diagnose_history(self._history(objectives))
        assert diag.stalled
        assert "stalled" in diag.flags

    def test_alternating_objective_flags_oscillation(self):
        objectives = [5.0, 6.0, 5.0, 6.0, 5.0, 6.0, 5.0]
        diag = diagnose_history(self._history(objectives))
        assert diag.oscillating

    def test_recoveries_overlay(self):
        diag = diagnose_history(self._history([3.0, 2.0]), recoveries=2)
        assert diag.recoveries == 2
        assert "2 recovery" in diag.flags

    def test_empty_history(self):
        diag = diagnose_history(OptimizationHistory())
        assert diag.iterations == 0 and diag.final_objective is None


class TestBenchCheck:
    def test_direction_rules(self):
        assert bench_direction("parallel_s") == "lower"
        assert bench_direction("speedup") == "higher"
        assert bench_direction("speedup_floor") is None  # config echo
        assert bench_direction("rel_tol") is None
        assert bench_direction("tiles") is None

    def test_compare_flags_directional_regressions(self):
        baseline = {"parallel_s": 10.0, "speedup": 2.0, "tiles": 4, "ok": True}
        fresh = {"parallel_s": 13.0, "speedup": 1.0, "tiles": 4, "ok": False}
        deltas = {d.key: d for d in compare_bench(baseline, fresh, tolerance=0.15)}
        assert "ok" not in deltas  # bools never participate
        assert deltas["parallel_s"].regressed  # +30% on lower-is-better
        assert deltas["speedup"].regressed  # -50% on higher-is-better
        assert not deltas["tiles"].regressed  # no direction
        text = render_bench_check("BENCH_x.json", list(deltas.values()), 0.15)
        assert "REGRESSED" in text and "2 regression(s)" in text

    def test_within_tolerance_is_clean(self):
        baseline = {"parallel_s": 10.0, "speedup": 2.0}
        fresh = {"parallel_s": 11.0, "speedup": 1.9}
        deltas = compare_bench(baseline, fresh, tolerance=0.15)
        assert not any(d.regressed for d in deltas)

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ReproError):
            compare_bench({"a_s": 1.0}, {"a_s": 1.0}, tolerance=-0.1)

    def test_cli_exit_codes(self, tmp_path, capsys):
        baseline = tmp_path / "BENCH_fullchip.json"
        baseline.write_text(json.dumps({"parallel_s": 10.0, "speedup": 2.0}))
        clean = tmp_path / "fresh_ok.json"
        clean.write_text(json.dumps({"parallel_s": 10.5, "speedup": 1.95}))
        regressed = tmp_path / "fresh_bad.json"
        regressed.write_text(json.dumps({"parallel_s": 25.0, "speedup": 0.8}))
        assert main(["bench-check", str(baseline), str(clean)]) == 0
        assert "no regressions" in capsys.readouterr().out
        assert main(["bench-check", str(baseline), str(regressed)]) == 2
        assert "REGRESSED" in capsys.readouterr().out

    def test_cli_rejects_incomparable_payloads(self, tmp_path, capsys):
        baseline = tmp_path / "a.json"
        baseline.write_text(json.dumps({"x": 1.0}))
        fresh = tmp_path / "b.json"
        fresh.write_text(json.dumps({"y": 2.0}))
        assert main(["bench-check", str(baseline), str(fresh)]) == 1
        assert "no comparable" in capsys.readouterr().err
