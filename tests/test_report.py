"""Tests for the verification-report aggregation."""

import numpy as np
import pytest

from repro.config import OptimizerConfig
from repro.geometry.raster import rasterize_layout
from repro.opc.mosaic import MosaicFast
from repro.report import verify_mask
from repro.workloads.iccad2013 import load_benchmark


@pytest.fixture(scope="module")
def good_report(reduced_config, sim):
    layout = load_benchmark("B1")
    result = MosaicFast(
        reduced_config, optimizer_config=OptimizerConfig(max_iterations=25), simulator=sim
    ).solve(layout)
    return verify_mask(sim, result.mask, layout, runtime_s=result.runtime_s)


class TestVerifyMask:
    def test_good_mask_is_clean(self, good_report):
        assert good_report.clean
        assert good_report.score.epe_violations == 0
        assert good_report.score.shape_violations == 0

    def test_window_included_by_default(self, good_report):
        assert good_report.window is not None
        assert good_report.window.pass_fraction() > 0.5

    def test_cd_gauges_present(self, good_report):
        assert len(good_report.cd) == 1  # B1 has one shape
        assert good_report.cd[0].cd_nm is not None

    def test_complexity_reported(self, good_report):
        assert good_report.complexity.shot_count > 1  # ILT mask, not a rect

    def test_render_sections(self, good_report):
        text = good_report.render()
        assert "CLEAN" in text
        assert "score" in text
        assert "EPE" in text
        assert "CD gauges" in text
        assert "write cost" in text
        assert "window" in text

    def test_bad_mask_flagged(self, sim):
        layout = load_benchmark("B1")
        target = rasterize_layout(layout, sim.grid).astype(float)
        report = verify_mask(sim, target, layout, sweep_window=False)
        assert not report.clean
        assert report.window is None
        text = report.render()
        assert "VIOLATIONS PRESENT" in text
        assert "DID NOT PRINT" in text  # B1's line fails entirely un-OPC'd

    def test_runtime_charged(self, sim):
        layout = load_benchmark("B1")
        target = rasterize_layout(layout, sim.grid).astype(float)
        report = verify_mask(sim, target, layout, runtime_s=3.5, sweep_window=False)
        assert report.score.runtime_s == 3.5
