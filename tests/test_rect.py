"""Unit and property tests for repro.geometry.rect."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import GeometryError
from repro.geometry.rect import Rect

coords = st.floats(min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False)
sizes = st.floats(min_value=0.5, max_value=1e3)


def rects():
    return st.builds(
        lambda x, y, w, h: Rect.from_size(x, y, w, h), coords, coords, sizes, sizes
    )


class TestConstruction:
    def test_basic(self):
        r = Rect(0, 0, 10, 20)
        assert r.width == 10
        assert r.height == 20
        assert r.area == 200

    def test_from_size(self):
        r = Rect.from_size(5, 5, 10, 20)
        assert (r.x1, r.y1) == (15, 25)

    @pytest.mark.parametrize("bad", [(0, 0, 0, 10), (0, 0, 10, 0), (5, 5, 4, 6), (5, 5, 6, 4)])
    def test_degenerate_rejected(self, bad):
        with pytest.raises(GeometryError):
            Rect(*bad)

    def test_center(self):
        assert Rect(0, 0, 10, 20).center == (5, 10)


class TestQueries:
    def test_contains_point_inside(self):
        assert Rect(0, 0, 10, 10).contains_point(5, 5)

    def test_contains_point_boundary(self):
        assert Rect(0, 0, 10, 10).contains_point(0, 10)

    def test_contains_point_outside(self):
        assert not Rect(0, 0, 10, 10).contains_point(11, 5)

    def test_contains_rect(self):
        assert Rect(0, 0, 10, 10).contains_rect(Rect(2, 2, 8, 8))
        assert not Rect(0, 0, 10, 10).contains_rect(Rect(2, 2, 12, 8))

    def test_touching_edges_do_not_intersect(self):
        assert not Rect(0, 0, 10, 10).intersects(Rect(10, 0, 20, 10))

    def test_overlap_intersects(self):
        assert Rect(0, 0, 10, 10).intersects(Rect(5, 5, 15, 15))

    def test_intersection_box(self):
        inter = Rect(0, 0, 10, 10).intersection(Rect(5, 5, 15, 15))
        assert inter == Rect(5, 5, 10, 10)

    def test_intersection_disjoint_is_none(self):
        assert Rect(0, 0, 1, 1).intersection(Rect(5, 5, 6, 6)) is None

    def test_distance_overlapping_zero(self):
        assert Rect(0, 0, 10, 10).distance_to(Rect(5, 5, 15, 15)) == 0.0

    def test_distance_axis_gap(self):
        assert Rect(0, 0, 10, 10).distance_to(Rect(13, 0, 20, 10)) == 3.0

    def test_distance_diagonal(self):
        assert Rect(0, 0, 1, 1).distance_to(Rect(4, 5, 6, 7)) == 5.0


class TestTransforms:
    def test_expanded(self):
        assert Rect(0, 0, 10, 10).expanded(2) == Rect(-2, -2, 12, 12)

    def test_expanded_negative_shrinks(self):
        assert Rect(0, 0, 10, 10).expanded(-2) == Rect(2, 2, 8, 8)

    def test_translated(self):
        assert Rect(0, 0, 10, 10).translated(3, -4) == Rect(3, -4, 13, 6)

    def test_corners_ccw(self):
        assert list(Rect(0, 0, 2, 3).corners()) == [(0, 0), (2, 0), (2, 3), (0, 3)]


class TestProperties:
    @given(rects())
    def test_area_positive(self, r):
        assert r.area > 0

    @given(rects(), rects())
    def test_intersects_commutes(self, a, b):
        assert a.intersects(b) == b.intersects(a)

    @given(rects(), rects())
    def test_intersection_within_both(self, a, b):
        inter = a.intersection(b)
        if inter is not None:
            assert a.contains_rect(inter)
            assert b.contains_rect(inter)
            assert inter.area <= min(a.area, b.area) + 1e-9

    @given(rects(), coords, coords)
    def test_translate_preserves_area(self, r, dx, dy):
        assert r.translated(dx, dy).area == pytest.approx(r.area, rel=1e-9)

    @given(rects(), rects())
    def test_distance_symmetric(self, a, b):
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))
