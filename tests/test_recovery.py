"""Divergence-recovery tests: policy semantics + fault-injected runs.

The end-to-end tests drive the optimizer through deterministic injected
faults (``repro.testing.faults``) and assert both halves of the
contract: the fault really fired, and the run really recovered.
"""

import json
import os

import numpy as np
import pytest

from repro.config import OptimizerConfig
from repro.errors import OptimizationError
from repro.geometry.layout import Layout
from repro.geometry.raster import rasterize_layout
from repro.geometry.rect import Rect
from repro.litho.simulator import LithographySimulator
from repro.obs import Instrumentation
from repro.opc.mosaic import MosaicFast
from repro.opc.objectives import ImageDifferenceObjective
from repro.opc.objectives.base import Objective
from repro.opc.optimizer import GradientDescentOptimizer
from repro.opc.recovery import FaultKind, RecoveryPolicy, classify_fault
from repro.testing.faults import FaultInjector


class TestRecoveryPolicy:
    def test_defaults_enabled(self):
        policy = RecoveryPolicy()
        assert policy.enabled
        assert policy.max_retries == 3

    def test_strict_disables(self):
        assert not RecoveryPolicy.strict().enabled

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_retries": -1},
            {"nonfinite_action": "ignore"},
            {"step_backoff": 0.0},
            {"step_backoff": 1.0},
            {"min_step_scale": 0.0},
            {"min_step_scale": 2.0},
            {"blowup_factor": 1.0},
            {"grad_clip": 0.0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(OptimizationError):
            RecoveryPolicy(**kwargs)

    def test_backed_off_floors(self):
        policy = RecoveryPolicy(step_backoff=0.5, min_step_scale=0.25)
        assert policy.backed_off(1.0) == 0.5
        assert policy.backed_off(0.5) == 0.25
        assert policy.backed_off(0.25) == 0.25  # floored

    def test_blowup_detection(self):
        policy = RecoveryPolicy(blowup_factor=100.0)
        assert policy.is_blowup(2000.0, 10.0)
        assert not policy.is_blowup(500.0, 10.0)
        assert not policy.is_blowup(2000.0, np.inf)  # no best yet
        assert RecoveryPolicy(blowup_factor=None).is_blowup(1e30, 1.0) is False

    def test_sanitize_gradient(self):
        policy = RecoveryPolicy.sanitizing(grad_clip=2.0)
        g = np.array([1.0, np.nan, -np.inf, 5.0])
        repaired = policy.sanitize_gradient(g)
        assert repaired.tolist() == [1.0, 0.0, 0.0, 2.0]

    def test_classify_fault_priorities(self):
        policy = RecoveryPolicy()
        good = np.zeros(4)
        bad = np.array([0.0, np.nan, 0.0, 0.0])
        assert classify_fault(np.nan, good, 1.0, policy) == FaultKind.NONFINITE_VALUE
        assert classify_fault(np.nan, bad, 1.0, policy) == FaultKind.NONFINITE_VALUE
        assert classify_fault(1.0, bad, 1.0, policy) == FaultKind.NONFINITE_GRADIENT
        assert classify_fault(1e6, good, 1.0, policy) == FaultKind.OBJECTIVE_BLOWUP
        assert classify_fault(1.0, good, 1.0, policy) is None


@pytest.fixture()
def setup(tiny_sim):
    layout = Layout.from_rects("sq", [Rect(384, 384, 640, 640)])
    target = rasterize_layout(layout, tiny_sim.grid).astype(float)
    return layout, target


def _collecting_obs(events):
    return Instrumentation.collecting(events_sink=events.append)


class TestDivergenceRecovery:
    def test_nan_gradient_rolls_back_and_completes(self, tiny_sim, setup):
        """Acceptance: NaN gradient at iteration 5 of a 20-iteration run
        triggers rollback + step backoff and still completes all 20."""
        _, target = setup
        events = []
        obs = _collecting_obs(events)
        injector = FaultInjector().arm_gradient_fault(at_call=5, mode="nan")
        objective = injector.wrap_objective(
            ImageDifferenceObjective(target, gamma=2)
        )
        config = OptimizerConfig(max_iterations=20, step_size=8.0, use_jump=False,
                                 gradient_rms_tol=0.0)
        optimizer = GradientDescentOptimizer(
            tiny_sim, objective, config, obs=obs
        )
        result = optimizer.run(target)

        # The fault really fired...
        assert [r.kind for r in injector.log] == ["gradient"]
        # ...recovery engaged (counters + events)...
        assert obs.metrics.counter("recovery_rollbacks").value == 1
        assert obs.metrics.counter("recovery_step_backoffs").value == 1
        recovery_events = [e for e in events if e["event"] == "recovery"]
        assert len(recovery_events) == 1
        assert recovery_events[0]["action"] == "rollback"
        assert recovery_events[0]["reason"] == FaultKind.NONFINITE_GRADIENT
        assert recovery_events[0]["iteration"] == 5
        # ...and the run completed all iterations with finite results.
        assert len(result.history) == 20
        assert result.recovered_faults == 1
        assert np.all(np.isfinite(result.history.objectives))

        # Optional CI artifact: persist the recovery telemetry.
        out = os.environ.get("RECOVERY_EVENTS_PATH")
        if out:
            with open(out, "a") as handle:
                for event in events:
                    handle.write(json.dumps(event) + "\n")

    def test_recovered_run_matches_clean_final_score(self, tiny_sim, setup):
        _, target = setup
        objective = ImageDifferenceObjective(target, gamma=2)
        config = OptimizerConfig(max_iterations=20, step_size=8.0, use_jump=False,
                                 gradient_rms_tol=0.0)
        clean = GradientDescentOptimizer(tiny_sim, objective, config).run(target)

        injector = FaultInjector().arm_gradient_fault(at_call=5, mode="nan")
        recovered = GradientDescentOptimizer(
            tiny_sim,
            injector.wrap_objective(ImageDifferenceObjective(target, gamma=2)),
            config,
        ).run(target)

        # The recovered trajectory diverges (backed-off steps) but lands
        # in the same basin: final objectives agree to a loose tolerance.
        clean_final = clean.history.objectives[-1]
        rec_final = recovered.history.objectives[-1]
        assert rec_final == pytest.approx(clean_final, rel=0.5)
        # The first 5 iterations are untouched by the fault: identical.
        np.testing.assert_allclose(
            recovered.history.objectives[:5], clean.history.objectives[:5], rtol=0
        )

    def test_inf_gradient_also_recovers(self, tiny_sim, setup):
        _, target = setup
        injector = FaultInjector().arm_gradient_fault(at_call=2, mode="inf")
        config = OptimizerConfig(max_iterations=6, step_size=8.0, use_jump=False,
                                 gradient_rms_tol=0.0)
        result = GradientDescentOptimizer(
            tiny_sim,
            injector.wrap_objective(ImageDifferenceObjective(target, gamma=2)),
            config,
        ).run(target)
        assert len(result.history) == 6
        assert result.recovered_faults == 1

    def test_value_blowup_restarts_from_best(self, tiny_sim, setup):
        _, target = setup
        events = []
        obs = _collecting_obs(events)
        injector = FaultInjector().arm_value_fault(
            at_call=4, mode="blowup", blowup_factor=1e9
        )
        config = OptimizerConfig(max_iterations=8, step_size=8.0, use_jump=False,
                                 gradient_rms_tol=0.0)
        result = GradientDescentOptimizer(
            tiny_sim,
            injector.wrap_objective(ImageDifferenceObjective(target, gamma=2)),
            config,
            obs=obs,
        ).run(target)
        assert obs.metrics.counter("recovery_restarts").value == 1
        actions = [e["action"] for e in events if e["event"] == "recovery"]
        assert actions == ["restart_from_best"]
        assert len(result.history) == 8

    def test_sanitize_mode_repairs_in_place(self, tiny_sim, setup):
        _, target = setup
        events = []
        obs = _collecting_obs(events)
        injector = FaultInjector().arm_gradient_fault(at_call=3, mode="nan")
        config = OptimizerConfig(max_iterations=6, step_size=8.0, use_jump=False,
                                 gradient_rms_tol=0.0)
        result = GradientDescentOptimizer(
            tiny_sim,
            injector.wrap_objective(ImageDifferenceObjective(target, gamma=2)),
            config,
            obs=obs,
            recovery=RecoveryPolicy.sanitizing(),
        ).run(target)
        assert obs.metrics.counter("recovery_sanitized_gradients").value == 1
        assert obs.metrics.counter("recovery_rollbacks").value == 0
        # Sanitizing repairs without retrying, so all iterations recorded.
        assert len(result.history) == 6

    def test_persistent_fault_exhausts_retries(self, tiny_sim):
        class Broken(Objective):
            def value_and_gradient(self, ctx):
                g = np.zeros_like(ctx.mask)
                g[0, 0] = np.nan
                return 1.0, g

        optimizer = GradientDescentOptimizer(
            tiny_sim, Broken(), OptimizerConfig(),
            recovery=RecoveryPolicy(max_retries=2),
        )
        with pytest.raises(OptimizationError, match="recovery exhausted"):
            optimizer.run(np.full(tiny_sim.grid.shape, 0.5))

    def test_strict_policy_raises_immediately(self, tiny_sim):
        class Broken(Objective):
            calls = 0

            def value_and_gradient(self, ctx):
                type(self).calls += 1
                g = np.zeros_like(ctx.mask)
                g[0, 0] = np.nan
                return 1.0, g

        optimizer = GradientDescentOptimizer(
            tiny_sim, Broken(), OptimizerConfig(),
            recovery=RecoveryPolicy.strict(),
        )
        with pytest.raises(OptimizationError, match="non-finite"):
            optimizer.run(np.full(tiny_sim.grid.shape, 0.5))
        assert Broken.calls == 1  # no retries under the strict policy

    def test_transient_retry_budget_resets(self, tiny_sim, setup):
        """Isolated transients spread across a run each recover, because
        the retry budget is consecutive, not cumulative."""
        _, target = setup
        injector = (
            FaultInjector()
            .arm_gradient_fault(at_call=2, mode="nan")
            .arm_gradient_fault(at_call=7, mode="nan")
            .arm_gradient_fault(at_call=12, mode="nan")
        )
        config = OptimizerConfig(max_iterations=12, step_size=8.0, use_jump=False,
                                 gradient_rms_tol=0.0)
        result = GradientDescentOptimizer(
            tiny_sim,
            injector.wrap_objective(ImageDifferenceObjective(target, gamma=2)),
            config,
            recovery=RecoveryPolicy(max_retries=1),
        ).run(target)
        assert result.recovered_faults == 3
        assert len(result.history) == 12


class TestMosaicFastEndToEnd:
    def test_mosaic_fast_survives_injected_nan(self, tiny_config, setup):
        """Acceptance (end to end): a MOSAIC_fast solve with a NaN
        gradient injected at iteration 5 of 20 completes and scores."""
        layout, _ = setup
        events = []
        obs = _collecting_obs(events)
        sim = LithographySimulator(tiny_config, obs=obs)
        injector = FaultInjector().arm_gradient_fault(at_call=5, mode="nan")
        solver = MosaicFast(
            tiny_config,
            optimizer_config=OptimizerConfig(max_iterations=20),
            simulator=sim,
            objective_transform=injector.wrap_objective,
        )
        result = solver.solve(layout)
        assert injector.log, "the armed fault never fired"
        assert obs.metrics.counter("recovery_rollbacks").value >= 1
        assert obs.metrics.counter("recovery_step_backoffs").value >= 1
        assert len(result.optimization.history) == 20
        assert np.isfinite(result.score.total)
