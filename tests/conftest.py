"""Shared fixtures: configs and prewarmed simulators at test-friendly scales."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import GridSpec, LithoConfig, OpticsConfig, ProcessConfig, ResistConfig
from repro.geometry.layout import Layout
from repro.geometry.rect import Rect
from repro.litho.simulator import LithographySimulator


@pytest.fixture(scope="session")
def reduced_config() -> LithoConfig:
    """256 px @ 4 nm/px, 8 kernels — the CI-scale configuration."""
    return LithoConfig.reduced()


@pytest.fixture(scope="session")
def tiny_config() -> LithoConfig:
    """64 px @ 16 nm/px, 4 kernels — for gradient checks and fast loops."""
    return LithoConfig(
        grid=GridSpec(shape=(64, 64), pixel_nm=16.0),
        optics=OpticsConfig(num_kernels=4),
        resist=ResistConfig(),
        process=ProcessConfig(),
    )


@pytest.fixture(scope="session")
def sim(reduced_config: LithoConfig) -> LithographySimulator:
    """Shared reduced-scale simulator with prewarmed kernels."""
    simulator = LithographySimulator(reduced_config)
    simulator.prewarm()
    return simulator


@pytest.fixture(scope="session")
def tiny_sim(tiny_config: LithoConfig) -> LithographySimulator:
    """Shared tiny simulator for gradient-check tests."""
    simulator = LithographySimulator(tiny_config)
    simulator.prewarm()
    return simulator


@pytest.fixture()
def square_layout() -> Layout:
    """One 256 x 256 nm square in the clip centre."""
    layout = Layout("square")
    layout.add(Rect(384, 384, 640, 640))
    return layout


@pytest.fixture()
def line_layout() -> Layout:
    """One 500 x 72 nm horizontal line."""
    layout = Layout("line")
    layout.add(Rect(262, 476, 762, 548))
    return layout


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(20140601)  # DAC 2014 conference date
