"""Shared fixtures: configs and prewarmed simulators at test-friendly scales."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import GridSpec, LithoConfig, OpticsConfig, ProcessConfig, ResistConfig
from repro.geometry.layout import Layout
from repro.geometry.rect import Rect
from repro.litho.simulator import LithographySimulator
from repro.xp import ALL_BACKEND_SPECS, backend_available, get_backend


@pytest.fixture(scope="session")
def reduced_config() -> LithoConfig:
    """256 px @ 4 nm/px, 8 kernels — the CI-scale configuration."""
    return LithoConfig.reduced()


@pytest.fixture(scope="session")
def tiny_config() -> LithoConfig:
    """64 px @ 16 nm/px, 4 kernels — for gradient checks and fast loops."""
    return LithoConfig(
        grid=GridSpec(shape=(64, 64), pixel_nm=16.0),
        optics=OpticsConfig(num_kernels=4),
        resist=ResistConfig(),
        process=ProcessConfig(),
    )


@pytest.fixture(scope="session")
def sim(reduced_config: LithoConfig) -> LithographySimulator:
    """Shared reduced-scale simulator with prewarmed kernels.

    Pinned to the numpy float64 reference backend so the suite's golden
    numbers stay valid even when ``REPRO_ARRAY_BACKEND`` selects another
    backend (the CI float32 lane does exactly that).
    """
    simulator = LithographySimulator(reduced_config, backend="numpy")
    simulator.prewarm()
    return simulator


@pytest.fixture(scope="session")
def tiny_sim(tiny_config: LithoConfig) -> LithographySimulator:
    """Shared tiny simulator for gradient-check tests (numpy reference)."""
    simulator = LithographySimulator(tiny_config, backend="numpy")
    simulator.prewarm()
    return simulator


@pytest.fixture(scope="session", params=ALL_BACKEND_SPECS)
def backend(request):
    """Every registered backend spec; clean skip when the library is absent.

    Cross-backend equivalence tests parametrize over this fixture.  The
    numpy pair always runs; torch/cupy run only where installed.
    """
    spec = request.param
    if not backend_available(spec):
        pytest.skip(f"array backend {spec!r} not installed")
    return get_backend(spec)


@pytest.fixture(scope="session")
def backend_sim(backend, sim, reduced_config) -> LithographySimulator:
    """Reduced-scale simulator on the parametrized backend.

    Shares the reference simulator's kernel cache — kernel sets are
    backend-independent numpy data, read-only after construction — so
    the battery pays for TCC/SOCS builds once per scale, not once per
    backend.
    """
    simulator = LithographySimulator(reduced_config, backend=backend)
    simulator._kernel_cache = sim._kernel_cache
    return simulator


@pytest.fixture(scope="session")
def backend_tiny_sim(backend, tiny_sim, tiny_config) -> LithographySimulator:
    """Tiny simulator on the parametrized backend (shared kernel cache)."""
    simulator = LithographySimulator(tiny_config, backend=backend)
    simulator._kernel_cache = tiny_sim._kernel_cache
    return simulator


@pytest.fixture(scope="session")
def backend_close():
    """Per-dtype comparison: bitwise vs the reference backend, scaled rtol else."""

    def check(actual, reference, backend, what="arrays"):
        actual = np.asarray(actual)
        reference = np.asarray(reference)
        assert actual.shape == reference.shape, f"{what}: shape mismatch"
        if backend.is_reference:
            np.testing.assert_array_equal(actual, reference, err_msg=what)
            return
        rtol = backend.equivalence_rtol
        scale = float(np.max(np.abs(reference))) or 1.0
        np.testing.assert_allclose(
            actual, reference, rtol=rtol, atol=rtol * scale, err_msg=what
        )

    return check


@pytest.fixture()
def square_layout() -> Layout:
    """One 256 x 256 nm square in the clip centre."""
    layout = Layout("square")
    layout.add(Rect(384, 384, 640, 640))
    return layout


@pytest.fixture()
def line_layout() -> Layout:
    """One 500 x 72 nm horizontal line."""
    layout = Layout("line")
    layout.add(Rect(262, 476, 762, 548))
    return layout


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(20140601)  # DAC 2014 conference date
