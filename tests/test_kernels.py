"""Unit tests for repro.optics.kernels (SOCS kernel sets)."""

import numpy as np
import pytest

from repro.config import GridSpec, OpticsConfig
from repro.errors import OpticsError
from repro.optics.hopkins import aerial_image
from repro.optics.kernels import SOCSKernels, build_socs_kernels

GRID = GridSpec(shape=(128, 128), pixel_nm=8.0)
OPTICS = OpticsConfig(num_kernels=8)


@pytest.fixture(scope="module")
def kernels():
    return build_socs_kernels(GRID, OPTICS)


class TestBuild:
    def test_kernel_count(self, kernels):
        assert kernels.num_kernels == 8

    def test_open_frame_normalization(self, kernels):
        intensity = aerial_image(np.ones(GRID.shape), kernels)
        assert intensity.mean() == pytest.approx(1.0, abs=1e-9)
        assert intensity.std() == pytest.approx(0.0, abs=1e-9)

    def test_dark_frame_zero(self, kernels):
        intensity = aerial_image(np.zeros(GRID.shape), kernels)
        assert np.allclose(intensity, 0.0)

    def test_weights_descending(self, kernels):
        assert np.all(np.diff(kernels.weights) <= 1e-15)

    def test_defocus_changes_kernels(self):
        nominal = build_socs_kernels(GRID, OPTICS, defocus_nm=0.0)
        defocused = build_socs_kernels(GRID, OPTICS, defocus_nm=25.0)
        assert not np.allclose(
            np.abs(nominal.spectra[0]), np.abs(defocused.spectra[0])
        ) or not np.allclose(nominal.weights, defocused.weights)

    def test_inconsistent_shapes_rejected(self, kernels):
        with pytest.raises(OpticsError):
            SOCSKernels(
                support=kernels.support,
                weights=kernels.weights[:3],
                spectra=kernels.spectra,
                defocus_nm=0.0,
            )


class TestDerivedSets:
    def test_truncated(self, kernels):
        small = kernels.truncated(3)
        assert small.num_kernels == 3
        assert np.array_equal(small.weights, kernels.weights[:3])

    def test_truncated_bounds(self, kernels):
        with pytest.raises(OpticsError):
            kernels.truncated(0)
        with pytest.raises(OpticsError):
            kernels.truncated(99)

    def test_truncation_loses_little_open_frame_energy(self, kernels):
        # Eigenvalues decay fast: half the kernels keep ~all the DC energy.
        full = aerial_image(np.ones(GRID.shape), kernels).mean()
        half = aerial_image(np.ones(GRID.shape), kernels.truncated(4)).mean()
        assert 0.9 * full <= half <= full + 1e-12

    def test_dominant_is_first_kernel(self, kernels):
        dom = kernels.dominant()
        assert dom.num_kernels == 1
        assert np.array_equal(dom.spectra[0], kernels.spectra[0])

    def test_combined_single_kernel_normalized(self, kernels):
        combined = kernels.combined()
        assert combined.num_kernels == 1
        intensity = aerial_image(np.ones(GRID.shape), combined)
        assert intensity.mean() == pytest.approx(1.0, abs=1e-9)

    def test_combined_exact_for_coherent_system(self, kernels):
        # For a 1-kernel system Eq. 21 is exact: combining is a no-op.
        coherent = kernels.truncated(1)
        mask = np.zeros(GRID.shape)
        mask[40:88, 56:72] = 1.0
        direct = aerial_image(mask, coherent)
        via_combined = aerial_image(mask, coherent.combined())
        # Up to the DC re-normalization both images are proportional.
        ratio = direct[64, 64] / via_combined[64, 64]
        assert np.allclose(direct, via_combined * ratio, atol=1e-9)

    def test_combined_approximates_full(self, kernels):
        # Eq. 21 is an approximation for h > 1 — close but not exact.
        mask = np.zeros(GRID.shape)
        mask[40:88, 56:72] = 1.0
        full = aerial_image(mask, kernels)
        approx = aerial_image(mask, kernels.combined())
        err = np.abs(full - approx).max()
        assert 0 < err < 0.5

    def test_spatial_kernel_centered(self, kernels):
        spatial = kernels.spatial_kernel(0)
        energy = np.abs(spatial) ** 2
        peak = np.unravel_index(np.argmax(energy), energy.shape)
        center = (GRID.shape[0] // 2, GRID.shape[1] // 2)
        assert abs(peak[0] - center[0]) <= 2
        assert abs(peak[1] - center[1]) <= 2
