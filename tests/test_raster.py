"""Unit and property tests for repro.geometry.raster."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.config import GridSpec
from repro.errors import GridError
from repro.geometry.layout import Layout
from repro.geometry.polygon import Polygon
from repro.geometry.raster import rasterize_layout, rasterize_polygon, rasterize_rect
from repro.geometry.rect import Rect

GRID = GridSpec(shape=(64, 64), pixel_nm=1.0)


class TestRectRaster:
    def test_exact_pixel_count(self):
        img = rasterize_rect(Rect(10, 20, 30, 25), GRID)
        assert img.sum() == 20 * 5

    def test_pixel_location(self):
        img = rasterize_rect(Rect(10, 20, 30, 25), GRID)
        assert img[22, 15]          # inside (row=y, col=x)
        assert not img[22, 9]       # left of the rect
        assert not img[19, 15]      # below the rect

    def test_clips_to_grid(self):
        img = rasterize_rect(Rect(-10, -10, 5, 5), GRID)
        assert img.sum() == 25

    def test_fully_outside_is_empty(self):
        img = rasterize_rect(Rect(100, 100, 120, 120), GRID)
        assert img.sum() == 0

    def test_accumulates_into_out(self):
        out = rasterize_rect(Rect(0, 0, 4, 4), GRID)
        rasterize_rect(Rect(10, 10, 14, 14), GRID, out=out)
        assert out.sum() == 32

    def test_out_shape_mismatch_raises(self):
        with pytest.raises(GridError):
            rasterize_rect(Rect(0, 0, 4, 4), GRID, out=np.zeros((8, 8), dtype=bool))

    def test_coarse_pixels(self):
        grid = GridSpec(shape=(16, 16), pixel_nm=4.0)
        img = rasterize_rect(Rect(0, 0, 16, 8), grid)
        assert img.sum() == 4 * 2

    def test_subpixel_rect_centered_on_no_centers(self):
        # A sliver between pixel centers rasterizes to nothing.
        img = rasterize_rect(Rect(10.6, 10.6, 10.9, 20), GRID)
        assert img.sum() == 0


class TestPolygonRaster:
    def test_matches_rect_raster(self):
        rect = Rect(5, 7, 20, 31)
        assert np.array_equal(
            rasterize_polygon(Polygon.from_rect(rect), GRID),
            rasterize_rect(rect, GRID),
        )

    def test_l_shape_area(self):
        poly = Polygon([(0, 0), (30, 0), (30, 30), (20, 30), (20, 10), (0, 10)])
        img = rasterize_polygon(poly, GRID)
        assert img.sum() == poly.area

    def test_notch_is_empty(self):
        poly = Polygon([(0, 0), (30, 0), (30, 30), (20, 30), (20, 10), (0, 10)])
        img = rasterize_polygon(poly, GRID)
        assert not img[20, 5]  # inside the notch
        assert img[5, 5]

    def test_u_shape_interior_gap(self):
        poly = Polygon(
            [(0, 0), (30, 0), (30, 30), (20, 30), (20, 10), (10, 10), (10, 30), (0, 30)]
        )
        img = rasterize_polygon(poly, GRID)
        assert img.sum() == poly.area
        assert not img[20, 15]  # inside the U's mouth


class TestLayoutRaster:
    def test_union_of_shapes(self):
        layout = Layout.from_rects(
            "two", [Rect(0, 0, 10, 10), Rect(20, 20, 30, 30)], clip=Rect(0, 0, 64, 64)
        )
        img = rasterize_layout(layout, GRID)
        assert img.sum() == 200

    def test_overlapping_shapes_not_double_counted(self):
        layout = Layout.from_rects(
            "ovl", [Rect(0, 0, 10, 10), Rect(5, 5, 15, 15)], clip=Rect(0, 0, 64, 64)
        )
        img = rasterize_layout(layout, GRID)
        assert img.sum() == 100 + 100 - 25

    def test_empty_layout(self):
        img = rasterize_layout(Layout("e", clip=Rect(0, 0, 64, 64)), GRID)
        assert img.sum() == 0

    @given(
        st.integers(min_value=0, max_value=40),
        st.integers(min_value=0, max_value=40),
        st.integers(min_value=1, max_value=20),
        st.integers(min_value=1, max_value=20),
    )
    def test_grid_aligned_rect_area_exact(self, x, y, w, h):
        img = rasterize_rect(Rect(x, y, x + w, y + h), GRID)
        assert img.sum() == w * h
