"""Tests for the optimizer's backtracking line-search mode (ref [12])."""

import numpy as np
import pytest

from repro.config import OptimizerConfig
from repro.errors import OptimizationError
from repro.geometry.layout import Layout
from repro.geometry.raster import rasterize_layout
from repro.geometry.rect import Rect
from repro.opc.objectives import ImageDifferenceObjective
from repro.opc.optimizer import GradientDescentOptimizer


@pytest.fixture()
def setup(tiny_sim):
    layout = Layout.from_rects("sq", [Rect(384, 384, 640, 640)])
    target = rasterize_layout(layout, tiny_sim.grid).astype(float)
    return target, ImageDifferenceObjective(target, gamma=2)


class TestLineSearch:
    def test_objective_monotone_with_line_search(self, tiny_sim, setup):
        target, objective = setup
        config = OptimizerConfig(
            max_iterations=8,
            step_size=64.0,  # absurdly large on purpose
            use_jump=False,
            use_line_search=True,
        )
        result = GradientDescentOptimizer(tiny_sim, objective, config).run(target)
        objectives = result.history.objectives
        # Line search tames the huge step: values never increase.
        assert all(b <= a + 1e-9 for a, b in zip(objectives, objectives[1:]))

    def test_huge_step_without_line_search_oscillates(self, tiny_sim, setup):
        target, objective = setup
        config = OptimizerConfig(
            max_iterations=8, step_size=64.0, use_jump=False, use_line_search=False
        )
        result = GradientDescentOptimizer(tiny_sim, objective, config).run(target)
        objectives = result.history.objectives
        increases = sum(1 for a, b in zip(objectives, objectives[1:]) if b > a)
        assert increases > 0  # the pathological step really is pathological

    def test_line_search_result_quality(self, tiny_sim, setup):
        target, objective = setup
        base = dict(max_iterations=8, step_size=64.0, use_jump=False)
        plain = GradientDescentOptimizer(
            tiny_sim, objective, OptimizerConfig(**base)
        ).run(target)
        searched = GradientDescentOptimizer(
            tiny_sim, objective, OptimizerConfig(use_line_search=True, **base)
        ).run(target)
        assert (
            searched.history.objectives[-1] <= plain.history.objectives[-1] + 1e-9
        )

    def test_config_validation(self):
        with pytest.raises(OptimizationError):
            OptimizerConfig(line_search_shrink=0.0)
        with pytest.raises(OptimizationError):
            OptimizerConfig(line_search_shrink=1.0)
        with pytest.raises(OptimizationError):
            OptimizerConfig(line_search_max_steps=0)
