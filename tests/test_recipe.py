"""Tests for OPC recipes (JSON-replayable solve configurations)."""

import json

import pytest

from repro.config import OptimizerConfig
from repro.errors import ReproError
from repro.mask.cleanup import CleanupConfig
from repro.recipe import (
    Recipe,
    dump_recipe,
    load_recipe,
    recipe_from_dict,
    solve_with_recipe,
)
from repro.workloads.iccad2013 import load_benchmark


class TestRecipeParsing:
    def test_minimal(self):
        recipe = recipe_from_dict({})
        assert recipe.mode == "fast"
        assert recipe.optimizer is None
        assert recipe.cleanup is None

    def test_full(self):
        recipe = recipe_from_dict(
            {
                "name": "tuned",
                "mode": "exact",
                "optimizer": {"max_iterations": 40, "step_size": 10.0},
                "cleanup": {"min_figure_area_nm2": 300.0, "smooth": False},
            }
        )
        assert recipe.mode == "exact"
        assert recipe.optimizer.max_iterations == 40
        assert recipe.optimizer.step_size == 10.0
        assert recipe.cleanup.min_figure_area_nm2 == 300.0
        assert not recipe.cleanup.smooth

    def test_unknown_mode_rejected(self):
        with pytest.raises(ReproError):
            recipe_from_dict({"mode": "magic"})

    def test_typo_key_rejected(self):
        with pytest.raises(ReproError, match="max_iteration"):
            recipe_from_dict({"optimizer": {"max_iteration": 40}})

    def test_unknown_top_level_rejected(self):
        with pytest.raises(ReproError):
            recipe_from_dict({"solver": "fast"})

    def test_invalid_value_rejected(self):
        with pytest.raises(ReproError):
            recipe_from_dict({"optimizer": {"max_iterations": -1}})

    def test_non_object_rejected(self):
        with pytest.raises(ReproError):
            recipe_from_dict(["fast"])


class TestRecipeIO:
    def test_roundtrip(self, tmp_path):
        recipe = Recipe(
            mode="exact",
            optimizer=OptimizerConfig(max_iterations=33),
            cleanup=CleanupConfig(min_width_nm=8.0),
            name="rt",
        )
        path = tmp_path / "recipe.json"
        dump_recipe(recipe, path)
        again = load_recipe(path)
        assert again.mode == "exact"
        assert again.name == "rt"
        assert again.optimizer.max_iterations == 33
        assert again.cleanup.min_width_nm == 8.0

    def test_missing_file(self, tmp_path):
        with pytest.raises(ReproError):
            load_recipe(tmp_path / "nope.json")

    def test_bad_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ReproError):
            load_recipe(path)


class TestSolveWithRecipe:
    def test_plain_solve(self, reduced_config, sim):
        recipe = Recipe(mode="fast", optimizer=OptimizerConfig(max_iterations=10))
        result = solve_with_recipe(recipe, load_benchmark("B1"), reduced_config, simulator=sim)
        assert result.score.shape_violations == 0
        assert result.layout_name == "B1"

    def test_cleanup_applied(self, reduced_config, sim):
        recipe = Recipe(
            mode="fast",
            optimizer=OptimizerConfig(max_iterations=20),
            cleanup=CleanupConfig(
                min_figure_area_nm2=300.0, max_pinhole_area_nm2=300.0, smooth=False
            ),
        )
        plain = solve_with_recipe(
            Recipe(mode="fast", optimizer=OptimizerConfig(max_iterations=20)),
            load_benchmark("B1"), reduced_config, simulator=sim,
        )
        cleaned = solve_with_recipe(recipe, load_benchmark("B1"), reduced_config, simulator=sim)
        from repro.metrics.complexity import mask_complexity

        assert (
            mask_complexity(cleaned.mask, sim.grid).shot_count
            <= mask_complexity(plain.mask, sim.grid).shot_count
        )

    def test_cli_recipe_path(self, tmp_path, capsys):
        from repro.cli import main

        recipe_path = tmp_path / "r.json"
        recipe_path.write_text(json.dumps({"mode": "modelbased", "name": "quick"}))
        code = main(["solve", "B1", "--recipe", str(recipe_path)])
        assert code == 0
        assert "recipe quick" in capsys.readouterr().out
