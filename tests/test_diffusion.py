"""Tests for the Gaussian acid-diffusion resist extension."""

import numpy as np
import pytest

from repro.config import GridSpec, LithoConfig, OpticsConfig, ResistConfig
from repro.errors import GridError, ProcessError
from repro.litho.simulator import LithographySimulator
from repro.resist.diffusion import diffuse
from repro.resist.threshold import ThresholdResist


class TestDiffuse:
    def test_zero_sigma_identity(self):
        img = np.random.default_rng(0).uniform(size=(16, 16))
        out = diffuse(img, 0.0, 4.0)
        assert np.array_equal(out, img)
        out[0, 0] = 9.0
        assert img[0, 0] != 9.0  # a copy, not a view

    def test_preserves_mean(self):
        img = np.random.default_rng(1).uniform(size=(32, 32))
        out = diffuse(img, 10.0, 4.0)
        assert out.mean() == pytest.approx(img.mean())

    def test_reduces_contrast(self):
        img = np.zeros((32, 32))
        img[12:20, 12:20] = 1.0
        out = diffuse(img, 12.0, 4.0)
        assert out.max() < 1.0
        assert out.min() > 0.0 or out.std() < img.std()

    def test_larger_sigma_blurs_more(self):
        img = np.zeros((32, 32))
        img[12:20, 12:20] = 1.0
        mild = diffuse(img, 4.0, 4.0)
        strong = diffuse(img, 16.0, 4.0)
        assert strong.max() < mild.max()

    def test_validation(self):
        with pytest.raises(GridError):
            diffuse(np.zeros(5), 1.0, 1.0)
        with pytest.raises(GridError):
            diffuse(np.zeros((4, 4)), -1.0, 1.0)
        with pytest.raises(GridError):
            diffuse(np.zeros((4, 4)), 1.0, 0.0)

    def test_config_validation(self):
        with pytest.raises(ProcessError):
            ResistConfig(diffusion_nm=-1.0)


class TestDiffusedResist:
    def test_facade_applies_diffusion(self):
        model = ThresholdResist(ResistConfig(diffusion_nm=8.0), pixel_nm=4.0)
        assert model.has_diffusion
        img = np.zeros((32, 32))
        img[12:20, 12:20] = 1.0
        plain = ThresholdResist(ResistConfig(), pixel_nm=4.0)
        # Diffusion shrinks a hot square below threshold at its fringe.
        assert model.develop(img).sum() <= plain.develop(img).sum()

    def test_diffused_print_smaller_for_narrow_feature(self, reduced_config):
        from dataclasses import replace

        diffused_cfg = replace(
            reduced_config, resist=ResistConfig(diffusion_nm=12.0)
        )
        plain_sim = LithographySimulator(reduced_config)
        diff_sim = LithographySimulator(diffused_cfg)
        mask = np.zeros(plain_sim.grid.shape)
        mask[96:160, 64:192] = 1.0  # 256 nm wide block
        plain_px = plain_sim.print_binary(mask).sum()
        diff_px = diff_sim.print_binary(mask).sum()
        assert 0 < diff_px <= plain_px

    def test_gradient_chain_with_diffusion(self):
        """Finite-difference check through imaging + diffusion + sigmoid."""
        from repro.geometry.layout import Layout
        from repro.geometry.raster import rasterize_layout
        from repro.geometry.rect import Rect
        from repro.opc.objectives import ImageDifferenceObjective
        from repro.opc.state import ForwardContext

        config = LithoConfig(
            grid=GridSpec(shape=(64, 64), pixel_nm=16.0),
            optics=OpticsConfig(num_kernels=4),
            resist=ResistConfig(diffusion_nm=24.0),
        )
        sim = LithographySimulator(config)
        layout = Layout.from_rects("sq", [Rect(384, 384, 640, 640)])
        target = rasterize_layout(layout, config.grid).astype(float)
        rng = np.random.default_rng(5)
        mask = np.clip(target + rng.uniform(-0.2, 0.4, config.grid.shape), 0.05, 0.95)

        objective = ImageDifferenceObjective(target, gamma=2)
        value, grad = objective.value_and_gradient(ForwardContext(mask, sim))
        eps = 1e-6
        checked = 0
        for _ in range(30):
            i, j = rng.integers(0, 64), rng.integers(0, 64)
            if abs(grad[i, j]) < 1e-9:
                continue
            bumped = mask.copy()
            bumped[i, j] += eps
            fd = (
                objective.value(ForwardContext(bumped, sim)) - value
            ) / eps
            assert fd == pytest.approx(grad[i, j], rel=5e-3, abs=1e-7)
            checked += 1
            if checked >= 6:
                break
        assert checked > 0

    def test_opc_compensates_diffusion(self, reduced_config, sim):
        """MOSAIC still reaches zero violations with a diffused resist."""
        from dataclasses import replace

        from repro.config import OptimizerConfig
        from repro.opc.mosaic import MosaicFast
        from repro.workloads.iccad2013 import load_benchmark

        diffused_cfg = replace(reduced_config, resist=ResistConfig(diffusion_nm=8.0))
        diff_sim = LithographySimulator(diffused_cfg)
        result = MosaicFast(
            diffused_cfg,
            optimizer_config=OptimizerConfig(max_iterations=30),
            simulator=diff_sim,
        ).solve(load_benchmark("B1"))
        assert result.score.epe_violations == 0
        assert result.score.shape_violations == 0
