"""Equivalence and accounting tests for the batched multi-corner engine.

The batched forward path (one shared ``fft2(M)``, one vectorized
``ifft2`` across all (focus x kernel) spectra, one accumulated adjoint
pass) must be numerically indistinguishable from the historical
per-corner, per-kernel path — the ISSUE tolerance is 1e-10 max abs diff
on aerial images, and gradients reassociate only at the 1e-12 level.
"""

import numpy as np
import pytest

from repro.config import GridSpec, LithoConfig, OpticsConfig, ProcessConfig, ResistConfig
from repro.errors import OpticsError
from repro.litho.simulator import LithographySimulator
from repro.obs import Instrumentation
from repro.opc.objectives import (
    CompositeObjective,
    ImageDifferenceObjective,
    PVBandObjective,
)
from repro.optics.hopkins import (
    ForwardCache,
    accumulate_backprojection,
    backproject_fields,
    batched_field_stacks,
    field_stack,
)
from repro.optics.kernels import common_grid_shape
from repro.process.corners import ProcessCorner, nominal_corner

AERIAL_TOL = 1e-10  # ISSUE acceptance tolerance on aerial images
GRAD_RTOL = 1e-9  # gradients only reassociate floating-point sums


@pytest.fixture(scope="module")
def legacy_sim(tiny_config):
    """A tiny simulator pinned to the per-corner legacy path."""
    simulator = LithographySimulator(tiny_config, batch_forward=False)
    simulator.prewarm()
    return simulator


def random_mask(rng, shape):
    """A structured random mask: blocky features plus continuous noise."""
    mask = 0.3 * rng.random(shape)
    r0, c0 = rng.integers(8, shape[0] // 2, size=2)
    mask[r0 : r0 + 16, c0 : c0 + 16] += 0.6
    return np.clip(mask, 0.0, 1.0)


ASYMMETRIC_CORNERS = [
    ProcessCorner("fminus_dplus", 25.0, 1.02),
    ProcessCorner("nom", 0.0, 1.0),
    ProcessCorner("fminus_dminus", 25.0, 0.98),
    ProcessCorner("odd_focus", 12.5, 1.01),
]


class TestHopkinsBatching:
    """Unit-level equivalence of the batched hopkins primitives."""

    def test_batched_field_stacks_match_field_stack(self, tiny_sim, rng):
        mask = random_mask(rng, tiny_sim.grid.shape)
        kernel_sets = [tiny_sim.kernels_at(f) for f in (0.0, 25.0)]
        stacks = batched_field_stacks(ForwardCache(mask), kernel_sets)
        for kernels, batched in zip(kernel_sets, stacks):
            reference = field_stack(mask, kernels)
            assert np.max(np.abs(batched - reference)) <= AERIAL_TOL

    def test_accumulate_matches_backprojection_sum(self, tiny_sim, rng):
        mask = random_mask(rng, tiny_sim.grid.shape)
        groups = []
        reference = np.zeros(tiny_sim.grid.shape)
        for focus in (0.0, 25.0):
            kernels = tiny_sim.kernels_at(focus)
            weighted = rng.standard_normal(tiny_sim.grid.shape)[None] * field_stack(
                mask, kernels
            )
            groups.append((weighted, kernels))
            reference += backproject_fields(weighted, kernels)
        batched = accumulate_backprojection(groups)
        assert np.allclose(batched, reference, rtol=GRAD_RTOL, atol=1e-12)

    def test_single_set_degenerate_case(self, tiny_sim, rng):
        mask = random_mask(rng, tiny_sim.grid.shape)
        kernels = tiny_sim.kernels_at(0.0)
        (batched,) = batched_field_stacks(ForwardCache(mask), [kernels])
        assert np.max(np.abs(batched - field_stack(mask, kernels))) <= AERIAL_TOL

    def test_empty_kernel_sets(self, tiny_sim, rng):
        assert batched_field_stacks(ForwardCache(random_mask(rng, (64, 64))), []) == []
        with pytest.raises(OpticsError):
            accumulate_backprojection([])

    def test_mixed_grids_rejected(self, tiny_sim, sim):
        with pytest.raises(OpticsError):
            common_grid_shape([tiny_sim.kernels_at(0.0), sim.kernels_at(0.0)])


class TestSimulatorEquivalence:
    """simulate_all_corners / gradient_all_corners vs the legacy path."""

    def test_aerial_images_match_per_corner(self, tiny_sim, legacy_sim, rng):
        mask = random_mask(rng, tiny_sim.grid.shape)
        corners = tiny_sim.corners()
        batched = tiny_sim.simulate_all_corners(mask, corners)
        legacy = legacy_sim.simulate_all_corners(mask, corners)
        for b, ref in zip(batched, legacy):
            assert np.max(np.abs(b - ref)) <= AERIAL_TOL

    def test_asymmetric_corner_set(self, tiny_sim, rng):
        mask = random_mask(rng, tiny_sim.grid.shape)
        batched = tiny_sim.simulate_all_corners(mask, ASYMMETRIC_CORNERS)
        for corner, image in zip(ASYMMETRIC_CORNERS, batched):
            assert np.max(np.abs(image - tiny_sim.aerial(mask, corner))) <= AERIAL_TOL

    def test_single_corner_degenerate_case(self, tiny_sim, rng):
        mask = random_mask(rng, tiny_sim.grid.shape)
        corner = ProcessCorner("solo", 25.0, 0.97)
        (image,) = tiny_sim.simulate_all_corners(mask, [corner])
        assert np.max(np.abs(image - tiny_sim.aerial(mask, corner))) <= AERIAL_TOL

    def test_print_soft_matches(self, tiny_sim, legacy_sim, rng):
        mask = random_mask(rng, tiny_sim.grid.shape)
        for corner in tiny_sim.corners():
            batched = tiny_sim.context(mask).soft_image(corner)
            reference = legacy_sim.print_soft(mask, corner)
            assert np.max(np.abs(batched - reference)) <= AERIAL_TOL

    def test_pv_band_matches(self, tiny_sim, legacy_sim, rng):
        mask = random_mask(rng, tiny_sim.grid.shape)
        assert np.array_equal(tiny_sim.pv_band(mask), legacy_sim.pv_band(mask))
        assert tiny_sim.pv_band_area(mask) == legacy_sim.pv_band_area(mask)

    def test_gradient_all_corners_matches_per_corner(self, tiny_sim, rng):
        mask = random_mask(rng, tiny_sim.grid.shape)
        contributions = [
            (corner, rng.standard_normal(tiny_sim.grid.shape))
            for corner in ASYMMETRIC_CORNERS
        ]
        batched = tiny_sim.gradient_all_corners(mask, contributions, batched=True)
        ctx = tiny_sim.context(mask, batched=False)
        reference = sum(
            ctx.intensity_gradient_to_mask(df_di, corner)
            for corner, df_di in contributions
        )
        scale = np.max(np.abs(reference))
        assert np.allclose(batched, reference, rtol=GRAD_RTOL, atol=GRAD_RTOL * scale)

    def test_gradient_empty_contributions(self, tiny_sim):
        grad = tiny_sim.gradient_all_corners(np.zeros(tiny_sim.grid.shape), [])
        assert np.array_equal(grad, np.zeros(tiny_sim.grid.shape))


class TestContextEquivalence:
    """ForwardContext batched vs legacy mode over whole objectives."""

    def _target(self, tiny_sim):
        target = np.zeros(tiny_sim.grid.shape)
        target[24:40, 24:40] = 1.0
        return target

    def _composite(self, target):
        return CompositeObjective(
            [
                (100.0, ImageDifferenceObjective(target, gamma=4)),
                (1.0, PVBandObjective(target)),
            ]
        )

    def test_composite_value_and_gradient_match(self, tiny_sim, rng):
        target = self._target(tiny_sim)
        mask = np.clip(target + 0.1 * rng.standard_normal(target.shape), 0.05, 0.95)
        v_batched, g_batched = self._composite(target).value_and_gradient(
            tiny_sim.context(mask, batched=True)
        )
        v_legacy, g_legacy = self._composite(target).value_and_gradient(
            tiny_sim.context(mask, batched=False)
        )
        assert v_batched == pytest.approx(v_legacy, rel=1e-12)
        scale = np.max(np.abs(g_legacy))
        assert np.allclose(g_batched, g_legacy, rtol=GRAD_RTOL, atol=GRAD_RTOL * scale)

    def test_accumulate_matches_sequential_backprojection(self, tiny_sim, rng):
        mask = random_mask(rng, tiny_sim.grid.shape)
        contributions = [
            (corner, rng.standard_normal(tiny_sim.grid.shape))
            for corner in tiny_sim.corners()
        ]
        ctx = tiny_sim.context(mask, batched=True)
        legacy_ctx = tiny_sim.context(mask, batched=False)
        batched = ctx.accumulate_intensity_gradients(contributions)
        reference = legacy_ctx.accumulate_intensity_gradients(contributions)
        scale = np.max(np.abs(reference))
        assert np.allclose(batched, reference, rtol=GRAD_RTOL, atol=GRAD_RTOL * scale)


class TestFFTAccounting:
    """Exactly one fft2(M) per mask per iteration, observable end to end."""

    def _instrumented_sim(self, tiny_config):
        simulator = LithographySimulator(tiny_config, obs=Instrumentation.collecting())
        simulator.prewarm()
        return simulator

    def test_simulate_all_corners_one_mask_fft(self, tiny_config, rng):
        sim = self._instrumented_sim(tiny_config)
        mask = random_mask(rng, sim.grid.shape)
        sim.simulate_all_corners(mask)
        assert sim.obs.metrics.counter("forward_mask_ffts").value == 1
        assert sim.obs.metrics.counter("forward_fft_reuse").value >= 1

    def test_full_objective_evaluation_one_mask_fft(self, tiny_config, rng):
        """A whole composite iteration (values + gradients at the nominal
        condition and all four corners) shares a single mask FFT."""
        sim = self._instrumented_sim(tiny_config)
        target = np.zeros(sim.grid.shape)
        target[24:40, 24:40] = 1.0
        mask = np.clip(target + 0.1 * rng.standard_normal(target.shape), 0.05, 0.95)
        objective = CompositeObjective(
            [
                (100.0, ImageDifferenceObjective(target, gamma=4)),
                (1.0, PVBandObjective(target)),
            ]
        )
        ctx = sim.context(mask)
        objective.value_and_gradient(ctx)
        info = ctx.cache_info()
        assert info.mask_ffts == 1
        assert info.reuses >= 1
        assert sim.obs.metrics.counter("forward_mask_ffts").value == 1
        assert sim.obs.metrics.counter("forward_fft_reuse").value == info.reuses

    def test_forward_batched_span_recorded(self, tiny_config, rng):
        sim = self._instrumented_sim(tiny_config)
        sim.simulate_all_corners(random_mask(rng, sim.grid.shape))
        assert "forward.batched" in sim.obs.tracer.stats()

    def test_backproject_batched_span_recorded(self, tiny_config, rng):
        sim = self._instrumented_sim(tiny_config)
        mask = random_mask(rng, sim.grid.shape)
        sim.gradient_all_corners(
            mask, [(nominal_corner(), np.ones(sim.grid.shape))]
        )
        assert "backproject.batched" in sim.obs.tracer.stats()

    def test_distinct_masks_get_distinct_ffts(self, tiny_config, rng):
        sim = self._instrumented_sim(tiny_config)
        sim.simulate_all_corners(random_mask(rng, sim.grid.shape))
        sim.simulate_all_corners(random_mask(rng, sim.grid.shape))
        assert sim.obs.metrics.counter("forward_mask_ffts").value == 2


class TestKernelCacheInfoOrdering:
    """Satellite: cache snapshots must compare deterministically."""

    def test_defocus_values_sorted_regardless_of_build_order(self, tiny_config):
        sim = LithographySimulator(tiny_config)
        sim.kernels_at(25.0)  # deliberately built out of order
        sim.kernels_at(0.0)
        assert sim.cache_info().defocus_values_nm == (0.0, 25.0)

    def test_two_build_orders_give_equal_snapshots(self, tiny_config):
        forward = LithographySimulator(tiny_config)
        forward.kernels_at(0.0)
        forward.kernels_at(25.0)
        backward = LithographySimulator(tiny_config)
        backward.kernels_at(25.0)
        backward.kernels_at(0.0)
        assert (
            forward.cache_info().defocus_values_nm
            == backward.cache_info().defocus_values_nm
        )
