"""Equivalence and accounting tests for the batched multi-corner engine.

The batched forward path (one shared ``fft2(M)``, one vectorized
``ifft2`` across all (focus x kernel) spectra, one accumulated adjoint
pass) must be numerically indistinguishable from the historical
per-corner, per-kernel path — the ISSUE tolerance is 1e-10 max abs diff
on aerial images, and gradients reassociate only at the 1e-12 level.

The batched-vs-legacy comparisons are parametrized over every
registered array backend (``backend`` fixture): the legacy side always
runs on the numpy float64 reference, so the float64 tolerances above
apply to float64 backends while single-precision backends are held to
the float32 forward gate instead.
"""

import numpy as np
import pytest

from repro.config import GridSpec, LithoConfig, OpticsConfig, ProcessConfig, ResistConfig
from repro.errors import OpticsError
from repro.litho.simulator import LithographySimulator
from repro.obs import Instrumentation
from repro.opc.objectives import (
    CompositeObjective,
    ImageDifferenceObjective,
    PVBandObjective,
)
from repro.optics.hopkins import (
    ForwardCache,
    accumulate_backprojection,
    backproject_fields,
    batched_field_stacks,
    field_stack,
    weight_fields,
)
from repro.optics.kernels import common_grid_shape
from repro.process.corners import ProcessCorner, nominal_corner

AERIAL_TOL = 1e-10  # ISSUE acceptance tolerance on aerial images
GRAD_RTOL = 1e-9  # gradients only reassociate floating-point sums


def aerial_atol(backend, scale=1.0):
    """Max-abs-diff floor vs a float64 reference for this backend."""
    if backend.precision == "float64":
        return AERIAL_TOL
    return backend.equivalence_rtol * scale


def grad_tols(backend, scale=1.0):
    """(rtol, atol) for gradient comparisons vs a float64 reference."""
    if backend.precision == "float64":
        return GRAD_RTOL, GRAD_RTOL * scale
    return backend.equivalence_rtol, backend.equivalence_rtol * scale


@pytest.fixture(scope="module")
def legacy_sim(tiny_config):
    """A tiny simulator pinned to the per-corner legacy path (numpy f64)."""
    simulator = LithographySimulator(tiny_config, batch_forward=False, backend="numpy")
    simulator.prewarm()
    return simulator


def random_mask(rng, shape):
    """A structured random mask: blocky features plus continuous noise."""
    mask = 0.3 * rng.random(shape)
    r0, c0 = rng.integers(8, shape[0] // 2, size=2)
    mask[r0 : r0 + 16, c0 : c0 + 16] += 0.6
    return np.clip(mask, 0.0, 1.0)


ASYMMETRIC_CORNERS = [
    ProcessCorner("fminus_dplus", 25.0, 1.02),
    ProcessCorner("nom", 0.0, 1.0),
    ProcessCorner("fminus_dminus", 25.0, 0.98),
    ProcessCorner("odd_focus", 12.5, 1.01),
]


class TestHopkinsBatching:
    """Unit-level equivalence of the batched hopkins primitives."""

    def test_batched_field_stacks_match_field_stack(self, tiny_sim, rng, backend):
        mask = random_mask(rng, tiny_sim.grid.shape)
        kernel_sets = [tiny_sim.kernels_at(f) for f in (0.0, 25.0)]
        stacks = batched_field_stacks(ForwardCache(mask, xp=backend), kernel_sets)
        for kernels, batched in zip(kernel_sets, stacks):
            reference = field_stack(mask, kernels, xp="numpy")
            diff = np.max(np.abs(backend.to_numpy(batched) - reference))
            assert diff <= aerial_atol(backend, np.max(np.abs(reference)))

    def test_accumulate_matches_backprojection_sum(self, tiny_sim, rng, backend):
        mask = random_mask(rng, tiny_sim.grid.shape)
        groups = []
        reference = np.zeros(tiny_sim.grid.shape)
        for focus in (0.0, 25.0):
            kernels = tiny_sim.kernels_at(focus)
            df_di = rng.standard_normal(tiny_sim.grid.shape)
            groups.append(
                (weight_fields(df_di, field_stack(mask, kernels, xp=backend), backend),
                 kernels)
            )
            reference += backproject_fields(
                weight_fields(
                    df_di, field_stack(mask, kernels, xp="numpy"), "numpy"
                ),
                kernels,
                xp="numpy",
            )
        batched = accumulate_backprojection(groups, xp=backend)
        rtol, atol = grad_tols(backend, np.max(np.abs(reference)))
        assert np.allclose(batched, reference, rtol=rtol, atol=max(atol, 1e-12))

    def test_single_set_degenerate_case(self, tiny_sim, rng, backend):
        mask = random_mask(rng, tiny_sim.grid.shape)
        kernels = tiny_sim.kernels_at(0.0)
        (batched,) = batched_field_stacks(ForwardCache(mask, xp=backend), [kernels])
        reference = field_stack(mask, kernels, xp="numpy")
        diff = np.max(np.abs(backend.to_numpy(batched) - reference))
        assert diff <= aerial_atol(backend, np.max(np.abs(reference)))

    def test_empty_kernel_sets(self, tiny_sim, rng):
        assert batched_field_stacks(ForwardCache(random_mask(rng, (64, 64))), []) == []
        with pytest.raises(OpticsError):
            accumulate_backprojection([])

    def test_mixed_grids_rejected(self, tiny_sim, sim):
        with pytest.raises(OpticsError):
            common_grid_shape([tiny_sim.kernels_at(0.0), sim.kernels_at(0.0)])


class TestSimulatorEquivalence:
    """simulate_all_corners / gradient_all_corners vs the legacy path.

    The batched side runs on the parametrized backend; the legacy side
    stays on the numpy float64 reference, so this doubles as the
    cross-backend forward-model equivalence battery."""

    def test_aerial_images_match_per_corner(self, backend_tiny_sim, legacy_sim,
                                            backend, rng):
        mask = random_mask(rng, backend_tiny_sim.grid.shape)
        corners = backend_tiny_sim.corners()
        batched = backend_tiny_sim.simulate_all_corners(mask, corners)
        legacy = legacy_sim.simulate_all_corners(mask, corners)
        for b, ref in zip(batched, legacy):
            diff = np.max(np.abs(b - ref))
            assert diff <= aerial_atol(backend, np.max(np.abs(ref)))

    def test_asymmetric_corner_set(self, backend_tiny_sim, backend, rng):
        mask = random_mask(rng, backend_tiny_sim.grid.shape)
        batched = backend_tiny_sim.simulate_all_corners(mask, ASYMMETRIC_CORNERS)
        for corner, image in zip(ASYMMETRIC_CORNERS, batched):
            reference = backend_tiny_sim.aerial(mask, corner)
            diff = np.max(np.abs(image - reference))
            # Same backend on both sides: float64-tight for f64, float32
            # reassociation noise for single precision.
            assert diff <= aerial_atol(backend, np.max(np.abs(reference)))

    def test_single_corner_degenerate_case(self, backend_tiny_sim, backend, rng):
        mask = random_mask(rng, backend_tiny_sim.grid.shape)
        corner = ProcessCorner("solo", 25.0, 0.97)
        (image,) = backend_tiny_sim.simulate_all_corners(mask, [corner])
        reference = backend_tiny_sim.aerial(mask, corner)
        diff = np.max(np.abs(image - reference))
        assert diff <= aerial_atol(backend, np.max(np.abs(reference)))

    def test_print_soft_matches(self, backend_tiny_sim, legacy_sim, backend, rng):
        mask = random_mask(rng, backend_tiny_sim.grid.shape)
        # The resist sigmoid amplifies aerial-image error by at most
        # steepness/4; fold that into the float32 floor.
        slope = backend_tiny_sim.config.resist.theta_z / 4.0
        for corner in backend_tiny_sim.corners():
            batched = backend_tiny_sim.context(mask).soft_image(corner)
            reference = legacy_sim.print_soft(mask, corner)
            tol = aerial_atol(backend, max(1.0, slope))
            assert np.max(np.abs(batched - reference)) <= tol

    def test_pv_band_matches(self, backend_tiny_sim, legacy_sim, backend, rng):
        mask = random_mask(rng, backend_tiny_sim.grid.shape)
        band = backend_tiny_sim.pv_band(mask)
        reference = legacy_sim.pv_band(mask)
        if backend.is_reference:
            assert np.array_equal(band, reference)
            assert backend_tiny_sim.pv_band_area(mask) == legacy_sim.pv_band_area(mask)
        else:
            # Binarization can flip pixels whose soft image sits within
            # the backend's noise floor of the threshold; demand the
            # flips stay negligible rather than exactly zero.
            assert np.mean(band != reference) <= 1e-3

    def test_gradient_all_corners_matches_per_corner(self, backend_tiny_sim,
                                                     backend, rng):
        mask = random_mask(rng, backend_tiny_sim.grid.shape)
        contributions = [
            (corner, rng.standard_normal(backend_tiny_sim.grid.shape))
            for corner in ASYMMETRIC_CORNERS
        ]
        batched = backend_tiny_sim.gradient_all_corners(
            mask, contributions, batched=True
        )
        ctx = backend_tiny_sim.context(mask, batched=False)
        reference = sum(
            ctx.intensity_gradient_to_mask(df_di, corner)
            for corner, df_di in contributions
        )
        rtol, atol = grad_tols(backend, np.max(np.abs(reference)))
        assert np.allclose(batched, reference, rtol=rtol, atol=atol)

    def test_gradient_matches_reference_backend(self, backend_tiny_sim, legacy_sim,
                                                backend, rng):
        mask = random_mask(rng, backend_tiny_sim.grid.shape)
        contributions = [
            (corner, rng.standard_normal(backend_tiny_sim.grid.shape))
            for corner in ASYMMETRIC_CORNERS
        ]
        batched = backend_tiny_sim.gradient_all_corners(mask, contributions)
        reference = legacy_sim.gradient_all_corners(mask, contributions)
        rtol, atol = grad_tols(backend, np.max(np.abs(reference)))
        assert np.allclose(batched, reference, rtol=rtol, atol=atol)

    def test_gradient_empty_contributions(self, backend_tiny_sim):
        grad = backend_tiny_sim.gradient_all_corners(
            np.zeros(backend_tiny_sim.grid.shape), []
        )
        assert np.array_equal(grad, np.zeros(backend_tiny_sim.grid.shape))


class TestContextEquivalence:
    """ForwardContext batched vs legacy mode over whole objectives."""

    def _target(self, tiny_sim):
        target = np.zeros(tiny_sim.grid.shape)
        target[24:40, 24:40] = 1.0
        return target

    def _composite(self, target):
        return CompositeObjective(
            [
                (100.0, ImageDifferenceObjective(target, gamma=4)),
                (1.0, PVBandObjective(target)),
            ]
        )

    def test_composite_value_and_gradient_match(self, tiny_sim, rng):
        target = self._target(tiny_sim)
        mask = np.clip(target + 0.1 * rng.standard_normal(target.shape), 0.05, 0.95)
        v_batched, g_batched = self._composite(target).value_and_gradient(
            tiny_sim.context(mask, batched=True)
        )
        v_legacy, g_legacy = self._composite(target).value_and_gradient(
            tiny_sim.context(mask, batched=False)
        )
        assert v_batched == pytest.approx(v_legacy, rel=1e-12)
        scale = np.max(np.abs(g_legacy))
        assert np.allclose(g_batched, g_legacy, rtol=GRAD_RTOL, atol=GRAD_RTOL * scale)

    def test_accumulate_matches_sequential_backprojection(self, tiny_sim, rng):
        mask = random_mask(rng, tiny_sim.grid.shape)
        contributions = [
            (corner, rng.standard_normal(tiny_sim.grid.shape))
            for corner in tiny_sim.corners()
        ]
        ctx = tiny_sim.context(mask, batched=True)
        legacy_ctx = tiny_sim.context(mask, batched=False)
        batched = ctx.accumulate_intensity_gradients(contributions)
        reference = legacy_ctx.accumulate_intensity_gradients(contributions)
        scale = np.max(np.abs(reference))
        assert np.allclose(batched, reference, rtol=GRAD_RTOL, atol=GRAD_RTOL * scale)


class TestFFTAccounting:
    """Exactly one fft2(M) per mask per iteration, observable end to end."""

    def _instrumented_sim(self, tiny_config):
        simulator = LithographySimulator(tiny_config, obs=Instrumentation.collecting())
        simulator.prewarm()
        return simulator

    def test_simulate_all_corners_one_mask_fft(self, tiny_config, rng):
        sim = self._instrumented_sim(tiny_config)
        mask = random_mask(rng, sim.grid.shape)
        sim.simulate_all_corners(mask)
        assert sim.obs.metrics.counter("forward_mask_ffts").value == 1
        assert sim.obs.metrics.counter("forward_fft_reuse").value >= 1

    def test_full_objective_evaluation_one_mask_fft(self, tiny_config, rng):
        """A whole composite iteration (values + gradients at the nominal
        condition and all four corners) shares a single mask FFT."""
        sim = self._instrumented_sim(tiny_config)
        target = np.zeros(sim.grid.shape)
        target[24:40, 24:40] = 1.0
        mask = np.clip(target + 0.1 * rng.standard_normal(target.shape), 0.05, 0.95)
        objective = CompositeObjective(
            [
                (100.0, ImageDifferenceObjective(target, gamma=4)),
                (1.0, PVBandObjective(target)),
            ]
        )
        ctx = sim.context(mask)
        objective.value_and_gradient(ctx)
        info = ctx.cache_info()
        assert info.mask_ffts == 1
        assert info.reuses >= 1
        assert sim.obs.metrics.counter("forward_mask_ffts").value == 1
        assert sim.obs.metrics.counter("forward_fft_reuse").value == info.reuses

    def test_forward_batched_span_recorded(self, tiny_config, rng):
        sim = self._instrumented_sim(tiny_config)
        sim.simulate_all_corners(random_mask(rng, sim.grid.shape))
        assert "forward.batched" in sim.obs.tracer.stats()

    def test_backproject_batched_span_recorded(self, tiny_config, rng):
        sim = self._instrumented_sim(tiny_config)
        mask = random_mask(rng, sim.grid.shape)
        sim.gradient_all_corners(
            mask, [(nominal_corner(), np.ones(sim.grid.shape))]
        )
        assert "backproject.batched" in sim.obs.tracer.stats()

    def test_distinct_masks_get_distinct_ffts(self, tiny_config, rng):
        sim = self._instrumented_sim(tiny_config)
        sim.simulate_all_corners(random_mask(rng, sim.grid.shape))
        sim.simulate_all_corners(random_mask(rng, sim.grid.shape))
        assert sim.obs.metrics.counter("forward_mask_ffts").value == 2


class TestKernelCacheInfoOrdering:
    """Satellite: cache snapshots must compare deterministically."""

    def test_defocus_values_sorted_regardless_of_build_order(self, tiny_config):
        sim = LithographySimulator(tiny_config)
        sim.kernels_at(25.0)  # deliberately built out of order
        sim.kernels_at(0.0)
        assert sim.cache_info().defocus_values_nm == (0.0, 25.0)

    def test_two_build_orders_give_equal_snapshots(self, tiny_config):
        forward = LithographySimulator(tiny_config)
        forward.kernels_at(0.0)
        forward.kernels_at(25.0)
        backward = LithographySimulator(tiny_config)
        backward.kernels_at(25.0)
        backward.kernels_at(0.0)
        assert (
            forward.cache_info().defocus_values_nm
            == backward.cache_info().defocus_values_nm
        )
