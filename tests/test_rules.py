"""Unit tests for repro.mask.rules (edge bias, corner serifs)."""

import numpy as np
import pytest

from repro.config import GridSpec
from repro.errors import GridError
from repro.geometry.layout import Layout
from repro.geometry.polygon import Polygon
from repro.geometry.raster import rasterize_layout
from repro.geometry.rect import Rect
from repro.mask.rules import add_corner_serifs, apply_edge_bias, rule_based_opc

GRID = GridSpec(shape=(128, 128), pixel_nm=1.0)


def square_layout(lo=40, hi=80):
    return Layout.from_rects("sq", [Rect(lo, lo, hi, hi)], clip=Rect(0, 0, 128, 128))


class TestEdgeBias:
    def test_positive_bias_grows(self):
        target = rasterize_layout(square_layout(), GRID).astype(float)
        grown = apply_edge_bias(target, 3.0, GRID)
        assert grown.sum() == 46 * 46  # 40x40 grown by 3 per side

    def test_negative_bias_shrinks(self):
        target = rasterize_layout(square_layout(), GRID).astype(float)
        shrunk = apply_edge_bias(target, -3.0, GRID)
        assert shrunk.sum() == 34 * 34

    def test_subpixel_bias_noop(self):
        grid = GridSpec(shape=(32, 32), pixel_nm=4.0)
        target = np.zeros(grid.shape)
        target[8:16, 8:16] = 1.0
        assert np.array_equal(apply_edge_bias(target, 1.0, grid), target)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(GridError):
            apply_edge_bias(np.zeros((16, 16)), 2.0, GRID)


class TestSerifs:
    def test_rect_gets_four_serifs(self):
        layout = square_layout()
        target = rasterize_layout(layout, GRID).astype(float)
        with_serifs = add_corner_serifs(layout, target, GRID, serif_nm=8.0)
        added = with_serifs.sum() - target.sum()
        # Each serif is an 8x8 square centred on a corner; 3/4 of it falls
        # outside the pattern (48 px per corner).
        assert added == 4 * 48

    def test_concave_corner_skipped(self):
        # L-shape has 5 convex and 1 concave corner.
        poly = Polygon([(30, 30), (90, 30), (90, 90), (70, 90), (70, 50), (30, 50)])
        layout = Layout("l", clip=Rect(0, 0, 128, 128))
        layout.add(poly)
        target = rasterize_layout(layout, GRID).astype(float)
        with_serifs = add_corner_serifs(layout, target, GRID, serif_nm=8.0)
        added = with_serifs.sum() - target.sum()
        assert added == 5 * 48  # concave corner at (70, 50) gets nothing

    def test_serifs_clipped_at_grid_border(self):
        layout = Layout.from_rects("edge", [Rect(0, 0, 40, 40)], clip=Rect(0, 0, 128, 128))
        target = rasterize_layout(layout, GRID).astype(float)
        out = add_corner_serifs(layout, target, GRID, serif_nm=8.0)
        assert out.shape == GRID.shape  # no exception, stays in bounds


class TestRuleBasedOPC:
    def test_combined_pipeline(self):
        layout = square_layout()
        out = rule_based_opc(layout, GRID, bias_nm=2.0, serif_nm=6.0)
        target = rasterize_layout(layout, GRID)
        assert out.sum() > target.sum()
        # Original pattern fully covered.
        assert np.all(out[target] == 1.0)

    def test_no_options_is_plain_raster(self):
        layout = square_layout()
        out = rule_based_opc(layout, GRID)
        assert np.array_equal(out, rasterize_layout(layout, GRID).astype(float))
