"""Tests for the Adam descent mode."""

import numpy as np
import pytest

from repro.config import OptimizerConfig
from repro.errors import OptimizationError
from repro.geometry.layout import Layout
from repro.geometry.raster import rasterize_layout
from repro.geometry.rect import Rect
from repro.opc.objectives import ImageDifferenceObjective
from repro.opc.optimizer import GradientDescentOptimizer


@pytest.fixture()
def setup(tiny_sim):
    layout = Layout.from_rects("sq", [Rect(384, 384, 640, 640)])
    target = rasterize_layout(layout, tiny_sim.grid).astype(float)
    return target, ImageDifferenceObjective(target, gamma=2)


class TestAdamConfig:
    def test_mode_validated(self):
        with pytest.raises(OptimizationError):
            OptimizerConfig(descent_mode="sgd")

    def test_betas_validated(self):
        with pytest.raises(OptimizationError):
            OptimizerConfig(adam_beta1=1.0)
        with pytest.raises(OptimizationError):
            OptimizerConfig(adam_beta2=-0.1)

    def test_default_is_normalized(self):
        assert OptimizerConfig().descent_mode == "normalized"


class TestAdamDescent:
    def _run(self, tiny_sim, objective, target, **kw):
        defaults = dict(
            max_iterations=10,
            step_size=1.0,
            use_jump=False,
            descent_mode="adam",
            use_line_search=True,
        )
        defaults.update(kw)
        config = OptimizerConfig(**defaults)
        return GradientDescentOptimizer(tiny_sim, objective, config).run(target)

    def test_objective_decreases(self, tiny_sim, setup):
        target, objective = setup
        result = self._run(tiny_sim, objective, target)
        objectives = result.history.objectives
        assert objectives[-1] < objectives[0]

    def test_with_line_search_mostly_monotone(self, tiny_sim, setup):
        # The line search accepts its smallest step unconditionally after
        # the backtracking budget, so strict monotonicity is not
        # guaranteed — but increases must be rare.
        target, objective = setup
        result = self._run(tiny_sim, objective, target)
        objectives = result.history.objectives
        increases = sum(1 for a, b in zip(objectives, objectives[1:]) if b > a + 1e-9)
        assert increases <= 2

    def test_mask_stays_in_range(self, tiny_sim, setup):
        target, objective = setup
        result = self._run(tiny_sim, objective, target)
        assert result.mask.min() >= 0.0
        assert result.mask.max() <= 1.0

    def test_reaches_comparable_quality(self, tiny_sim, setup):
        target, objective = setup
        adam = self._run(tiny_sim, objective, target, max_iterations=15)
        normalized = GradientDescentOptimizer(
            tiny_sim,
            objective,
            OptimizerConfig(
                max_iterations=15, step_size=8.0, use_jump=False,
                descent_mode="normalized",
            ),
        ).run(target)
        # Within 2x of each other after equal iterations: both work.
        a = adam.history.objectives[-1]
        n = normalized.history.objectives[-1]
        assert a <= 2.0 * max(n, 1e-9)

    def test_solver_integration(self, reduced_config, sim):
        from repro.opc.mosaic import MosaicFast
        from repro.workloads.iccad2013 import load_benchmark

        cfg = OptimizerConfig(
            descent_mode="adam", step_size=1.0, use_line_search=True, max_iterations=30
        )
        result = MosaicFast(reduced_config, optimizer_config=cfg, simulator=sim).solve(
            load_benchmark("B1")
        )
        assert result.score.epe_violations == 0
        assert result.score.shape_violations == 0
