"""Tests for configuration dataclasses and their validation."""

import pytest

from repro.config import (
    GridSpec,
    LithoConfig,
    OpticsConfig,
    OptimizerConfig,
    ProcessConfig,
    ResistConfig,
)
from repro.errors import OpticsError, OptimizationError, ProcessError


class TestGridSpec:
    def test_paper_grid(self):
        g = GridSpec.paper()
        assert g.shape == (1024, 1024)
        assert g.pixel_nm == 1.0
        assert g.extent_nm == (1024.0, 1024.0)

    def test_reduced_same_extent(self):
        assert GridSpec.reduced().extent_nm == GridSpec.paper().extent_nm

    def test_nm_to_px(self):
        g = GridSpec.reduced()  # 4 nm/px
        assert g.nm_to_px(40) == 10
        assert g.nm_to_px(41) == 10
        assert g.nm_to_px(43) == 11

    @pytest.mark.parametrize("bad", [((4, 4), 1.0), ((64, 64), 0.0), ((64, 64), -1.0)])
    def test_invalid_rejected(self, bad):
        shape, px = bad
        with pytest.raises(OpticsError):
            GridSpec(shape=shape, pixel_nm=px)

    def test_for_clip_square(self):
        g = GridSpec.for_clip(1024.0, 1024.0, 4.0)
        assert g == GridSpec.reduced()

    def test_for_clip_rectangular(self):
        g = GridSpec.for_clip(2048.0, 1024.0, 16.0)
        assert g.shape == (64, 128)  # (rows, cols) = (height, width)
        assert g.extent_nm == (1024.0, 2048.0)

    def test_for_clip_rejects_fractional_pixels(self):
        with pytest.raises(OpticsError):
            GridSpec.for_clip(1000.0, 1024.0, 16.0)


class TestOpticsConfig:
    def test_paper_values(self):
        o = OpticsConfig.paper()
        assert o.wavelength_nm == 193.0
        assert o.numerical_aperture == 1.35
        assert o.num_kernels == 24

    def test_cutoff_frequency(self):
        o = OpticsConfig(sigma_outer=0.9)
        assert o.cutoff_frequency == pytest.approx(1.35 * 1.9 / 193.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"wavelength_nm": 0},
            {"numerical_aperture": -1},
            {"sigma_inner": 0.9, "sigma_outer": 0.6},
            {"sigma_outer": 1.2},
            {"num_kernels": 0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(OpticsError):
            OpticsConfig(**kwargs)


class TestOptimizerConfig:
    def test_paper_defaults(self):
        cfg = OptimizerConfig.paper()
        assert cfg.gradient_rms_tol == 1e-5
        assert cfg.gamma == 4.0

    def test_with_weights(self):
        cfg = OptimizerConfig().with_weights(alpha=9.0, beta=2.0)
        assert (cfg.alpha, cfg.beta) == (9.0, 2.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_iterations": -1},
            {"step_size": 0},
            {"theta_m": -1},
            {"alpha": -0.5},
            {"gamma": 1},
            {"jump_period": 0},
            {"line_search_shrink": 1.0},
            {"line_search_max_steps": 0},
            {"descent_mode": "sgd"},
            {"adam_beta1": 1.0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(OptimizationError):
            OptimizerConfig(**kwargs)

    def test_zero_iterations_allowed(self):
        # max_iterations=0 means "evaluate the seed only" — the optimizer
        # loop is skipped but the final evaluation still runs.
        assert OptimizerConfig(max_iterations=0).max_iterations == 0

    def test_jump_period_never_divides_by_zero(self):
        # Regression: jump_period=0 used to slip through to
        # `iteration % cfg.jump_period` and crash with ZeroDivisionError.
        with pytest.raises(OptimizationError, match="jump_period"):
            OptimizerConfig(jump_period=0)


class TestLithoConfig:
    def test_paper_bundle(self):
        cfg = LithoConfig.paper()
        assert cfg.grid.shape == (1024, 1024)
        assert cfg.optics.num_kernels == 24

    def test_reduced_bundle(self):
        cfg = LithoConfig.reduced()
        assert cfg.grid.shape == (256, 256)
        assert cfg.optics.num_kernels == 8
        # Same physics otherwise.
        assert cfg.optics.wavelength_nm == 193.0
        assert cfg.process.defocus_range_nm == 25.0
