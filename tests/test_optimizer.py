"""Unit tests for repro.opc.optimizer (the Alg. 1 engine)."""

import numpy as np
import pytest

from repro.config import OptimizerConfig
from repro.errors import OptimizationError
from repro.geometry.layout import Layout
from repro.geometry.raster import rasterize_layout
from repro.geometry.rect import Rect
from repro.opc.objectives import ImageDifferenceObjective
from repro.opc.objectives.base import Objective
from repro.opc.optimizer import GradientDescentOptimizer
from repro.opc.state import ForwardContext


@pytest.fixture()
def setup(tiny_sim):
    layout = Layout.from_rects("sq", [Rect(384, 384, 640, 640)])
    target = rasterize_layout(layout, tiny_sim.grid).astype(float)
    return target, ImageDifferenceObjective(target, gamma=2)


def run(tiny_sim, objective, target, **config_kwargs):
    defaults = dict(max_iterations=8, step_size=8.0, use_jump=False)
    defaults.update(config_kwargs)
    config = OptimizerConfig(**defaults)
    optimizer = GradientDescentOptimizer(tiny_sim, objective, config)
    return optimizer.run(target)


class TestDescent:
    def test_objective_decreases(self, tiny_sim, setup):
        target, objective = setup
        result = run(tiny_sim, objective, target)
        objectives = result.history.objectives
        assert objectives[-1] < objectives[0]

    def test_history_length(self, tiny_sim, setup):
        target, objective = setup
        result = run(tiny_sim, objective, target, max_iterations=5)
        assert len(result.history) == 5
        assert result.iterations == 5

    def test_binary_mask_is_binary(self, tiny_sim, setup):
        target, objective = setup
        result = run(tiny_sim, objective, target)
        assert set(np.unique(result.binary_mask)) <= {0.0, 1.0}

    def test_continuous_mask_in_range(self, tiny_sim, setup):
        target, objective = setup
        result = run(tiny_sim, objective, target)
        assert result.mask.min() >= 0.0
        assert result.mask.max() <= 1.0

    def test_wrong_initial_shape_rejected(self, tiny_sim, setup):
        _, objective = setup
        optimizer = GradientDescentOptimizer(tiny_sim, objective, OptimizerConfig())
        with pytest.raises(OptimizationError):
            optimizer.run(np.zeros((8, 8)))


class TestKeepBest:
    def test_best_not_worse_than_final(self, tiny_sim, setup):
        target, objective = setup
        result = run(tiny_sim, objective, target, keep_best=True, max_iterations=10)
        best_value = objective.value(ForwardContext(result.mask, tiny_sim))
        for record in result.history:
            assert best_value <= record.objective + 1e-9

    def test_best_iteration_recorded(self, tiny_sim, setup):
        target, objective = setup
        result = run(tiny_sim, objective, target, keep_best=True)
        assert 0 <= result.best_iteration <= result.iterations


class TestConvergence:
    def test_converges_on_flat_objective(self, tiny_sim):
        class Flat(Objective):
            def value_and_gradient(self, ctx):
                return 0.0, np.zeros_like(ctx.mask)

        config = OptimizerConfig(max_iterations=50)
        optimizer = GradientDescentOptimizer(tiny_sim, Flat(), config)
        result = optimizer.run(np.full(tiny_sim.grid.shape, 0.5))
        assert result.converged
        assert result.iterations == 1

    def test_non_finite_gradient_raises(self, tiny_sim):
        class Broken(Objective):
            def value_and_gradient(self, ctx):
                g = np.zeros_like(ctx.mask)
                g[0, 0] = np.nan
                return 1.0, g

        optimizer = GradientDescentOptimizer(tiny_sim, Broken(), OptimizerConfig())
        with pytest.raises(OptimizationError):
            optimizer.run(np.full(tiny_sim.grid.shape, 0.5))


class TestJump:
    def test_jump_boosts_step_periodically(self, tiny_sim, setup):
        target, objective = setup
        result = run(
            tiny_sim, objective, target,
            use_jump=True, jump_period=3, jump_factor=5.0, step_size=2.0,
            max_iterations=7,
        )
        steps = result.history.series("step_size")
        assert steps[0] == 2.0
        assert steps[3] == 10.0
        assert steps[6] == 10.0
        assert steps[4] == 2.0

    def test_no_jump_constant_steps(self, tiny_sim, setup):
        target, objective = setup
        result = run(tiny_sim, objective, target, use_jump=False, max_iterations=6)
        assert set(result.history.series("step_size")) == {8.0}


class TestCallback:
    def test_callback_invoked_each_iteration(self, tiny_sim, setup):
        target, objective = setup
        seen = []

        def callback(iteration, mask, record):
            seen.append(iteration)
            return record

        config = OptimizerConfig(max_iterations=4, use_jump=False)
        optimizer = GradientDescentOptimizer(tiny_sim, objective, config, callback)
        optimizer.run(target)
        assert seen == [0, 1, 2, 3]

    def test_callback_can_annotate_record(self, tiny_sim, setup):
        from dataclasses import replace

        target, objective = setup

        def callback(iteration, mask, record):
            return replace(record, epe_violations=iteration)

        config = OptimizerConfig(max_iterations=3, use_jump=False)
        optimizer = GradientDescentOptimizer(tiny_sim, objective, config, callback)
        result = optimizer.run(target)
        assert result.history.series("epe_violations") == [0, 1, 2]
