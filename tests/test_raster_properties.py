"""Property tests: rasterization agrees with exact polygon area for
grid-aligned staircase polygons of any shape."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.config import GridSpec
from repro.geometry.polygon import Polygon
from repro.geometry.raster import rasterize_polygon

GRID = GridSpec(shape=(96, 96), pixel_nm=1.0)


@st.composite
def staircase_polygons(draw):
    """A random y-monotone staircase: columns of varying height above y=0.

    Vertices trace the top profile right-to-left after walking the base,
    producing a valid rectilinear polygon for any height sequence.
    """
    num_cols = draw(st.integers(min_value=2, max_value=8))
    widths = draw(
        st.lists(
            st.integers(min_value=2, max_value=8),
            min_size=num_cols, max_size=num_cols,
        )
    )
    heights = draw(
        st.lists(
            st.integers(min_value=1, max_value=30),
            min_size=num_cols, max_size=num_cols,
        )
    )
    x0, y0 = 4, 4
    # Base: left to right along y = y0.
    points = [(x0, y0)]
    x = x0
    for w in widths:
        x += w
    points.append((x, y0))
    # Top profile: right to left.
    for w, h in zip(reversed(widths), reversed(heights)):
        points.append((x, y0 + h))
        x -= w
        points.append((x, y0 + h))
    return Polygon(points), widths, heights


class TestStaircaseRaster:
    @settings(max_examples=60, deadline=None)
    @given(staircase_polygons())
    def test_raster_matches_exact_area(self, data):
        poly, widths, heights = data
        image = rasterize_polygon(poly, GRID)
        expected = sum(w * h for w, h in zip(widths, heights))
        assert image.sum() == expected
        assert image.sum() == poly.area

    @settings(max_examples=30, deadline=None)
    @given(staircase_polygons())
    def test_raster_inside_bbox(self, data):
        poly, _, _ = data
        image = rasterize_polygon(poly, GRID)
        ys, xs = np.nonzero(image)
        if len(ys):
            bbox = poly.bbox
            assert xs.min() >= bbox.x0
            assert xs.max() < bbox.x1
            assert ys.min() >= bbox.y0
            assert ys.max() < bbox.y1

    @settings(max_examples=30, deadline=None)
    @given(staircase_polygons())
    def test_edges_consistent_with_raster_boundary(self, data):
        """Perimeter from edge extraction equals the raster's boundary
        transitions (valid for 1 nm/px grid-aligned polygons)."""
        from repro.geometry.edges import extract_edges
        from repro.metrics.complexity import edge_length_nm

        poly, _, _ = data
        image = rasterize_polygon(poly, GRID)
        perimeter_exact = sum(e.length for e in extract_edges(poly))
        perimeter_raster = edge_length_nm(image, GRID)
        assert perimeter_raster == perimeter_exact
