"""Tests for mask regularization objectives."""

import numpy as np
import pytest

from repro.opc.objectives.regularization import DiscretizationPenalty, TotalVariationPenalty
from repro.opc.state import ForwardContext


def ctx_for(mask, tiny_sim):
    return ForwardContext(np.asarray(mask, dtype=float), tiny_sim)


class TestDiscretizationPenalty:
    def test_zero_for_binary(self, tiny_sim):
        mask = np.zeros(tiny_sim.grid.shape)
        mask[10:20, 10:20] = 1.0
        value, _ = DiscretizationPenalty().value_and_gradient(ctx_for(mask, tiny_sim))
        assert value == 0.0

    def test_maximal_at_half(self, tiny_sim):
        mask = np.full(tiny_sim.grid.shape, 0.5)
        value, grad = DiscretizationPenalty().value_and_gradient(ctx_for(mask, tiny_sim))
        assert value == pytest.approx(mask.size)  # 4 * 0.25 per pixel
        assert np.allclose(grad, 0.0)  # symmetric saddle at 0.5

    def test_gradient_pushes_to_extremes(self, tiny_sim):
        mask = np.full(tiny_sim.grid.shape, 0.6)
        _, grad = DiscretizationPenalty().value_and_gradient(ctx_for(mask, tiny_sim))
        # Descent (M -= grad) must push 0.6 upward to 1: gradient < 0.
        assert np.all(grad < 0)
        mask = np.full(tiny_sim.grid.shape, 0.4)
        _, grad = DiscretizationPenalty().value_and_gradient(ctx_for(mask, tiny_sim))
        assert np.all(grad > 0)

    def test_gradient_matches_finite_difference(self, tiny_sim, rng):
        mask = rng.uniform(0.1, 0.9, tiny_sim.grid.shape)
        obj = DiscretizationPenalty()
        value, grad = obj.value_and_gradient(ctx_for(mask, tiny_sim))
        eps = 1e-7
        for _ in range(5):
            i, j = rng.integers(0, mask.shape[0]), rng.integers(0, mask.shape[1])
            bumped = mask.copy()
            bumped[i, j] += eps
            fd = (obj.value(ctx_for(bumped, tiny_sim)) - value) / eps
            assert fd == pytest.approx(grad[i, j], rel=1e-4, abs=1e-6)


class TestTotalVariationPenalty:
    def test_zero_for_constant(self, tiny_sim):
        value, grad = TotalVariationPenalty().value_and_gradient(
            ctx_for(np.full(tiny_sim.grid.shape, 0.7), tiny_sim)
        )
        assert value == 0.0
        assert np.allclose(grad, 0.0)

    def test_counts_boundary(self, tiny_sim):
        mask = np.zeros(tiny_sim.grid.shape)
        mask[10:20, 10:20] = 1.0  # 10x10 binary block
        value, _ = TotalVariationPenalty().value_and_gradient(ctx_for(mask, tiny_sim))
        # Interior boundary transitions: 2 axes x 2 sides x 10 pixels.
        assert value == pytest.approx(40.0)

    def test_jagged_costs_more(self, tiny_sim):
        smooth = np.zeros(tiny_sim.grid.shape)
        smooth[10:20, 10:20] = 1.0
        jagged = smooth.copy()
        jagged[20, 12] = 1.0  # bump
        obj = TotalVariationPenalty()
        assert obj.value(ctx_for(jagged, tiny_sim)) > obj.value(ctx_for(smooth, tiny_sim))

    def test_gradient_matches_finite_difference(self, tiny_sim, rng):
        mask = rng.uniform(0.1, 0.9, tiny_sim.grid.shape)
        obj = TotalVariationPenalty()
        value, grad = obj.value_and_gradient(ctx_for(mask, tiny_sim))
        eps = 1e-7
        for _ in range(5):
            i, j = rng.integers(0, mask.shape[0]), rng.integers(0, mask.shape[1])
            bumped = mask.copy()
            bumped[i, j] += eps
            fd = (obj.value(ctx_for(bumped, tiny_sim)) - value) / eps
            assert fd == pytest.approx(grad[i, j], rel=1e-3, abs=1e-6)


class TestDescentOnPenaltiesAlone:
    """Pure-optimizer sanity: descending each penalty does what it claims."""

    def _descend(self, tiny_sim, objective, mask, iterations=30, step=2.0):
        from repro.config import OptimizerConfig
        from repro.opc.optimizer import GradientDescentOptimizer

        config = OptimizerConfig(
            max_iterations=iterations, step_size=step, use_jump=False, keep_best=False
        )
        return GradientDescentOptimizer(tiny_sim, objective, config).run(mask)

    def test_discretization_descent_binarizes(self, tiny_sim, rng):
        mask = rng.uniform(0.3, 0.7, tiny_sim.grid.shape)
        obj = DiscretizationPenalty()
        result = self._descend(tiny_sim, obj, mask)
        before = obj.value(ctx_for(mask, tiny_sim))
        after = obj.value(ctx_for(result.mask, tiny_sim))
        assert after < 0.2 * before  # mask driven strongly toward {0, 1}

    def test_tv_descent_smooths(self, tiny_sim, rng):
        mask = np.clip(
            0.5 + 0.3 * rng.standard_normal(tiny_sim.grid.shape), 0.05, 0.95
        )
        obj = TotalVariationPenalty()
        result = self._descend(tiny_sim, obj, mask)
        before = obj.value(ctx_for(mask, tiny_sim))
        after = obj.value(ctx_for(result.mask, tiny_sim))
        assert after < before

    def test_composes_with_design_objective(self, reduced_config, sim):
        """A regularized MOSAIC solve still converges to a working mask
        and leaves the continuous iterate more binary."""
        from repro.config import OptimizerConfig
        from repro.opc.mosaic import MosaicFast
        from repro.opc.objectives import CompositeObjective
        from repro.workloads.iccad2013 import load_benchmark

        layout = load_benchmark("B1")
        quad = DiscretizationPenalty()

        class RegularizedFast(MosaicFast):
            def build_objective(self, target, layout):
                base = super().build_objective(target, layout)
                return CompositeObjective(list(base.terms) + [(5.0, quad)])

        cfg = OptimizerConfig(max_iterations=20)
        plain = MosaicFast(reduced_config, optimizer_config=cfg, simulator=sim).solve(layout)
        regular = RegularizedFast(reduced_config, optimizer_config=cfg, simulator=sim).solve(layout)
        assert regular.score.epe_violations <= plain.score.epe_violations + 2
        plain_grey = quad.value(ctx_for(plain.optimization.mask, sim))
        regular_grey = quad.value(ctx_for(regular.optimization.mask, sim))
        assert regular_grey < plain_grey
