"""Unit tests for repro.geometry.contours."""

import numpy as np
import pytest

from repro.errors import GridError
from repro.geometry.contours import boundary_mask, edge_displacement, extract_contour_segments


def square_image(lo=4, hi=12, size=16):
    img = np.zeros((size, size), dtype=bool)
    img[lo:hi, lo:hi] = True
    return img


class TestBoundaryMask:
    def test_square_ring(self):
        img = square_image()
        b = boundary_mask(img)
        # 8x8 block has a 28-pixel one-pixel ring boundary.
        assert b.sum() == 28
        assert b[4, 4] and b[11, 11]
        assert not b[6, 6]  # interior

    def test_single_pixel(self):
        img = np.zeros((8, 8), dtype=bool)
        img[3, 3] = True
        assert boundary_mask(img).sum() == 1

    def test_border_touching_pixels_are_boundary(self):
        img = np.ones((4, 4), dtype=bool)
        b = boundary_mask(img)
        assert b[0, 0] and b[3, 3]
        assert not b[1, 1] and not b[2, 2]

    def test_empty(self):
        assert boundary_mask(np.zeros((8, 8), dtype=bool)).sum() == 0

    def test_non_binary_rejected(self):
        with pytest.raises(GridError):
            boundary_mask(np.full((4, 4), 0.5))


class TestContourSegments:
    def test_square_perimeter_length(self):
        img = square_image()
        segments = extract_contour_segments(img, pixel_nm=1.0)
        assert len(segments) == 32  # 8x8 block -> 32 unit segments

    def test_pixel_scaling(self):
        img = square_image()
        segments = extract_contour_segments(img, pixel_nm=4.0)
        lengths = [abs(x1 - x0) + abs(y1 - y0) for (x0, y0), (x1, y1) in segments]
        assert all(l == 4.0 for l in lengths)

    def test_empty_image_no_segments(self):
        assert extract_contour_segments(np.zeros((8, 8), dtype=bool)) == []


class TestEdgeDisplacement:
    """Target boundary pixel at (4, 8) on the bottom edge of square_image:
    rows 4..11 are inside, interior upward (axis 0, interior_sign +1)."""

    def test_aligned_edge_zero(self):
        img = square_image()
        assert edge_displacement(img, 4, 8, axis=0, interior_sign=1, max_search=6) == 0

    def test_printed_pulled_in(self):
        img = np.zeros((16, 16), dtype=bool)
        img[6:12, 4:12] = True  # bottom edge at row 6, two rows inside target
        disp = edge_displacement(img, 4, 8, axis=0, interior_sign=1, max_search=6)
        assert disp == -2

    def test_printed_bulges_out(self):
        img = np.zeros((16, 16), dtype=bool)
        img[2:12, 4:12] = True  # bottom edge at row 2, two rows outside
        disp = edge_displacement(img, 4, 8, axis=0, interior_sign=1, max_search=6)
        assert disp == 2

    def test_not_found_returns_none(self):
        img = np.zeros((16, 16), dtype=bool)
        assert edge_displacement(img, 4, 8, axis=0, interior_sign=1, max_search=3) is None

    def test_horizontal_axis(self):
        img = np.zeros((16, 16), dtype=bool)
        img[4:12, 6:12] = True  # left edge at col 6 instead of 4
        disp = edge_displacement(img, 8, 4, axis=1, interior_sign=1, max_search=6)
        assert disp == -2

    def test_interior_sign_flips_direction(self):
        # Right edge of the square: boundary pixel (8, 11), interior leftward.
        img = np.zeros((16, 16), dtype=bool)
        img[4:12, 4:14] = True  # right edge pushed out by 2
        disp = edge_displacement(img, 8, 11, axis=1, interior_sign=-1, max_search=6)
        assert disp == 2

    def test_search_at_image_border(self):
        img = np.ones((8, 8), dtype=bool)
        # Interior everywhere: no outward transition within range except border.
        disp = edge_displacement(img, 4, 4, axis=0, interior_sign=1, max_search=10)
        assert disp is not None  # border counts as unset
