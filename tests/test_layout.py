"""Unit tests for repro.geometry.layout."""

import pytest

from repro.errors import GeometryError
from repro.geometry.layout import Layout
from repro.geometry.polygon import Polygon
from repro.geometry.rect import Rect


class TestLayout:
    def test_empty(self):
        layout = Layout("empty")
        assert layout.num_shapes == 0
        assert layout.pattern_area == 0
        assert layout.bbox() is None

    def test_add_rect_becomes_polygon(self):
        layout = Layout("a")
        layout.add(Rect(10, 10, 60, 60))
        assert layout.num_shapes == 1
        assert isinstance(layout.polygons[0], Polygon)
        assert layout.pattern_area == 2500

    def test_add_polygon(self):
        layout = Layout("a")
        layout.add(Polygon([(0, 0), (50, 0), (50, 50), (0, 50)]))
        assert layout.pattern_area == 2500

    def test_shape_outside_clip_rejected(self):
        layout = Layout("a", clip=Rect(0, 0, 100, 100))
        with pytest.raises(GeometryError):
            layout.add(Rect(50, 50, 150, 80))

    def test_constructor_validates_shapes(self):
        poly = Polygon([(0, 0), (200, 0), (200, 50), (0, 50)])
        with pytest.raises(GeometryError):
            Layout("a", clip=Rect(0, 0, 100, 100), polygons=[poly])

    def test_from_rects(self):
        layout = Layout.from_rects("grid", [Rect(0, 0, 10, 10), Rect(20, 0, 30, 10)],
                                   clip=Rect(0, 0, 100, 100))
        assert layout.num_shapes == 2
        assert layout.pattern_area == 200

    def test_bbox_spans_all(self):
        layout = Layout.from_rects(
            "b", [Rect(10, 10, 20, 20), Rect(50, 60, 80, 90)], clip=Rect(0, 0, 100, 100)
        )
        assert layout.bbox() == Rect(10, 10, 80, 90)

    def test_total_perimeter(self):
        layout = Layout.from_rects("p", [Rect(0, 0, 10, 20)], clip=Rect(0, 0, 100, 100))
        assert layout.total_perimeter == 60

    def test_contains_point(self):
        layout = Layout.from_rects("c", [Rect(10, 10, 20, 20)], clip=Rect(0, 0, 100, 100))
        assert layout.contains_point(15, 15)
        assert not layout.contains_point(50, 50)

    def test_translated(self):
        layout = Layout.from_rects("t", [Rect(10, 10, 20, 20)], clip=Rect(0, 0, 100, 100))
        moved = layout.translated(5, 5)
        assert moved.contains_point(24, 24)
        assert not moved.contains_point(11, 11)
        assert moved.pattern_area == layout.pattern_area

    def test_translated_out_of_clip_rejected(self):
        layout = Layout.from_rects("t", [Rect(80, 80, 99, 99)], clip=Rect(0, 0, 100, 100))
        with pytest.raises(GeometryError):
            layout.translated(10, 0)

    def test_extend(self):
        layout = Layout("e", clip=Rect(0, 0, 100, 100))
        layout.extend([Rect(0, 0, 10, 10), Rect(20, 20, 30, 30)])
        assert layout.num_shapes == 2
