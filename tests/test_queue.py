"""Unit tests for the durable tile-job queue protocols.

Everything here exercises the queue's one-winner filesystem protocols
with tiny fake job payloads and a frozen clock — no real solves — so
the whole file runs in milliseconds.  The load-bearing tests are the
fencing ones: a stale worker's late commit must never clobber a
re-run's result, under either fence (lost lease unlink, or losing the
highest-token tiebreak).
"""

import json
import os
import socket
import subprocess
import sys

import numpy as np
import pytest

from repro.errors import FullChipError
from repro.fullchip.queue import (
    LEASED_DIRNAME,
    PENDING_DIRNAME,
    QueueConfig,
    TileJobQueue,
    _entry_name,
    _parse_entry_name,
    load_queue_state,
)
from repro.fullchip.scheduler import parse_kill_spec


class Clock:
    """A settable time source for deterministic lease expiry."""

    def __init__(self, t: float = 1000.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t


def _queue(root, tiles=("tile_a", "tile_b"), clock=None, **cfg):
    config = QueueConfig(**{"lease_s": 5.0, "backoff_s": 0.0, **cfg})
    jobs = {name: ((0, i), f"payload:{name}") for i, name in enumerate(tiles)}
    queue = TileJobQueue.create(root, jobs, config=config)
    if clock is not None:
        queue._now = clock
    return queue


class TestQueueConfig:
    def test_validation(self):
        with pytest.raises(FullChipError):
            QueueConfig(lease_s=0)
        with pytest.raises(FullChipError):
            QueueConfig(max_requeues=-1)
        with pytest.raises(FullChipError):
            QueueConfig(backoff_s=-0.1)


class TestEntryNames:
    def test_roundtrip(self):
        assert _parse_entry_name(_entry_name("tile_r0_c1", 3)) == ("tile_r0_c1", 3)

    def test_aliens_rejected(self):
        assert _parse_entry_name("junk.txt") is None
        assert _parse_entry_name("tile.json") is None
        assert _parse_entry_name("tile.tXX.json") is None


class TestClaimAndCommit:
    def test_claim_returns_payload_and_lease(self, tmp_path):
        clock = Clock()
        queue = _queue(tmp_path / "q", clock=clock)
        claim = queue.claim()
        assert claim is not None
        assert claim.tile == "tile_a"  # sorted order
        assert claim.token == 0 and claim.attempt == 1
        assert claim.job == "payload:tile_a"
        assert claim.lease.pid == os.getpid()
        assert claim.lease.deadline == clock.t + 5.0

    def test_each_ticket_claimed_once(self, tmp_path):
        queue = _queue(tmp_path / "q")
        first, second = queue.claim(), queue.claim()
        assert {first.tile, second.tile} == {"tile_a", "tile_b"}
        assert queue.claim() is None  # everything leased

    def test_complete_roundtrips_mask_and_settles(self, tmp_path):
        queue = _queue(tmp_path / "q", tiles=("tile_a",))
        claim = queue.claim()
        mask = np.linspace(0, 1, 16).reshape(4, 4)
        assert queue.complete(claim, mask, {"status": "ok", "attempts": 1})
        record = queue.terminal_record("tile_a")
        assert record["state"] == "done"
        assert record["status"] == "ok" and record["token"] == 0
        assert np.array_equal(queue.load_result_mask(record), mask)
        assert queue.drained()
        counts = queue.counts()
        assert counts["done"] == 1 and counts["pending"] == 0
        assert counts["leased"] == 0

    def test_fail_is_terminal(self, tmp_path):
        queue = _queue(tmp_path / "q", tiles=("tile_a",))
        claim = queue.claim()
        assert queue.fail(claim, {"status": "failed", "error": "boom"})
        record = queue.terminal_record("tile_a")
        assert record["state"] == "failed" and record["error"] == "boom"
        assert queue.drained()

    def test_claim_gc_tickets_behind_terminal_record(self, tmp_path):
        queue = _queue(tmp_path / "q", tiles=("tile_a",))
        claim = queue.claim()
        queue.complete(claim, None, {"status": "ok"})
        # A straggler ticket behind the settled tile is swept, not claimed.
        queue._write_ticket("tile_a", (0, 0), token=0, not_before=0.0)
        assert queue.claim() is None
        assert not list((tmp_path / "q" / PENDING_DIRNAME).glob("*.json"))

    def test_open_requires_meta(self, tmp_path):
        with pytest.raises(FullChipError, match="not a queue dir"):
            TileJobQueue.open(tmp_path / "nope")

    def test_open_restores_config(self, tmp_path):
        _queue(tmp_path / "q", lease_s=7.5, max_requeues=4, backoff_s=1.25)
        reopened = TileJobQueue.open(tmp_path / "q")
        assert reopened.config == QueueConfig(
            lease_s=7.5, max_requeues=4, backoff_s=1.25
        )


class TestExpirySweep:
    def test_expired_lease_requeues_with_backoff(self, tmp_path):
        clock = Clock()
        queue = _queue(tmp_path / "q", tiles=("tile_a",), clock=clock, backoff_s=4.0)
        queue.claim()
        incidents = queue.sweep_expired()
        assert incidents == []  # lease still live
        clock.t += 6.0
        # Deadline passed, but the claimant (this process) is alive on
        # this host: the live-pid grace defers expiry.
        assert queue.sweep_expired() == []
        clock.t += 10.0
        incidents = queue.sweep_expired()
        assert len(incidents) == 1
        incident = incidents[0]
        assert incident["kind"] == "job_requeued"
        assert incident["tile"] == "tile_a" and incident["token"] == 1
        assert incident["backoff_s"] == 4.0
        # Lease gone, replacement ticket gated by the backoff.
        assert not list((tmp_path / "q" / LEASED_DIRNAME).glob("*.json"))
        assert queue.claim() is None
        clock.t += 5.0
        reclaim = queue.claim()
        assert reclaim.token == 1 and reclaim.attempt == 2

    def test_backoff_doubles_per_generation(self, tmp_path):
        clock = Clock()
        queue = _queue(
            tmp_path / "q", tiles=("tile_a",), clock=clock,
            backoff_s=1.0, max_requeues=3,
        )
        backoffs = []
        for _ in range(3):
            clock.t += 100.0
            queue.claim()
            clock.t += 100.0
            (incident,) = queue.sweep_expired()
            backoffs.append(incident["backoff_s"])
        assert backoffs == [1.0, 2.0, 4.0]

    def test_sweep_is_single_winner_per_incident(self, tmp_path):
        clock = Clock()
        queue = _queue(tmp_path / "q", tiles=("tile_a",), clock=clock)
        queue.claim()
        other = TileJobQueue.open(tmp_path / "q")
        other._now = clock
        clock.t += 16.0  # past deadline + the live-pid grace (2 lease terms)
        total = queue.sweep_expired() + other.sweep_expired()
        assert len(total) == 1  # O_EXCL ticket creation: one incident

    def test_dead_pid_expires_immediately(self, tmp_path):
        queue = _queue(tmp_path / "q", tiles=("tile_a",))
        claim = queue.claim()
        # A pid that existed and is now gone, on this host.
        proc = subprocess.Popen([sys.executable, "-c", "pass"])
        proc.wait()
        lease_path = (
            tmp_path / "q" / LEASED_DIRNAME / _entry_name("tile_a", claim.token)
        )
        record = claim.lease.as_dict()
        record["pid"] = proc.pid
        record["host"] = socket.gethostname()
        lease_path.write_text(json.dumps(record))
        (incident,) = queue.sweep_expired()  # no time travel needed
        assert incident["reason"] == "worker died"
        assert incident["stale_pid"] == proc.pid

    def test_orphaned_lease_falls_back_to_ctime(self, tmp_path):
        # A crash between the claim rename and the lease rewrite leaves
        # the ticket payload (no deadline) in leased/.
        clock = Clock()
        queue = _queue(tmp_path / "q", tiles=("tile_a",), clock=clock)
        src = tmp_path / "q" / PENDING_DIRNAME / _entry_name("tile_a", 0)
        dst = tmp_path / "q" / LEASED_DIRNAME / _entry_name("tile_a", 0)
        os.rename(src, dst)
        assert queue.sweep_expired() == []  # within ctime + lease_s
        clock.t = os.stat(dst).st_ctime + queue.config.lease_s + 1.0
        (incident,) = queue.sweep_expired()
        assert incident["kind"] == "job_requeued"

    def test_quarantine_after_max_requeues(self, tmp_path):
        clock = Clock()
        queue = _queue(
            tmp_path / "q", tiles=("tile_a",), clock=clock, max_requeues=0
        )
        queue.claim()
        clock.t += 16.0  # past deadline + the live-pid grace (2 lease terms)
        (incident,) = queue.sweep_expired()
        assert incident["kind"] == "job_quarantined"
        record = queue.terminal_record("tile_a")
        assert record["state"] == "quarantined"
        assert "max_requeues=0" in record["error"]
        assert queue.drained() and queue.claim() is None
        kinds = [h["kind"] for h in queue.history("tile_a")]
        assert kinds == ["seeded", "leased", "quarantined"]

    def test_sweep_clears_stale_heartbeat(self, tmp_path):
        from repro.obs.live import heartbeat_filename

        clock = Clock()
        queue = _queue(tmp_path / "q", tiles=("tile_a",), clock=clock)
        queue.claim()
        hb_dir = tmp_path / "heartbeats"
        hb_dir.mkdir()
        stale = hb_dir / heartbeat_filename("tile_a")
        stale.write_text("{}")
        clock.t += 16.0  # past deadline + the live-pid grace (2 lease terms)
        queue.sweep_expired(heartbeat_dir=hb_dir)
        assert not stale.exists()


class TestCommitFencing:
    """Duplicate-completion idempotence: exactly one result wins."""

    def test_stale_worker_loses_the_lease_fence(self, tmp_path):
        clock = Clock()
        queue = _queue(tmp_path / "q", tiles=("tile_a",), clock=clock)
        stale_claim = queue.claim()  # worker A, token 0
        clock.t += 16.0  # past deadline + the live-pid grace (2 lease terms)
        queue.sweep_expired()  # A presumed dead; tile requeued
        fresh_claim = queue.claim()  # worker B, token 1
        fresh_mask = np.full((4, 4), 2.0)
        assert queue.complete(fresh_claim, fresh_mask, {"status": "ok"}) is True
        # A's late commit: its lease is gone, so the unlink fence fails.
        stale_mask = np.zeros((4, 4))
        assert queue.complete(stale_claim, stale_mask, {"status": "ok"}) is False
        record = queue.terminal_record("tile_a")
        assert record["token"] == 1
        assert np.array_equal(queue.load_result_mask(record), fresh_mask)
        kinds = [h["kind"] for h in queue.history("tile_a")]
        assert kinds.count("discarded") == 1

    def test_resurrected_lease_loses_by_token_order(self, tmp_path):
        # The renew TOCTOU can briefly rewrite a just-swept lease file;
        # even then the stale commit must lose to the higher token.
        clock = Clock()
        queue = _queue(tmp_path / "q", tiles=("tile_a",), clock=clock)
        stale_claim = queue.claim()
        clock.t += 16.0  # past deadline + the live-pid grace (2 lease terms)
        queue.sweep_expired()
        fresh_claim = queue.claim()
        fresh_mask = np.full((4, 4), 2.0)
        assert queue.complete(fresh_claim, fresh_mask, {"status": "ok"})
        # Resurrect the stale generation's lease file by hand.
        (tmp_path / "q" / LEASED_DIRNAME / _entry_name("tile_a", 0)).write_text(
            json.dumps(stale_claim.lease.as_dict())
        )
        assert queue.complete(stale_claim, np.zeros((4, 4)), {"status": "ok"}) is False
        record = queue.terminal_record("tile_a")
        assert record["token"] == 1
        assert np.array_equal(queue.load_result_mask(record), fresh_mask)

    def test_stale_worker_cannot_fail_over_a_fresh_result(self, tmp_path):
        clock = Clock()
        queue = _queue(tmp_path / "q", tiles=("tile_a",), clock=clock)
        stale_claim = queue.claim()
        clock.t += 16.0  # past deadline + the live-pid grace (2 lease terms)
        queue.sweep_expired()
        fresh_claim = queue.claim()
        assert queue.complete(fresh_claim, np.ones((2, 2)), {"status": "ok"})
        assert queue.fail(stale_claim, {"status": "failed", "error": "late"}) is False
        assert queue.terminal_record("tile_a")["state"] == "done"


class TestCommitCrashSafety:
    """A worker (or sweeper) killed at any instant loses at most one
    lease term of work — the commit/sweep orderings leave no stateless
    window."""

    def test_failed_result_write_leaves_lease_recoverable(
        self, tmp_path, monkeypatch
    ):
        # OSError mid-commit (e.g. disk full writing the npz): the
        # lease must survive, so the tile expires and requeues like
        # any dead worker instead of vanishing from every state dir.
        clock = Clock()
        queue = _queue(tmp_path / "q", tiles=("tile_a",), clock=clock)
        claim = queue.claim()

        def explode(path, mask):
            raise OSError("disk full")

        monkeypatch.setattr(
            TileJobQueue, "_write_result_npz", staticmethod(explode)
        )
        with pytest.raises(OSError):
            queue.complete(claim, np.ones((2, 2)), {"status": "ok"})
        monkeypatch.undo()
        assert queue.lease_exists(claim.lease)
        assert queue.terminal_record("tile_a") is None
        clock.t += 16.0
        (incident,) = queue.sweep_expired()
        assert incident["kind"] == "job_requeued"
        retry = queue.claim()
        assert retry.token == 1
        assert queue.complete(retry, np.ones((2, 2)), {"status": "ok"})
        assert queue.drained()

    def test_zombie_lease_behind_settled_tile_is_cleared_not_requeued(
        self, tmp_path
    ):
        # Crash between the terminal write and the lease unlink: the
        # leftover lease is swept without minting a new generation.
        clock = Clock()
        queue = _queue(tmp_path / "q", tiles=("tile_a",), clock=clock)
        claim = queue.claim()
        assert queue.complete(claim, np.ones((2, 2)), {"status": "ok"})
        lease_path = (
            tmp_path / "q" / LEASED_DIRNAME / _entry_name("tile_a", 0)
        )
        lease_path.write_text(json.dumps(claim.lease.as_dict()))
        clock.t += 100.0
        assert queue.sweep_expired() == []
        assert not lease_path.exists()
        assert queue.drained()
        assert not list((tmp_path / "q" / PENDING_DIRNAME).glob("*.json"))

    def test_sweeper_crash_leftover_cannot_mint_duplicate_generation(
        self, tmp_path
    ):
        # A sweeper that crashed after writing the replacement ticket
        # but before unlinking the stale lease leaves both behind; once
        # the ticket is claimed, the stale lease must be cleared — not
        # requeued into a second live generation of the same tile.
        clock = Clock()
        queue = _queue(tmp_path / "q", tiles=("tile_a",), clock=clock)
        stale = queue.claim()
        clock.t += 16.0  # past deadline + the live-pid grace (2 lease terms)
        queue.sweep_expired()
        fresh = queue.claim()
        assert fresh.token == 1
        # Resurrect the crashed sweeper's leftover: the stale t0 lease.
        stale_path = (
            tmp_path / "q" / LEASED_DIRNAME / _entry_name("tile_a", 0)
        )
        stale_path.write_text(json.dumps(stale.lease.as_dict()))
        assert queue.sweep_expired() == []  # cleared, no incident
        assert not stale_path.exists()
        assert not list((tmp_path / "q" / PENDING_DIRNAME).glob("*.json"))
        assert queue.lease_exists(fresh.lease)

    def test_reader_resolves_racing_terminal_records_by_token(self, tmp_path):
        # Worst case: a stale lower-token record lands *last* (past
        # every fence).  Token-named records make the read side resolve
        # the race — highest token wins, the fresh mask stays loadable.
        from repro.fullchip.queue import DONE_DIRNAME

        clock = Clock()
        queue = _queue(tmp_path / "q", tiles=("tile_a",), clock=clock)
        stale = queue.claim()
        clock.t += 16.0  # past deadline + the live-pid grace (2 lease terms)
        queue.sweep_expired()
        fresh = queue.claim()
        fresh_mask = np.full((4, 4), 2.0)
        assert queue.complete(fresh, fresh_mask, {"status": "ok"})
        assert queue._write_exclusive(
            tmp_path / "q" / DONE_DIRNAME / _entry_name("tile_a", 0),
            {"tile": "tile_a", "token": stale.token, "status": "ok",
             "result_file": "tile_a.t0.npz"},
        )
        record = queue.terminal_record("tile_a")
        assert record["token"] == 1
        assert np.array_equal(queue.load_result_mask(record), fresh_mask)
        counts = queue.counts()
        assert counts["done"] == 1 and counts["total"] == 1


class TestLeaseRenewer:
    def test_thread_floor_renews_without_beats(self, tmp_path):
        # No heartbeat pulses at all (model build, telemetry off, one
        # slow iteration): the renewal thread alone must keep the
        # on-disk deadline moving.
        from repro.fullchip.worker import LeaseRenewer

        queue = _queue(tmp_path / "q", tiles=("tile_a",), lease_s=0.4)
        claim = queue.claim()
        first_deadline = claim.lease.deadline
        lease_path = (
            tmp_path / "q" / LEASED_DIRNAME / _entry_name("tile_a", 0)
        )
        renewer = LeaseRenewer(queue, claim).start()
        try:
            import time as _time

            _time.sleep(1.0)  # several lease terms, zero beats
            assert not renewer.lost
            on_disk = json.loads(lease_path.read_text())
            assert on_disk["deadline"] > first_deadline
        finally:
            renewer.stop()

    def test_transient_write_failure_does_not_latch_lost(
        self, tmp_path, monkeypatch
    ):
        import repro.fullchip.queue as queue_mod
        from repro.fullchip.worker import LeaseRenewer

        queue = _queue(tmp_path / "q", tiles=("tile_a",))
        claim = queue.claim()
        renewer = LeaseRenewer(queue, claim)

        def refuse(path, payload):
            raise OSError("read-only filesystem")

        monkeypatch.setattr(queue_mod, "write_json_atomic", refuse)
        assert queue.renew(claim.lease) is False  # surfaced, not swallowed
        renewer._renew(force=True)
        assert not renewer.lost  # lease file still present: retryable
        monkeypatch.undo()
        renewer._renew(force=True)
        assert not renewer.lost

    def test_lost_latches_when_lease_file_gone(self, tmp_path):
        from repro.fullchip.worker import LeaseRenewer

        queue = _queue(tmp_path / "q", tiles=("tile_a",))
        claim = queue.claim()
        renewer = LeaseRenewer(queue, claim)
        os.unlink(tmp_path / "q" / LEASED_DIRNAME / _entry_name("tile_a", 0))
        renewer._renew(force=True)
        assert renewer.lost


class TestAdoption:
    def test_fresh_create_wipes_previous_state(self, tmp_path):
        queue = _queue(tmp_path / "q", tiles=("tile_a",))
        queue.complete(queue.claim(), np.ones((2, 2)), {"status": "ok"})
        recreated = _queue(tmp_path / "q", tiles=("tile_a",))
        assert recreated.terminal_record("tile_a") is None
        assert recreated.claim() is not None

    def test_adopt_preserves_terminal_records(self, tmp_path):
        queue = _queue(tmp_path / "q")
        queue.complete(queue.claim(), np.ones((2, 2)), {"status": "ok"})
        jobs = {
            "tile_a": ((0, 0), "payload:tile_a"),
            "tile_b": ((0, 1), "payload:tile_b"),
        }
        adopted = TileJobQueue.create(
            tmp_path / "q", jobs, config=queue.config, adopt=True
        )
        assert adopted.terminal_record("tile_a")["state"] == "done"
        # Only the unsettled tile is claimable, and it was not re-seeded
        # (no duplicate "seeded" history line).
        claim = adopted.claim()
        assert claim.tile == "tile_b"
        assert adopted.claim() is None
        kinds = [h["kind"] for h in adopted.history("tile_b")]
        assert kinds.count("seeded") == 1


class TestHistoryAndState:
    def test_history_skips_torn_lines(self, tmp_path):
        queue = _queue(tmp_path / "q", tiles=("tile_a",))
        with open(tmp_path / "q" / "history" / "tile_a.jsonl", "a") as handle:
            handle.write('{"truncated...\n')
        queue._history("tile_a", "leased", token=0)
        kinds = [h["kind"] for h in queue.history("tile_a")]
        assert kinds == ["seeded", "leased"]

    def test_load_queue_state_counts_and_histories(self, tmp_path):
        clock = Clock()
        queue = _queue(tmp_path / "q", clock=clock)
        queue.complete(queue.claim(), np.ones((2, 2)), {"status": "ok"})
        queue.claim()
        clock.t += 16.0  # past deadline + the live-pid grace (2 lease terms)
        queue.sweep_expired()
        state = load_queue_state(tmp_path)  # run dir containing q? no — see below
        assert state is None  # tmp_path itself holds no queue/
        state = load_queue_state(tmp_path / "q")
        assert state["kind"] == "fullchip_queue"
        assert state["counts"]["done"] == 1
        assert state["counts"]["pending"] == 1
        assert state["counts"]["requeued"] == 1
        by_name = {t["name"]: t for t in state["tiles"]}
        assert by_name["tile_a"]["state"] == "done"
        assert by_name["tile_b"]["state"] == "pending"
        assert by_name["tile_b"]["attempts"] == 2  # requeued once
        assert by_name["tile_b"]["requeues"] == 1
        kinds = [h["kind"] for h in by_name["tile_b"]["history"]]
        assert kinds == ["seeded", "leased", "requeued"]

    def test_load_queue_state_accepts_run_dir(self, tmp_path):
        from repro.fullchip.queue import QUEUE_DIRNAME

        _queue(tmp_path / QUEUE_DIRNAME, tiles=("tile_a",))
        state = load_queue_state(tmp_path)
        assert state is not None and state["counts"]["total"] == 1

    def test_render_queue_state_sections(self, tmp_path):
        from repro.obs.report import render_queue_state

        queue = _queue(tmp_path / "q", tiles=("tile_a",))
        queue.complete(queue.claim(), np.ones((2, 2)), {"status": "ok"})
        text = render_queue_state(load_queue_state(tmp_path / "q"))
        assert "durable queue" in text
        assert "1 done" in text
        assert "seeded -> leased -> done" in text

    def test_queue_only_watch_snapshot(self, tmp_path):
        from repro.obs.watch import collect_snapshot, watch_exit_code

        run_dir = tmp_path / "run"
        from repro.fullchip.queue import QUEUE_DIRNAME

        queue = _queue(run_dir / QUEUE_DIRNAME, tiles=("tile_a", "tile_b"))
        queue.fail(queue.claim(), {"status": "failed", "error": "x"})
        snapshot = collect_snapshot(run_dir)  # no status.json at all
        assert snapshot["queue_only"] is True
        assert snapshot["state"] == "running"
        assert snapshot["tiles"]["failed"] == 1
        assert snapshot["queue"]["counts"]["failed"] == 1
        queue.complete(queue.claim(), None, {"status": "ok"})
        snapshot = collect_snapshot(run_dir)
        assert snapshot["state"] == "failed"  # drained with a failure
        assert watch_exit_code(snapshot) == 3


class TestKillSpec:
    def test_parse_variants(self):
        assert parse_kill_spec("0,1") == {(0, 1): 3}
        assert parse_kill_spec("1,2:5; 0,0:1") == {(1, 2): 5, (0, 0): 1}
        assert parse_kill_spec("") == {}
        assert parse_kill_spec(" ; ") == {}

    def test_malformed_rejected(self):
        for bad in ("1", "a,b", "0,1:x", "0,1:-2"):
            with pytest.raises(FullChipError):
                parse_kill_spec(bad)


class TestWatchdogAttemptRearm:
    def test_new_attempt_counts_as_progress_and_rearms(self):
        from repro.obs import Instrumentation
        from repro.obs.live import Heartbeat, LivenessWatchdog, WatchdogConfig

        events = []
        obs = Instrumentation.collecting(
            trace=False, metrics=True, events_sink=events.append
        )
        dog = LivenessWatchdog(
            WatchdogConfig(poll_s=1.0, stall_factor=2.0, min_stall_s=5.0),
            obs=obs,
            clock=lambda: 0.0,
        )

        def beat(iteration, ts, attempt):
            return Heartbeat(
                tile="t", pid=1, phase="optimize",
                iteration=iteration, ts=ts, attempt=attempt,
            )

        # First attempt stalls and is flagged.
        dog.observe({"t": beat(0, 0.0, 1)}, now=0.0)
        dog.observe({"t": beat(1, 1.0, 1)}, now=1.0)
        flags = dog.observe({"t": beat(1, 1.0, 1)}, now=8.0)
        assert [f.reason for f in flags] == ["stalled"]
        # The requeued attempt's first pulse (same iteration number!)
        # counts as progress: the latch re-arms, no instant re-flag.
        assert dog.observe({"t": beat(1, 9.0, 2)}, now=9.0) == []
        assert dog.observe({"t": beat(1, 9.0, 2)}, now=10.0) == []
        resumed = [e for e in events if e["event"] == "worker_resumed"]
        assert len(resumed) == 1

    def test_heartbeat_attempt_roundtrip(self, tmp_path):
        from repro.obs.live import HeartbeatWriter, read_heartbeat

        pulses = []
        writer = HeartbeatWriter(
            tmp_path, "t", attempt=3, on_beat=pulses.append
        )
        writer.beat(phase="optimize", iteration=1)
        assert read_heartbeat(writer.path).attempt == 3
        assert len(pulses) == 1

    def test_on_beat_fires_even_when_throttled(self, tmp_path):
        from repro.obs.live import HeartbeatWriter

        pulses = []
        ticks = iter([100.0, 100.1, 100.2])
        writer = HeartbeatWriter(
            tmp_path, "t", min_interval_s=10.0,
            on_beat=pulses.append, clock=lambda: next(ticks),
        )
        writer.beat(phase="optimize", iteration=0)  # writes
        writer.beat(phase="optimize", iteration=1)  # throttled, hook still fires
        writer.beat(phase="optimize", iteration=2)  # throttled, hook still fires
        assert pulses == [100.0, 100.1, 100.2]
