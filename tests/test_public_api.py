"""Public API surface tests: the import contract downstream users rely on."""

import importlib

import pytest

import repro


class TestTopLevelExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists missing name {name}"

    def test_version(self):
        assert repro.__version__ == "1.1.0"

    def test_quickstart_names(self):
        # The README quickstart must keep working.
        from repro import LithoConfig, MosaicFast, load_benchmark  # noqa: F401

    def test_solver_contract(self):
        # Every solver class exposes mode_name and solve().
        from repro.baselines import BasicILT, LevelSetILT, ModelBasedOPC, RuleBasedOPC
        from repro.opc.extensions import MosaicExactPW
        from repro.opc.mosaic import MosaicExact, MosaicFast
        from repro.opc.multires import MultiResolutionSolver

        for cls in (
            MosaicFast, MosaicExact, MosaicExactPW, MultiResolutionSolver,
            BasicILT, LevelSetILT, ModelBasedOPC, RuleBasedOPC,
        ):
            assert hasattr(cls, "solve")
            assert isinstance(cls.mode_name, str) and cls.mode_name


class TestSubpackageImports:
    @pytest.mark.parametrize(
        "module",
        [
            "repro.geometry",
            "repro.optics",
            "repro.resist",
            "repro.process",
            "repro.litho",
            "repro.mask",
            "repro.xp",
            "repro.opc",
            "repro.opc.objectives",
            "repro.baselines",
            "repro.metrics",
            "repro.workloads",
            "repro.io",
            "repro.utils",
            "repro.cli",
            "repro.report",
            "repro.harness",
        ],
    )
    def test_importable(self, module):
        mod = importlib.import_module(module)
        if hasattr(mod, "__all__"):
            for name in mod.__all__:
                assert hasattr(mod, name), f"{module}.__all__ lists missing {name}"


class TestErrorHierarchy:
    def test_all_derive_from_base(self):
        from repro.errors import (
            GeometryError,
            GridError,
            LayoutIOError,
            OpticsError,
            OptimizationError,
            ProcessError,
            ReproError,
        )

        for exc in (
            GeometryError, GridError, OpticsError, ProcessError,
            OptimizationError, LayoutIOError,
        ):
            assert issubclass(exc, ReproError)

    def test_catchable_as_base(self):
        from repro.errors import ReproError
        from repro.geometry.rect import Rect

        with pytest.raises(ReproError):
            Rect(0, 0, 0, 0)


class TestPaperConstants:
    """The numbers the paper states, pinned so refactors cannot drift them."""

    def test_optics(self):
        from repro import constants

        assert constants.WAVELENGTH_NM == 193.0
        assert constants.NUM_KERNELS == 24
        assert constants.CLIP_SIZE_NM == 1024.0
        assert constants.PIXEL_SIZE_NM == 1.0

    def test_resist_and_epe(self):
        from repro import constants

        assert constants.RESIST_THRESHOLD == 0.5
        assert constants.THETA_Z == 50.0
        assert constants.EPE_THRESHOLD_NM == 15.0
        assert constants.EPE_SAMPLE_SPACING_NM == 40.0

    def test_process_window(self):
        from repro import constants

        assert constants.DEFOCUS_RANGE_NM == 25.0
        assert constants.DOSE_RANGE == 0.02

    def test_score_weights(self):
        from repro import constants

        assert constants.SCORE_PVB_WEIGHT == 4.0
        assert constants.SCORE_EPE_WEIGHT == 5000.0
