"""Integration-level tests for the MOSAIC solvers (reduced scale, few iters)."""

import numpy as np
import pytest

from repro import constants
from repro.config import OptimizerConfig
from repro.metrics.score import contest_score
from repro.opc.mosaic import MosaicExact, MosaicFast
from repro.workloads.iccad2013 import load_benchmark

FAST_CFG = OptimizerConfig(max_iterations=12)


@pytest.fixture(scope="module")
def b1_result(reduced_config, sim):
    solver = MosaicFast(reduced_config, optimizer_config=FAST_CFG, simulator=sim)
    return solver.solve(load_benchmark("B1"))


class TestMosaicFast:
    def test_beats_no_opc(self, sim, b1_result):
        from repro.geometry.raster import rasterize_layout

        layout = load_benchmark("B1")
        target = rasterize_layout(layout, sim.grid).astype(float)
        no_opc = contest_score(sim, target, layout)
        assert b1_result.score.total < no_opc.total

    def test_reduces_epe_violations(self, b1_result):
        assert b1_result.score.epe_violations <= 3

    def test_no_shape_violations(self, b1_result):
        assert b1_result.score.shape_violations == 0

    def test_mask_is_binary(self, b1_result):
        assert set(np.unique(b1_result.mask)) <= {0.0, 1.0}

    def test_history_recorded(self, b1_result):
        assert len(b1_result.optimization.history) >= 1

    def test_runtime_positive(self, b1_result):
        assert b1_result.runtime_s > 0
        assert b1_result.score.runtime_s == pytest.approx(b1_result.runtime_s)

    def test_layout_name_propagated(self, b1_result):
        assert b1_result.layout_name == "B1"


class TestWeightResolution:
    def test_fast_defaults_scaled_by_pixel_area(self, reduced_config, sim):
        solver = MosaicFast(reduced_config, simulator=sim)
        pixel_area = sim.grid.pixel_nm**2
        assert solver.optimizer_config.beta == pytest.approx(
            constants.SCORE_PVB_WEIGHT * pixel_area
        )
        assert solver.optimizer_config.alpha > solver.optimizer_config.beta

    def test_exact_uses_score_weights(self, reduced_config, sim):
        solver = MosaicExact(reduced_config, simulator=sim)
        assert solver.optimizer_config.alpha == constants.SCORE_EPE_WEIGHT

    def test_explicit_weights_respected(self, reduced_config, sim):
        cfg = OptimizerConfig(alpha=7.0, beta=3.0)
        solver = MosaicFast(reduced_config, optimizer_config=cfg, simulator=sim)
        assert solver.optimizer_config.alpha == 7.0
        assert solver.optimizer_config.beta == 3.0

    def test_mode_iteration_defaults(self, reduced_config, sim):
        fast = MosaicFast(reduced_config, simulator=sim)
        exact = MosaicExact(reduced_config, simulator=sim)
        assert fast.optimizer_config.max_iterations == constants.MOSAIC_FAST_ITERATIONS
        assert exact.optimizer_config.max_iterations == constants.MOSAIC_EXACT_ITERATIONS


class TestSeeding:
    def test_sraf_seed_larger_than_target(self, reduced_config, sim):
        from repro.geometry.raster import rasterize_layout

        layout = load_benchmark("B1")
        target = rasterize_layout(layout, sim.grid)
        with_sraf = MosaicFast(reduced_config, simulator=sim).initial_mask(layout)
        without = MosaicFast(
            reduced_config, simulator=sim, use_sraf=False
        ).initial_mask(layout)
        assert with_sraf.sum() > without.sum()
        assert np.array_equal(without > 0.5, target)


class TestMosaicExact:
    def test_solves_b1(self, reduced_config, sim):
        cfg = OptimizerConfig(max_iterations=12)
        solver = MosaicExact(reduced_config, optimizer_config=cfg, simulator=sim)
        result = solver.solve(load_benchmark("B1"))
        assert result.score.epe_violations <= 3
        assert result.score.shape_violations == 0

    def test_term_values_in_history(self, reduced_config, sim):
        cfg = OptimizerConfig(max_iterations=3)
        solver = MosaicExact(reduced_config, optimizer_config=cfg, simulator=sim)
        result = solver.solve(load_benchmark("B1"))
        record = result.optimization.history.records[0]
        assert set(record.term_values) == {"epe", "pvband"}  # F_epe and F_pvb
