"""Tests for the seeded random layout generator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import GeometryError
from repro.workloads.random_layout import random_layout, random_layout_suite


class TestRandomLayout:
    def test_deterministic(self):
        a = random_layout(42, num_shapes=5)
        b = random_layout(42, num_shapes=5)
        assert [p.vertices for p in a.polygons] == [p.vertices for p in b.polygons]

    def test_different_seeds_differ(self):
        a = random_layout(1, num_shapes=5)
        b = random_layout(2, num_shapes=5)
        assert [p.vertices for p in a.polygons] != [p.vertices for p in b.polygons]

    def test_name_embeds_seed(self):
        assert random_layout(17).name == "rand17"

    def test_shapes_inside_clip(self):
        layout = random_layout(3, num_shapes=8)
        assert layout.clip.contains_rect(layout.bbox())

    def test_spacing_respected(self):
        layout = random_layout(4, num_shapes=8, min_spacing_nm=100.0)
        boxes = [p.bbox for p in layout.polygons]
        for i, a in enumerate(boxes):
            for b in boxes[i + 1:]:
                assert a.distance_to(b) >= 100.0 - 1e-9

    def test_invalid_count_rejected(self):
        with pytest.raises(GeometryError):
            random_layout(0, num_shapes=0)

    def test_too_small_clip_rejected(self):
        with pytest.raises(GeometryError):
            random_layout(5, num_shapes=3, clip_nm=300.0)

    def test_zero_attempts_raises(self):
        with pytest.raises(GeometryError):
            random_layout(5, num_shapes=3, max_attempts=0)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_any_seed_yields_valid_layout(self, seed):
        layout = random_layout(seed, num_shapes=4)
        assert 1 <= layout.num_shapes <= 4
        assert layout.pattern_area > 0
        for poly in layout.polygons:
            bbox = poly.bbox
            assert min(bbox.width, bbox.height) >= 60.0  # printable scale


class TestSuite:
    def test_count(self):
        suite = random_layout_suite(100, 3)
        assert len(suite) == 3
        assert [l.name for l in suite] == ["rand100", "rand101", "rand102"]

    def test_invalid_count(self):
        with pytest.raises(GeometryError):
            random_layout_suite(0, 0)

    @pytest.mark.slow
    def test_opc_works_on_random_clip(self, reduced_config, sim):
        # End-to-end robustness: the solver converges on generated
        # geometry it has never seen (random clips are harder than the
        # curated benchmarks, so give it the exact-mode budget).
        from repro.config import OptimizerConfig
        from repro.opc.mosaic import MosaicFast

        layout = random_layout(7, num_shapes=4)
        result = MosaicFast(
            reduced_config,
            optimizer_config=OptimizerConfig(max_iterations=60),
            simulator=sim,
        ).solve(layout)
        assert result.score.shape_violations == 0
        assert result.score.epe_violations <= 1
