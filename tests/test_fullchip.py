"""Tests for the tiled full-chip engine: ambit, tiling, stitch, scheduler.

Everything runs at a deliberately tiny scale — 16 nm pixels, 4 SOCS
kernels, a 1024 nm ambit probe — so the whole file stays in tier-1
time.  The seam-equivalence test is the load-bearing one: it pins the
core claim that tiled and monolithic imaging agree to FFT rounding when
the halo is at least the optical ambit, and that the claim has teeth
(a short halo measurably breaks it).
"""

import os

import numpy as np
import pytest

from repro.config import (
    GridSpec,
    LithoConfig,
    OpticsConfig,
    OptimizerConfig,
    ProcessConfig,
    ResistConfig,
)
from repro.errors import FullChipError
from repro.fullchip import (
    FAIL_TILES_ENV,
    AmbitModel,
    FullChipConfig,
    FullChipEngine,
    TileJob,
    ambit_model_for,
    build_tile_plan,
    run_tile_jobs,
    seam_mask_deltas,
    solve_tile_job,
    stitch_masks,
)
from repro.fullchip.stitch import build_seam_report, seam_lines
from repro.geometry.rect import Rect
from repro.geometry.raster import rasterize_layout
from repro.harness import CellStatus
from repro.workloads.generator import synthetic_canvas

PIXEL_NM = 16.0
PROBE_NM = 1024.0


@pytest.fixture(scope="module")
def fc_litho() -> LithoConfig:
    """Tiny full-chip configuration: 16 nm/px, 4 kernels."""
    return LithoConfig(
        grid=GridSpec(shape=(64, 64), pixel_nm=PIXEL_NM),
        optics=OpticsConfig(num_kernels=4),
        resist=ResistConfig(),
        process=ProcessConfig(),
    )


@pytest.fixture(scope="module")
def fc_model(fc_litho) -> AmbitModel:
    return ambit_model_for(fc_litho, probe_extent_nm=PROBE_NM)


@pytest.fixture(scope="module")
def fc_engine(fc_litho) -> FullChipEngine:
    return FullChipEngine(
        fc_litho,
        config=FullChipConfig(tile_nm=1024.0, probe_extent_nm=PROBE_NM),
    )


def _fast_config(**overrides) -> FullChipConfig:
    base = dict(tile_nm=1024.0, probe_extent_nm=PROBE_NM)
    base.update(overrides)
    return FullChipConfig(**base)


def _fast_optimizer() -> OptimizerConfig:
    return OptimizerConfig(max_iterations=3, use_jump=False)


class TestAmbitModel:
    def test_basic_shape(self, fc_model):
        assert fc_model.ambit_px > 0
        assert fc_model.ambit_nm == fc_model.ambit_px * PIXEL_NM
        for defocus, stencils in fc_model.focus_stencils.items():
            assert stencils.radius_px == fc_model.ambit_px
            h, rows, cols = stencils.stencils.shape
            assert rows == cols == 2 * fc_model.ambit_px + 1

    def test_covers_every_process_defocus(self, fc_model, fc_litho):
        expected = {0.0, fc_litho.process.defocus_range_nm}
        assert set(fc_model.defocus_values_nm) == expected

    def test_open_frame_prints_unit_intensity(self, fc_model):
        # The truncated weights are renormalized so an all-ones mask
        # images to 1.0 — truncation must not dim the model.
        sim = fc_model.simulator_for((48, 48))
        aerial = sim.aerial(np.ones((48, 48)))
        assert aerial == pytest.approx(np.ones((48, 48)), abs=1e-12)

    def test_window_too_small_for_stencil_rejected(self, fc_model):
        tiny = fc_model.min_window_px - 1
        with pytest.raises(FullChipError):
            fc_model.window_kernels((tiny, tiny))

    def test_rectangular_window_simulates(self, fc_model):
        # Regression for rectangular grids: the whole forward stack
        # must accept (rows != cols) windows — edge tiles are not square.
        grid = GridSpec.for_clip(1024.0, 512.0, PIXEL_NM)
        assert grid.shape == (32, 64)
        sim = fc_model.simulator_for(grid.shape)
        mask = np.zeros(grid.shape)
        mask[12:20, 16:48] = 1.0
        aerial = sim.aerial(mask)
        assert aerial.shape == grid.shape
        assert np.all(np.isfinite(aerial))
        assert aerial.max() > 0.1

    def test_models_are_cached_by_configuration(self, fc_litho, fc_model):
        assert ambit_model_for(fc_litho, probe_extent_nm=PROBE_NM) is fc_model


class TestSeamEquivalence:
    """Tiled == monolithic inside the cores — the subsystem's contract."""

    @pytest.fixture(scope="class")
    def chip_mask(self):
        layout = synthetic_canvas(2048.0, 2048.0, seed=3)
        grid = GridSpec.for_clip(2048.0, 2048.0, PIXEL_NM)
        return rasterize_layout(layout, grid).astype(np.float64)

    def test_cores_match_monolithic_at_ambit_halo(self, fc_engine, chip_mask):
        mono = fc_engine.aerial_monolithic(chip_mask)
        tiled = fc_engine.aerial_tiled(chip_mask)
        assert np.max(np.abs(mono - tiled)) <= 1e-9

    def test_cores_match_at_a_process_corner(self, fc_engine, chip_mask):
        model = fc_engine.model
        corner = model.simulator_for((64, 64)).corners()[-1]
        mono = fc_engine.aerial_monolithic(chip_mask, corner)
        tiled = fc_engine.aerial_tiled(chip_mask, corner=corner)
        assert np.max(np.abs(mono - tiled)) <= 1e-9

    def test_short_halo_breaks_equivalence(self, fc_litho, fc_engine, chip_mask):
        # Negative control: the test above has teeth only if an
        # undersized halo produces a measurable deviation.
        short = FullChipEngine(
            fc_litho,
            config=_fast_config(
                halo_nm=(fc_engine.model.ambit_px // 4) * PIXEL_NM
            ),
        )
        mono = short.aerial_monolithic(chip_mask)
        tiled = short.aerial_tiled(chip_mask)
        assert np.max(np.abs(mono - tiled)) > 1e-6


class TestTilePlan:
    def test_cores_partition_the_chip(self):
        plan = build_tile_plan(Rect(0, 0, 2048, 2048), 1024.0, 192.0, PIXEL_NM)
        assert plan.grid_shape == (2, 2)
        covered = np.zeros(plan.chip_shape_px, dtype=int)
        for tile in plan:
            covered[
                tile.core_rows[0] : tile.core_rows[1],
                tile.core_cols[0] : tile.core_cols[1],
            ] += 1
        assert np.all(covered == 1)

    def test_ragged_last_row_and_column(self):
        plan = build_tile_plan(Rect(0, 0, 1536, 2048), 1024.0, 128.0, PIXEL_NM)
        assert plan.grid_shape == (2, 2)
        wide = plan.tile_at((0, 0))
        narrow = plan.tile_at((0, 1))
        assert wide.core.width == 1024.0
        assert narrow.core.width == 512.0
        # Windows still carry the full halo on every side.
        assert narrow.window_shape == (64 + 16, 32 + 16)

    def test_windows_extend_past_the_chip(self):
        plan = build_tile_plan(Rect(0, 0, 2048, 2048), 1024.0, 192.0, PIXEL_NM)
        first = plan.tile_at((0, 0))
        assert first.window.x0 == -192.0 and first.window.y0 == -192.0

    def test_chip_offset_preserved(self):
        plan = build_tile_plan(Rect(512, 256, 2560, 2304), 1024.0, 192.0, PIXEL_NM)
        assert plan.tile_at((0, 0)).core.x0 == 512.0
        assert plan.tile_at((0, 0)).core.y0 == 256.0

    def test_neighbors_each_pair_once(self):
        plan = build_tile_plan(Rect(0, 0, 2048, 2048), 1024.0, 192.0, PIXEL_NM)
        pairs = list(plan.neighbors())
        assert len(pairs) == 4  # 2 horizontal + 2 vertical in a 2x2 plan
        assert len({(a.index, b.index) for a, b in pairs}) == 4

    def test_off_lattice_dimensions_rejected(self):
        with pytest.raises(FullChipError):
            build_tile_plan(Rect(0, 0, 2040, 2048), 1024.0, 192.0, PIXEL_NM)
        with pytest.raises(FullChipError):
            build_tile_plan(Rect(0, 0, 2048, 2048), 1000.0, 192.0, PIXEL_NM)
        with pytest.raises(FullChipError):
            build_tile_plan(Rect(0, 0, 2048, 2048), 1024.0, 100.0, PIXEL_NM)

    def test_unknown_tile_rejected(self):
        plan = build_tile_plan(Rect(0, 0, 2048, 2048), 1024.0, 192.0, PIXEL_NM)
        with pytest.raises(FullChipError):
            plan.tile_at((5, 5))


class TestStitch:
    @pytest.fixture()
    def plan(self):
        return build_tile_plan(Rect(0, 0, 2048, 2048), 1024.0, 192.0, PIXEL_NM)

    def test_each_core_keeps_its_own_values(self, plan):
        masks = {
            tile.index: np.full(tile.window_shape, float(i))
            for i, tile in enumerate(plan)
        }
        stitched = stitch_masks(plan, masks)
        for i, tile in enumerate(plan):
            core = stitched[
                tile.core_rows[0] : tile.core_rows[1],
                tile.core_cols[0] : tile.core_cols[1],
            ]
            assert np.all(core == float(i))

    def test_missing_tile_rejected(self, plan):
        masks = {tile.index: np.zeros(tile.window_shape) for tile in plan}
        del masks[(1, 1)]
        with pytest.raises(FullChipError):
            stitch_masks(plan, masks)

    def test_wrong_shape_rejected(self, plan):
        masks = {tile.index: np.zeros(tile.window_shape) for tile in plan}
        masks[(0, 0)] = np.zeros((10, 10))
        with pytest.raises(FullChipError):
            stitch_masks(plan, masks)

    def test_seam_deltas_measure_halo_disagreement(self, plan):
        # Constant-valued windows: tile i's halo disagrees with the
        # owning core by exactly |i - j|.
        masks = {
            tile.index: np.full(tile.window_shape, float(i))
            for i, tile in enumerate(plan)
        }
        stitched = stitch_masks(plan, masks)
        deltas = {
            (d.a_index, d.b_index): d for d in seam_mask_deltas(plan, masks, stitched)
        }
        assert deltas[((0, 0), (0, 1))].max_abs_delta == 1.0
        assert deltas[((0, 0), (1, 0))].max_abs_delta == 2.0
        assert all(d.num_pixels > 0 for d in deltas.values())

    def test_identical_windows_have_zero_delta(self, plan):
        full = np.arange(128 * 128, dtype=np.float64).reshape(128, 128)
        padded = np.pad(full, plan.halo_px)
        masks = {}
        for tile in plan:
            rows, cols = tile.window_shape
            masks[tile.index] = padded[
                tile.core_rows[0] : tile.core_rows[0] + rows,
                tile.core_cols[0] : tile.core_cols[0] + cols,
            ]
        stitched = stitch_masks(plan, masks)
        assert np.array_equal(stitched, full)
        report = build_seam_report(plan, masks, stitched)
        assert report.max_abs_mask_delta == 0.0

    def test_seam_lines_are_interior_only(self, plan):
        xs, ys = seam_lines(plan)
        assert xs == [1024.0] and ys == [1024.0]


class TestScheduler:
    def test_job_validation(self, fc_litho):
        plan = build_tile_plan(Rect(0, 0, 2048, 2048), 1024.0, 192.0, PIXEL_NM)
        tile = plan.tile_at((0, 0))
        layout = synthetic_canvas(2048.0, 2048.0, seed=1)
        window = tile.clip_layout(layout)
        with pytest.raises(FullChipError):
            TileJob(tile=tile, layout=window, litho=fc_litho, solver_mode="nope")
        with pytest.raises(FullChipError):
            TileJob(tile=tile, layout=window, litho=fc_litho, max_retries=-1)
        with pytest.raises(FullChipError):
            TileJob(tile=tile, layout=window, litho=fc_litho, timeout_s=0.0)

    def test_empty_tile_short_circuits(self, fc_litho):
        plan = build_tile_plan(Rect(0, 0, 2048, 2048), 1024.0, 192.0, PIXEL_NM)
        tile = plan.tile_at((0, 0))
        empty = synthetic_canvas(2048.0, 2048.0, seed=1).clip_to(
            Rect(10000, 10000, 11024, 12048)
        )
        job = TileJob(tile=tile, layout=empty, litho=fc_litho,
                      probe_extent_nm=PROBE_NM)
        result = solve_tile_job(job)
        assert result.ok
        assert result.mask.shape == tile.window_shape
        assert np.all(result.mask == 0.0)

    def test_halo_only_geometry_short_circuits(self, fc_litho):
        # A shape that lives entirely in the halo (it belongs to the
        # neighboring tile's core) must not trigger a solve: only cores
        # survive stitching, so the tile's contribution is all-dark.
        from repro.geometry.layout import Layout

        plan = build_tile_plan(Rect(0, 0, 2048, 1024), 1024.0, 192.0, PIXEL_NM)
        tile = plan.tile_at((0, 0))
        layout = Layout.from_rects(
            "halo-only", [Rect(1100, 500, 1200, 600)], clip=Rect(0, 0, 2048, 1024)
        )
        job = TileJob(
            tile=tile,
            layout=tile.clip_layout(layout),
            litho=fc_litho,
            probe_extent_nm=PROBE_NM,
        )
        result = solve_tile_job(job)
        assert result.ok
        assert np.all(result.mask == 0.0)
        # The same shape sits in tile (0, 1)'s core, so that tile solves.
        other = plan.tile_at((0, 1))
        assert any(
            p.bbox.intersects(other.core) for p in layout.polygons
        )

    def test_valid_region_marks_the_wrap_free_interior(self):
        from repro.fullchip.scheduler import _valid_region

        region = _valid_region((10, 8), 2)
        assert region.shape == (10, 8)
        assert np.all(region[2:-2, 2:-2] == 1.0)
        assert region.sum() == 6 * 4
        assert _valid_region((10, 8), 0) is None

    def test_solver_penalty_confined_to_valid_region(self, fc_litho):
        # The worker passes the wrap-free window interior as the
        # objective region; check the plumbing end to end by inspecting
        # the built objective's weights.
        from repro.fullchip.scheduler import _valid_region
        from repro.opc.mosaic import MosaicFast

        model = ambit_model_for(fc_litho, probe_extent_nm=PROBE_NM)
        plan = build_tile_plan(Rect(0, 0, 2048, 1024), 1024.0, 192.0, PIXEL_NM)
        tile = plan.tile_at((0, 0))
        region = _valid_region(
            tile.window_shape, min(model.ambit_px, tile.halo_px)
        )
        sim = model.simulator_for(tile.window_shape)
        solver = MosaicFast(
            litho_config=sim.config, simulator=sim, objective_region=region
        )
        layout = tile.clip_layout(synthetic_canvas(2048.0, 1024.0, seed=2))
        target = rasterize_layout(layout, sim.grid).astype(float)
        objective = solver.build_objective(target, layout)
        weights = [term.weight for _, term in objective.terms]
        assert all(w is not None and np.array_equal(w, region) for w in weights)

    def test_injected_failure_keep_going(self, fc_litho, monkeypatch):
        monkeypatch.setenv(FAIL_TILES_ENV, "0,1")
        plan = build_tile_plan(Rect(0, 0, 2048, 1024), 1024.0, 192.0, PIXEL_NM)
        layout = synthetic_canvas(2048.0, 1024.0, seed=2)
        jobs = [
            TileJob(
                tile=tile,
                layout=tile.clip_layout(layout),
                litho=fc_litho,
                optimizer=_fast_optimizer(),
                probe_extent_nm=PROBE_NM,
            )
            for tile in plan
        ]
        results = run_tile_jobs(jobs, keep_going=True)
        by_index = {r.index: r for r in results}
        assert not by_index[(0, 1)].ok
        assert "injected failure" in by_index[(0, 1)].status.error
        assert by_index[(0, 0)].ok

    def test_injected_failure_raises_without_keep_going(self, fc_litho, monkeypatch):
        monkeypatch.setenv(FAIL_TILES_ENV, "0,0")
        plan = build_tile_plan(Rect(0, 0, 1024, 1024), 1024.0, 192.0, PIXEL_NM)
        layout = synthetic_canvas(1024.0, 1024.0, seed=2)
        jobs = [
            TileJob(
                tile=tile,
                layout=tile.clip_layout(layout),
                litho=fc_litho,
                optimizer=_fast_optimizer(),
                probe_extent_nm=PROBE_NM,
            )
            for tile in plan
        ]
        with pytest.raises(FullChipError, match="injected failure"):
            run_tile_jobs(jobs, keep_going=False)

    def test_retry_recovers_after_transient_failure(self, fc_litho, tmp_path):
        # A done marker left by a previous run short-circuits the solve
        # entirely under resume=True.
        plan = build_tile_plan(Rect(0, 0, 1024, 1024), 1024.0, 192.0, PIXEL_NM)
        tile = plan.tile_at((0, 0))
        layout = synthetic_canvas(1024.0, 1024.0, seed=4)
        job = TileJob(
            tile=tile,
            layout=tile.clip_layout(layout),
            litho=fc_litho,
            optimizer=_fast_optimizer(),
            probe_extent_nm=PROBE_NM,
            checkpoint_dir=str(tmp_path),
        )
        first = solve_tile_job(job)
        assert first.ok and not first.from_cache
        assert (tmp_path / tile.name / "done.npz").is_file()

        resumed = solve_tile_job(
            TileJob(
                tile=job.tile,
                layout=job.layout,
                litho=job.litho,
                optimizer=job.optimizer,
                probe_extent_nm=PROBE_NM,
                checkpoint_dir=str(tmp_path),
                resume=True,
            )
        )
        assert resumed.ok and resumed.from_cache
        assert np.array_equal(resumed.mask, first.mask)

    def test_stale_done_marker_is_resolved(self, fc_litho, tmp_path):
        # A marker whose mask shape no longer matches the plan must be
        # ignored, not trusted.
        plan = build_tile_plan(Rect(0, 0, 1024, 1024), 1024.0, 192.0, PIXEL_NM)
        tile = plan.tile_at((0, 0))
        state = tmp_path / tile.name
        state.mkdir()
        np.savez(state / "done.npz", mask=np.zeros((3, 3)), meta_json="{}")
        layout = synthetic_canvas(1024.0, 1024.0, seed=4).clip_to(
            Rect(10000, 10000, 11024, 11024)
        )
        job = TileJob(
            tile=tile, layout=layout, litho=fc_litho,
            probe_extent_nm=PROBE_NM, checkpoint_dir=str(tmp_path), resume=True,
        )
        result = solve_tile_job(job)
        assert result.ok and not result.from_cache
        assert result.mask.shape == tile.window_shape


class TestEngine:
    def test_end_to_end_solve(self, fc_litho, tmp_path):
        layout = synthetic_canvas(2048.0, 2048.0, seed=5)
        engine = FullChipEngine(
            fc_litho,
            optimizer=_fast_optimizer(),
            config=_fast_config(checkpoint_dir=str(tmp_path)),
        )
        result = engine.solve(layout)
        assert result.all_ok
        assert result.mask.shape == (128, 128)
        assert result.plan.grid_shape == (2, 2)
        assert len(result.tile_results) == 4
        assert result.seam_report.max_abs_mask_delta <= 1.0
        table = result.format_table()
        assert "chip:" in table and "r0c0" in table
        csv_path = tmp_path / "tiles.csv"
        result.to_csv(csv_path)
        assert csv_path.read_text().startswith("tile,status,attempts")

        # Second run resumes every tile from its done marker.
        resumed_engine = FullChipEngine(
            fc_litho,
            optimizer=_fast_optimizer(),
            config=_fast_config(checkpoint_dir=str(tmp_path), resume=True),
        )
        resumed = resumed_engine.solve(layout)
        assert all(r.from_cache for r in resumed.tile_results)
        assert np.array_equal(resumed.mask, result.mask)

    def test_failed_tile_falls_back_to_target(self, fc_litho, monkeypatch):
        monkeypatch.setenv(FAIL_TILES_ENV, "1,1")
        layout = synthetic_canvas(2048.0, 2048.0, seed=5)
        engine = FullChipEngine(
            fc_litho,
            optimizer=_fast_optimizer(),
            config=_fast_config(keep_going=True),
        )
        result = engine.solve(layout)
        assert result.failed_tiles == [(1, 1)]
        assert not result.all_ok
        # The failed core is the rasterized target, not a hole.
        tile = result.plan.tile_at((1, 1))
        core = result.mask[
            tile.core_rows[0] : tile.core_rows[1],
            tile.core_cols[0] : tile.core_cols[1],
        ]
        grid = GridSpec.for_clip(2048.0, 2048.0, PIXEL_NM)
        target = rasterize_layout(layout, grid)
        expected = target[
            tile.core_rows[0] : tile.core_rows[1],
            tile.core_cols[0] : tile.core_cols[1],
        ]
        assert np.array_equal(core, expected)
        assert "--" in result.format_table()

    def test_halo_defaults_to_the_ambit(self, fc_engine):
        assert fc_engine.halo_nm == fc_engine.model.ambit_nm

    def test_config_validation(self):
        with pytest.raises(FullChipError):
            FullChipConfig(workers=0)
        with pytest.raises(FullChipError):
            FullChipConfig(halo_nm=-1.0)
        with pytest.raises(FullChipError):
            FullChipConfig(resume=True)


def test_cell_status_is_reused_from_harness():
    # The scheduler speaks the batch harness's status vocabulary so
    # downstream tooling (tables, CSV) treats tiles like batch cells.
    status = CellStatus(status="ok", attempts=1, runtime_s=0.1)
    assert status.ok
