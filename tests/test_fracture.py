"""Tests for mask fracturing (rectangle decomposition)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.config import GridSpec
from repro.errors import GridError
from repro.geometry.raster import rasterize_layout, rasterize_rect
from repro.mask.fracture import fracture_mask, fractured_layout
from repro.metrics.complexity import shot_count

GRID = GridSpec(shape=(32, 32), pixel_nm=1.0)


def refine(rects, grid=GRID):
    out = np.zeros(grid.shape, dtype=bool)
    for r in rects:
        rasterize_rect(r, grid, out=out)
    return out


class TestFracture:
    def test_rectangle_single_shot(self):
        mask = np.zeros(GRID.shape)
        mask[8:24, 8:20] = 1.0
        rects = fracture_mask(mask, GRID)
        assert len(rects) == 1
        assert rects[0].area == 16 * 12

    def test_roundtrip_identity(self):
        mask = np.zeros(GRID.shape)
        mask[8:24, 8:12] = 1.0
        mask[8:12, 8:24] = 1.0  # L-shape
        rects = fracture_mask(mask, GRID)
        assert np.array_equal(refine(rects), mask.astype(bool))

    def test_count_matches_shot_proxy(self):
        rng = np.random.default_rng(9)
        mask = (rng.uniform(size=GRID.shape) > 0.6).astype(float)
        rects = fracture_mask(mask, GRID)
        assert len(rects) == shot_count(mask, GRID)

    def test_rects_disjoint(self):
        mask = np.zeros(GRID.shape)
        mask[4:28, 4:10] = 1.0
        mask[4:10, 4:28] = 1.0
        rects = fracture_mask(mask, GRID)
        total_area = sum(r.area for r in rects)
        assert total_area == mask.sum()  # disjoint implies areas add up

    def test_pixel_scaling(self):
        grid = GridSpec(shape=(32, 32), pixel_nm=4.0)
        mask = np.zeros(grid.shape)
        mask[8:16, 8:16] = 1.0
        rects = fracture_mask(mask, grid)
        assert rects[0].area == (8 * 4) ** 2

    def test_empty_mask(self):
        assert fracture_mask(np.zeros(GRID.shape), GRID) == []

    def test_shape_checked(self):
        with pytest.raises(GridError):
            fracture_mask(np.zeros((8, 8)), GRID)

    @settings(max_examples=30, deadline=None)
    @given(hnp.arrays(np.bool_, (16, 16)))
    def test_property_roundtrip(self, mask):
        grid = GridSpec(shape=(16, 16), pixel_nm=1.0)
        rects = fracture_mask(mask.astype(float), grid)
        assert np.array_equal(refine(rects, grid), mask)


class TestFracturedLayout:
    def test_layout_exportable(self, tmp_path):
        from repro.io.gds_lite import read_gds, write_gds

        mask = np.zeros(GRID.shape)
        mask[8:24, 8:12] = 1.0
        mask[8:12, 8:24] = 1.0
        layout = fractured_layout(mask, GRID, name="FRAC")
        assert layout.name == "FRAC"
        path = tmp_path / "frac.gds"
        write_gds(layout, path)
        again = read_gds(path, clip=layout.clip)
        assert again.pattern_area == layout.pattern_area

    def test_full_flow_mask_to_gds(self, tmp_path, reduced_config, sim):
        """The real MDP handoff: optimize, fracture, export, reload."""
        from repro.config import OptimizerConfig
        from repro.io.gds_lite import read_gds, write_gds
        from repro.opc.mosaic import MosaicFast
        from repro.workloads.iccad2013 import load_benchmark

        result = MosaicFast(
            reduced_config,
            optimizer_config=OptimizerConfig(max_iterations=8),
            simulator=sim,
        ).solve(load_benchmark("B1"))
        layout = fractured_layout(result.mask, sim.grid, name="B1_OPC")
        assert layout.num_shapes == shot_count(result.mask, sim.grid)
        path = tmp_path / "b1_opc.gds"
        write_gds(layout, path)
        again = read_gds(path, clip=layout.clip)
        assert again.pattern_area == pytest.approx(
            result.mask.sum() * sim.grid.pixel_nm**2
        )
