"""Unit tests for the ILT objectives, including end-to-end gradient checks
through the full chain: mask -> SOCS imaging -> sigmoid resist -> objective."""

import numpy as np
import pytest

from repro.errors import OptimizationError
from repro.geometry.layout import Layout
from repro.geometry.raster import rasterize_layout
from repro.geometry.rect import Rect
from repro.opc.objectives import (
    CompositeObjective,
    EPEObjective,
    ImageDifferenceObjective,
    PVBandObjective,
)
from repro.opc.state import ForwardContext


@pytest.fixture()
def tiny_setup(tiny_sim):
    """A 256 nm square target plus a perturbed mask on the tiny grid."""
    grid = tiny_sim.grid
    layout = Layout.from_rects("sq", [Rect(384, 384, 640, 640)])
    target = rasterize_layout(layout, grid).astype(float)
    rng = np.random.default_rng(3)
    mask = np.clip(target + rng.uniform(-0.2, 0.4, grid.shape), 0.05, 0.95)
    return layout, target, mask


def finite_diff_check(objective, mask, sim, points=6, eps=1e-6, rel=2e-3):
    """Assert the analytic dF/dM matches finite differences at random pixels."""
    value, grad = objective.value_and_gradient(ForwardContext(mask, sim))
    rng = np.random.default_rng(11)
    checked = 0
    for _ in range(points * 4):
        i = int(rng.integers(0, mask.shape[0]))
        j = int(rng.integers(0, mask.shape[1]))
        if abs(grad[i, j]) < 1e-9:
            continue  # flat spots: fd is noise-dominated
        bumped = mask.copy()
        bumped[i, j] += eps
        value_b = objective.value(ForwardContext(bumped, sim))
        fd = (value_b - value) / eps
        assert fd == pytest.approx(grad[i, j], rel=rel, abs=1e-7)
        checked += 1
        if checked >= points:
            return
    assert checked > 0, "gradient was zero at every probed pixel"


class TestImageDifference:
    def test_gradient_matches_finite_difference(self, tiny_sim, tiny_setup):
        _, target, mask = tiny_setup
        finite_diff_check(ImageDifferenceObjective(target, gamma=4), mask, tiny_sim)

    def test_quadratic_gradient_too(self, tiny_sim, tiny_setup):
        _, target, mask = tiny_setup
        finite_diff_check(ImageDifferenceObjective(target, gamma=2), mask, tiny_sim)

    def test_value_nonnegative(self, tiny_sim, tiny_setup):
        _, target, mask = tiny_setup
        obj = ImageDifferenceObjective(target, gamma=4)
        assert obj.value(ForwardContext(mask, tiny_sim)) >= 0

    def test_normalization(self, tiny_sim, tiny_setup):
        _, target, mask = tiny_setup
        raw = ImageDifferenceObjective(target, gamma=2)
        norm = ImageDifferenceObjective(target, gamma=2, normalize=True)
        ctx = ForwardContext(mask, tiny_sim)
        assert norm.value(ctx) == pytest.approx(raw.value(ctx) / target.size)

    @pytest.mark.parametrize("gamma", [1, 3, 2.5, 0])
    def test_bad_gamma_rejected(self, tiny_setup, gamma):
        _, target, _ = tiny_setup
        with pytest.raises(OptimizationError):
            ImageDifferenceObjective(target, gamma=gamma)

    def test_shape_mismatch_rejected(self, tiny_sim, tiny_setup):
        _, target, mask = tiny_setup
        obj = ImageDifferenceObjective(target[:32, :32], gamma=2)
        with pytest.raises(OptimizationError):
            obj.value_and_gradient(ForwardContext(mask, tiny_sim))


class TestPVBand:
    def test_gradient_matches_finite_difference(self, tiny_sim, tiny_setup):
        _, target, mask = tiny_setup
        finite_diff_check(PVBandObjective(target), mask, tiny_sim)

    def test_default_corners_exclude_nominal(self, tiny_sim, tiny_setup):
        _, target, mask = tiny_setup
        obj = PVBandObjective(target)
        corners = obj.corners_for(ForwardContext(mask, tiny_sim))
        assert len(corners) == 4
        assert not any(c.is_nominal for c in corners)

    def test_explicit_corner_list(self, tiny_sim, tiny_setup):
        _, target, mask = tiny_setup
        from repro.process.corners import ProcessCorner

        corners = [ProcessCorner("d", 25.0, 1.0)]
        obj = PVBandObjective(target, corners=corners)
        assert obj.corners_for(ForwardContext(mask, tiny_sim)) == corners

    def test_empty_corner_list_rejected(self, tiny_sim, tiny_setup):
        _, target, mask = tiny_setup
        obj = PVBandObjective(target, corners=[])
        with pytest.raises(OptimizationError):
            obj.value_and_gradient(ForwardContext(mask, tiny_sim))

    def test_value_grows_with_corner_count(self, tiny_sim, tiny_setup):
        _, target, mask = tiny_setup
        ctx = ForwardContext(mask, tiny_sim)
        all_corners = tiny_sim.corners(include_nominal=False)
        one = PVBandObjective(target, corners=all_corners[:1]).value(ctx)
        four = PVBandObjective(target, corners=all_corners).value(ctx)
        assert four > one


class TestEPE:
    def test_gradient_matches_finite_difference(self, tiny_sim, tiny_setup):
        layout, target, mask = tiny_setup
        obj = EPEObjective(target, layout, tiny_sim.grid, theta_epe=1.0)
        finite_diff_check(obj, mask, tiny_sim, rel=5e-3)

    def test_dsum_zero_for_perfect_image(self, tiny_sim, tiny_setup):
        layout, target, _ = tiny_setup
        obj = EPEObjective(target, layout, tiny_sim.grid)
        assert np.allclose(obj.dsums(target), 0.0)

    def test_dsum_counts_displacement(self, tiny_sim):
        # 1 nm/px grid for exact pixel arithmetic.
        from repro.config import GridSpec

        grid = GridSpec(shape=(256, 256), pixel_nm=1.0)
        layout = Layout.from_rects("sq", [Rect(48, 88, 208, 168)], clip=Rect(0, 0, 256, 256))
        target = rasterize_layout(layout, grid).astype(float)
        shrunk = rasterize_layout(
            Layout.from_rects("s", [Rect(48, 98, 208, 158)], clip=Rect(0, 0, 256, 256)),
            grid,
        ).astype(float)  # top and bottom edges pulled in by 10 px
        obj = EPEObjective(target, layout, grid)
        dsums = obj.dsums(shrunk)
        horizontal = [
            d
            for d, s in zip(dsums, obj.samples)
            if s.orientation.value == "H"
        ]
        # Horizontal-edge samples see ~10 px of displacement.
        assert all(8.0 <= d <= 12.0 for d in horizontal)

    def test_value_counts_violations_smoothly(self, sim):
        # On the reduced grid (4 nm/px, threshold 3.75 px) a perfect image
        # has every Dsum at zero, so the smooth violation count collapses
        # to n_samples * sigmoid(-theta * threshold) — below one count.
        from repro.config import GridSpec

        grid = sim.grid
        layout = Layout.from_rects("sq", [Rect(384, 384, 640, 640)])
        target = rasterize_layout(layout, grid).astype(float)
        obj = EPEObjective(target, layout, grid)
        assert obj.dsums(target).max() == 0.0
        floor = len(obj.samples) / (1.0 + np.exp(obj.theta_epe * obj.threshold_px))
        assert floor < 1.0

    def test_empty_layout_rejected(self, tiny_sim):
        layout = Layout("empty")
        target = np.zeros(tiny_sim.grid.shape)
        with pytest.raises(OptimizationError):
            EPEObjective(target, layout, tiny_sim.grid)

    def test_paper_window_mode(self, tiny_sim, tiny_setup):
        layout, target, mask = tiny_setup
        obj = EPEObjective(
            target, layout, tiny_sim.grid, tangent_halfwidth_px=0
        )
        assert obj._window_flat.shape[1] < 32  # thin line window
        value, grad = obj.value_and_gradient(ForwardContext(mask, tiny_sim))
        assert np.isfinite(value)


class TestPenaltyWeight:
    """Per-pixel penalty weights (the full-chip valid-region mechanism)."""

    @pytest.fixture()
    def half_weight(self, tiny_sim):
        """Weight selecting the left half of the grid."""
        weight = np.zeros(tiny_sim.grid.shape)
        weight[:, : weight.shape[1] // 2] = 1.0
        return weight

    def test_unit_weight_is_identity(self, tiny_sim, tiny_setup):
        _, target, mask = tiny_setup
        plain = ImageDifferenceObjective(target, gamma=4)
        weighted = ImageDifferenceObjective(
            target, gamma=4, weight=np.ones_like(target)
        )
        ctx1, ctx2 = ForwardContext(mask, tiny_sim), ForwardContext(mask, tiny_sim)
        v1, g1 = plain.value_and_gradient(ctx1)
        v2, g2 = weighted.value_and_gradient(ctx2)
        assert v2 == pytest.approx(v1)
        assert np.allclose(g2, g1)

    def test_weight_restricts_the_penalty(self, tiny_sim, tiny_setup, half_weight):
        _, target, mask = tiny_setup
        obj = ImageDifferenceObjective(target, gamma=2, weight=half_weight)
        ctx = ForwardContext(mask, tiny_sim)
        z = ctx.soft_image(ctx.nominal)
        assert obj.value(ctx) == pytest.approx(
            float(np.sum(half_weight * (z - target) ** 2))
        )

    def test_image_diff_gradient_with_weight(self, tiny_sim, tiny_setup, half_weight):
        _, target, mask = tiny_setup
        finite_diff_check(
            ImageDifferenceObjective(target, gamma=4, weight=half_weight),
            mask,
            tiny_sim,
        )

    def test_pvband_gradient_with_weight(self, tiny_sim, tiny_setup, half_weight):
        _, target, mask = tiny_setup
        finite_diff_check(PVBandObjective(target, weight=half_weight), mask, tiny_sim)

    def test_gradient_is_zero_outside_the_region(
        self, tiny_sim, tiny_setup, half_weight
    ):
        _, target, mask = tiny_setup
        obj = ImageDifferenceObjective(target, gamma=2, weight=half_weight)
        _, grad = obj.value_and_gradient(ForwardContext(mask, tiny_sim))
        # dF/dI vanishes on zero-weight pixels; dF/dM spreads only by the
        # imaging stencil, so far-right pixels stay exactly flat.
        df_di = obj.intensity_contributions(ForwardContext(mask, tiny_sim))[1][0][1]
        assert np.all(df_di[:, half_weight.shape[1] // 2 :] == 0.0)

    def test_weight_shape_mismatch_rejected(self, tiny_setup):
        _, target, _ = tiny_setup
        with pytest.raises(OptimizationError):
            ImageDifferenceObjective(target, gamma=2, weight=np.ones((3, 3)))
        with pytest.raises(OptimizationError):
            PVBandObjective(target, weight=np.ones((3, 3)))

    def test_negative_weight_rejected(self, tiny_setup):
        _, target, _ = tiny_setup
        with pytest.raises(OptimizationError):
            PVBandObjective(target, weight=-np.ones_like(target))

    def test_epe_region_filters_samples(self, tiny_sim, tiny_setup):
        layout, target, _ = tiny_setup
        full = EPEObjective(target, layout, tiny_sim.grid)
        region = np.zeros(tiny_sim.grid.shape)
        region[:, : tiny_sim.grid.shape[1] // 2] = 1.0
        left = EPEObjective(target, layout, tiny_sim.grid, region=region)
        assert 0 < left.num_samples < full.num_samples
        half_col = tiny_sim.grid.shape[1] // 2
        assert all(s.col < half_col for s in left.samples)

    def test_epe_all_zero_region_rejected(self, tiny_sim, tiny_setup):
        layout, target, _ = tiny_setup
        with pytest.raises(OptimizationError, match="objective region"):
            EPEObjective(
                target, layout, tiny_sim.grid, region=np.zeros(tiny_sim.grid.shape)
            )

    def test_epe_region_shape_mismatch_rejected(self, tiny_sim, tiny_setup):
        layout, target, _ = tiny_setup
        with pytest.raises(OptimizationError):
            EPEObjective(target, layout, tiny_sim.grid, region=np.ones((3, 3)))


class TestComposite:
    def test_weighted_sum(self, tiny_sim, tiny_setup):
        _, target, mask = tiny_setup
        f_id = ImageDifferenceObjective(target, gamma=2)
        f_pvb = PVBandObjective(target)
        ctx = ForwardContext(mask, tiny_sim)
        v1, g1 = f_id.value_and_gradient(ctx)
        v2, g2 = f_pvb.value_and_gradient(ctx)
        comp = CompositeObjective([(2.0, f_id), (0.5, f_pvb)])
        v, g = comp.value_and_gradient(ForwardContext(mask, tiny_sim))
        assert v == pytest.approx(2.0 * v1 + 0.5 * v2)
        assert np.allclose(g, 2.0 * g1 + 0.5 * g2)

    def test_term_values_recorded(self, tiny_sim, tiny_setup):
        _, target, mask = tiny_setup
        comp = CompositeObjective(
            [(1.0, ImageDifferenceObjective(target, gamma=2)), (1.0, PVBandObjective(target))]
        )
        comp.value_and_gradient(ForwardContext(mask, tiny_sim))
        assert set(comp.last_term_values) == {"image_difference", "pvband"}

    def test_zero_weight_term_skipped_in_total(self, tiny_sim, tiny_setup):
        _, target, mask = tiny_setup
        f_id = ImageDifferenceObjective(target, gamma=2)
        single = CompositeObjective([(1.0, f_id)])
        with_zero = CompositeObjective([(1.0, f_id), (0.0, PVBandObjective(target))])
        ctx1 = ForwardContext(mask, tiny_sim)
        ctx2 = ForwardContext(mask, tiny_sim)
        assert single.value(ctx1) == pytest.approx(with_zero.value(ctx2))

    def test_empty_terms_rejected(self):
        with pytest.raises(OptimizationError):
            CompositeObjective([])

    def test_negative_weight_rejected(self, tiny_setup):
        _, target, _ = tiny_setup
        with pytest.raises(OptimizationError):
            CompositeObjective([(-1.0, ImageDifferenceObjective(target, gamma=2))])
