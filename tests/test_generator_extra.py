"""Tests for the tip-to-tip and dense-via-field generators."""

import pytest

from repro.errors import GeometryError
from repro.geometry.layout import Layout
from repro.geometry.rect import Rect
from repro.metrics.epe import measure_epe
from repro.geometry.raster import rasterize_layout
from repro.workloads.generator import dense_via_field, tip_to_tip


class TestTipToTip:
    def test_geometry(self):
        left, right = tip_to_tip(100, 400, gap=90, width=70, length=300)
        assert left.x1 == 400
        assert right.x0 == 490
        assert right.x0 - left.x1 == 90
        assert left.height == right.height == 70

    def test_bad_gap_rejected(self):
        with pytest.raises(GeometryError):
            tip_to_tip(0, 0, gap=0)

    def test_line_end_pullback_is_real(self, sim):
        """The physics the pattern exists for: printed line ends pull back
        from the drawn tips, widening the gap."""
        layout = Layout("t2t")
        layout.extend(tip_to_tip(150, 480, gap=100, width=80, length=300))
        target = rasterize_layout(layout, sim.grid).astype(float)
        from repro.mask.rules import apply_edge_bias

        # Bias so the lines print at all, then inspect the gap region.
        mask = apply_edge_bias(target, 16.0, sim.grid)
        printed = sim.print_binary(mask)
        # Drawn gap columns: x in (450, 550) nm -> cols 112..137 at 4 nm.
        row = int(520 / 4)  # line centre
        drawn_gap_px = 100 / 4
        printed_row = printed[row, :]
        # Printed gap: unset run around the drawn gap centre.
        center = int(500 / 4)
        left_edge = center
        while left_edge > 0 and not printed_row[left_edge]:
            left_edge -= 1
        right_edge = center
        while right_edge < 255 and not printed_row[right_edge]:
            right_edge += 1
        printed_gap_px = right_edge - left_edge - 1
        assert printed_gap_px > drawn_gap_px  # the pullback

    def test_opc_recovers_the_gap(self, reduced_config, sim):
        from repro.config import OptimizerConfig
        from repro.opc.mosaic import MosaicFast

        layout = Layout("t2t")
        layout.extend(tip_to_tip(150, 480, gap=100, width=80, length=300))
        result = MosaicFast(
            reduced_config,
            optimizer_config=OptimizerConfig(max_iterations=40),
            simulator=sim,
        ).solve(layout)
        report = measure_epe(sim.print_binary(result.mask), layout, sim.grid)
        assert report.num_violations <= 1


class TestDenseViaField:
    def test_count_and_pitch(self):
        vias = dense_via_field(100, 100, nx=3, ny=4, size=70, pitch=140)
        assert len(vias) == 12
        assert vias[1].y0 - vias[0].y0 == 140  # column-major order

    def test_validation(self):
        with pytest.raises(GeometryError):
            dense_via_field(0, 0, nx=1, ny=2)
        with pytest.raises(GeometryError):
            dense_via_field(0, 0, nx=2, ny=2, size=100, pitch=90)

    def test_fits_in_clip(self):
        layout = Layout("vias")
        layout.extend(dense_via_field(200, 200, nx=4, ny=4, size=70, pitch=150))
        assert layout.num_shapes == 16
        assert layout.clip.contains_rect(layout.bbox())
