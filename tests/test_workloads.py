"""Tests for benchmark layouts and the pattern generators."""

import pytest

from repro.errors import GeometryError
from repro.geometry.rect import Rect
from repro.workloads.generator import (
    comb_structure,
    contact_array,
    isolated_line,
    jog_line,
    l_shape,
    line_grating,
    t_shape,
    u_shape,
)
from repro.workloads.iccad2013 import BENCHMARK_NAMES, load_all_benchmarks, load_benchmark


class TestGenerators:
    def test_line_grating_count_and_pitch(self):
        lines = line_grating(0, 0, num_lines=4, width=60, pitch=140, length=600)
        assert len(lines) == 4
        assert lines[1].y0 - lines[0].y0 == 140
        assert all(r.height == 60 and r.width == 600 for r in lines)

    def test_line_grating_vertical(self):
        lines = line_grating(0, 0, num_lines=3, width=60, pitch=140, length=500, vertical=True)
        assert all(r.width == 60 and r.height == 500 for r in lines)
        assert lines[2].x0 == 280

    def test_line_grating_bad_pitch(self):
        with pytest.raises(GeometryError):
            line_grating(0, 0, num_lines=2, width=100, pitch=90)

    def test_isolated_line_orientations(self):
        h = isolated_line(0, 0, width=70, length=500)
        v = isolated_line(0, 0, width=70, length=500, vertical=True)
        assert (h.width, h.height) == (500, 70)
        assert (v.width, v.height) == (70, 500)

    def test_l_shape_area(self):
        poly = l_shape(0, 0, arm=300, width=70)
        # Two 300x70 arms sharing a 70x70 corner.
        assert poly.area == 2 * 300 * 70 - 70 * 70

    def test_t_shape_area(self):
        poly = t_shape(0, 0, bar=400, stem=260, width=70)
        assert poly.area == 400 * 70 + 260 * 70

    def test_u_shape_area(self):
        poly = u_shape(0, 0, span=360, height=300, width=70)
        # Bottom bar + two legs above it.
        assert poly.area == 360 * 70 + 2 * (300 - 70) * 70

    def test_jog_line_area(self):
        poly = jog_line(0, 0, length=600, width=70, jog_offset=100, jog_at=0.5)
        # Lower run + connector + upper run telescope to width*(length+offset).
        assert poly.area == pytest.approx(70 * (600 + 100))

    def test_contact_array_count(self):
        contacts = contact_array(0, 0, nx=3, ny=2, size=80, pitch=200)
        assert len(contacts) == 6
        assert all(r.area == 6400 for r in contacts)

    def test_comb_area(self):
        poly = comb_structure(
            0, 0, num_fingers=3, finger_length=300, finger_width=70,
            finger_pitch=160, spine_width=80,
        )
        spine_height = 2 * 160 + 70
        assert poly.area == 80 * spine_height + 3 * 300 * 70

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: l_shape(0, 0, arm=50, width=70),
            lambda: u_shape(0, 0, span=100, width=70),
            lambda: jog_line(0, 0, jog_at=0.05),
            lambda: comb_structure(0, 0, num_fingers=1),
            lambda: contact_array(0, 0, nx=0, ny=2),
        ],
    )
    def test_invalid_parameters_rejected(self, factory):
        with pytest.raises(GeometryError):
            factory()


class TestBenchmarks:
    def test_all_ten_load(self):
        benchmarks = load_all_benchmarks()
        assert list(benchmarks) == list(BENCHMARK_NAMES)

    def test_names_match(self):
        for name in BENCHMARK_NAMES:
            assert load_benchmark(name).name == name

    def test_clip_is_contest_size(self):
        for layout in load_all_benchmarks().values():
            assert layout.clip == Rect(0, 0, 1024, 1024)

    def test_shapes_inside_clip(self):
        for layout in load_all_benchmarks().values():
            bbox = layout.bbox()
            assert layout.clip.contains_rect(bbox)

    def test_deterministic(self):
        a = load_benchmark("B4")
        b = load_benchmark("B4")
        assert [p.vertices for p in a.polygons] == [p.vertices for p in b.polygons]

    def test_nonzero_areas_span_range(self):
        areas = [l.pattern_area for l in load_all_benchmarks().values()]
        assert min(areas) > 10_000
        assert max(areas) > 3 * min(areas)  # difficulty spread

    def test_b10_has_largest_pattern_area(self):
        benchmarks = load_all_benchmarks()
        areas = {name: l.pattern_area for name, l in benchmarks.items()}
        assert areas["B10"] == max(areas.values())
        assert areas["B1"] == min(areas.values())

    def test_unknown_name_rejected(self):
        with pytest.raises(GeometryError):
            load_benchmark("B11")

    def test_min_feature_width_printable_scale(self):
        # All features are >= 60 nm wide (32 nm-node M1 drawn scale).
        for layout in load_all_benchmarks().values():
            for poly in layout.polygons:
                bbox = poly.bbox
                assert min(bbox.width, bbox.height) >= 60
