"""Unit tests for repro.metrics.complexity."""

import numpy as np
import pytest

from repro.config import GridSpec
from repro.errors import GridError
from repro.metrics.complexity import (
    corner_count,
    edge_length_nm,
    mask_complexity,
    shot_count,
)

GRID = GridSpec(shape=(32, 32), pixel_nm=1.0)


def rect_mask(i0=8, i1=24, j0=8, j1=20):
    mask = np.zeros(GRID.shape)
    mask[i0:i1, j0:j1] = 1.0
    return mask


class TestEdgeLength:
    def test_rectangle_perimeter(self):
        assert edge_length_nm(rect_mask(), GRID) == 2 * (16 + 12)

    def test_pixel_scaling(self):
        grid = GridSpec(shape=(32, 32), pixel_nm=4.0)
        assert edge_length_nm(rect_mask(), grid) == 4 * 2 * (16 + 12)

    def test_empty(self):
        assert edge_length_nm(np.zeros(GRID.shape), GRID) == 0.0

    def test_jagged_longer_than_smooth(self):
        smooth = rect_mask()
        jagged = rect_mask()
        jagged[24, 10] = 1.0  # bump adds edge length
        assert edge_length_nm(jagged, GRID) > edge_length_nm(smooth, GRID)


class TestCornerCount:
    def test_rectangle_four_corners(self):
        assert corner_count(rect_mask(), GRID) == 4

    def test_l_shape_six_corners(self):
        mask = np.zeros(GRID.shape)
        mask[8:24, 8:12] = 1.0
        mask[8:12, 8:24] = 1.0
        assert corner_count(mask, GRID) == 6

    def test_bump_adds_corners(self):
        bumped = rect_mask()
        bumped[24, 10] = 1.0
        assert corner_count(bumped, GRID) == 8


class TestShotCount:
    def test_rectangle_one_shot(self):
        assert shot_count(rect_mask(), GRID) == 1

    def test_two_disjoint_rects_two_shots(self):
        mask = rect_mask()
        mask[2:6, 26:30] = 1.0
        assert shot_count(mask, GRID) == 2

    def test_l_shape_two_shots(self):
        mask = np.zeros(GRID.shape)
        mask[8:24, 8:12] = 1.0
        mask[8:12, 8:24] = 1.0
        assert shot_count(mask, GRID) == 2

    def test_staircase_many_shots(self):
        mask = np.zeros(GRID.shape)
        for k in range(6):
            mask[8 + k, 8: 10 + k] = 1.0  # widening staircase
        assert shot_count(mask, GRID) == 6

    def test_empty_zero(self):
        assert shot_count(np.zeros(GRID.shape), GRID) == 0


class TestMaskComplexity:
    def test_summary_consistent(self):
        mask = rect_mask()
        summary = mask_complexity(mask, GRID)
        assert summary.figure_count == 1
        assert summary.edge_length_nm == edge_length_nm(mask, GRID)
        assert summary.corner_count == 4
        assert summary.shot_count == 1

    def test_ilt_mask_more_complex_than_target(self, sim, reduced_config):
        # An optimized ILT mask must cost more shots than the drawn target
        # — the e-beam write-time concern the cleanup module addresses.
        from repro.config import OptimizerConfig
        from repro.geometry.raster import rasterize_layout
        from repro.opc.mosaic import MosaicFast
        from repro.workloads.iccad2013 import load_benchmark

        layout = load_benchmark("B1")
        grid = sim.grid
        target = rasterize_layout(layout, grid).astype(float)
        result = MosaicFast(
            reduced_config,
            optimizer_config=OptimizerConfig(max_iterations=8),
            simulator=sim,
        ).solve(layout)
        assert (
            mask_complexity(result.mask, grid).shot_count
            > mask_complexity(target, grid).shot_count
        )

    def test_shape_mismatch_rejected(self):
        with pytest.raises(GridError):
            mask_complexity(np.zeros((8, 8)), GRID)
