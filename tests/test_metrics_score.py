"""Unit tests for repro.metrics.score (contest scoring, Eq. 22)."""

import numpy as np
import pytest

from repro.geometry.layout import Layout
from repro.geometry.raster import rasterize_layout
from repro.geometry.rect import Rect
from repro.metrics.score import ScoreBreakdown, contest_score


class TestScoreBreakdown:
    def test_weights(self):
        s = ScoreBreakdown(
            runtime_s=10.0, pv_band_nm2=100.0, epe_violations=2, shape_violations=1
        )
        assert s.total == 10.0 + 4 * 100.0 + 5000 * 2 + 10000 * 1

    def test_zero_everything(self):
        s = ScoreBreakdown(0.0, 0.0, 0, 0)
        assert s.total == 0.0

    def test_str_contains_components(self):
        s = ScoreBreakdown(1.5, 200.0, 3, 0)
        text = str(s)
        assert "#EPE=3" in text
        assert "PVB=200" in text

    def test_epe_dominates_small_pvb(self):
        # One EPE violation outweighs 1000 nm^2 of PV band (5000 > 4000):
        # the weighting that drives MOSAIC's alpha/beta choice.
        with_epe = ScoreBreakdown(0, 0, 1, 0)
        with_pvb = ScoreBreakdown(0, 1000, 0, 0)
        assert with_epe.total > with_pvb.total


class TestContestScore:
    def test_biased_wide_square_scores_clean(self, sim):
        # Even a huge square under-prints from the raw target (edge
        # intensity sits well below threshold — the iso-dense bias that
        # motivates OPC); a 16 nm uniform bias fixes it completely.
        from repro.mask.rules import apply_edge_bias

        layout = Layout.from_rects("big", [Rect(256, 256, 768, 768)])
        target = rasterize_layout(layout, sim.grid).astype(float)
        raw = contest_score(sim, target, layout)
        assert raw.epe_violations > 0
        biased = apply_edge_bias(target, 16.0, sim.grid)
        s = contest_score(sim, biased, layout, runtime_s=2.0)
        assert s.epe_violations == 0
        assert s.shape_violations == 0
        assert s.runtime_s == 2.0
        assert s.pv_band_nm2 > 0  # edges always move a little across corners

    def test_binarizes_continuous_mask(self, sim):
        layout = Layout.from_rects("big", [Rect(256, 256, 768, 768)])
        target = rasterize_layout(layout, sim.grid).astype(float)
        soft = np.clip(target * 0.9 + 0.05, 0, 1)  # continuous in (0,1)
        s_soft = contest_score(sim, soft, layout)
        s_hard = contest_score(sim, target, layout)
        assert s_soft.pv_band_nm2 == s_hard.pv_band_nm2
        assert s_soft.epe_violations == s_hard.epe_violations

    def test_empty_mask_all_violations(self, sim):
        layout = Layout.from_rects("big", [Rect(256, 256, 768, 768)])
        s = contest_score(sim, np.zeros(sim.grid.shape), layout)
        assert s.epe_violations > 0
        assert s.total >= 5000 * s.epe_violations
