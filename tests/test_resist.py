"""Unit tests for repro.resist.threshold."""

import numpy as np
import pytest
from hypothesis import given, strategies as st
from hypothesis.extra import numpy as hnp

from repro.config import ResistConfig
from repro.errors import ProcessError
from repro.resist.threshold import (
    ThresholdResist,
    hard_threshold,
    sigmoid_threshold,
    sigmoid_threshold_derivative,
)

CFG = ResistConfig()


class TestHardThreshold:
    def test_step_at_threshold(self):
        intensity = np.array([[0.49, 0.5, 0.51]])
        printed = hard_threshold(intensity, CFG)
        assert printed.tolist() == [[False, False, True]]

    def test_dtype_bool(self):
        assert hard_threshold(np.zeros((2, 2)), CFG).dtype == bool


class TestSigmoidThreshold:
    def test_half_at_threshold(self):
        z = sigmoid_threshold(np.array([[CFG.threshold]]), CFG)
        assert z[0, 0] == pytest.approx(0.5)

    def test_paper_figure_values(self):
        # Paper Fig. 2: theta_Z = 50, th_r = 0.5 — steep but smooth.
        z = sigmoid_threshold(np.array([[0.3, 0.5, 0.7]]), CFG)
        assert z[0, 0] < 0.01
        assert z[0, 2] > 0.99

    def test_monotone(self):
        intensity = np.linspace(0, 1, 101).reshape(1, -1)
        z = sigmoid_threshold(intensity, CFG)
        assert np.all(np.diff(z[0]) > 0)

    @given(
        hnp.arrays(
            np.float64,
            (4, 4),
            elements=st.floats(min_value=0.0, max_value=2.0),
        )
    )
    def test_bounded(self, intensity):
        # Closed bounds: float64 rounds the sigmoid to exactly 1.0 for
        # intensities far above threshold.
        z = sigmoid_threshold(intensity, CFG)
        assert np.all((z >= 0) & (z <= 1))

    def test_agreement_with_hard_threshold_away_from_edge(self):
        intensity = np.array([[0.2, 0.8]])
        soft = sigmoid_threshold(intensity, CFG) > 0.5
        hard = hard_threshold(intensity, CFG)
        assert np.array_equal(soft, hard)


class TestDerivative:
    def test_matches_finite_difference(self):
        intensity = np.linspace(0.3, 0.7, 9).reshape(1, -1)
        eps = 1e-7
        z = sigmoid_threshold(intensity, CFG)
        analytic = sigmoid_threshold_derivative(z, CFG)
        numeric = (sigmoid_threshold(intensity + eps, CFG) - z) / eps
        assert np.allclose(analytic, numeric, rtol=1e-4)

    def test_peak_at_threshold(self):
        z = sigmoid_threshold(np.array([[0.4, 0.5, 0.6]]), CFG)
        d = sigmoid_threshold_derivative(z, CFG)
        assert d[0, 1] == d.max()
        assert d[0, 1] == pytest.approx(CFG.theta_z / 4.0)


class TestFacadeAndConfig:
    def test_facade_paths_agree(self):
        model = ThresholdResist(CFG)
        intensity = np.random.default_rng(0).uniform(0, 1, (8, 8))
        assert np.array_equal(model.develop(intensity), hard_threshold(intensity, CFG))
        assert np.array_equal(
            model.develop_soft(intensity), sigmoid_threshold(intensity, CFG)
        )

    @pytest.mark.parametrize("threshold", [0.0, 1.0, -0.1, 1.5])
    def test_bad_threshold_rejected(self, threshold):
        with pytest.raises(ProcessError):
            ResistConfig(threshold=threshold)

    def test_bad_steepness_rejected(self):
        with pytest.raises(ProcessError):
            ResistConfig(theta_z=0.0)
