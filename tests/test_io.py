"""Tests for layout (GLP) and image I/O."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import GridError, LayoutIOError
from repro.geometry.layout import Layout
from repro.geometry.rect import Rect
from repro.io.glp import dumps_glp, loads_glp, read_glp, write_glp
from repro.io.images import ascii_render, save_npz_images, save_pgm
from repro.workloads.iccad2013 import load_all_benchmarks

SAMPLE = """
# comment line
CLIP demo 0 0 1024 1024
RECT 100 100 300 200
POLY 400 400 700 400 700 700 600 700 600 500 400 500
END
"""


class TestGLPParse:
    def test_sample_roundtrip_semantics(self):
        layout = loads_glp(SAMPLE)
        assert layout.name == "demo"
        assert layout.num_shapes == 2
        assert layout.pattern_area == 200 * 100 + (300 * 100 + 100 * 200)

    def test_dumps_then_loads(self):
        layout = loads_glp(SAMPLE)
        again = loads_glp(dumps_glp(layout))
        assert again.name == layout.name
        assert [p.vertices for p in again.polygons] == [p.vertices for p in layout.polygons]

    def test_benchmarks_roundtrip(self):
        for layout in load_all_benchmarks().values():
            again = loads_glp(dumps_glp(layout))
            assert again.pattern_area == pytest.approx(layout.pattern_area)

    def test_file_roundtrip(self, tmp_path):
        layout = loads_glp(SAMPLE)
        path = tmp_path / "demo.glp"
        write_glp(layout, path)
        assert read_glp(path).pattern_area == layout.pattern_area

    @pytest.mark.parametrize(
        "text",
        [
            "RECT 0 0 10 10",                        # shape before CLIP
            "CLIP a 0 0 10 10\nCLIP b 0 0 10 10",    # duplicate clip
            "CLIP a 0 0 10 10\nRECT 1 2 3",           # short RECT
            "CLIP a 0 0 10 10\nPOLY 0 0 5 0 5 5",     # short POLY
            "CLIP a 0 0 10 10\nBLOB 1 2 3 4",         # unknown keyword
            "CLIP a 0 0 10 x",                        # bad number
            "CLIP a 0 0 10 10\nEND\nRECT 0 0 5 5",    # content after END
            "# only comments",                          # no clip at all
        ],
    )
    def test_malformed_rejected(self, text):
        with pytest.raises(LayoutIOError):
            loads_glp(text)

    def test_missing_file(self, tmp_path):
        with pytest.raises(LayoutIOError):
            read_glp(tmp_path / "nope.glp")

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=900),
                st.integers(min_value=0, max_value=900),
                st.integers(min_value=1, max_value=100),
                st.integers(min_value=1, max_value=100),
            ),
            min_size=1,
            max_size=5,
        )
    )
    def test_property_roundtrip(self, rect_specs):
        layout = Layout("prop", clip=Rect(0, 0, 1024, 1024))
        for x, y, w, h in rect_specs:
            layout.add(Rect.from_size(x, y, w, h))
        again = loads_glp(dumps_glp(layout))
        assert again.num_shapes == layout.num_shapes
        assert again.pattern_area == pytest.approx(layout.pattern_area)


class TestImages:
    def test_npz_roundtrip(self, tmp_path):
        path = tmp_path / "bundle.npz"
        a = np.arange(12).reshape(3, 4)
        save_npz_images(path, {"a": a})
        loaded = np.load(path)
        assert np.array_equal(loaded["a"], a)

    def test_npz_empty_rejected(self, tmp_path):
        with pytest.raises(GridError):
            save_npz_images(tmp_path / "x.npz", {})

    def test_pgm_header_and_size(self, tmp_path):
        path = tmp_path / "img.pgm"
        save_pgm(path, np.random.default_rng(0).uniform(size=(10, 20)))
        data = path.read_bytes()
        assert data.startswith(b"P5\n20 10\n255\n")
        assert len(data) == len(b"P5\n20 10\n255\n") + 200

    def test_pgm_constant_image(self, tmp_path):
        path = tmp_path / "flat.pgm"
        save_pgm(path, np.full((4, 4), 3.0))
        assert path.exists()

    def test_pgm_rejects_1d(self, tmp_path):
        with pytest.raises(GridError):
            save_pgm(tmp_path / "x.pgm", np.arange(5))

    def test_ascii_render_dimensions(self):
        img = np.zeros((64, 64))
        img[20:40, 20:40] = 1.0
        text = ascii_render(img, width=32)
        lines = text.splitlines()
        assert len(lines[0]) == 32
        assert len(lines) == 16  # half aspect for character height

    def test_ascii_render_shows_feature(self):
        img = np.zeros((64, 64))
        img[28:36, 28:36] = 1.0
        text = ascii_render(img, width=32)
        assert "@" in text
        assert " " in text
