"""Unit tests for repro.litho.simulator (shared reduced-scale simulator)."""

import numpy as np
import pytest

from repro.process.corners import ProcessCorner, nominal_corner


@pytest.fixture()
def line_mask(sim):
    mask = np.zeros(sim.grid.shape)
    mask[119:137, 64:192] = 1.0  # 72 nm x 512 nm line at 4 nm/px
    return mask


class TestKernelCache:
    def test_same_defocus_cached(self, sim):
        assert sim.kernels_at(0.0) is sim.kernels_at(0.0)

    def test_distinct_defocus_distinct_kernels(self, sim):
        assert sim.kernels_at(0.0) is not sim.kernels_at(25.0)

    def test_prewarm_builds_all(self, sim):
        defocus_values = {c.defocus_nm for c in sim.corners()}
        for d in defocus_values:
            assert d in sim._kernel_cache


class TestForward:
    def test_aerial_defaults_to_nominal(self, sim, line_mask):
        assert np.array_equal(
            sim.aerial(line_mask), sim.aerial(line_mask, nominal_corner())
        )

    def test_wide_line_prints(self, sim):
        mask = np.zeros(sim.grid.shape)
        mask[96:160, 64:192] = 1.0  # 256 nm wide: safely printable
        printed = sim.print_binary(mask)
        assert printed[128, 128]

    def test_narrow_target_fails_to_print(self, sim, line_mask):
        # A 72 nm line printed from the raw target mask never clears the
        # resist threshold: the motivation for OPC.
        printed = sim.print_binary(line_mask)
        assert printed.sum() == 0

    def test_medium_target_underprints(self, sim):
        # A 128 nm line prints, but thinner than drawn.
        mask = np.zeros(sim.grid.shape)
        mask[112:144, 64:192] = 1.0
        printed = sim.print_binary(mask)
        assert 0 < printed.sum() < mask.sum()

    def test_soft_and_hard_consistent(self, sim, line_mask):
        soft = sim.print_soft(line_mask)
        hard = sim.print_binary(line_mask)
        assert np.array_equal(soft > 0.5, hard)

    def test_higher_dose_prints_more(self, sim, line_mask):
        low = sim.print_binary(line_mask, ProcessCorner("lo", 0.0, 0.98))
        high = sim.print_binary(line_mask, ProcessCorner("hi", 0.0, 1.02))
        assert high.sum() >= low.sum()

    def test_defocus_blurs(self, sim, line_mask):
        focused = sim.aerial(line_mask)
        defocused = sim.aerial(line_mask, ProcessCorner("df", 25.0, 1.0))
        # Defocus lowers peak intensity of a narrow feature.
        assert defocused.max() < focused.max() + 1e-12

    def test_print_all_corners_count(self, sim, line_mask):
        images = sim.print_all_corners(line_mask)
        assert len(images) == len(sim.corners())


class TestPVBandPaths:
    def test_empty_mask_zero_band(self, sim):
        assert sim.pv_band_area(np.zeros(sim.grid.shape)) == 0.0

    def test_band_mask_matches_area(self, sim, line_mask):
        band = sim.pv_band(line_mask)
        area = sim.pv_band_area(line_mask)
        assert area == band.sum() * sim.grid.pixel_nm**2
