"""Unit tests for repro.metrics.imagequality (ILS / NILS / contrast)."""

import numpy as np
import pytest

from repro.config import GridSpec
from repro.errors import GridError
from repro.geometry.edges import generate_sample_points
from repro.geometry.layout import Layout
from repro.geometry.raster import rasterize_layout
from repro.geometry.rect import Rect
from repro.metrics.imagequality import (
    edge_slopes,
    hotspot_samples,
    image_contrast,
    image_log_slope,
)

GRID = GridSpec(shape=(64, 64), pixel_nm=4.0)
CLIP = Rect(0, 0, 256, 256)


@pytest.fixture()
def layout():
    return Layout.from_rects("sq", [Rect(64, 64, 192, 192)], clip=CLIP)


@pytest.fixture()
def samples(layout):
    return generate_sample_points(layout, GRID)


class TestImageLogSlope:
    def test_sharp_edge_high_ils(self, layout, samples):
        target = rasterize_layout(layout, GRID).astype(float)
        slope = image_log_slope(target, samples[0], GRID, feature_width_nm=128)
        assert slope.ils > 0
        assert slope.nils == pytest.approx(slope.ils * 128)

    def test_flat_image_zero_ils(self, samples):
        flat = np.full(GRID.shape, 0.7)
        slope = image_log_slope(flat, samples[0], GRID, feature_width_nm=128)
        assert slope.ils == 0.0

    def test_blurred_edge_lower_than_sharp(self, layout, samples):
        from scipy import ndimage

        target = rasterize_layout(layout, GRID).astype(float)
        blurred = ndimage.gaussian_filter(target, sigma=3)
        sharp = image_log_slope(target, samples[0], GRID, 128)
        soft = image_log_slope(blurred, samples[0], GRID, 128)
        assert soft.ils < sharp.ils

    def test_shape_mismatch_rejected(self, samples):
        with pytest.raises(GridError):
            image_log_slope(np.zeros((8, 8)), samples[0], GRID, 128)


class TestEdgeSlopesAndHotspots:
    def test_all_samples_measured(self, layout, samples):
        target = rasterize_layout(layout, GRID).astype(float)
        slopes = edge_slopes(target, samples, GRID)
        assert len(slopes) == len(samples)

    def test_hotspot_threshold_filters(self, layout, samples):
        from scipy import ndimage

        target = rasterize_layout(layout, GRID).astype(float)
        blurred = ndimage.gaussian_filter(target, sigma=5)
        slopes = edge_slopes(blurred, samples, GRID, feature_width_nm=128)
        nils_values = sorted(s.nils for s in slopes)
        mid = nils_values[len(nils_values) // 2]
        hot = hotspot_samples(slopes, nils_threshold=mid)
        assert 0 < len(hot) < len(slopes)

    def test_opc_moves_edge_intensity_to_threshold(self, sim, reduced_config):
        # After OPC the aerial intensity at the target edges sits near the
        # resist threshold (that is what places the printed edge there);
        # before OPC the unprintable line's edges are far below it.
        from repro.config import OptimizerConfig
        from repro.opc.mosaic import MosaicFast
        from repro.workloads.iccad2013 import load_benchmark

        layout = load_benchmark("B1")
        grid = sim.grid
        target = rasterize_layout(layout, grid).astype(float)
        pts = generate_sample_points(layout, grid)
        threshold = reduced_config.resist.threshold

        def mean_edge_gap(intensity):
            return float(
                np.mean([abs(intensity[s.row, s.col] - threshold) for s in pts])
            )

        before = mean_edge_gap(sim.aerial(target))
        result = MosaicFast(
            reduced_config,
            optimizer_config=OptimizerConfig(max_iterations=10),
            simulator=sim,
        ).solve(layout)
        after = mean_edge_gap(sim.aerial(result.mask))
        assert after < before


class TestImageContrast:
    def test_perfect_binary_full_contrast(self, layout):
        target = rasterize_layout(layout, GRID).astype(float)
        assert image_contrast(target, target) == pytest.approx(1.0)

    def test_flat_image_zero_contrast(self, layout):
        target = rasterize_layout(layout, GRID).astype(float)
        assert image_contrast(np.full(GRID.shape, 0.5), target) == pytest.approx(0.0)

    def test_empty_target_rejected(self):
        with pytest.raises(GridError):
            image_contrast(np.zeros(GRID.shape), np.zeros(GRID.shape))
