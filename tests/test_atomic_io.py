"""Atomic-writer / live-reader contracts under concurrent access.

``repro watch``, the service progress feed, and queue workers all read
files that another process rewrites continuously.  The atomic-write
discipline (tmp + ``os.replace``) promises a reader sees a complete
file or none at all — these tests hammer that promise with a real
writer/reader race instead of trusting the docstring.
"""

import json
import threading

import numpy as np
import pytest

from repro.errors import ReproError
from repro.fullchip.queue import TileJobQueue, load_queue_state
from repro.obs.live import StatusWriter, load_status
from repro.utils.io import write_json_atomic, write_text_atomic

HAMMER_ROUNDS = 300


def _hammer(read_once, stop):
    """Run ``read_once`` until ``stop`` is set; return collected errors."""
    errors = []

    def loop():
        while not stop.is_set():
            try:
                read_once()
            except Exception as exc:  # noqa: BLE001 - the test's whole point
                errors.append(exc)
                return

    thread = threading.Thread(target=loop)
    thread.start()
    return thread, errors


class TestWriteAtomic:
    def test_reader_never_sees_torn_json(self, tmp_path):
        path = tmp_path / "status.json"
        # Large enough that a non-atomic write would be observably torn.
        write_json_atomic(path, {"seq": 0, "blob": "x" * 4096})
        seen = []

        def read_once():
            payload = json.loads(path.read_text())
            assert payload["blob"] == "x" * 4096
            seen.append(payload["seq"])

        stop = threading.Event()
        thread, errors = _hammer(read_once, stop)
        for seq in range(1, HAMMER_ROUNDS):
            write_json_atomic(path, {"seq": seq, "blob": "x" * 4096})
        stop.set()
        thread.join(timeout=30)
        assert not errors, f"reader saw a torn write: {errors[0]!r}"
        # Single writer: the sequence a reader observes is monotonic.
        assert seen == sorted(seen)

    def test_write_text_atomic_leaves_no_tmp_droppings(self, tmp_path):
        path = tmp_path / "out.txt"
        for i in range(20):
            write_text_atomic(path, f"round {i}\n")
        assert list(tmp_path.iterdir()) == [path]
        assert path.read_text() == "round 19\n"

    def test_interrupted_write_keeps_old_content(self, tmp_path, monkeypatch):
        path = tmp_path / "keep.json"
        write_json_atomic(path, {"ok": True})

        import repro.utils.io as io_mod

        def boom(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(io_mod.os, "replace", boom)
        with pytest.raises(OSError):
            write_json_atomic(path, {"ok": False})
        monkeypatch.undo()
        # The old payload survives intact and the temp file is cleaned up.
        assert json.loads(path.read_text()) == {"ok": True}
        assert list(tmp_path.iterdir()) == [path]


class TestStatusFeedHammer:
    def test_load_status_during_rewrites(self, tmp_path):
        tiles = {f"t{i}_0": (i, 0) for i in range(4)}
        writer = StatusWriter(tmp_path, tiles, layout="synth", workers=2)
        writer.write()

        def read_once():
            payload = load_status(tmp_path)
            counts = payload["tiles"]
            assert counts["total"] == 4
            assert payload["state"] in ("running", "done", "failed")

        stop = threading.Event()
        thread, errors = _hammer(read_once, stop)
        for _ in range(HAMMER_ROUNDS // len(tiles)):
            for name in tiles:
                writer.mark_running(name, pid=123)
                writer.write()
                writer.mark_done(name, "ok")
                writer.write()
        writer.finalize()
        writer.write()
        stop.set()
        thread.join(timeout=30)
        assert not errors, f"load_status raised mid-rewrite: {errors[0]!r}"
        assert load_status(tmp_path)["state"] == "done"

    def test_load_status_missing_dir_raises(self, tmp_path):
        with pytest.raises(ReproError):
            load_status(tmp_path / "nope")


class TestQueueStateHammer:
    def test_load_queue_state_during_transitions(self, tmp_path):
        jobs = {f"t{i}_0": ((i, 0), {"tile": i}) for i in range(6)}
        queue = TileJobQueue.create(tmp_path / "queue", jobs)

        def read_once():
            state = load_queue_state(tmp_path / "queue")
            assert state is not None
            counts = state["counts"]
            assert counts["total"] == 6
            # A snapshot mid-transition may catch a ticket between
            # directories, but never invents tiles.
            assert counts["pending"] + counts["leased"] + counts["done"] + counts[
                "failed"
            ] + counts["quarantined"] <= 6

        stop = threading.Event()
        thread, errors = _hammer(read_once, stop)
        mask = np.zeros((4, 4), dtype=bool)
        done = 0
        while True:
            claim = queue.claim()
            if claim is None:
                break
            if done % 2 == 0:
                assert queue.complete(claim, mask, {"elapsed_s": 0.1})
            else:
                assert queue.fail(claim, {"error": "synthetic"})
            done += 1
        stop.set()
        thread.join(timeout=30)
        assert not errors, f"load_queue_state raised mid-claim: {errors[0]!r}"
        final = load_queue_state(tmp_path / "queue")["counts"]
        assert final["done"] == 3 and final["failed"] == 3
        assert final["pending"] == final["leased"] == 0
