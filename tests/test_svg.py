"""Tests for SVG rendering."""

import numpy as np
import pytest

from repro.config import GridSpec
from repro.errors import GridError
from repro.geometry.layout import Layout
from repro.geometry.rect import Rect
from repro.io.svg import render_svg, save_svg

GRID = GridSpec(shape=(64, 64), pixel_nm=16.0)


@pytest.fixture()
def layout():
    return Layout.from_rects("sq", [Rect(256, 256, 512, 640)])


def square_image():
    img = np.zeros(GRID.shape, dtype=bool)
    img[16:40, 16:32] = True
    return img


class TestRenderSVG:
    def test_minimal_document(self):
        svg = render_svg((1024, 1024))
        assert svg.startswith("<svg")
        assert svg.endswith("</svg>")
        assert 'viewBox="0 0 1024 1024"' in svg

    def test_layout_layer(self, layout):
        svg = render_svg((1024, 1024), layout=layout)
        assert "<polygon" in svg

    def test_mask_layer_uses_fractured_rects(self):
        svg = render_svg((1024, 1024), mask=square_image().astype(float), grid=GRID)
        # One rectangle: the mask is a single rect, fracturing is exact.
        assert svg.count("<rect") == 2  # background + the mask rect

    def test_printed_contours(self):
        svg = render_svg((1024, 1024), printed=square_image(), grid=GRID)
        assert "<line" in svg
        assert "stroke=" in svg

    def test_pv_band_layer(self):
        band = np.zeros(GRID.shape, dtype=bool)
        band[10:12, 10:30] = True
        svg = render_svg((1024, 1024), pv_band=band, grid=GRID)
        assert "#dc2626" in svg

    def test_title(self):
        svg = render_svg((1024, 1024), title="B1 result")
        assert "B1 result" in svg

    def test_y_axis_flipped(self, layout):
        # The polygon's lowest drawn y (256) must map near the bottom of
        # the 1024-tall viewBox (y_svg = 1024 - 256 = 768).
        svg = render_svg((1024, 1024), layout=layout)
        assert "768.00" in svg

    def test_image_layer_without_grid_rejected(self):
        with pytest.raises(GridError):
            render_svg((1024, 1024), mask=square_image().astype(float))


class TestSaveSVG:
    def test_writes_file(self, tmp_path, layout):
        path = tmp_path / "fig.svg"
        save_svg(path, (1024, 1024), layout=layout, title="demo")
        text = path.read_text()
        assert text.startswith("<svg")
        assert "demo" in text

    def test_full_stack_render(self, tmp_path, sim, reduced_config):
        from repro.config import OptimizerConfig
        from repro.opc.mosaic import MosaicFast
        from repro.workloads.iccad2013 import load_benchmark

        layout = load_benchmark("B1")
        result = MosaicFast(
            reduced_config,
            optimizer_config=OptimizerConfig(max_iterations=8),
            simulator=sim,
        ).solve(layout)
        path = tmp_path / "b1.svg"
        save_svg(
            path,
            (1024, 1024),
            layout=layout,
            mask=result.mask,
            printed=sim.print_binary(result.mask),
            pv_band=sim.pv_band(result.mask),
            grid=sim.grid,
            title="B1 MOSAIC_fast",
        )
        text = path.read_text()
        assert "<polygon" in text and "<line" in text and "<rect" in text
