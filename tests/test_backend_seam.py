"""The array-backend seam: registry, conformance, and the equivalence battery.

Four layers, mirroring the seam's contract (``src/repro/xp/base.py``):

1. **Spec grammar & registry** — parsing, canonicalization, the
   ``REPRO_ARRAY_BACKEND`` resolution chain, and the per-process
   singleton cache that lets every tile in a fullchip worker share one
   backend instance.
2. **Config validation** — ``OpticsConfig`` / ``OptimizerConfig`` /
   ``FullChipConfig`` reject unknown specs eagerly with
   :class:`~repro.errors.OpticsError` and canonicalize valid ones,
   without importing torch/cupy.
3. **Adapter conformance** — per registered backend (skipping absent
   libraries): dtype round-trips through ``asarray``/``to_numpy``,
   ``fft2 ∘ ifft2`` identity, elementwise ops against numpy, and the
   identity-keyed device kernel cache.
4. **Golden history** — the checked-in 10-iteration ``mosaic_fast``
   trajectory is reproduced on every backend: tightly on the float64
   reference, within the float32 A/B gate elsewhere (measured headroom
   is ~40x: observed float32 drift ~2.6e-7 relative vs the 1e-5 gate).
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.config import LithoConfig, OpticsConfig, OptimizerConfig
from repro.errors import OpticsError
from repro.litho.simulator import LithographySimulator
from repro.mask.transform import mask_from_params, mask_param_derivative, params_from_mask
from repro.opc.mosaic import MosaicFast
from repro.utils.validation import sigmoid
from repro.workloads.random_layout import random_layout
from repro.xp import (
    ALL_BACKEND_SPECS,
    ENV_VAR,
    FLOAT32_FORWARD_RTOL,
    ArrayBackend,
    NumpyBackend,
    available_backend_specs,
    backend_available,
    get_backend,
    parse_backend_spec,
    resolve_backend,
    resolve_spec,
    validate_backend_spec,
)

HISTORY_PATH = Path(__file__).parent / "golden" / "mosaic_fast_history.json"


class TestSpecGrammar:
    def test_parse_defaults_to_float64(self):
        assert parse_backend_spec("numpy") == ("numpy", "float64")
        assert parse_backend_spec("torch:float32") == ("torch", "float32")

    def test_canonical_form_drops_float64(self):
        assert validate_backend_spec("numpy:float64") == "numpy"
        assert validate_backend_spec("cupy:float32") == "cupy:float32"
        assert validate_backend_spec(" torch ") == "torch"

    @pytest.mark.parametrize("bad", ["", "   ", None, 42, "jax", "numpy:float16"])
    def test_bad_specs_rejected_with_choices(self, bad):
        with pytest.raises(OpticsError):
            parse_backend_spec(bad)

    def test_error_message_lists_choices(self):
        with pytest.raises(OpticsError, match="numpy, torch, cupy"):
            validate_backend_spec("jax")
        with pytest.raises(OpticsError, match="float64, float32"):
            validate_backend_spec("numpy:float16")

    def test_env_resolution_chain(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert resolve_spec() == "numpy"
        monkeypatch.setenv(ENV_VAR, "numpy:float32")
        assert resolve_spec() == "numpy:float32"
        # Explicit argument outranks the environment.
        assert resolve_spec("numpy") == "numpy"

    def test_env_typo_raises(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "nmupy")
        with pytest.raises(OpticsError):
            resolve_spec()

    def test_singleton_per_spec(self):
        assert get_backend("numpy") is get_backend("numpy:float64")
        assert get_backend("numpy:float32") is get_backend("numpy:float32")
        assert get_backend("numpy") is not get_backend("numpy:float32")

    def test_resolve_backend_passthrough(self):
        instance = get_backend("numpy")
        assert resolve_backend(instance) is instance
        assert resolve_backend("numpy") is instance

    def test_missing_library_raises_optics_error(self):
        # The container has no cupy; the error must name the remedy.
        if backend_available("cupy"):
            pytest.skip("cupy installed here; nothing to assert")
        with pytest.raises(OpticsError, match="install it or select another"):
            get_backend("cupy")

    def test_available_specs_subset(self):
        available = available_backend_specs()
        assert "numpy" in available
        assert "numpy:float32" in available
        assert set(available) <= set(ALL_BACKEND_SPECS)

    def test_backend_available_rejects_garbage(self):
        assert not backend_available("jax")
        assert not backend_available("")


class TestConfigValidation:
    def test_optics_config_accepts_and_canonicalizes(self):
        assert OpticsConfig(backend="numpy:float64").backend == "numpy"
        assert OpticsConfig(backend="numpy:float32").backend == "numpy:float32"
        assert OpticsConfig().backend is None

    def test_optics_config_rejects_unknown(self):
        with pytest.raises(OpticsError):
            OpticsConfig(backend="jax")

    def test_optimizer_config_accepts_and_rejects(self):
        assert OptimizerConfig(backend="torch:float32").backend == "torch:float32"
        with pytest.raises(OpticsError):
            OptimizerConfig(backend="numpy:float16")

    def test_fullchip_config_accepts_and_rejects(self):
        from repro.fullchip import FullChipConfig

        assert FullChipConfig(backend="numpy:float32").backend == "numpy:float32"
        assert FullChipConfig().backend is None
        with pytest.raises(OpticsError):
            FullChipConfig(backend="bogus")

    def test_uninstalled_backend_is_constructible_in_config(self):
        # Validation must not import the library: configs naming torch
        # stay constructible on machines without it; the import error
        # surfaces only when a simulator requests the backend.
        cfg = OpticsConfig(backend="cupy:float32")
        assert cfg.backend == "cupy:float32"

    def test_simulator_honors_optics_config_backend(self):
        litho = LithoConfig.reduced()
        litho = type(litho)(
            grid=litho.grid,
            optics=OpticsConfig(
                num_kernels=litho.optics.num_kernels, backend="numpy:float32"
            ),
            resist=litho.resist,
            process=litho.process,
        )
        sim = LithographySimulator(litho)
        assert sim.xp.spec == "numpy:float32"

    def test_simulator_explicit_arg_outranks_config(self):
        litho = LithoConfig.reduced()
        sim = LithographySimulator(litho, backend="numpy:float32")
        assert sim.xp.spec == "numpy:float32"


class TestAdapterConformance:
    """Protocol conformance, per registered (and installed) backend."""

    def test_identity_properties(self, backend):
        assert isinstance(backend, ArrayBackend)
        assert backend.spec in ALL_BACKEND_SPECS
        assert backend.float_dtype in (np.dtype(np.float64), np.dtype(np.float32))
        is_f64 = backend.precision == "float64"
        assert backend.complex_dtype == (np.complex128 if is_f64 else np.complex64)
        if backend.is_reference:
            assert backend.equivalence_rtol == 0.0
        else:
            assert 0.0 < backend.equivalence_rtol <= FLOAT32_FORWARD_RTOL

    def test_float_round_trip(self, backend, rng):
        x = rng.standard_normal((5, 7))
        back = backend.to_numpy(backend.asarray(x, "float"))
        assert back.dtype == backend.float_dtype
        assert np.allclose(back, x.astype(backend.float_dtype))

    def test_complex_round_trip(self, backend, rng):
        x = rng.standard_normal((4, 4)) + 1j * rng.standard_normal((4, 4))
        back = backend.to_numpy(backend.asarray(x, "complex"))
        assert back.dtype == backend.complex_dtype
        assert np.allclose(back, x.astype(backend.complex_dtype))

    def test_index_round_trip(self, backend):
        idx = np.array([0, 3, 1, 2])
        native = backend.asarray(idx, "index")
        # Index arrays must actually index native arrays.
        values = backend.asarray(np.array([10.0, 11.0, 12.0, 13.0]), "float")
        gathered = backend.to_numpy(values[native])
        assert np.array_equal(gathered, [10.0, 13.0, 11.0, 12.0])

    def test_fft2_ifft2_identity(self, backend, rng):
        x = rng.standard_normal((16, 16)) + 1j * rng.standard_normal((16, 16))
        native = backend.asarray(x, "complex")
        back = backend.to_numpy(backend.ifft2(backend.fft2(native)))
        tol = 1e-12 if backend.precision == "float64" else 1e-5
        assert np.allclose(back, x.astype(backend.complex_dtype), atol=tol)

    def test_fft2_batched_over_leading_axis(self, backend, rng):
        stack = rng.standard_normal((3, 8, 8)) + 0j
        native = backend.asarray(stack, "complex")
        batched = backend.to_numpy(backend.fft2(native))
        for k in range(3):
            single = backend.to_numpy(backend.fft2(backend.asarray(stack[k], "complex")))
            assert np.allclose(batched[k], single)

    def test_axis_ffts_compose_to_fft2(self, backend, rng):
        x = rng.standard_normal((8, 8)) + 0j
        native = backend.asarray(x, "complex")
        composed = backend.to_numpy(backend.fft(backend.fft(native, axis=-1), axis=-2))
        full = backend.to_numpy(backend.fft2(native))
        tol = 1e-9 if backend.precision == "float64" else 1e-3
        assert np.allclose(composed, full, atol=tol * np.max(np.abs(full)))

    def test_elementwise_ops_match_numpy(self, backend, rng):
        x = rng.standard_normal((6, 6))
        native = backend.asarray(x, "float")
        tol = 1e-12 if backend.precision == "float64" else 1e-6
        assert np.allclose(backend.to_numpy(backend.exp(native)), np.exp(x), rtol=tol)
        assert np.allclose(
            backend.to_numpy(backend.clip(native, -0.5, 0.5)), np.clip(x, -0.5, 0.5)
        )
        assert np.allclose(backend.to_numpy(backend.abs(native)), np.abs(x))
        positive = backend.asarray(np.abs(x) + 0.1, "float")
        assert np.allclose(
            backend.to_numpy(backend.log(positive)),
            np.log(np.abs(x) + 0.1),
            rtol=tol,
            atol=tol,  # log crosses zero at x == 1
        )

    def test_where_and_conj(self, backend, rng):
        x = rng.standard_normal((4, 4)) + 1j * rng.standard_normal((4, 4))
        native = backend.asarray(x, "complex")
        conj = backend.to_numpy(backend.conj(native))
        assert np.allclose(conj, np.conj(x.astype(backend.complex_dtype)))
        real = backend.to_numpy(backend.real(native))
        assert np.allclose(real, x.real.astype(backend.float_dtype))

    def test_einsum_weighted_intensity(self, backend, rng):
        fields = rng.standard_normal((3, 5, 5)) + 1j * rng.standard_normal((3, 5, 5))
        weights = np.abs(rng.standard_normal(3))
        native_fields = backend.asarray(fields, "complex")
        native_weights = backend.asarray(weights, "float")
        out = backend.to_numpy(
            backend.einsum("k,kij->ij", native_weights, backend.abs(native_fields) ** 2)
        )
        reference = np.einsum("k,kij->ij", weights, np.abs(fields) ** 2)
        tol = 1e-12 if backend.precision == "float64" else 1e-5
        assert np.allclose(out, reference, rtol=tol, atol=tol * np.max(reference))

    def test_zeros_and_empty(self, backend):
        z = backend.zeros((3, 4), "complex")
        assert backend.to_numpy(z).shape == (3, 4)
        assert not backend.to_numpy(z).any()
        e = backend.empty((2, 2), "float")
        assert backend.to_numpy(e).shape == (2, 2)

    def test_kernel_data_cached_by_identity(self, backend, tiny_sim):
        kernels = tiny_sim.kernels_at(0.0)
        first = backend.kernel_data(kernels)
        assert backend.kernel_data(kernels) is first
        assert backend.to_numpy(first.weights).dtype == backend.float_dtype
        assert backend.to_numpy(first.spectra).dtype == backend.complex_dtype
        assert np.allclose(
            backend.to_numpy(first.weights),
            kernels.weights.astype(backend.float_dtype),
        )


class TestMaskTransformSeam:
    """Sigmoid and mask-parametrization transforms on each backend."""

    def test_sigmoid_matches_legacy_path(self, backend, rng):
        x = 10.0 * rng.standard_normal((32, 32))
        legacy = sigmoid(x, steepness=4.0, center=0.25)
        seamed = sigmoid(x, steepness=4.0, center=0.25, xp=backend)
        if backend.is_reference:
            assert np.array_equal(seamed, legacy)
        else:
            assert np.allclose(seamed, legacy, atol=FLOAT32_FORWARD_RTOL)

    def test_sigmoid_extreme_arguments_stay_finite(self, backend):
        x = np.array([-1e9, -50.0, 0.0, 50.0, 1e9])
        out = sigmoid(x, steepness=10.0, xp=backend)
        assert np.all(np.isfinite(out))
        assert np.all((out >= 0.0) & (out <= 1.0))

    def test_mask_transform_round_trip(self, backend, rng):
        mask = np.clip(rng.random((16, 16)), 0.02, 0.98)
        params = params_from_mask(mask, xp=backend)
        recovered = mask_from_params(params, xp=backend)
        tol = 1e-12 if backend.precision == "float64" else 1e-5
        assert np.allclose(recovered, mask, atol=tol)

    def test_mask_param_derivative_matches_reference(self, backend, rng):
        params = rng.standard_normal((16, 16))
        reference = mask_param_derivative(params)
        seamed = mask_param_derivative(params, xp=backend)
        if backend.is_reference:
            assert np.array_equal(seamed, reference)
        else:
            assert np.allclose(seamed, reference, atol=FLOAT32_FORWARD_RTOL)


class TestGoldenHistoryBattery:
    """Every backend reproduces the pinned 10-iteration mosaic_fast run.

    The float64 reference must match the golden trajectory at the same
    1e-6 relative pin as ``test_golden.py``; float32 backends get the
    1e-5 A/B gate (measured drift ~2.6e-7 — see module docstring).
    """

    @pytest.fixture(scope="class")
    def history_golden(self):
        return json.loads(HISTORY_PATH.read_text())

    @pytest.fixture(scope="class")
    def trajectory(self, backend, reduced_config, sim, history_golden):
        layout = random_layout(history_golden["layout_seed"])
        simulator = LithographySimulator(reduced_config, backend=backend)
        simulator._kernel_cache = sim._kernel_cache
        config = OptimizerConfig(
            max_iterations=history_golden["iterations"], use_jump=False
        )
        return MosaicFast(
            reduced_config, optimizer_config=config, simulator=simulator
        ).solve(layout)

    def test_objective_trajectory(self, backend, history_golden, trajectory):
        rel = 1e-6 if backend.precision == "float64" else FLOAT32_FORWARD_RTOL
        objectives = trajectory.optimization.history.objectives
        assert len(objectives) == history_golden["iterations"]
        for measured, expected in zip(objectives, history_golden["objectives"]):
            assert measured == pytest.approx(expected, rel=rel)

    def test_final_mask_and_score(self, backend, history_golden, trajectory):
        pixels = int(trajectory.mask.sum())
        if backend.precision == "float64":
            assert pixels == history_golden["mask_pixels"]
        else:
            # Binarization can flip boundary pixels sitting within the
            # float32 noise floor of the threshold.
            assert pixels == pytest.approx(history_golden["mask_pixels"], rel=1e-3)
        assert trajectory.score.epe_violations == history_golden["epe_violations"]
        assert trajectory.score.pv_band_nm2 == pytest.approx(
            history_golden["pv_band_nm2"], rel=1e-3
        )
