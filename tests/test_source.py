"""Unit tests for repro.optics.source."""

import numpy as np
import pytest

from repro.config import OpticsConfig
from repro.errors import OpticsError
from repro.optics.source import (
    AnnularSource,
    CircularSource,
    QuadrupoleSource,
    default_source,
)

OPTICS = OpticsConfig()
#: Frequency lattice step of a 1024 nm clip.
STEP = 1.0 / 1024.0


def radius_norm(pt) -> float:
    na_over_lambda = OPTICS.numerical_aperture / OPTICS.wavelength_nm
    return float(np.hypot(pt.fx, pt.fy)) / na_over_lambda


class TestAnnularSource:
    def test_weights_normalized(self):
        pts = AnnularSource(0.6, 0.9).sample(OPTICS, STEP)
        assert sum(p.weight for p in pts) == pytest.approx(1.0)

    def test_points_within_annulus(self):
        pts = AnnularSource(0.6, 0.9).sample(OPTICS, STEP)
        for p in pts:
            assert 0.6 - 1e-9 <= radius_norm(p) <= 0.9 + 1e-9

    def test_enough_points(self):
        assert len(AnnularSource(0.6, 0.9).sample(OPTICS, STEP)) >= 8

    def test_invalid_sigmas_rejected(self):
        with pytest.raises(OpticsError):
            AnnularSource(0.9, 0.6)
        with pytest.raises(OpticsError):
            AnnularSource(-0.1, 0.5)

    def test_refinement_for_coarse_step(self):
        # A very coarse lattice forces subdivision rather than failure.
        pts = AnnularSource(0.6, 0.9).sample(OPTICS, STEP * 8)
        assert len(pts) >= 8

    def test_default_source_matches_config(self):
        src = default_source(OPTICS)
        assert src.sigma_inner == OPTICS.sigma_inner
        assert src.sigma_outer == OPTICS.sigma_outer


class TestCircularSource:
    def test_disc_includes_centerish_points(self):
        pts = CircularSource(0.5).sample(OPTICS, STEP)
        assert min(radius_norm(p) for p in pts) < 0.2

    def test_radius_bound(self):
        pts = CircularSource(0.5).sample(OPTICS, STEP)
        assert max(radius_norm(p) for p in pts) <= 0.5 + 1e-9


class TestQuadrupoleSource:
    def test_poles_on_diagonals(self):
        pts = QuadrupoleSource(0.6, 0.9, opening_deg=20).sample(OPTICS, STEP)
        for p in pts:
            angle = np.degrees(np.arctan2(p.fy, p.fx)) % 90.0
            assert abs(angle - 45.0) <= 20 + 1e-9

    def test_four_fold_symmetric_count(self):
        pts = QuadrupoleSource(0.6, 0.9, opening_deg=20).sample(OPTICS, STEP)
        quadrants = [0, 0, 0, 0]
        for p in pts:
            quadrants[(p.fx < 0) * 2 + (p.fy < 0)] += 1
        assert len(set(quadrants)) == 1

    def test_bad_opening_rejected(self):
        with pytest.raises(OpticsError):
            QuadrupoleSource(0.6, 0.9, opening_deg=0)
        with pytest.raises(OpticsError):
            QuadrupoleSource(0.6, 0.9, opening_deg=60)
