"""Central finite-difference validation of the analytic objective gradients.

For each MOSAIC data term (F_epe, F_id with gamma=4, F_pvb) the analytic
dF/dM is compared against the central difference

    (F(M + eps e_i) - F(M - eps e_i)) / (2 eps)

at the ~20 pixels where the gradient is largest, on a structured random
mask at ``LithoConfig.reduced()`` scale, for both the batched and the
legacy forward engines.  The central scheme's truncation error is
O(eps^2), so with eps = 1e-6 the agreement floor sits far below the
1e-4 relative tolerance asserted here.

The check is parametrized over every registered array backend.  Finite
differences with eps = 1e-6 are meaningless below float32 resolution,
so single-precision backends are instead held to the analytic gradient
of the numpy float64 reference within the float32 gate — the float64
reference itself is what the FD probes validate.
"""

import numpy as np
import pytest

from repro.geometry.raster import rasterize_layout
from repro.opc.objectives import (
    EPEObjective,
    ImageDifferenceObjective,
    PVBandObjective,
)

EPS = 1e-6
REL_TOL = 1e-4
NUM_PIXELS = 20
# Float32 forward/adjoint noise, relative to the gradient's peak.  The
# gate is looser than the 1e-5 forward-image gate because the adjoint
# chains two more FFTs and the objective chain rules through the resist
# sigmoid.
FLOAT32_GRAD_RTOL = 1e-4


@pytest.fixture(scope="module")
def fd_setup(sim, rng_module):
    """Structured random mask + rasterized target at reduced scale."""
    from repro.geometry.layout import Layout
    from repro.geometry.rect import Rect

    layout = Layout("fd_square")
    layout.add(Rect(384, 384, 640, 640))
    target = rasterize_layout(layout, sim.grid).astype(np.float64)
    mask = np.clip(
        0.8 * target + 0.1 + 0.05 * rng_module.standard_normal(target.shape),
        0.05,
        0.95,
    )
    return layout, target, mask


@pytest.fixture(scope="module")
def rng_module():
    return np.random.default_rng(20140601)


def objective_for(name, sim, layout, target):
    if name == "epe":
        return EPEObjective(target, layout, sim.grid)
    if name == "image_diff":
        return ImageDifferenceObjective(target, gamma=4)
    if name == "pvband":
        return PVBandObjective(target)
    raise ValueError(name)


def check_gradient(sim, objective, mask, batched):
    _, grad = objective.value_and_gradient(sim.context(mask, batched=batched))

    # Probe where the gradient is largest: relative error is meaningful
    # there, and any systematic adjoint bug must show up at the peaks.
    flat = np.argsort(np.abs(grad).ravel())[::-1][:NUM_PIXELS]
    pixels = np.unravel_index(flat, mask.shape)

    worst = 0.0
    for row, col in zip(*pixels):
        plus = mask.copy()
        plus[row, col] += EPS
        minus = mask.copy()
        minus[row, col] -= EPS
        fd = (
            objective.value(sim.context(plus, batched=batched))
            - objective.value(sim.context(minus, batched=batched))
        ) / (2.0 * EPS)
        rel = abs(fd - grad[row, col]) / max(abs(fd), abs(grad[row, col]))
        worst = max(worst, rel)
    assert worst < REL_TOL, f"worst relative FD error {worst:.3e}"


def check_gradient_vs_reference(backend_sim, ref_sim, objective_name,
                                layout, target, mask, batched):
    """Float32 path: analytic gradient vs the float64 reference gradient."""
    objective = objective_for(objective_name, backend_sim, layout, target)
    _, grad = objective.value_and_gradient(
        backend_sim.context(mask, batched=batched)
    )
    reference_objective = objective_for(objective_name, ref_sim, layout, target)
    _, reference = reference_objective.value_and_gradient(
        ref_sim.context(mask, batched=batched)
    )
    scale = np.max(np.abs(reference))
    assert np.allclose(
        grad, reference, rtol=FLOAT32_GRAD_RTOL, atol=FLOAT32_GRAD_RTOL * scale
    ), f"float32 gradient deviates from float64 reference for {objective_name}"


@pytest.mark.parametrize("batched", [True, False], ids=["batched", "legacy"])
@pytest.mark.parametrize("name", ["epe", "image_diff", "pvband"])
def test_analytic_gradient_matches_finite_differences(
    sim, backend_sim, backend, fd_setup, name, batched
):
    layout, target, mask = fd_setup
    if backend.precision == "float64":
        objective = objective_for(name, backend_sim, layout, target)
        check_gradient(backend_sim, objective, mask, batched)
    else:
        check_gradient_vs_reference(
            backend_sim, sim, name, layout, target, mask, batched
        )
