"""Unit tests for repro.mask.mask (MaskPlane container)."""

import numpy as np
import pytest

from repro.config import GridSpec
from repro.errors import GridError
from repro.geometry.layout import Layout
from repro.geometry.rect import Rect
from repro.mask.mask import MaskPlane, binarize

GRID = GridSpec(shape=(64, 64), pixel_nm=16.0)


class TestBinarize:
    def test_threshold(self):
        out = binarize(np.array([[0.2, 0.5, 0.7]]))
        assert out.tolist() == [[0.0, 0.0, 1.0]]

    def test_idempotent(self):
        m = np.random.default_rng(1).uniform(0, 1, (8, 8))
        once = binarize(m)
        assert np.array_equal(binarize(once), once)


class TestMaskPlane:
    def test_from_layout(self):
        layout = Layout.from_rects("sq", [Rect(256, 256, 512, 512)])
        plane = MaskPlane.from_layout(layout, GRID)
        assert plane.pixels.sum() == (256 / 16) ** 2

    def test_area_nm2(self):
        layout = Layout.from_rects("sq", [Rect(256, 256, 512, 512)])
        plane = MaskPlane.from_layout(layout, GRID)
        assert plane.area_nm2 == 256 * 256

    def test_empty(self):
        assert MaskPlane.empty(GRID).pixels.sum() == 0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(GridError):
            MaskPlane(np.zeros((32, 32)), GRID)

    def test_out_of_range_rejected(self):
        with pytest.raises(GridError):
            MaskPlane(np.full(GRID.shape, 1.5), GRID)

    def test_binary_copy(self):
        plane = MaskPlane(np.full(GRID.shape, 0.7), GRID)
        assert plane.binary().pixels.max() == 1.0
        assert plane.pixels.max() == 0.7  # original untouched

    def test_copy_independent(self):
        plane = MaskPlane.empty(GRID)
        clone = plane.copy()
        clone.pixels[0, 0] = 1.0
        assert plane.pixels[0, 0] == 0.0
