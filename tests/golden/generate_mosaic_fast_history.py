"""Regenerate ``mosaic_fast_history.json`` (golden 10-iteration trajectory).

Run from the repository root after an *intentional* numerical change:

    PYTHONPATH=src python tests/golden/generate_mosaic_fast_history.py

and say so in the commit message.  The fixture pins a 10-iteration
MOSAIC_fast run (per-term objective values, EPE violation count,
PV-band area, mask pixel count) on the seed-7 random layout at
``LithoConfig.reduced()`` scale, with the batched forward engine.
"""

import json
from pathlib import Path

from repro.config import LithoConfig, OptimizerConfig
from repro.opc.mosaic import MosaicFast
from repro.workloads.random_layout import random_layout

OUT_PATH = Path(__file__).parent / "mosaic_fast_history.json"

LAYOUT_SEED = 7
ITERATIONS = 10


def main() -> None:
    layout = random_layout(LAYOUT_SEED)
    config = OptimizerConfig(max_iterations=ITERATIONS, use_jump=False)
    result = MosaicFast(LithoConfig.reduced(), optimizer_config=config).solve(layout)

    history = result.optimization.history
    golden = {
        "layout_seed": LAYOUT_SEED,
        "layout_shapes": layout.num_shapes,
        "iterations": ITERATIONS,
        "objectives": [float(v) for v in history.objectives],
        "term_values": [
            {name: float(value) for name, value in record.term_values.items()}
            for record in history.records
        ],
        "epe_violations": int(result.score.epe_violations),
        "pv_band_nm2": float(result.score.pv_band_nm2),
        "mask_pixels": int(result.mask.sum()),
    }
    OUT_PATH.write_text(json.dumps(golden, indent=2) + "\n")
    print(f"wrote {OUT_PATH}")


if __name__ == "__main__":
    main()
