"""Tests for the shared text-table / CSV rendering helpers."""

import csv

import pytest

from repro.tables import MISSING, ColumnSpec, TextTable, write_csv_rows


class TestColumnSpec:
    def test_width_grows_to_header(self):
        assert ColumnSpec("runtime", 3).rendered_width == len("runtime")
        assert ColumnSpec("x", 9).rendered_width == 9

    def test_bad_align_rejected(self):
        with pytest.raises(ValueError):
            ColumnSpec("x", align="^")


class TestTextTable:
    def test_alignment_and_missing(self):
        table = TextTable([ColumnSpec("tile", 6, "<"), ColumnSpec("score", 8)])
        table.add_row(["t0", "12.5"])
        table.add_row(["t1", None])
        assert table.render() == (
            "tile       score\n"
            "t0          12.5\n"
            f"t1            {MISSING}"
        )

    def test_no_trailing_spaces(self):
        table = TextTable([ColumnSpec("a", 4, "<"), ColumnSpec("b", 4, "<")])
        table.add_row(["x", "y"])
        for line in table.render().splitlines():
            assert line == line.rstrip()

    def test_row_width_mismatch_rejected(self):
        table = TextTable([ColumnSpec("a"), ColumnSpec("b")])
        with pytest.raises(ValueError):
            table.add_row(["only one"])

    def test_headerless_render(self):
        table = TextTable([ColumnSpec("a")])
        table.add_row(["1"])
        assert table.render(header=False) == "1"

    def test_empty_columns_rejected(self):
        with pytest.raises(ValueError):
            TextTable([])


def test_write_csv_rows(tmp_path):
    path = tmp_path / "out.csv"
    write_csv_rows(path, ["name", "value"], [["a", 1], ["b", None]])
    with open(path, newline="") as handle:
        rows = list(csv.reader(handle))
    assert rows == [["name", "value"], ["a", "1"], ["b", ""]]
