"""Unit tests for the JSONL event emitter and the Instrumentation bundle."""

import io
import json

import numpy as np

from repro.config import ObservabilityConfig
from repro.obs import EventEmitter, Instrumentation, NullEventEmitter


class TestEventEmitter:
    def test_callback_sink(self):
        seen = []
        emitter = EventEmitter(seen.append)
        emitter.emit("run_start", grid=[4, 4])
        assert seen == [{"event": "run_start", "grid": [4, 4]}]

    def test_stream_sink_writes_jsonl(self):
        stream = io.StringIO()
        emitter = EventEmitter(stream)
        emitter.emit("iteration", iteration=0, objective=1.5)
        emitter.emit("iteration", iteration=1, objective=0.5)
        lines = stream.getvalue().strip().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first == {"event": "iteration", "iteration": 0, "objective": 1.5}

    def test_file_sink_lazily_opened_and_closed(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventEmitter(path) as emitter:
            emitter.emit("run_end", converged=True)
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert records == [{"event": "run_end", "converged": True}]
        emitter.close()  # idempotent

    def test_numpy_values_coerced_to_json(self):
        seen = []
        emitter = EventEmitter(seen.append)
        emitter.emit(
            "iteration",
            objective=np.float64(2.5),
            iteration=np.int64(3),
            term_values={"pvband": np.float32(1.0)},
            flags=(np.bool_(True),),
        )
        text = json.dumps(seen[0])  # must not raise
        parsed = json.loads(text)
        assert parsed["objective"] == 2.5
        assert parsed["iteration"] == 3
        assert parsed["term_values"] == {"pvband": 1.0}
        assert parsed["flags"] == [True]

    def test_null_emitter_noop(self):
        emitter = NullEventEmitter()
        emitter.emit("anything", x=1)
        emitter.close()
        assert not emitter.enabled

    def test_concurrent_emit_never_tears_jsonl_lines(self, tmp_path):
        # The harness cell-timeout path emits from a daemon budget thread
        # while the main thread streams iteration events; every line must
        # stay a complete, parseable JSON object.
        import threading

        path = tmp_path / "events.jsonl"
        emitter = EventEmitter(path)
        threads_n, per_thread = 8, 200
        barrier = threading.Barrier(threads_n)
        payload = "x" * 256  # wide enough to straddle write buffers

        def hammer(worker: int) -> None:
            barrier.wait()
            for i in range(per_thread):
                emitter.emit("iteration", worker=worker, i=i, pad=payload)

        threads = [
            threading.Thread(target=hammer, args=(w,)) for w in range(threads_n)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        emitter.close()
        lines = path.read_text().splitlines()
        assert len(lines) == threads_n * per_thread
        seen = set()
        for line in lines:
            record = json.loads(line)  # raises on interleaved/truncated lines
            assert record["pad"] == payload
            seen.add((record["worker"], record["i"]))
        assert len(seen) == threads_n * per_thread


class TestInstrumentation:
    def test_default_is_disabled_and_shared(self):
        obs = Instrumentation.disabled()
        assert obs is Instrumentation.disabled()
        assert not obs.is_enabled
        with obs.tracer.span("x"):
            obs.metrics.counter("c").inc()
            obs.events.emit("e")
        assert obs.tracer.stats() == {}

    def test_collecting_enables_pillars(self):
        obs = Instrumentation.collecting()
        assert obs.is_enabled
        assert obs.tracer.enabled and obs.metrics.enabled
        assert not obs.events.enabled  # no sink given

    def test_collecting_with_events(self, tmp_path):
        path = tmp_path / "e.jsonl"
        obs = Instrumentation.collecting(trace=False, metrics=False, events_sink=path)
        assert obs.is_enabled
        obs.events.emit("ping")
        obs.close()
        assert "ping" in path.read_text()

    def test_from_config(self, tmp_path):
        assert not Instrumentation.from_config(ObservabilityConfig()).is_enabled
        assert Instrumentation.from_config(
            ObservabilityConfig()
        ) is Instrumentation.disabled()
        path = str(tmp_path / "events.jsonl")
        obs = Instrumentation.from_config(ObservabilityConfig.full(events_path=path))
        assert obs.tracer.enabled and obs.metrics.enabled and obs.events.enabled
        obs.close()


class TestObservabilityConfig:
    def test_defaults_disabled(self):
        config = ObservabilityConfig()
        assert not config.any_enabled
        assert ObservabilityConfig.disabled() == config

    def test_full(self):
        config = ObservabilityConfig.full(events_path="x.jsonl")
        assert config.trace and config.metrics and config.events_path == "x.jsonl"
        assert config.any_enabled

    def test_verbose_validation(self):
        import pytest

        from repro.errors import ProcessError

        with pytest.raises(ProcessError):
            ObservabilityConfig(verbose=-1)
