"""Unit tests for repro.metrics.epe."""

import numpy as np
import pytest

from repro.config import GridSpec
from repro.geometry.layout import Layout
from repro.geometry.raster import rasterize_layout
from repro.geometry.rect import Rect
from repro.metrics.epe import measure_epe

GRID = GridSpec(shape=(256, 256), pixel_nm=1.0)
CLIP = Rect(0, 0, 256, 256)


def layout_and_target(rect=Rect(48, 88, 208, 168)):
    layout = Layout.from_rects("t", [rect], clip=CLIP)
    return layout, rasterize_layout(layout, GRID)


class TestPerfectPrint:
    def test_zero_violations(self):
        layout, target = layout_and_target()
        report = measure_epe(target, layout, GRID)
        assert report.num_violations == 0
        assert report.max_abs_epe() == 0.0

    def test_sample_count_matches_geometry(self):
        layout, target = layout_and_target()
        # 160 nm edges -> 4 samples each; 80 nm edges -> 2 samples each.
        report = measure_epe(target, layout, GRID)
        assert report.num_samples == 2 * 4 + 2 * 2


class TestDisplacedPrint:
    def test_uniform_shrink_measured(self):
        layout, _ = layout_and_target()
        shrunk = rasterize_layout(
            Layout.from_rects("s", [Rect(58, 98, 198, 158)], clip=CLIP), GRID
        )
        report = measure_epe(shrunk, layout, GRID, threshold_nm=15)
        values = [m.epe_nm for m in report.measurements]
        assert all(v == -10 for v in values)
        assert report.num_violations == 0  # 10 < 15

    def test_shrink_beyond_threshold_violates_everywhere(self):
        layout, _ = layout_and_target()
        shrunk = rasterize_layout(
            Layout.from_rects("s", [Rect(68, 108, 188, 148)], clip=CLIP), GRID
        )
        report = measure_epe(shrunk, layout, GRID, threshold_nm=15)
        assert report.num_violations == report.num_samples  # 20 > 15

    def test_bulge_positive_epe(self):
        layout, _ = layout_and_target()
        grown = rasterize_layout(
            Layout.from_rects("g", [Rect(40, 80, 216, 176)], clip=CLIP), GRID
        )
        report = measure_epe(grown, layout, GRID)
        assert all(m.epe_nm == 8 for m in report.measurements)

    def test_one_sided_displacement(self):
        layout, _ = layout_and_target()
        # Only the top edge moves down by 20.
        moved = rasterize_layout(
            Layout.from_rects("m", [Rect(48, 88, 208, 148)], clip=CLIP), GRID
        )
        report = measure_epe(moved, layout, GRID, threshold_nm=15)
        # 4 samples on the top edge violate by -20 nm, and the two side-edge
        # samples at y = 148 sit above the shrunken feature entirely (no
        # printed edge exists at their height -> hard violations).
        assert report.num_violations == 6
        missing = [m for m in report.violations if m.epe_nm is None]
        measured = [m for m in report.violations if m.epe_nm is not None]
        assert len(missing) == 2
        assert len(measured) == 4
        assert all(m.epe_nm == -20 for m in measured)

    def test_missing_feature_counts_all_violations(self):
        layout, _ = layout_and_target()
        empty = np.zeros(GRID.shape, dtype=bool)
        report = measure_epe(empty, layout, GRID)
        assert report.num_violations == report.num_samples
        assert all(m.epe_nm is None for m in report.measurements)
        assert report.max_abs_epe() is None


class TestReportHelpers:
    def test_mean_abs_epe(self):
        layout, _ = layout_and_target()
        shrunk = rasterize_layout(
            Layout.from_rects("s", [Rect(53, 93, 203, 163)], clip=CLIP), GRID
        )
        report = measure_epe(shrunk, layout, GRID)
        assert report.mean_abs_epe() == pytest.approx(5.0)

    def test_violations_list(self):
        layout, _ = layout_and_target()
        empty = np.zeros(GRID.shape, dtype=bool)
        report = measure_epe(empty, layout, GRID)
        assert len(report.violations) == report.num_samples

    def test_coarse_grid_quantizes(self):
        grid = GridSpec(shape=(64, 64), pixel_nm=4.0)
        layout = Layout.from_rects("t", [Rect(48, 88, 208, 168)], clip=CLIP)
        target = rasterize_layout(layout, grid)
        report = measure_epe(target, layout, grid)
        assert report.num_violations == 0
