"""Integration tests for the queue executor and crash-safe workers.

The load-bearing acceptance fixture is ``kill_run``: a real 2-worker
queue-executor full-chip solve with one worker SIGKILLed mid-solve via
``REPRO_FULLCHIP_KILL_TILES``.  The run must still complete every
tile, the recovered tile's stitched mask must equal an uninterrupted
run's bit-for-bit, and exactly one ``job_requeued`` event must latch —
the whole durability story end to end.  The cheaper tests drive
``run_worker`` in-process against a hand-seeded queue and pin the
executor dispatch seam.
"""

import os

import numpy as np
import pytest

from repro.cli import main
from repro.config import (
    GridSpec,
    LithoConfig,
    OpticsConfig,
    OptimizerConfig,
    ProcessConfig,
    ResistConfig,
)
from repro.errors import FullChipError
from repro.fullchip import (
    FullChipConfig,
    FullChipEngine,
    KILL_TILES_ENV,
    PoolExecutor,
    QueueWorkerExecutor,
    SerialExecutor,
    TileJob,
    TileJobQueue,
    build_tile_plan,
    executor_for,
    load_queue_state,
    run_tile_jobs,
    run_worker,
)
from repro.fullchip.queue import QUEUE_DIRNAME, QueueConfig
from repro.geometry.rect import Rect
from repro.obs import Instrumentation
from repro.workloads.generator import synthetic_canvas

PIXEL_NM = 16.0
PROBE_NM = 1024.0

#: The tile whose worker the acceptance fixture SIGKILLs mid-solve.
KILLED = (0, 1)


def _fc_litho() -> LithoConfig:
    return LithoConfig(
        grid=GridSpec(shape=(64, 64), pixel_nm=PIXEL_NM),
        optics=OpticsConfig(num_kernels=4),
        resist=ResistConfig(),
        process=ProcessConfig(),
    )


def _fast_optimizer() -> OptimizerConfig:
    return OptimizerConfig(max_iterations=3, use_jump=False)


def _row_jobs(litho):
    """Two small jobs (a 1x2 plan over a synthetic strip)."""
    plan = build_tile_plan(Rect(0, 0, 2048, 1024), 1024.0, 192.0, PIXEL_NM)
    layout = synthetic_canvas(2048.0, 1024.0, seed=2)
    return [
        TileJob(
            tile=tile,
            layout=tile.clip_layout(layout),
            litho=litho,
            optimizer=_fast_optimizer(),
            probe_extent_nm=PROBE_NM,
        )
        for tile in plan
    ]


class TestExecutorFor:
    def test_dispatch_table(self, tmp_path):
        assert isinstance(executor_for("serial", 4), SerialExecutor)
        assert isinstance(executor_for("pool", 1), SerialExecutor)
        assert isinstance(executor_for("pool", 4), PoolExecutor)
        queue_exec = executor_for("queue", 2, run_dir=tmp_path)
        assert isinstance(queue_exec, QueueWorkerExecutor)
        assert queue_exec.workers == 2

    def test_queue_requires_run_dir(self):
        with pytest.raises(FullChipError, match="run directory"):
            executor_for("queue", 2)

    def test_unknown_kind_rejected(self):
        with pytest.raises(FullChipError):
            executor_for("carrier-pigeon", 2)


class TestRunWorker:
    def test_worker_drains_queue_and_matches_serial(self, tmp_path):
        litho = _fc_litho()
        jobs = _row_jobs(litho)
        queue = TileJobQueue.create(
            tmp_path / QUEUE_DIRNAME,
            {job.tile.name: (job.tile.index, job) for job in jobs},
            config=QueueConfig(lease_s=30.0),
        )
        assert run_worker(tmp_path, poll_s=0.05) == 0
        assert queue.drained()
        serial = {r.index: r for r in run_tile_jobs(jobs)}
        for job in jobs:
            record = queue.terminal_record(job.tile.name)
            assert record["state"] == "done"
            assert record["status"] == "ok"
            assert record["attempts"] >= 1
            mask = queue.load_result_mask(record)
            assert np.array_equal(mask, serial[job.tile.index].mask)

    def test_worker_on_unseeded_run_dir_raises(self, tmp_path):
        with pytest.raises(FullChipError):
            run_worker(tmp_path)

    def test_worker_cli_subcommand(self, tmp_path):
        litho = _fc_litho()
        jobs = _row_jobs(litho)[:1]
        queue = TileJobQueue.create(
            tmp_path / QUEUE_DIRNAME,
            {job.tile.name: (job.tile.index, job) for job in jobs},
        )
        assert main(["worker", str(tmp_path), "--poll", "0.05"]) == 0
        assert queue.drained()


class TestAbandonmentGrace:
    """`leased == 0` alone must not fail the run: externally attached
    workers may be between claims and tickets may sit in backoff."""

    def _seeded(self, tmp_path, lease_s=5.0):
        executor = QueueWorkerExecutor(
            tmp_path, workers=0, spawn_workers=False,
            queue_config=QueueConfig(lease_s=lease_s),
        )
        queue = TileJobQueue.create(
            tmp_path / QUEUE_DIRNAME,
            {"tile_a": ((0, 0), "payload")},
            config=QueueConfig(lease_s=lease_s),
        )
        return executor, queue

    def test_recent_activity_defers_abandonment(self, tmp_path):
        executor, queue = self._seeded(tmp_path)
        # Freshly seeded: history is seconds old, well inside grace.
        assert executor._abandoned(queue, []) is False

    def test_inflight_lease_is_never_abandoned(self, tmp_path, monkeypatch):
        import time as _time

        import repro.fullchip.executor as executor_mod

        executor, queue = self._seeded(tmp_path)
        queue.claim()
        monkeypatch.setattr(
            executor_mod.time, "time", lambda: _time.monotonic() + 1e6
        )
        assert executor._abandoned(queue, []) is False

    def test_quiet_queue_is_abandoned_after_grace(self, tmp_path, monkeypatch):
        import time as _time

        import repro.fullchip.executor as executor_mod

        executor, queue = self._seeded(tmp_path)
        real_now = _time.time()
        monkeypatch.setattr(
            executor_mod.time, "time", lambda: real_now + 1000.0
        )
        assert executor._abandoned(queue, []) is True

    def test_backoff_parked_ticket_counts_as_activity(self, tmp_path, monkeypatch):
        import time as _time

        import repro.fullchip.executor as executor_mod

        executor, queue = self._seeded(tmp_path)
        real_now = _time.time()
        # A ticket parked behind a long backoff is claimable at
        # not_before; the quiet clock starts there, not at seed time.
        queue._write_ticket("tile_a", (0, 0), token=1, not_before=real_now + 995.0)
        monkeypatch.setattr(
            executor_mod.time, "time", lambda: real_now + 1000.0
        )
        assert executor._abandoned(queue, []) is False


class TestEngineQueueExecutor:
    def test_config_validation(self, tmp_path):
        with pytest.raises(FullChipError, match="telemetry_dir"):
            FullChipConfig(
                tile_nm=1024.0, probe_extent_nm=PROBE_NM, executor="queue"
            )
        with pytest.raises(FullChipError, match="executor"):
            FullChipConfig(
                tile_nm=1024.0, probe_extent_nm=PROBE_NM, executor="nope"
            )
        with pytest.raises(FullChipError, match="lease_s"):
            FullChipConfig(
                tile_nm=1024.0,
                probe_extent_nm=PROBE_NM,
                executor="queue",
                telemetry_dir=str(tmp_path),
                queue_lease_s=0.0,
            )

    def test_queue_run_matches_default_run(self, tmp_path):
        """A clean queue-executor solve is bit-identical to the default."""
        litho = _fc_litho()
        layout = synthetic_canvas(2048.0, 1024.0, seed=2)
        reference = FullChipEngine(
            litho,
            optimizer=_fast_optimizer(),
            config=FullChipConfig(tile_nm=1024.0, probe_extent_nm=PROBE_NM),
        ).solve(layout)
        run_dir = tmp_path / "run"
        result = FullChipEngine(
            litho,
            optimizer=_fast_optimizer(),
            config=FullChipConfig(
                tile_nm=1024.0,
                probe_extent_nm=PROBE_NM,
                executor="queue",
                workers=1,
                telemetry_dir=str(run_dir),
                queue_lease_s=60.0,
            ),
        ).solve(layout)
        assert result.all_ok
        assert np.array_equal(result.mask, reference.mask)
        state = load_queue_state(run_dir)
        assert state is not None
        assert state["counts"]["done"] == len(result.tile_results)
        assert state["counts"]["requeued"] == 0


@pytest.fixture(scope="module")
def kill_run(tmp_path_factory):
    """One 2-worker queue solve with tile (0,1)'s worker SIGKILLed.

    Module scope cannot use ``monkeypatch``, so the env hook is set and
    restored by hand.  The fixture also solves the same canvas
    uninterrupted (serial, no injection) as the stitching reference.
    """
    litho = _fc_litho()
    layout = synthetic_canvas(2048.0, 2048.0, seed=5)
    reference = FullChipEngine(
        litho,
        optimizer=_fast_optimizer(),
        config=FullChipConfig(tile_nm=1024.0, probe_extent_nm=PROBE_NM),
    ).solve(layout)
    run_dir = tmp_path_factory.mktemp("kill_run")
    events = []
    obs = Instrumentation.collecting(
        trace=True, metrics=True, timeline=True, events_sink=events.append
    )
    engine = FullChipEngine(
        litho,
        optimizer=_fast_optimizer(),
        config=FullChipConfig(
            tile_nm=1024.0,
            probe_extent_nm=PROBE_NM,
            executor="queue",
            workers=2,
            keep_going=True,
            telemetry_dir=str(run_dir),
            queue_lease_s=10.0,
            queue_backoff_s=0.05,
            resource_interval_s=0.1,
            watchdog_poll_s=0.2,
        ),
        obs=obs,
    )
    saved = os.environ.get(KILL_TILES_ENV)
    os.environ[KILL_TILES_ENV] = f"{KILLED[0]},{KILLED[1]}:2"
    try:
        result = engine.solve(layout)
    finally:
        if saved is None:
            os.environ.pop(KILL_TILES_ENV, None)
        else:
            os.environ[KILL_TILES_ENV] = saved
    return run_dir, obs, events, result, reference


class TestKillRecoveryAcceptance:
    def test_every_tile_completes(self, kill_run):
        _, _, _, result, _ = kill_run
        assert result.all_ok
        assert result.failed_tiles == []
        assert len(result.tile_results) == 4

    def test_killed_tile_is_recovered_on_a_fresh_attempt(self, kill_run):
        _, _, _, result, _ = kill_run
        by_index = {r.index: r for r in result.tile_results}
        killed = by_index[KILLED]
        assert killed.status.status == "recovered"
        assert killed.status.attempts >= 2  # the SIGKILLed attempt + re-run
        for index, tile in by_index.items():
            if index != KILLED:
                assert tile.status.status == "ok"

    def test_exactly_one_requeue_event_latches(self, kill_run):
        _, obs, events, _, _ = kill_run
        requeued = [e for e in events if e["event"] == "job_requeued"]
        assert len(requeued) == 1
        event = requeued[0]
        assert event["tile"] == f"tile_r{KILLED[0]}_c{KILLED[1]}"
        assert event["token"] == 1
        assert not [e for e in events if e["event"] == "job_quarantined"]
        counters = obs.metrics.as_dict()
        assert counters["fullchip_jobs_requeued"]["value"] == 1

    def test_recovered_stitch_matches_uninterrupted_run(self, kill_run):
        _, _, _, result, reference = kill_run
        assert np.array_equal(result.mask, reference.mask)

    def test_queue_directory_tells_the_whole_story(self, kill_run):
        run_dir, _, _, result, _ = kill_run
        state = load_queue_state(run_dir)
        assert state["counts"]["done"] == 4
        assert state["counts"]["requeued"] == 1
        by_name = {t["name"]: t for t in state["tiles"]}
        killed = by_name[f"tile_r{KILLED[0]}_c{KILLED[1]}"]
        assert killed["state"] == "done"
        assert killed["requeues"] == 1
        kinds = [h["kind"] for h in killed["history"]]
        assert kinds.count("requeued") == 1
        assert kinds[-1] == "done"
        # The dead attempt's pulses must not survive into the re-run:
        # the recovered tile's final heartbeat carries attempt 2.
        from repro.obs.live import HEARTBEAT_DIRNAME, read_heartbeats

        beats = read_heartbeats(run_dir / HEARTBEAT_DIRNAME)
        killed_beat = beats.get(f"tile_r{KILLED[0]}_c{KILLED[1]}")
        if killed_beat is not None:
            assert killed_beat.attempt >= 2

    def test_report_renders_the_queue_section(self, kill_run):
        run_dir, _, _, _, _ = kill_run
        from repro.obs.report import build_run_report, render_run_report

        report = build_run_report(run_dir)
        assert report["queue"]["counts"]["done"] == 4
        text = render_run_report(run_dir)
        assert "durable queue" in text
        assert "requeued" in text
