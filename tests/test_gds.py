"""Tests for the minimal GDSII reader/writer."""

import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import LayoutIOError
from repro.geometry.layout import Layout
from repro.geometry.polygon import Polygon
from repro.geometry.rect import Rect
from repro.io.gds_lite import _gds_real8, _parse_real8, read_gds, write_gds
from repro.workloads.iccad2013 import load_all_benchmarks


class TestReal8:
    @pytest.mark.parametrize("value", [1e-9, 1e-3, 0.25, 1.0, 2.0, 1024.0, 1e9])
    def test_roundtrip(self, value):
        assert _parse_real8(_gds_real8(value)) == pytest.approx(value, rel=1e-12)

    def test_zero(self):
        assert _parse_real8(_gds_real8(0.0)) == 0.0

    def test_negative(self):
        assert _parse_real8(_gds_real8(-3.5)) == pytest.approx(-3.5)

    @settings(max_examples=50)
    @given(st.floats(min_value=1e-12, max_value=1e12))
    def test_property_roundtrip(self, value):
        assert _parse_real8(_gds_real8(value)) == pytest.approx(value, rel=1e-12)


class TestGDSRoundtrip:
    def test_simple_layout(self, tmp_path):
        layout = Layout.from_rects(
            "CELL", [Rect(100, 100, 300, 200), Rect(400, 500, 500, 900)]
        )
        path = tmp_path / "cell.gds"
        write_gds(layout, path)
        again = read_gds(path)
        assert again.name == "CELL"
        assert again.num_shapes == 2
        assert again.pattern_area == layout.pattern_area

    def test_polygon_vertices_preserved(self, tmp_path):
        poly = Polygon([(0, 0), (300, 0), (300, 300), (200, 300), (200, 100), (0, 100)])
        layout = Layout("L", clip=Rect(0, 0, 1024, 1024))
        layout.add(poly)
        path = tmp_path / "l.gds"
        write_gds(layout, path)
        again = read_gds(path)
        assert set(again.polygons[0].vertices) == set(poly.vertices)

    def test_all_benchmarks_roundtrip(self, tmp_path):
        for name, layout in load_all_benchmarks().items():
            path = tmp_path / f"{name}.gds"
            write_gds(layout, path)
            again = read_gds(path)
            assert again.num_shapes == layout.num_shapes
            assert again.pattern_area == pytest.approx(layout.pattern_area)

    def test_header_structure(self, tmp_path):
        layout = Layout.from_rects("T", [Rect(0, 0, 10, 10)])
        path = tmp_path / "t.gds"
        write_gds(layout, path)
        data = path.read_bytes()
        length, rectype = struct.unpack(">HH", data[:4])
        assert rectype == 0x0002  # HEADER
        version = struct.unpack(">h", data[4:6])[0]
        assert version == 600

    def test_records_even_length(self, tmp_path):
        layout = Layout.from_rects("ODD", [Rect(0, 0, 10, 10)])  # 3-char name
        path = tmp_path / "odd.gds"
        write_gds(layout, path)
        data = path.read_bytes()
        offset = 0
        while offset < len(data):
            length = struct.unpack(">H", data[offset: offset + 2])[0]
            assert length % 2 == 0
            offset += length
        assert offset == len(data)


class TestGDSErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(LayoutIOError):
            read_gds(tmp_path / "nope.gds")

    def test_empty_gds_rejected(self, tmp_path):
        path = tmp_path / "empty.gds"
        path.write_bytes(b"")
        with pytest.raises(LayoutIOError):
            read_gds(path)

    def test_no_boundaries_rejected(self, tmp_path):
        # Write then truncate the boundary records away.
        layout = Layout.from_rects("T", [Rect(0, 0, 10, 10)])
        path = tmp_path / "t.gds"
        write_gds(layout, path)
        data = path.read_bytes()
        # Keep only HEADER..STRNAME (find first BOUNDARY record).
        offset = 0
        while offset < len(data):
            length, rectype = struct.unpack(">HH", data[offset: offset + 4])
            if rectype == 0x0800:
                break
            offset += length
        path.write_bytes(data[:offset])
        with pytest.raises(LayoutIOError):
            read_gds(path)

    def test_custom_clip(self, tmp_path):
        layout = Layout.from_rects("T", [Rect(0, 0, 10, 10)])
        path = tmp_path / "t.gds"
        write_gds(layout, path)
        again = read_gds(path, clip=Rect(0, 0, 64, 64))
        assert again.clip == Rect(0, 0, 64, 64)
