"""Tests for repro.process.window_analysis (exposure latitude / DOF)."""

import numpy as np
import pytest

from repro.errors import ProcessError
from repro.geometry.layout import Layout
from repro.geometry.raster import rasterize_layout
from repro.geometry.rect import Rect
from repro.mask.rules import apply_edge_bias
from repro.process.window_analysis import ProcessWindowMap, WindowPoint, sweep_process_window


@pytest.fixture(scope="module")
def biased_square(sim):
    """A big square with the 16 nm bias that makes it print cleanly."""
    layout = Layout.from_rects("big", [Rect(256, 256, 768, 768)])
    target = rasterize_layout(layout, sim.grid).astype(float)
    return layout, apply_edge_bias(target, 16.0, sim.grid)


class TestSweep:
    def test_grid_size(self, sim, biased_square):
        layout, mask = biased_square
        window = sweep_process_window(
            sim, mask, layout,
            defocus_values_nm=(0.0, 25.0), dose_values=(0.98, 1.0, 1.02),
        )
        assert len(window.points) == 6

    def test_nominal_condition_passes(self, sim, biased_square):
        layout, mask = biased_square
        window = sweep_process_window(
            sim, mask, layout, defocus_values_nm=(0.0,), dose_values=(1.0,)
        )
        assert window.points[0].passes

    def test_extreme_dose_fails(self, sim, biased_square):
        layout, mask = biased_square
        window = sweep_process_window(
            sim, mask, layout, defocus_values_nm=(0.0,), dose_values=(0.5, 1.0, 2.0)
        )
        outcomes = {p.dose: p.passes for p in window.points}
        assert outcomes[1.0]
        assert not outcomes[0.5]
        assert not outcomes[2.0]

    def test_empty_sweep_rejected(self, sim, biased_square):
        layout, mask = biased_square
        with pytest.raises(ProcessError):
            sweep_process_window(sim, mask, layout, defocus_values_nm=())


class TestWindowMap:
    def _map(self, spec):
        return ProcessWindowMap(
            points=[WindowPoint(d, dose, epe) for d, dose, epe in spec]
        )

    def test_exposure_latitude(self):
        window = self._map(
            [(0.0, 0.96, 1), (0.0, 0.98, 0), (0.0, 1.0, 0), (0.0, 1.02, 0), (0.0, 1.04, 3)]
        )
        assert window.exposure_latitude() == pytest.approx(0.04)

    def test_exposure_latitude_nothing_passes(self):
        window = self._map([(0.0, 0.98, 2), (0.0, 1.0, 1)])
        assert window.exposure_latitude() == 0.0

    def test_depth_of_focus(self):
        window = self._map([(0.0, 1.0, 0), (10.0, 1.0, 0), (25.0, 1.0, 0), (40.0, 1.0, 5)])
        assert window.depth_of_focus() == 25.0

    def test_pass_fraction(self):
        window = self._map([(0.0, 1.0, 0), (0.0, 1.02, 0), (25.0, 1.0, 4), (25.0, 1.02, 6)])
        assert window.pass_fraction() == 0.5

    def test_empty_map(self):
        assert ProcessWindowMap(points=[]).pass_fraction() == 0.0
