"""Unit tests for repro.mask.cleanup."""

import numpy as np
import pytest

from repro.config import GridSpec
from repro.errors import GridError
from repro.mask.cleanup import (
    CleanupConfig,
    cleanup_mask,
    enforce_min_width,
    fill_pinholes,
    remove_specks,
    smooth_boundaries,
)

GRID = GridSpec(shape=(64, 64), pixel_nm=1.0)


def base_mask():
    mask = np.zeros(GRID.shape)
    mask[20:44, 20:44] = 1.0
    return mask


class TestRemoveSpecks:
    def test_small_speck_removed(self):
        mask = base_mask()
        mask[4, 4] = 1.0  # 1 px speck
        out = remove_specks(mask, GRID, min_area_nm2=9.0)
        assert out[4, 4] == 0.0
        assert out[30, 30] == 1.0

    def test_large_feature_kept(self):
        mask = base_mask()
        out = remove_specks(mask, GRID, min_area_nm2=9.0)
        assert out.sum() == mask.sum()

    def test_zero_threshold_noop(self):
        mask = base_mask()
        mask[4, 4] = 1.0
        assert remove_specks(mask, GRID, 0.0).sum() == mask.sum()

    def test_empty_mask(self):
        assert remove_specks(np.zeros(GRID.shape), GRID, 9.0).sum() == 0

    def test_threshold_is_exact(self):
        mask = np.zeros(GRID.shape)
        mask[4:7, 4:7] = 1.0  # 9 px square
        assert remove_specks(mask, GRID, min_area_nm2=9.0).sum() == 9
        assert remove_specks(mask, GRID, min_area_nm2=10.0).sum() == 0


class TestFillPinholes:
    def test_small_hole_filled(self):
        mask = base_mask()
        mask[30:32, 30:32] = 0.0  # 4 px pinhole
        out = fill_pinholes(mask, GRID, max_area_nm2=16.0)
        assert out[30, 30] == 1.0

    def test_large_hole_kept(self):
        mask = base_mask()
        mask[26:38, 26:38] = 0.0  # 144 px hole
        out = fill_pinholes(mask, GRID, max_area_nm2=16.0)
        assert out[30, 30] == 0.0

    def test_open_background_not_filled(self):
        mask = base_mask()
        out = fill_pinholes(mask, GRID, max_area_nm2=1e6)
        assert out[0, 0] == 0.0  # outside region touches the border


class TestSmoothBoundaries:
    def test_removes_single_pixel_bump(self):
        mask = base_mask()
        mask[44, 30] = 1.0  # 1 px bump on the top edge
        out = smooth_boundaries(mask, GRID)
        assert out[44, 30] == 0.0

    def test_fills_single_pixel_notch(self):
        mask = base_mask()
        mask[43, 30] = 0.0  # 1 px notch in the top edge
        out = smooth_boundaries(mask, GRID)
        assert out[43, 30] == 1.0

    def test_flat_regions_untouched(self):
        mask = base_mask()
        out = smooth_boundaries(mask, GRID)
        assert np.array_equal(out, mask)


class TestEnforceMinWidth:
    def test_thin_sliver_removed(self):
        mask = base_mask()
        mask[50:52, 10:40] = 1.0  # 2 px tall sliver
        out = enforce_min_width(mask, GRID, min_width_nm=4.0)
        assert out[50, 20] == 0.0
        assert out[30, 30] == 1.0

    def test_subpixel_rule_noop(self):
        mask = base_mask()
        assert np.array_equal(enforce_min_width(mask, GRID, 1.0), mask)


class TestPipeline:
    def test_full_pipeline(self):
        mask = base_mask()
        mask[4, 4] = 1.0           # speck
        mask[30:32, 30:32] = 0.0   # pinhole
        mask[44, 30] = 1.0         # bump
        out = cleanup_mask(mask, GRID, CleanupConfig(min_width_nm=3.0))
        assert out[4, 4] == 0.0
        assert out[30, 30] == 1.0
        assert out[44, 30] == 0.0

    def test_default_config(self):
        out = cleanup_mask(base_mask(), GRID)
        assert out.sum() == base_mask().sum()

    def test_bad_config_rejected(self):
        with pytest.raises(GridError):
            CleanupConfig(min_figure_area_nm2=-1)
        with pytest.raises(GridError):
            CleanupConfig(min_width_nm=-5)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(GridError):
            cleanup_mask(np.zeros((8, 8)), GRID)
