"""Unit tests for the hierarchical span tracer."""

import time

from repro.obs import NULL_TRACER, NullTracer, Tracer


class TestTracer:
    def test_single_span_records_time(self):
        tracer = Tracer()
        with tracer.span("work"):
            time.sleep(0.01)
        stats = tracer.stats()
        assert set(stats) == {"work"}
        assert stats["work"].count == 1
        assert stats["work"].total_s >= 0.01
        assert stats["work"].self_s == stats["work"].total_s

    def test_nested_spans_build_paths(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
            with tracer.span("inner"):
                pass
        stats = tracer.stats()
        assert set(stats) == {"outer", "outer/inner"}
        assert stats["outer/inner"].count == 2
        assert stats["outer"].count == 1

    def test_self_time_excludes_children(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                time.sleep(0.02)
        stats = tracer.stats()
        assert stats["outer"].self_s < stats["outer"].total_s
        assert stats["outer"].total_s >= stats["outer/inner"].total_s

    def test_sibling_roots_aggregate_independently(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        with tracer.span("a"):
            pass
        assert tracer.stats()["a"].count == 2
        assert tracer.stats()["b"].count == 1
        assert tracer.root_total() > 0.0

    def test_same_name_at_different_depths_is_distinct(self):
        tracer = Tracer()
        with tracer.span("phase"):
            with tracer.span("phase"):
                pass
        assert set(tracer.stats()) == {"phase", "phase/phase"}

    def test_total_lookup_and_reset(self):
        tracer = Tracer()
        with tracer.span("x"):
            pass
        assert tracer.total("x") > 0.0
        assert tracer.total("unseen") == 0.0
        tracer.reset()
        assert tracer.stats() == {}

    def test_report_renders_tree(self):
        tracer = Tracer()
        with tracer.span("optimize"):
            with tracer.span("iteration"):
                pass
        report = tracer.report()
        assert "optimize" in report
        assert "  iteration" in report
        assert "%root" in report

    def test_report_empty(self):
        assert "no spans" in Tracer().report()

    def test_span_survives_exception(self):
        tracer = Tracer()
        try:
            with tracer.span("outer"):
                with tracer.span("fails"):
                    raise ValueError("boom")
        except ValueError:
            pass
        # Both spans closed and the stack unwound cleanly.
        assert set(tracer.stats()) == {"outer", "outer/fails"}
        with tracer.span("after"):
            pass
        assert "after" in tracer.stats()

    def test_span_stats_properties(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        stats = tracer.stats()["a/b"]
        assert stats.name == "b"
        assert stats.depth == 1


class TestNullTracer:
    def test_noop_and_shared(self):
        tracer = NullTracer()
        with tracer.span("anything"):
            pass
        assert tracer.stats() == {}
        assert tracer.total("anything") == 0.0
        assert tracer.root_total() == 0.0
        assert not tracer.enabled
        assert "disabled" in tracer.report()
        # span() returns a shared instance: no per-call allocation.
        assert tracer.span("a") is tracer.span("b") is NULL_TRACER.span("c")
