"""Unit tests for the hierarchical span tracer."""

import time

import pytest

from repro.obs import NULL_TRACER, NullTracer, SpanStats, Tracer


class TestTracer:
    def test_single_span_records_time(self):
        tracer = Tracer()
        with tracer.span("work"):
            time.sleep(0.01)
        stats = tracer.stats()
        assert set(stats) == {"work"}
        assert stats["work"].count == 1
        assert stats["work"].total_s >= 0.01
        assert stats["work"].self_s == stats["work"].total_s

    def test_nested_spans_build_paths(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
            with tracer.span("inner"):
                pass
        stats = tracer.stats()
        assert set(stats) == {"outer", "outer/inner"}
        assert stats["outer/inner"].count == 2
        assert stats["outer"].count == 1

    def test_self_time_excludes_children(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                time.sleep(0.02)
        stats = tracer.stats()
        assert stats["outer"].self_s < stats["outer"].total_s
        assert stats["outer"].total_s >= stats["outer/inner"].total_s

    def test_sibling_roots_aggregate_independently(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        with tracer.span("a"):
            pass
        assert tracer.stats()["a"].count == 2
        assert tracer.stats()["b"].count == 1
        assert tracer.root_total() > 0.0

    def test_same_name_at_different_depths_is_distinct(self):
        tracer = Tracer()
        with tracer.span("phase"):
            with tracer.span("phase"):
                pass
        assert set(tracer.stats()) == {"phase", "phase/phase"}

    def test_total_lookup_and_reset(self):
        tracer = Tracer()
        with tracer.span("x"):
            pass
        assert tracer.total("x") > 0.0
        assert tracer.total("unseen") == 0.0
        tracer.reset()
        assert tracer.stats() == {}

    def test_report_renders_tree(self):
        tracer = Tracer()
        with tracer.span("optimize"):
            with tracer.span("iteration"):
                pass
        report = tracer.report()
        assert "optimize" in report
        assert "  iteration" in report
        assert "%root" in report

    def test_report_empty(self):
        assert "no spans" in Tracer().report()

    def test_span_survives_exception(self):
        tracer = Tracer()
        try:
            with tracer.span("outer"):
                with tracer.span("fails"):
                    raise ValueError("boom")
        except ValueError:
            pass
        # Both spans closed and the stack unwound cleanly.
        assert set(tracer.stats()) == {"outer", "outer/fails"}
        with tracer.span("after"):
            pass
        assert "after" in tracer.stats()

    def test_span_stats_properties(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        stats = tracer.stats()["a/b"]
        assert stats.name == "b"
        assert stats.depth == 1

    def test_raising_span_is_recorded_and_tagged_failed(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("solve"):
                with tracer.span("iteration"):
                    raise ValueError("diverged")
        stats = tracer.stats()
        # Both spans closed despite the raise; the whole raising ancestry
        # carries the failure tag.
        assert stats["solve/iteration"].count == 1
        assert stats["solve/iteration"].failures == 1
        assert stats["solve"].failures == 1
        report = tracer.report()
        assert "iteration [1 failed]" in report
        assert "solve [1 failed]" in report

    def test_clean_spans_carry_no_failure_tag(self):
        tracer = Tracer()
        with tracer.span("ok"):
            pass
        assert tracer.stats()["ok"].failures == 0
        assert "failed" not in tracer.report()

    def test_current_path_tracks_open_spans(self):
        tracer = Tracer()
        assert tracer.current_path == ""
        with tracer.span("a"):
            with tracer.span("b"):
                assert tracer.current_path == "a/b"
            assert tracer.current_path == "a"
        assert tracer.current_path == ""


class TestTimeline:
    def test_disabled_by_default(self):
        tracer = Tracer()
        with tracer.span("x"):
            pass
        assert not tracer.timeline
        assert tracer.slices() == []

    def test_records_epoch_timestamped_slices(self):
        tracer = Tracer(timeline=True)
        before = time.time() * 1e6
        with tracer.span("outer"):
            with tracer.span("inner"):
                time.sleep(0.005)
        after = time.time() * 1e6
        slices = tracer.slices()
        assert [s.path for s in slices] == ["outer/inner", "outer"]
        inner, outer = slices
        assert inner.name == "inner"
        assert before <= inner.ts_us <= after
        assert inner.dur_us >= 5000
        # Containment: the child interval sits inside the parent's.
        assert outer.ts_us <= inner.ts_us
        assert inner.ts_us + inner.dur_us <= outer.ts_us + outer.dur_us + 1.0
        assert not inner.failed

    def test_failed_slice_is_marked(self):
        tracer = Tracer(timeline=True)
        with pytest.raises(RuntimeError):
            with tracer.span("x"):
                raise RuntimeError("boom")
        assert tracer.slices()[0].failed

    def test_max_slices_caps_and_counts_drops(self):
        tracer = Tracer(timeline=True, max_slices=2)
        for _ in range(5):
            with tracer.span("s"):
                pass
        assert len(tracer.slices()) == 2
        assert tracer.dropped_slices == 3
        tracer.reset()
        assert tracer.slices() == []
        assert tracer.dropped_slices == 0


class TestAbsorb:
    def test_absorbs_span_stats_mapping(self):
        worker = Tracer()
        with worker.span("solve"):
            with worker.span("iteration"):
                pass
        parent = Tracer()
        parent.absorb(worker.stats())
        parent.absorb(worker.stats())
        stats = parent.stats()
        assert stats["solve"].count == 2
        assert stats["solve/iteration"].count == 2

    def test_absorbs_dict_payloads_under_prefix(self):
        parent = Tracer()
        with parent.span("tiles"):
            pass
        parent.absorb(
            [
                {"path": "solve", "count": 1, "total_s": 2.0, "self_s": 0.5},
                {"path": "solve/iteration", "count": 3, "total_s": 1.5,
                 "self_s": 1.5, "failures": 1},
            ],
            under="tiles",
        )
        stats = parent.stats()
        assert stats["tiles/solve"].count == 1
        assert stats["tiles/solve"].total_s == pytest.approx(2.0)
        # total - self of the absorbed root becomes its child time.
        assert stats["tiles/solve"].self_s == pytest.approx(0.5)
        assert stats["tiles/solve/iteration"].failures == 1
        # The absorbed root's time charges to the anchor's child time.
        assert stats["tiles"].self_s == 0.0

    def test_round_trips_through_as_dict(self):
        worker = Tracer()
        with worker.span("a"):
            pass
        payloads = [s.as_dict() for s in worker.stats().values()]
        parent = Tracer()
        parent.absorb(payloads)
        assert parent.stats()["a"].count == 1
        assert isinstance(parent.stats()["a"], SpanStats)


class TestNullTracer:
    def test_noop_and_shared(self):
        tracer = NullTracer()
        with tracer.span("anything"):
            pass
        assert tracer.stats() == {}
        assert tracer.total("anything") == 0.0
        assert tracer.root_total() == 0.0
        assert not tracer.enabled
        assert "disabled" in tracer.report()
        # span() returns a shared instance: no per-call allocation.
        assert tracer.span("a") is tracer.span("b") is NULL_TRACER.span("c")
