"""Physics property tests of the optical model.

These encode invariances any correct partially coherent imaging
implementation must satisfy, independent of parameter values.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import GridSpec, OpticsConfig
from repro.optics.hopkins import aerial_image, field_stack
from repro.optics.kernels import build_socs_kernels

GRID = GridSpec(shape=(64, 64), pixel_nm=16.0)
OPTICS = OpticsConfig(num_kernels=6)


@pytest.fixture(scope="module")
def kernels():
    return build_socs_kernels(GRID, OPTICS)


def random_mask(seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    mask = np.zeros(GRID.shape)
    for _ in range(3):
        i, j = rng.integers(4, 44, size=2)
        h, w = rng.integers(4, 16, size=2)
        mask[i: i + h, j: j + w] = 1.0
    return mask


class TestImagingInvariances:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_intensity_bounded_by_open_frame(self, seed):
        # A binary mask can never image brighter than the open frame
        # (1.0) by more than diffraction ringing allows (~small overshoot).
        kernels = build_socs_kernels(GRID, OPTICS)
        intensity = aerial_image(random_mask(seed), kernels)
        assert intensity.min() >= 0.0
        assert intensity.max() <= 1.5

    @settings(max_examples=10, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=-20, max_value=20),
        st.integers(min_value=-20, max_value=20),
    )
    def test_shift_equivariance(self, seed, dy, dx):
        kernels = build_socs_kernels(GRID, OPTICS)
        mask = random_mask(seed)
        shifted = np.roll(mask, (dy, dx), axis=(0, 1))
        assert np.allclose(
            np.roll(aerial_image(mask, kernels), (dy, dx), axis=(0, 1)),
            aerial_image(shifted, kernels),
            atol=1e-10,
        )

    def test_180_rotation_symmetry(self, kernels):
        # Annular sources and ideal pupils are inversion-symmetric, so a
        # 180-degree-rotated mask images to the rotated image.
        mask = random_mask(3)
        rotated = np.roll(mask[::-1, ::-1], (1, 1), axis=(0, 1))  # proper grid inversion
        base = aerial_image(mask, kernels)
        rotated_image = aerial_image(rotated, kernels)
        expected = np.roll(base[::-1, ::-1], (1, 1), axis=(0, 1))
        assert np.allclose(rotated_image, expected, atol=1e-9)

    def test_intensity_scales_quadratically(self, kernels):
        # I is quadratic in the mask amplitude: half transmission -> 1/4 I.
        mask = random_mask(5)
        full = aerial_image(mask, kernels)
        half = aerial_image(0.5 * mask, kernels)
        assert np.allclose(half, 0.25 * full, atol=1e-12)

    def test_superposition_fails_for_intensity(self, kernels):
        # Imaging is NOT linear in intensity: cross-terms exist for
        # nearby features (the whole reason OPC is hard).
        a = np.zeros(GRID.shape)
        a[28:36, 24:28] = 1.0
        b = np.zeros(GRID.shape)
        b[28:36, 32:36] = 1.0  # 4 px away: strongly interacting
        together = aerial_image(a + b, kernels)
        separate = aerial_image(a, kernels) + aerial_image(b, kernels)
        assert not np.allclose(together, separate, atol=1e-3)

    def test_fields_linear_in_mask(self, kernels):
        # The *fields* are linear even though intensity is not.
        a = random_mask(7)
        b = random_mask(8)
        fa = field_stack(a, kernels)
        fb = field_stack(b, kernels)
        fab = field_stack(a + b, kernels)
        assert np.allclose(fab, fa + fb, atol=1e-10)


class TestEnergyConservation:
    def test_mask_area_monotonicity_for_large_features(self, kernels):
        # Total imaged energy grows with transmitting area for features
        # much larger than the resolution.
        small = np.zeros(GRID.shape)
        small[24:40, 24:40] = 1.0
        large = np.zeros(GRID.shape)
        large[16:48, 16:48] = 1.0
        assert aerial_image(large, kernels).sum() > aerial_image(small, kernels).sum()

    def test_defocus_preserves_total_energy_at_full_rank(self):
        # An aberration only redistributes energy (unit-modulus pupil):
        # at full kernel rank total intensity is conserved to numerical
        # precision; truncation breaks the identity only slightly.
        mask = random_mask(11)
        full = OpticsConfig(num_kernels=100_000)
        nominal = build_socs_kernels(GRID, full, defocus_nm=0.0)
        defocused = build_socs_kernels(GRID, full, defocus_nm=25.0)
        e0 = aerial_image(mask, nominal).sum()
        e1 = aerial_image(mask, defocused).sum()
        assert e1 == pytest.approx(e0, rel=1e-10)

        truncated_n = build_socs_kernels(GRID, OPTICS, defocus_nm=0.0)
        truncated_d = build_socs_kernels(GRID, OPTICS, defocus_nm=25.0)
        t0 = aerial_image(mask, truncated_n).sum()
        t1 = aerial_image(mask, truncated_d).sum()
        assert t1 == pytest.approx(t0, rel=1e-3)
