"""Service observability: tracing, Prometheus exposition, SLO metrics.

Covers the request-tracing layer end to end (one trace id from HTTP
ingress to worker spools and the fused Chrome trace), the Prometheus
text exposition grammar, the JSONL access log under handler-thread
concurrency, and the client's connection-refused retry.
"""

import io
import json
import re
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.config import (
    GridSpec,
    LithoConfig,
    OpticsConfig,
    OptimizerConfig,
    ProcessConfig,
    ResistConfig,
)
from repro.errors import ServiceError
from repro.obs.export import read_chrome_trace, validate_chrome_trace
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    NullMetricsRegistry,
    encode_labels,
    render_prometheus,
    split_series_name,
)
from repro.service import IltService, ServiceClient, ServiceConfig, serve
from repro.service.jobs import JOB_FILENAME, RUN_DIRNAME
from repro.service.server import (
    ACCESS_LOG_FILENAME,
    TRACE_HEADER,
    append_access_record,
)
from repro.service.tracing import SERVICE_LANE_PID, fuse_trace

PROBE_NM = 1024.0


def tiny_litho():
    return LithoConfig(
        grid=GridSpec(shape=(64, 64), pixel_nm=16.0),
        optics=OpticsConfig(num_kernels=4),
        resist=ResistConfig(),
        process=ProcessConfig(),
    )


def tiny_optimizer(max_iterations=3):
    return OptimizerConfig(max_iterations=max_iterations, use_jump=False)


def tiny_service_config(root, **overrides):
    defaults = dict(
        root=root,
        litho=tiny_litho(),
        optimizer=tiny_optimizer(),
        fullchip_overrides={"probe_extent_nm": PROBE_NM},
        poll_s=0.05,
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


SERIAL_PAYLOAD = {
    "layout": "synth:1024x1024:1",
    "mode": "fast",
    "executor": "serial",
}


# -- Prometheus exposition grammar -------------------------------------------

_COMMENT_RE = re.compile(r"^# (?:HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+$")
_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    r'(?:\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\\\|\\"|\\n)*"'
    r'(?:,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\\\|\\"|\\n)*")*\})?'
    r" (?:[-+]?[0-9]+(?:\.[0-9]+)?(?:[eE][-+]?[0-9]+)?|NaN|\+Inf|-Inf)$"
)


def populated_registry():
    registry = MetricsRegistry()
    registry.counter("service_jobs_submitted").inc(4)
    registry.counter(
        "service_jobs_by_tenant", labels={"tenant": "acme", "cache": "hit"}
    ).inc()
    registry.counter(
        "service_jobs_by_tenant", labels={"tenant": "acme", "cache": "miss"}
    ).inc(3)
    registry.gauge("http_requests_in_flight").set(1)
    hist = registry.histogram(
        "http_request_duration_seconds",
        buckets=DEFAULT_LATENCY_BUCKETS,
        labels={"endpoint": "/v1/jobs", "method": "POST"},
    )
    for value in (0.002, 0.02, 0.3, 7.0, 1000.0):
        hist.observe(value)
    return registry


class TestPrometheusExposition:
    def test_every_line_matches_the_grammar(self):
        text = render_prometheus(populated_registry().as_dict())
        assert text.endswith("\n")
        for line in text.splitlines():
            assert _COMMENT_RE.match(line) or _SAMPLE_RE.match(line), line

    def test_label_escaping_round_trip(self):
        registry = MetricsRegistry()
        nasty = 'quo"te\\slash\nnewline'
        registry.counter("weird_total", labels={"tenant": nasty}).inc()
        text = render_prometheus(registry.as_dict())
        sample = [l for l in text.splitlines() if not l.startswith("#")][0]
        assert _SAMPLE_RE.match(sample), sample
        assert '\\"' in sample and "\\\\" in sample and "\\n" in sample
        assert "\n" not in sample

    def test_bucket_series_cumulative_and_consistent_with_json(self):
        registry = populated_registry()
        snapshot = registry.as_dict()
        text = render_prometheus(snapshot)
        bucket_values = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("http_request_duration_seconds_bucket")
        ]
        assert bucket_values == sorted(bucket_values)  # monotone cumulative
        count_line = [
            line for line in text.splitlines()
            if line.startswith("http_request_duration_seconds_count")
        ][0]
        assert bucket_values[-1] == int(count_line.rsplit(" ", 1)[1]) == 5
        # The JSON view (satellite: buckets + counts in metrics_snapshot)
        # must agree with the Prometheus cumulative expansion.
        encoded = encode_labels(
            "http_request_duration_seconds",
            {"endpoint": "/v1/jobs", "method": "POST"},
        )
        data = snapshot[encoded]
        assert "buckets" in data and "counts" in data
        cumulative, rebuilt = 0, []
        for count in data["counts"]:
            cumulative += count
            rebuilt.append(cumulative)
        assert rebuilt == bucket_values

    def test_unset_gauges_and_null_instruments_are_omitted(self):
        registry = MetricsRegistry()
        registry.gauge("never_set")
        text = render_prometheus({**registry.as_dict(), "nul": {"type": "null"}})
        assert text == ""

    def test_label_encoding_is_order_stable(self):
        assert encode_labels("m", {"b": 1, "a": 2}) == encode_labels(
            "m", {"a": 2, "b": 1}
        )
        base, labels = split_series_name('m{a="2",b="1"}')
        assert base == "m" and labels == 'a="2",b="1"'
        assert split_series_name("bare") == ("bare", "")

    def test_labels_create_distinct_series_per_combination(self):
        registry = MetricsRegistry()
        registry.counter("c", labels={"t": "a"}).inc()
        registry.counter("c", labels={"t": "b"}).inc(2)
        assert registry.counter("c", labels={"t": "a"}).value == 1
        assert registry.counter("c", labels={"t": "b"}).value == 2

    def test_null_registry_accepts_labels(self):
        null = NullMetricsRegistry()
        null.counter("c", labels={"t": "a"}).inc()
        null.gauge("g", labels={"t": "a"}).set(1.0)
        null.histogram("h", buckets=(1.0,), labels={"t": "a"}).observe(0.5)


# -- access log concurrency ---------------------------------------------------


class TestAccessLog:
    def test_concurrent_appends_never_tear_lines(self, tmp_path):
        threads, per_thread = 8, 50

        def hammer(worker):
            for i in range(per_thread):
                append_access_record(
                    tmp_path,
                    {"worker": worker, "i": i, "trace_id": f"t{worker}"},
                )

        pool = [
            threading.Thread(target=hammer, args=(w,)) for w in range(threads)
        ]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        rows = [
            json.loads(line)
            for line in (tmp_path / ACCESS_LOG_FILENAME).read_text().splitlines()
        ]
        assert len(rows) == threads * per_thread
        for worker in range(threads):
            seen = sorted(r["i"] for r in rows if r["worker"] == worker)
            assert seen == list(range(per_thread))


# -- client retry -------------------------------------------------------------


class _FakeResponse(io.BytesIO):
    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()


class TestClientRetry:
    def test_connection_refused_retries_with_stable_trace_id(self, monkeypatch):
        attempts = []

        def fake_urlopen(request, timeout=None):
            # urllib normalizes stored header names via str.capitalize().
            attempts.append(request.get_header(TRACE_HEADER.capitalize()))
            if len(attempts) < 3:
                raise urllib.error.URLError(ConnectionRefusedError(111, "refused"))
            return _FakeResponse(b'{"id": "j1", "state": "PENDING"}')

        monkeypatch.setattr(urllib.request, "urlopen", fake_urlopen)
        monkeypatch.setattr("time.sleep", lambda s: None)
        client = ServiceClient("http://127.0.0.1:1", retries=2, retry_backoff_s=0.0)
        job = client.submit({"layout": "synth:1024x1024:1"}, trace_id="stable123")
        assert job["id"] == "j1"
        assert len(attempts) == 3
        assert all(a == "stable123" for a in attempts)

    def test_no_retry_on_other_transport_errors(self, monkeypatch):
        calls = []

        def fake_urlopen(request, timeout=None):
            calls.append(1)
            raise urllib.error.URLError(OSError("no route to host"))

        monkeypatch.setattr(urllib.request, "urlopen", fake_urlopen)
        client = ServiceClient("http://127.0.0.1:1", retries=3)
        with pytest.raises(ServiceError):
            client.healthz()
        assert len(calls) == 1

    def test_zero_retries_fails_immediately_on_refused(self, monkeypatch):
        calls = []

        def fake_urlopen(request, timeout=None):
            calls.append(1)
            raise urllib.error.URLError(ConnectionRefusedError(111, "refused"))

        monkeypatch.setattr(urllib.request, "urlopen", fake_urlopen)
        client = ServiceClient("http://127.0.0.1:1", retries=0)
        with pytest.raises(ServiceError):
            client.healthz()
        assert len(calls) == 1

    def test_negative_retries_rejected(self):
        with pytest.raises(ServiceError):
            ServiceClient("http://127.0.0.1:1", retries=-1)


# -- HTTP middleware over a live server ---------------------------------------


def _wait_access_rows(root, predicate, timeout_s=10.0):
    """Access rows matching ``predicate``, polling until they land.

    The access record (and the request metrics emitted just before it)
    is appended *after* the response bytes go out, so a client that
    just got its response can race the server thread's finally block.
    """
    deadline = time.monotonic() + timeout_s
    while True:
        rows = []
        path = root / ACCESS_LOG_FILENAME
        if path.is_file():
            for line in path.read_text().splitlines():
                try:
                    rows.append(json.loads(line))
                except json.JSONDecodeError:
                    pass
        matched = [row for row in rows if predicate(row)]
        if matched or time.monotonic() > deadline:
            return matched
        time.sleep(0.02)


@pytest.fixture(scope="module")
def http_env(tmp_path_factory):
    root = tmp_path_factory.mktemp("svc")
    service = IltService(tiny_service_config(root))
    server = serve(service, host="127.0.0.1", port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield {"service": service, "server": server, "url": server.url, "root": root}
    server.shutdown()
    server.server_close()
    service.close()
    thread.join(timeout=5)


class TestHttpObservability:
    def test_submit_echoes_and_persists_the_trace_id(self, http_env):
        request = urllib.request.Request(
            http_env["url"] + "/v1/jobs",
            data=json.dumps(SERIAL_PAYLOAD).encode(),
            method="POST",
            headers={"Content-Type": "application/json",
                     TRACE_HEADER: "feedfacecafe"},
        )
        with urllib.request.urlopen(request, timeout=30) as response:
            assert response.headers.get(TRACE_HEADER) == "feedfacecafe"
            job = json.loads(response.read())
        assert job["trace_id"] == "feedfacecafe"
        final = http_env["service"].wait(job["id"], timeout_s=60)
        assert final.state == "DONE"
        on_disk = json.loads(
            (http_env["root"] / "jobs" / job["id"] / JOB_FILENAME).read_text()
        )
        assert on_disk["trace_id"] == "feedfacecafe"
        run_meta = json.loads(
            (http_env["root"] / "jobs" / job["id"] / RUN_DIRNAME / "run.json")
            .read_text()
        )
        assert run_meta["trace_id"] == "feedfacecafe"

    def test_minted_trace_id_when_client_brings_none(self, http_env):
        service = http_env["service"]
        job = service.submit(dict(SERIAL_PAYLOAD))
        assert job.trace_id and len(job.trace_id) == 32
        service.wait(job.id, timeout_s=60)

    def test_cache_hit_is_labeled_in_metrics_and_access_log(self, http_env):
        client = ServiceClient(http_env["url"])
        job = client.submit(dict(SERIAL_PAYLOAD))
        client.wait(job["id"], timeout_s=60)
        hit = client.submit(dict(SERIAL_PAYLOAD))
        assert hit["cached"] is True
        assert hit["trace_id"] and hit["trace_id"] != job["trace_id"]
        snapshot = http_env["service"].metrics_snapshot()
        hit_key = encode_labels(
            "service_jobs_by_tenant", {"tenant": "default", "cache": "hit"}
        )
        assert snapshot[hit_key]["value"] >= 1
        hit_rows = _wait_access_rows(
            http_env["root"],
            lambda row: row.get("trace_id") == hit["trace_id"],
        )
        assert hit_rows and hit_rows[0]["cache_hit"] is True
        assert hit_rows[0]["job_id"] == hit["id"]

    def test_access_log_and_request_metrics_cover_every_request(self, http_env):
        client = ServiceClient(http_env["url"])
        client.healthz()
        # The access row lands after the request metrics, so once it is
        # visible the histogram/counter below are too.
        health_rows = _wait_access_rows(
            http_env["root"], lambda row: row.get("endpoint") == "/healthz"
        )
        snapshot = http_env["service"].metrics_snapshot()
        health_key = encode_labels(
            "http_requests_total",
            {"endpoint": "/healthz", "method": "GET", "status": "200"},
        )
        assert snapshot[health_key]["value"] >= 1
        duration_key = encode_labels(
            "http_request_duration_seconds",
            {"endpoint": "/healthz", "method": "GET"},
        )
        assert snapshot[duration_key]["count"] >= 1
        assert snapshot[duration_key]["buckets"]  # JSON carries bounds
        assert health_rows
        row = health_rows[-1]
        assert row["status"] == 200 and row["outcome"] == "ok"
        assert row["trace_id"] and row["duration_s"] >= 0
        assert row["response_bytes"] > 0

    def test_metricsz_prometheus_exposition(self, http_env):
        with urllib.request.urlopen(
            http_env["url"] + "/metricsz?format=prometheus", timeout=30
        ) as response:
            assert response.headers.get_content_type() == "text/plain"
            assert "version=0.0.4" in response.headers.get("Content-Type", "")
            text = response.read().decode()
        for line in text.splitlines():
            assert _COMMENT_RE.match(line) or _SAMPLE_RE.match(line), line
        assert re.search(r"^service_jobs_submitted [1-9]", text, re.M)
        assert "http_request_duration_seconds_bucket" in text
        assert "http_request_duration_seconds_sum" in text
        assert "http_request_duration_seconds_count" in text

    def test_metricsz_unknown_format_is_400(self, http_env):
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(
                http_env["url"] + "/metricsz?format=xml", timeout=30
            )
        assert exc.value.code == 400

    def test_slo_histograms_recorded(self, http_env):
        snapshot = http_env["service"].metrics_snapshot()
        wait_key = encode_labels(
            "service_queue_wait_seconds", {"tenant": "default"}
        )
        solve_key = encode_labels(
            "service_solve_seconds", {"outcome": "done", "tenant": "default"}
        )
        ttfe_key = encode_labels(
            "service_time_to_first_event_seconds", {"tenant": "default"}
        )
        for key in (wait_key, solve_key, ttfe_key):
            assert snapshot[key]["count"] >= 1, key


# -- trace-id propagation E2E (queue executor + fused trace) ------------------


@pytest.mark.slow
class TestTraceIdPropagationE2E:
    def test_one_trace_id_across_every_artifact(self, tmp_path):
        from repro.fullchip.queue import QUEUE_DIRNAME, TileJobQueue
        from repro.obs.distributed import SPOOL_DIRNAME, read_spool

        service = IltService(tiny_service_config(tmp_path / "root"))
        server = serve(service, host="127.0.0.1", port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            client = ServiceClient(server.url)
            job = client.submit(
                {"layout": "synth:1024x1024:1", "mode": "fast",
                 "executor": "queue", "workers": 1},
                trace_id="e2e" + "0" * 29,
            )
            trace_id = job["trace_id"]
            assert trace_id == "e2e" + "0" * 29
            final = client.wait(job["id"], timeout_s=180)
            assert final["state"] == "DONE", final.get("error")

            job_dir = tmp_path / "root" / "jobs" / job["id"]
            run_dir = job_dir / RUN_DIRNAME
            assert json.loads((job_dir / JOB_FILENAME).read_text())["trace_id"] == trace_id
            assert json.loads((run_dir / "run.json").read_text())["trace_id"] == trace_id

            queue = TileJobQueue.open(run_dir / QUEUE_DIRNAME)
            assert queue.trace_id == trace_id
            tiles = list(queue.tiles())
            assert tiles
            history = queue.history(tiles[0])
            assert any(row.get("trace_id") == trace_id for row in history)
            # Worker-side lines (claimed/completed by the repro worker
            # subprocess) carry it too — the id crossed the process
            # boundary through meta.json.
            worker_kinds = {
                row["kind"] for row in history if row.get("trace_id") == trace_id
            }
            assert worker_kinds - {"seeded"}

            spools = sorted((run_dir / SPOOL_DIRNAME).glob("spool_*.jsonl"))
            assert spools
            assert read_spool(spools[0]).trace_id == trace_id

            fused = fuse_trace(job["id"], root=tmp_path / "root")
            assert fused.trace_id == trace_id
            assert fused.problems == []
            assert len(fused.lanes) >= 3  # service + parent + >=1 worker
            assert fused.lanes[0].pid == SERVICE_LANE_PID
            assert fused.lanes[0].label == "service"
            paths = [s.path for s in fused.lanes[0].slices]
            assert "job/solve" in paths
            assert any(p.startswith("http/POST /v1/jobs") for p in paths)

            # Round trip through the written file: parses, validates,
            # and the lanes read back.
            document = json.loads(fused.path.read_text())
            assert validate_chrome_trace(document) == []
            lanes = read_chrome_trace(fused.path)
            assert {lane.label for lane in lanes} >= {"service", "parent"}

            # The CLI verb drives the same fusion.
            from repro.cli import main

            assert main([
                "trace", job["id"], "--root", str(tmp_path / "root"),
                "--out", str(tmp_path / "cli_fused.json"),
            ]) == 0
            assert (tmp_path / "cli_fused.json").is_file()
        finally:
            server.shutdown()
            server.server_close()
            service.close()
            thread.join(timeout=5)
