"""Tests for the batch experiment harness."""

import csv

import pytest

from repro.config import OptimizerConfig
from repro.errors import ReproError
from repro.harness import run_experiment
from repro.opc.mosaic import MosaicFast
from repro.baselines import ModelBasedOPC
from repro.workloads.iccad2013 import load_benchmark


@pytest.fixture(scope="module")
def small_experiment(reduced_config, sim):
    solvers = [
        ("mb", lambda: ModelBasedOPC(reduced_config, max_iterations=3, simulator=sim)),
        (
            "fast",
            lambda: MosaicFast(
                reduced_config,
                optimizer_config=OptimizerConfig(max_iterations=10),
                simulator=sim,
            ),
        ),
    ]
    layouts = [load_benchmark("B1"), load_benchmark("B4")]
    return run_experiment(solvers, layouts)


class TestRunExperiment:
    def test_all_cells_filled(self, small_experiment):
        assert len(small_experiment.scores) == 4
        for label in ("mb", "fast"):
            for name in ("B1", "B4"):
                assert (label, name) in small_experiment.scores

    def test_totals_and_ranking(self, small_experiment):
        totals = small_experiment.totals()
        assert set(totals) == {"mb", "fast"}
        ranking = small_experiment.ranking()
        assert totals[ranking[0]] <= totals[ranking[1]]

    def test_format_table(self, small_experiment):
        table = small_experiment.format_table()
        assert "B1" in table and "B4" in table
        assert "ratio" in table
        assert "1.000" in table  # the best solver's ratio

    def test_csv_export(self, small_experiment, tmp_path):
        path = tmp_path / "results.csv"
        small_experiment.to_csv(path)
        with open(path) as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 4
        assert {row["solver"] for row in rows} == {"mb", "fast"}
        assert all(float(row["score"]) > 0 for row in rows)

    def test_csv_export_accepts_string_path(self, small_experiment, tmp_path):
        path = str(tmp_path / "results.csv")
        small_experiment.to_csv(path)
        with open(path) as handle:
            header = next(csv.reader(handle))
        assert header == [
            "solver", "layout", "status", "epe_violations", "pv_band_nm2",
            "shape_violations", "runtime_s", "score", "error",
        ]

    def test_csv_rows_match_score_matrix(self, small_experiment, tmp_path):
        path = tmp_path / "results.csv"
        small_experiment.to_csv(path)
        with open(path) as handle:
            rows = {(r["solver"], r["layout"]): r for r in csv.DictReader(handle)}
        for (label, name), breakdown in small_experiment.scores.items():
            row = rows[(label, name)]
            assert int(row["epe_violations"]) == breakdown.epe_violations
            assert float(row["pv_band_nm2"]) == breakdown.pv_band_nm2
            assert float(row["score"]) == pytest.approx(breakdown.total, abs=0.05)
            assert float(row["runtime_s"]) == pytest.approx(
                breakdown.runtime_s, abs=0.001
            )

    def test_progress_callback(self, reduced_config, sim):
        seen = []
        run_experiment(
            [("mb", lambda: ModelBasedOPC(reduced_config, max_iterations=2, simulator=sim))],
            [load_benchmark("B1")],
            progress=seen.append,
        )
        assert seen == ["mb on B1"]

    def test_progress_callback_order_solver_major_per_layout(
        self, reduced_config, sim
    ):
        factory = lambda: ModelBasedOPC(reduced_config, max_iterations=2, simulator=sim)
        seen = []
        run_experiment(
            [("a", factory), ("b", factory)],
            [load_benchmark("B1"), load_benchmark("B4")],
            progress=seen.append,
        )
        # One message per cell, layouts outer, solvers inner.
        assert seen == ["a on B1", "b on B1", "a on B4", "b on B4"]

    def test_duplicate_solver_labels_named_in_error(self, reduced_config, sim):
        factory = lambda: ModelBasedOPC(reduced_config, max_iterations=2, simulator=sim)
        with pytest.raises(ReproError, match="duplicate solver labels"):
            run_experiment(
                [("same", factory), ("same", factory)], [load_benchmark("B1")]
            )

    def test_validation(self, reduced_config, sim):
        layout = load_benchmark("B1")
        factory = lambda: ModelBasedOPC(reduced_config, max_iterations=2, simulator=sim)
        with pytest.raises(ReproError):
            run_experiment([], [layout])
        with pytest.raises(ReproError):
            run_experiment([("a", factory)], [])
        with pytest.raises(ReproError):
            run_experiment([("a", factory), ("a", factory)], [layout])
