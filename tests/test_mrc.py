"""Unit tests for repro.metrics.mrc (mask rule checking)."""

import numpy as np
import pytest

from repro.config import GridSpec
from repro.errors import GridError
from repro.metrics.mrc import check_mask_rules, space_violations, width_violations

GRID = GridSpec(shape=(64, 64), pixel_nm=1.0)


class TestWidthViolations:
    def test_wide_feature_clean(self):
        mask = np.zeros(GRID.shape)
        mask[20:40, 20:40] = 1.0
        assert width_violations(mask, GRID, min_width_nm=5.0).sum() == 0

    def test_thin_line_flagged(self):
        mask = np.zeros(GRID.shape)
        mask[20:23, 10:50] = 1.0  # 3 px wide
        violations = width_violations(mask, GRID, min_width_nm=5.0)
        assert violations.sum() == mask.sum()

    def test_mixed_mask_flags_only_thin_part(self):
        mask = np.zeros(GRID.shape)
        mask[20:40, 20:40] = 1.0   # big block: fine
        mask[5:7, 5:30] = 1.0      # thin bar: violation
        violations = width_violations(mask, GRID, min_width_nm=5.0)
        assert violations[5, 10]
        assert not violations[30, 30]

    def test_rule_below_pixel_noop(self):
        mask = np.zeros(GRID.shape)
        mask[5, 5] = 1.0
        assert width_violations(mask, GRID, min_width_nm=1.0).sum() == 0


class TestSpaceViolations:
    def test_wide_gap_clean(self):
        mask = np.zeros(GRID.shape)
        mask[10:20, 10:50] = 1.0
        mask[40:50, 10:50] = 1.0  # 20 px gap
        assert space_violations(mask, GRID, min_space_nm=5.0).sum() == 0

    def test_narrow_gap_flagged(self):
        mask = np.zeros(GRID.shape)
        mask[10:20, 10:50] = 1.0
        mask[23:33, 10:50] = 1.0  # 3 px gap
        violations = space_violations(mask, GRID, min_space_nm=6.0)
        assert violations[21, 30]

    def test_border_not_a_gap(self):
        mask = np.zeros(GRID.shape)
        mask[0:10, 0:64] = 1.0  # feature hugging the border
        assert space_violations(mask, GRID, min_space_nm=6.0).sum() == 0


class TestReport:
    def test_clean_mask(self):
        mask = np.zeros(GRID.shape)
        mask[20:40, 20:40] = 1.0
        report = check_mask_rules(mask, GRID, min_width_nm=5, min_space_nm=5)
        assert report.clean
        assert report.width_violation_px == 0
        assert report.space_violation_px == 0

    def test_dirty_mask(self):
        mask = np.zeros(GRID.shape)
        mask[20:22, 10:50] = 1.0  # thin
        mask[25:45, 10:50] = 1.0
        report = check_mask_rules(mask, GRID, min_width_nm=5, min_space_nm=5)
        assert not report.clean
        assert report.width_violation_px > 0
        assert report.space_violation_px > 0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(GridError):
            width_violations(np.zeros((8, 8)), GRID, 5.0)
        with pytest.raises(GridError):
            space_violations(np.zeros((8, 8)), GRID, 5.0)
