"""Unit tests for ModelBasedOPC's fragment/strip machinery."""

import numpy as np
import pytest

from repro.baselines.modelbased import ModelBasedOPC, _Fragment, _fragment_edges
from repro.geometry.edges import EdgeOrientation, extract_edges
from repro.geometry.polygon import Polygon
from repro.geometry.rect import Rect


@pytest.fixture()
def solver(reduced_config, sim):
    return ModelBasedOPC(reduced_config, simulator=sim)


class TestFragmentation:
    def test_fragment_count(self):
        edges = extract_edges(Polygon.from_rect(Rect(100, 100, 300, 180)))
        fragments = _fragment_edges(edges, fragment_nm=40.0)
        # 200 nm edges -> 5 fragments; 80 nm edges -> 2 fragments.
        assert len(fragments) == 2 * 5 + 2 * 2

    def test_fragments_tile_edges(self):
        edges = extract_edges(Polygon.from_rect(Rect(0, 0, 100, 100)))
        fragments = _fragment_edges(edges, fragment_nm=40.0)
        for edge in edges:
            covering = [
                f for f in fragments
                if f.orientation is edge.orientation and f.fixed == edge.fixed
            ]
            total = sum(f.hi - f.lo for f in covering)
            assert total == pytest.approx(edge.length)

    def test_short_edge_single_fragment(self):
        edges = extract_edges(Polygon.from_rect(Rect(0, 0, 30, 30)))
        fragments = _fragment_edges(edges, fragment_nm=40.0)
        assert len(fragments) == 4


class TestStripBoxes:
    def test_outward_strip_for_positive_bias(self, solver):
        # Bottom edge of a feature (interior above, +1): positive bias
        # extends the mask downward (outward).
        frag = _Fragment(
            orientation=EdgeOrientation.HORIZONTAL,
            fixed=400.0, lo=200.0, hi=280.0, interior_sign=1, bias_nm=12.0,
        )
        i0, i1, j0, j1 = solver._strip_box(frag)
        dx = solver.sim.grid.pixel_nm
        assert i1 == int(400 / dx)       # ends at the edge
        assert i0 == int((400 - 12) / dx)  # starts 12 nm outside
        assert (j0, j1) == (int(200 / dx), int(280 / dx))

    def test_inward_strip_for_negative_bias(self, solver):
        frag = _Fragment(
            orientation=EdgeOrientation.HORIZONTAL,
            fixed=400.0, lo=200.0, hi=280.0, interior_sign=1, bias_nm=-8.0,
        )
        i0, i1, j0, j1 = solver._strip_box(frag)
        dx = solver.sim.grid.pixel_nm
        assert i0 == int(400 / dx)       # starts at the edge
        assert i1 == int(np.ceil((400 + 8) / dx))  # reaches inward

    def test_zero_bias_no_strip(self, solver):
        frag = _Fragment(
            orientation=EdgeOrientation.VERTICAL,
            fixed=100.0, lo=0.0, hi=50.0, interior_sign=1, bias_nm=0.0,
        )
        assert solver._strip_box(frag) is None


class TestBuildMask:
    def test_erosion_before_dilation(self, solver):
        """A fragment moving out next to one moving in must keep its
        outward strip (dilations are applied after erosions)."""
        grid = solver.sim.grid
        target = np.zeros(grid.shape)
        target[50:80, 50:100] = 1.0
        frag_out = _Fragment(
            orientation=EdgeOrientation.HORIZONTAL,
            fixed=320.0, lo=200.0, hi=280.0, interior_sign=-1, bias_nm=8.0,
        )  # top edge at y=320 nm (row 80), pushes up
        frag_in = _Fragment(
            orientation=EdgeOrientation.HORIZONTAL,
            fixed=320.0, lo=280.0, hi=400.0, interior_sign=-1, bias_nm=-8.0,
        )  # neighbouring top-edge span pulls in
        mask = solver.build_mask(target, [frag_in, frag_out])
        assert mask[80, 55]   # outward strip survives above the old edge
        assert not mask[79, 95]  # pulled-in span is carved away

    def test_no_fragments_identity(self, solver):
        grid = solver.sim.grid
        target = np.zeros(grid.shape)
        target[50:80, 50:100] = 1.0
        assert np.array_equal(solver.build_mask(target, []), target)
