"""Unit tests for repro.optics.tcc (Hopkins TCC and its decomposition)."""

import numpy as np
import pytest

from repro.config import GridSpec, OpticsConfig
from repro.errors import OpticsError
from repro.optics.source import AnnularSource
from repro.optics.tcc import (
    build_amplitude_matrix,
    build_frequency_support,
    decompose_amplitude,
    tcc_matrix,
)

GRID = GridSpec(shape=(128, 128), pixel_nm=8.0)
OPTICS = OpticsConfig(num_kernels=8)


@pytest.fixture(scope="module")
def support():
    return build_frequency_support(GRID, OPTICS)


@pytest.fixture(scope="module")
def amplitude(support):
    points = AnnularSource(0.6, 0.9).sample(OPTICS, support.freq_step)
    return build_amplitude_matrix(support, OPTICS, points)


class TestFrequencySupport:
    def test_within_cutoff(self, support):
        radius = np.hypot(support.fx, support.fy)
        assert np.all(radius <= OPTICS.cutoff_frequency + 1e-12)

    def test_contains_dc(self, support):
        dc = support.zero_index()
        assert support.fx[dc] == 0.0
        assert support.fy[dc] == 0.0

    def test_scatter_gather_roundtrip(self, support):
        values = np.arange(support.size, dtype=np.complex128)
        assert np.array_equal(support.gather(support.scatter(values)), values)

    def test_scatter_zero_elsewhere(self, support):
        full = support.scatter(np.ones(support.size, dtype=np.complex128))
        assert np.count_nonzero(full) == support.size

    def test_too_coarse_grid_rejected(self):
        tiny = GridSpec(shape=(8, 8), pixel_nm=1.0)  # 8 nm clip: no optics fits
        with pytest.raises(OpticsError):
            build_frequency_support(tiny, OPTICS)

    def test_freq_step_matches_extent(self, support):
        assert support.freq_step == pytest.approx(1.0 / 1024.0)


class TestAmplitudeAndTCC:
    def test_amplitude_shape(self, amplitude, support):
        assert amplitude.shape[1] == support.size

    def test_tcc_hermitian(self, amplitude):
        t = tcc_matrix(amplitude)
        assert np.allclose(t, t.conj().T)

    def test_tcc_positive_semidefinite(self, amplitude):
        t = tcc_matrix(amplitude)
        eigvals = np.linalg.eigvalsh(t)
        assert eigvals.min() >= -1e-10 * eigvals.max()

    def test_empty_source_rejected(self, support):
        with pytest.raises(OpticsError):
            build_amplitude_matrix(support, OPTICS, [])


class TestDecomposition:
    def test_weights_descending_positive(self, amplitude):
        weights, _ = decompose_amplitude(amplitude, 8)
        assert np.all(np.diff(weights) <= 1e-12)
        assert np.all(weights >= 0)

    def test_kernel_count_capped_by_rank(self, amplitude):
        weights, vectors = decompose_amplitude(amplitude, 10_000)
        assert len(weights) == vectors.shape[0] <= min(amplitude.shape)

    def test_vectors_orthonormal(self, amplitude):
        _, vectors = decompose_amplitude(amplitude, 6)
        gram = vectors @ vectors.conj().T
        assert np.allclose(gram, np.eye(6), atol=1e-10)

    def test_reconstruction_improves_with_kernels(self, amplitude):
        t = tcc_matrix(amplitude)
        errs = []
        for h in (1, 4, 12):
            w, v = decompose_amplitude(amplitude, h)
            # T ~= sum_k w_k v_k v_k^H with v_k = v[k] as column vectors.
            approx = (v.T * w) @ v.conj()
            errs.append(np.linalg.norm(t - approx))
        assert errs[0] > errs[1] > errs[2]
