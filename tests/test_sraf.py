"""Unit tests for repro.mask.sraf (assist-feature insertion)."""

import numpy as np
import pytest

from repro.config import GridSpec
from repro.geometry.layout import Layout
from repro.geometry.raster import rasterize_layout
from repro.geometry.rect import Rect
from repro.mask.sraf import initial_mask_with_srafs, insert_srafs
from repro.workloads.generator import line_grating

GRID = GridSpec(shape=(256, 256), pixel_nm=4.0)
CLIP = Rect(0, 0, 1024, 1024)


def iso_line_layout():
    return Layout.from_rects("iso", [Rect(262, 476, 762, 548)], clip=CLIP)


class TestInsertSrafs:
    def test_isolated_line_gets_bars(self):
        srafs = insert_srafs(iso_line_layout(), GRID)
        assert srafs.sum() > 0

    def test_bars_do_not_touch_target(self):
        layout = iso_line_layout()
        target = rasterize_layout(layout, GRID)
        srafs = insert_srafs(layout, GRID)
        assert not np.any(srafs & target)

    def test_clearance_respected(self):
        layout = iso_line_layout()
        target = rasterize_layout(layout, GRID)
        srafs = insert_srafs(layout, GRID, clearance_nm=40.0)
        from scipy import ndimage

        # Distance from every SRAF pixel to the target exceeds clearance.
        dist = ndimage.distance_transform_edt(~target) * GRID.pixel_nm
        assert dist[srafs].min() >= 40.0 - GRID.pixel_nm

    def test_dense_grating_interior_gets_no_bars(self):
        layout = Layout("dense", clip=CLIP)
        layout.extend(line_grating(212, 232, num_lines=5, width=60, pitch=130, length=600))
        srafs = insert_srafs(layout, GRID)
        # Edges between grating lines are not isolated: bars may only
        # appear outside the grating envelope.
        envelope_rows = (slice(int(232 / 4) + 2, int((232 + 4 * 130 + 60) / 4) - 2),)
        interior = srafs[envelope_rows[0], int(240 / 4): int(780 / 4)]
        assert interior.sum() == 0

    def test_short_edges_skipped(self):
        layout = Layout.from_rects("dot", [Rect(500, 500, 530, 530)], clip=CLIP)
        srafs = insert_srafs(layout, GRID, min_edge_nm=50.0)
        assert srafs.sum() == 0

    def test_srafs_do_not_print(self, sim):
        # Sub-resolution property: the assist bars alone stay below the
        # resist threshold at every process corner.
        layout = iso_line_layout()
        srafs = insert_srafs(layout, GRID).astype(float)
        for corner in sim.corners():
            printed = sim.print_binary(srafs, corner)
            assert printed.sum() == 0


class TestInitialMask:
    def test_contains_target(self):
        layout = iso_line_layout()
        target = rasterize_layout(layout, GRID)
        seed = initial_mask_with_srafs(layout, GRID)
        assert np.all(seed[target] == 1.0)

    def test_adds_assist_area(self):
        layout = iso_line_layout()
        target = rasterize_layout(layout, GRID)
        seed = initial_mask_with_srafs(layout, GRID)
        assert seed.sum() > target.sum()

    def test_float_binary_values(self):
        seed = initial_mask_with_srafs(iso_line_layout(), GRID)
        assert set(np.unique(seed)) <= {0.0, 1.0}
