"""Paper-scale smoke tests: the 1024 px @ 1 nm / 24-kernel configuration.

The rest of the suite runs at reduced scale for speed; these tests prove
the paper-scale path works end to end (kernel construction, forward
simulation, metric evaluation).  They take a few seconds each, not
minutes — only full OPC runs are benchmark-only.
"""

import numpy as np
import pytest

from repro.config import LithoConfig

pytestmark = pytest.mark.slow
from repro.geometry.raster import rasterize_layout
from repro.litho.simulator import LithographySimulator
from repro.metrics.epe import measure_epe
from repro.workloads.iccad2013 import load_benchmark


@pytest.fixture(scope="module")
def paper_sim():
    return LithographySimulator(LithoConfig.paper())


class TestPaperScale:
    def test_config(self):
        config = LithoConfig.paper()
        assert config.grid.shape == (1024, 1024)
        assert config.grid.pixel_nm == 1.0
        assert config.optics.num_kernels == 24

    def test_kernel_build(self, paper_sim):
        kernels = paper_sim.kernels_at(0.0)
        assert kernels.num_kernels == 24
        # The frequency support is resolution-independent (same clip
        # extent), so it matches the reduced grid's support size.
        assert kernels.support.size > 100

    def test_forward_simulation(self, paper_sim):
        layout = load_benchmark("B4")
        target = rasterize_layout(layout, paper_sim.grid).astype(float)
        assert target.sum() == pytest.approx(layout.pattern_area)  # 1 nm/px exact
        intensity = paper_sim.aerial(target)
        assert intensity.shape == (1024, 1024)
        assert 0 <= intensity.min() and intensity.max() < 1.5

    def test_epe_measurement_at_full_resolution(self, paper_sim):
        layout = load_benchmark("B4")
        target = rasterize_layout(layout, paper_sim.grid).astype(float)
        printed = paper_sim.print_binary(target)
        report = measure_epe(printed, layout, paper_sim.grid)
        # Same qualitative picture as the reduced grid: the drawn mask
        # violates everywhere.
        assert report.num_violations > report.num_samples // 2

    def test_reduced_and_paper_agree_qualitatively(self, paper_sim, sim):
        """The reduced configuration is a faithful stand-in: aerial
        intensity at matching physical locations agrees within a few
        percent between the 1 nm and 4 nm grids."""
        layout = load_benchmark("B1")
        paper_target = rasterize_layout(layout, paper_sim.grid).astype(float)
        reduced_target = rasterize_layout(layout, sim.grid).astype(float)
        paper_intensity = paper_sim.aerial(paper_target)
        reduced_intensity = sim.aerial(reduced_target)
        # Compare on the coarse lattice (every 4th paper pixel block mean).
        coarse = paper_intensity.reshape(256, 4, 256, 4).mean(axis=(1, 3))
        mid = slice(96, 160)  # around the feature
        diff = np.abs(coarse[mid, mid] - reduced_intensity[mid, mid]).max()
        assert diff < 0.05
