"""Unit and property tests for repro.geometry.polygon."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import GeometryError
from repro.geometry.polygon import Polygon
from repro.geometry.rect import Rect


L_SHAPE = [(0, 0), (30, 0), (30, 30), (20, 30), (20, 10), (0, 10)]


class TestConstruction:
    def test_square(self):
        p = Polygon([(0, 0), (10, 0), (10, 10), (0, 10)])
        assert p.area == 100
        assert p.perimeter == 40

    def test_clockwise_normalized_to_ccw(self):
        ccw = Polygon([(0, 0), (10, 0), (10, 10), (0, 10)])
        cw = Polygon([(0, 0), (0, 10), (10, 10), (10, 0)])
        assert cw.vertices[0] in ccw.vertices
        # Signed area positive for both after normalization.
        assert cw.area == ccw.area == 100

    def test_from_rect(self):
        p = Polygon.from_rect(Rect(1, 2, 4, 6))
        assert p.area == 12
        assert p.bbox == Rect(1, 2, 4, 6)

    def test_collinear_vertices_merged(self):
        p = Polygon([(0, 0), (5, 0), (10, 0), (10, 10), (0, 10)])
        assert len(p.vertices) == 4

    def test_duplicate_vertices_removed(self):
        p = Polygon([(0, 0), (10, 0), (10, 0), (10, 10), (0, 10), (0, 0)])
        assert len(p.vertices) == 4

    def test_non_rectilinear_rejected(self):
        with pytest.raises(GeometryError):
            Polygon([(0, 0), (10, 5), (0, 10)])

    def test_too_few_vertices_rejected(self):
        with pytest.raises(GeometryError):
            Polygon([(0, 0), (10, 0), (10, 10)])

    def test_zero_area_rejected(self):
        with pytest.raises(GeometryError):
            Polygon([(0, 0), (10, 0), (10, 0), (0, 0)])


class TestLShape:
    def test_area(self):
        # 30x10 bottom bar + 10x20 right column.
        assert Polygon(L_SHAPE).area == 300 + 200

    def test_perimeter(self):
        p = Polygon(L_SHAPE)
        assert p.perimeter == 2 * (30 + 30)

    def test_bbox(self):
        assert Polygon(L_SHAPE).bbox == Rect(0, 0, 30, 30)

    def test_segments_closed_loop(self):
        p = Polygon(L_SHAPE)
        segs = list(p.segments())
        assert len(segs) == len(p.vertices)
        for (a, b), (c, d) in zip(segs, segs[1:] + segs[:1]):
            assert b == c  # consecutive segments chain

    def test_contains_point(self):
        p = Polygon(L_SHAPE)
        assert p.contains_point(5, 5)       # in bottom bar
        assert p.contains_point(25, 25)     # in right column
        assert not p.contains_point(5, 20)  # in the notch
        assert p.contains_point(0, 0)       # corner counts as inside
        assert p.contains_point(20, 20)     # on inner boundary

    def test_translated(self):
        p = Polygon(L_SHAPE).translated(100, 50)
        assert p.area == 500
        assert p.bbox == Rect(100, 50, 130, 80)


class TestProperties:
    @given(
        st.floats(min_value=-100, max_value=100),
        st.floats(min_value=-100, max_value=100),
        st.floats(min_value=1, max_value=50),
        st.floats(min_value=1, max_value=50),
    )
    def test_rect_roundtrip_area(self, x, y, w, h):
        r = Rect.from_size(x, y, w, h)
        assert Polygon.from_rect(r).area == pytest.approx(r.area)

    @given(st.floats(min_value=-50, max_value=50), st.floats(min_value=-50, max_value=50))
    def test_translation_preserves_area_perimeter(self, dx, dy):
        p = Polygon(L_SHAPE)
        q = p.translated(dx, dy)
        assert q.area == pytest.approx(p.area)
        assert q.perimeter == pytest.approx(p.perimeter)
