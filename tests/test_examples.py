"""Smoke tests: the example scripts must run end to end.

Each example is executed as a subprocess exactly as a user would run it
(fast variants where the script accepts arguments).  The slow studies
(hotspot_analysis, batch_study) are exercised through their component
unit tests instead.
"""

import subprocess
import sys
from pathlib import Path

import pytest

pytestmark = pytest.mark.slow

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, *args: str, timeout: int = 240) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, f"{name} failed:\n{result.stderr[-2000:]}"
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py", "B1")
        assert "Without OPC" in out
        assert "MOSAIC_fast" in out
        assert "Score improvement" in out

    def test_contest_flow_single_case(self):
        out = run_example("contest_flow.py", "B1")
        assert "MOSAIC_exact" in out
        assert "ratio vs best" in out

    def test_custom_layout(self, tmp_path):
        out = run_example("custom_layout.py", str(tmp_path))
        assert "Round-tripped" in out
        assert (tmp_path / "custom_cell_results.npz").exists()
        assert (tmp_path / "custom_cell_mask.pgm").exists()

    def test_process_window(self):
        out = run_example("process_window.py", "B1")
        assert "per-corner printed behaviour" in out
        assert "PV band" in out
        assert "Dose sensitivity" in out

    @pytest.mark.parametrize(
        "script",
        ["quickstart.py", "contest_flow.py", "process_window.py",
         "custom_layout.py", "hotspot_analysis.py", "batch_study.py"],
    )
    def test_scripts_compile(self, script):
        # All six examples must at least be syntactically valid.
        source = (EXAMPLES / script).read_text()
        compile(source, script, "exec")
