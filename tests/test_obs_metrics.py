"""Unit tests for the metrics registry."""

import pytest

from repro.obs import (
    MetricsRegistry,
    NullMetricsRegistry,
    default_registry,
    set_default_registry,
)


class TestCounter:
    def test_inc(self):
        registry = MetricsRegistry()
        counter = registry.counter("evals")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        assert registry.counter("evals") is counter  # get-or-create

    def test_as_dict(self):
        registry = MetricsRegistry()
        registry.counter("n").inc(2)
        assert registry.as_dict()["n"] == {"type": "counter", "value": 2}


class TestGauge:
    def test_set_overwrites(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("best")
        assert gauge.value is None
        gauge.set(3.5)
        gauge.set(1.25)
        assert gauge.value == 1.25
        assert registry.as_dict()["best"]["value"] == 1.25


class TestHistogram:
    def test_bucket_assignment(self):
        registry = MetricsRegistry()
        hist = registry.histogram("rms", buckets=[1.0, 10.0])
        for value in (0.5, 1.0, 5.0, 100.0):
            hist.observe(value)
        # 0.5 and 1.0 fall in the <=1 bucket; 5 in <=10; 100 overflows.
        assert hist.counts == [2, 1, 1]
        assert hist.count == 4
        assert hist.sum == pytest.approx(106.5)
        assert hist.mean == pytest.approx(106.5 / 4)

    def test_empty_histogram(self):
        hist = MetricsRegistry().histogram("h", buckets=[1.0])
        assert hist.count == 0
        assert hist.mean is None

    def test_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("bad", buckets=[2.0, 1.0])

    def test_default_buckets_cover_gradient_scales(self):
        hist = MetricsRegistry().histogram("gradient_rms")
        hist.observe(1e-7)
        hist.observe(50.0)
        assert hist.count == 2
        assert hist.counts[0] == 1  # tiny value in the first bucket
        assert hist.counts[-1] == 1  # huge value in the overflow bucket


class TestRegistry:
    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_names_and_len_and_contains(self):
        registry = MetricsRegistry()
        registry.counter("b")
        registry.gauge("a")
        assert registry.names() == ["a", "b"]
        assert len(registry) == 2
        assert "a" in registry and "zzz" not in registry

    def test_reset(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        registry.reset()
        assert len(registry) == 0

    def test_summary_renders_all_kinds(self):
        registry = MetricsRegistry()
        registry.counter("forward_evals_total").inc(7)
        registry.gauge("best_objective").set(42.0)
        registry.histogram("gradient_rms").observe(0.5)
        summary = registry.summary()
        assert "forward_evals_total" in summary and "7" in summary
        assert "best_objective" in summary and "42" in summary
        assert "gradient_rms" in summary and "n=1" in summary

    def test_default_registry_is_global_and_swappable(self):
        original = default_registry()
        try:
            mine = MetricsRegistry()
            previous = set_default_registry(mine)
            assert previous is original
            assert default_registry() is mine
            default_registry().counter("seen").inc()
            assert mine.counter("seen").value == 1
        finally:
            set_default_registry(original)


class TestNullRegistry:
    def test_everything_is_noop(self):
        registry = NullMetricsRegistry()
        registry.counter("a").inc(10)
        registry.gauge("b").set(1.0)
        registry.histogram("c").observe(2.0)
        assert not registry.enabled
        assert registry.as_dict() == {}
        assert len(registry) == 0
        assert "a" not in registry
        assert registry.counter("a").value is None
        # Shared instruments: no allocation per lookup.
        assert registry.counter("a") is registry.histogram("b")
