"""Tests for the baseline OPC implementations."""

import numpy as np
import pytest

from repro.baselines import BasicILT, LevelSetILT, ModelBasedOPC
from repro.config import OptimizerConfig
from repro.geometry.raster import rasterize_layout
from repro.metrics.epe import measure_epe
from repro.metrics.score import contest_score
from repro.workloads.iccad2013 import load_benchmark


@pytest.fixture(scope="module")
def b1(sim):
    layout = load_benchmark("B1")
    target = rasterize_layout(layout, sim.grid).astype(float)
    return layout, target, contest_score(sim, target, layout)


class TestModelBasedOPC:
    def test_improves_epe(self, reduced_config, sim, b1):
        layout, _, no_opc = b1
        solver = ModelBasedOPC(reduced_config, max_iterations=6, simulator=sim)
        result = solver.solve(layout)
        assert result.score.epe_violations < no_opc.epe_violations

    def test_mask_is_binary(self, reduced_config, sim, b1):
        layout, _, _ = b1
        result = ModelBasedOPC(reduced_config, max_iterations=3, simulator=sim).solve(layout)
        assert set(np.unique(result.mask)) <= {0.0, 1.0}

    def test_history_tracks_movement(self, reduced_config, sim, b1):
        layout, _, _ = b1
        result = ModelBasedOPC(reduced_config, max_iterations=4, simulator=sim).solve(layout)
        movements = result.optimization.history.objectives
        # Movement shrinks as fragments settle.
        assert movements[-1] <= movements[0]

    def test_movement_budget_respected(self, reduced_config, sim, b1):
        layout, target, _ = b1
        solver = ModelBasedOPC(
            reduced_config, max_iterations=4, max_move_nm=20.0, simulator=sim
        )
        result = solver.solve(layout)
        # Mask stays within a 20 nm dilation of the target.
        from repro.mask.rules import apply_edge_bias

        envelope = apply_edge_bias(target, 20.0, sim.grid)
        assert not np.any((result.mask > 0.5) & (envelope < 0.5))


class TestBasicILT:
    def test_improves_nominal_epe(self, reduced_config, sim, b1):
        layout, _, no_opc = b1
        cfg = OptimizerConfig(max_iterations=12)
        result = BasicILT(reduced_config, optimizer_config=cfg, simulator=sim).solve(layout)
        assert result.score.epe_violations < no_opc.epe_violations

    def test_no_sraf_seed(self, reduced_config, sim, b1):
        layout, target, _ = b1
        solver = BasicILT(reduced_config, simulator=sim)
        assert np.array_equal(solver.initial_mask(layout) > 0.5, target > 0.5)

    def test_single_objective_term(self, reduced_config, sim, b1):
        layout, target, _ = b1
        solver = BasicILT(reduced_config, simulator=sim)
        objective = solver.build_objective(target, layout)
        assert len(objective.terms) == 1


class TestLevelSetILT:
    def test_runs_and_improves(self, reduced_config, sim, b1):
        layout, target, no_opc = b1
        solver = LevelSetILT(reduced_config, max_iterations=10, simulator=sim)
        result = solver.solve(layout)
        printed = sim.print_binary(result.mask)
        report = measure_epe(printed, layout, sim.grid)
        assert report.num_violations < no_opc.epe_violations

    def test_mask_binary_by_construction(self, reduced_config, sim, b1):
        layout, _, _ = b1
        result = LevelSetILT(reduced_config, max_iterations=4, simulator=sim).solve(layout)
        assert set(np.unique(result.mask)) <= {0.0, 1.0}


class TestSignedDistance:
    def test_signs(self):
        from repro.baselines.levelset import signed_distance

        mask = np.zeros((16, 16))
        mask[4:12, 4:12] = 1.0
        phi = signed_distance(mask)
        assert phi[8, 8] < 0  # inside
        assert phi[0, 0] > 0  # outside
        assert abs(phi[8, 8]) >= 3  # deep interior

    def test_empty_and_full(self):
        from repro.baselines.levelset import signed_distance

        assert np.all(signed_distance(np.zeros((4, 4))) == np.inf)
        assert np.all(signed_distance(np.ones((4, 4))) == -np.inf)

    def test_zero_level_at_boundary(self):
        from repro.baselines.levelset import signed_distance

        mask = np.zeros((16, 16))
        mask[4:12, 4:12] = 1.0
        phi = signed_distance(mask)
        assert np.array_equal(phi < 0, mask.astype(bool))
