"""Live monitoring: heartbeats, liveness watchdog, status feed, watch CLI.

The load-bearing acceptance fixture runs a real 2-worker full-chip
solve with one tile forced to stall via ``REPRO_FULLCHIP_STALL_TILES``
and checks the whole live pipeline end to end: the watchdog raises a
``worker_stalled`` event while the run is in flight, ``status.json``'s
final tile states match the returned :class:`TileResult`s exactly,
every process left a resource timeline, and ``repro watch --once``
(dashboard and ``--json``) exits 3 on the failed run.  Unit tests pin
the watchdog/status/ETA math with fake clocks so no timing is left to
the scheduler.
"""

import json
import os
import subprocess

import pytest

from repro.cli import _parse_tolerances, main
from repro.config import (
    GridSpec,
    LithoConfig,
    OpticsConfig,
    OptimizerConfig,
    ProcessConfig,
    ResistConfig,
)
from repro.errors import FullChipError, ReproError
from repro.fullchip import FullChipConfig, FullChipEngine
from repro.fullchip.scheduler import STALL_TILES_ENV, parse_stall_spec
from repro.obs import NULL_HEARTBEAT, Instrumentation
from repro.obs.live import (
    HEARTBEAT_DIRNAME,
    STATUS_FILENAME,
    Heartbeat,
    HeartbeatWriter,
    LivenessWatchdog,
    StatusWriter,
    WatchdogConfig,
    heartbeat_filename,
    load_status,
    read_heartbeat,
    read_heartbeats,
)
from repro.obs.report import compare_bench, update_bench_baseline
from repro.obs.resources import (
    RESOURCES_DIRNAME,
    ResourceSampler,
    read_resource_timeline,
    resources_filename,
    summarize_resources,
)
from repro.obs.watch import collect_snapshot, render_snapshot, watch_exit_code
from repro.workloads.generator import synthetic_canvas

PIXEL_NM = 16.0
PROBE_NM = 1024.0

#: The tile the acceptance fixture stalls (second tile of the top row).
STALLED = (0, 1)


def _fc_litho() -> LithoConfig:
    return LithoConfig(
        grid=GridSpec(shape=(64, 64), pixel_nm=PIXEL_NM),
        optics=OpticsConfig(num_kernels=4),
        resist=ResistConfig(),
        process=ProcessConfig(),
    )


@pytest.fixture(scope="module")
def stall_run(tmp_path_factory):
    """One 2-worker solve with tile (0,1) stalled for 4s, module-shared.

    Module scope cannot use ``monkeypatch``, so the env hook is set and
    restored by hand.
    """
    run_dir = tmp_path_factory.mktemp("stall_run")
    events = []
    obs = Instrumentation.collecting(
        trace=True, metrics=True, timeline=True, events_sink=events.append
    )
    engine = FullChipEngine(
        _fc_litho(),
        optimizer=OptimizerConfig(max_iterations=3, use_jump=False),
        config=FullChipConfig(
            tile_nm=1024.0,
            probe_extent_nm=PROBE_NM,
            workers=2,
            keep_going=True,
            telemetry_dir=str(run_dir),
            resource_interval_s=0.1,
            watchdog_poll_s=0.2,
            watchdog_stall_factor=3.0,
            watchdog_min_stall_s=0.8,
        ),
        obs=obs,
    )
    saved = os.environ.get(STALL_TILES_ENV)
    os.environ[STALL_TILES_ENV] = f"{STALLED[0]},{STALLED[1]}:4"
    try:
        result = engine.solve(synthetic_canvas(2048.0, 2048.0, seed=5))
    finally:
        if saved is None:
            os.environ.pop(STALL_TILES_ENV, None)
        else:
            os.environ[STALL_TILES_ENV] = saved
    return run_dir, obs, events, result


class TestAcceptance:
    def test_watchdog_flags_the_stalled_worker(self, stall_run):
        _, obs, events, _ = stall_run
        stalls = [e for e in events if e["event"] == "worker_stalled"]
        assert stalls, "watchdog never flagged the injected stall"
        flag = stalls[0]
        assert flag["tile"] == f"tile_r{STALLED[0]}_c{STALLED[1]}"
        assert flag["reason"] in ("stalled", "dead")
        assert flag["stalled_for_s"] > flag["threshold_s"] or flag["reason"] == "dead"
        assert flag["pid"] != os.getpid()
        counter = obs.metrics.as_dict()["fullchip_workers_stalled"]
        assert counter["value"] >= 1

    def test_stalled_tile_fails_and_the_rest_complete(self, stall_run):
        _, _, _, result = stall_run
        assert not result.all_ok
        assert result.failed_tiles == [STALLED]
        by_index = {r.index: r for r in result.tile_results}
        assert by_index[STALLED].status.status == "failed"
        assert "injected stall" in by_index[STALLED].status.error
        for index, tile in by_index.items():
            if index != STALLED:
                assert tile.status.status == "ok"

    def test_status_json_matches_tile_results_exactly(self, stall_run):
        run_dir, _, _, result = stall_run
        status = load_status(run_dir)
        assert status["schema"] == 1
        assert status["kind"] == "fullchip_status"
        assert status["state"] == "failed"
        assert status["workers"] == 2
        assert status["parent_pid"] == os.getpid()
        feed = {t["name"]: t for t in status["tile_states"]}
        assert len(feed) == len(result.tile_results) == 4
        for tile in result.tile_results:
            name = f"tile_r{tile.index[0]}_c{tile.index[1]}"
            assert feed[name]["state"] == tile.status.status
            assert feed[name]["index"] == list(tile.index)
            assert feed[name]["attempts"] == tile.status.attempts
        counts = status["tiles"]
        assert counts == {
            "total": 4, "done": 3, "running": 0, "failed": 1, "pending": 0,
        }
        assert status["eta_s"] == 0.0
        assert status["counters"].get("iterations_total", 0) >= 9

    def test_heartbeat_files_round_trip(self, stall_run):
        run_dir, _, _, result = stall_run
        beats = read_heartbeats(run_dir / HEARTBEAT_DIRNAME)
        names = {f"tile_r{r.index[0]}_c{r.index[1]}" for r in result.tile_results}
        assert set(beats) == names
        for name, beat in beats.items():
            assert beat.tile == name
            assert beat.pid > 0 and beat.pid != os.getpid()
            assert beat.ts > 0
        stalled_name = f"tile_r{STALLED[0]}_c{STALLED[1]}"
        assert beats[stalled_name].phase == "failed"
        done = {n: b.phase for n, b in beats.items() if n != stalled_name}
        assert set(done.values()) == {"done"}
        # File-level round trip through the public name helper.
        path = run_dir / HEARTBEAT_DIRNAME / heartbeat_filename(stalled_name)
        assert read_heartbeat(path) == beats[stalled_name]

    def test_resource_timelines_cover_every_pid(self, stall_run):
        run_dir, _, _, _ = stall_run
        res_dir = run_dir / RESOURCES_DIRNAME
        parent_file = res_dir / resources_filename(os.getpid())
        assert parent_file.is_file()
        assert read_resource_timeline(parent_file)
        worker_pids = {
            b.pid for b in read_heartbeats(run_dir / HEARTBEAT_DIRNAME).values()
        }
        for pid in worker_pids:
            timeline = read_resource_timeline(res_dir / resources_filename(pid))
            assert timeline, f"no resource samples for worker pid {pid}"
            assert all(s.pid == pid for s in timeline)
            assert timeline[-1].rss_bytes > 0
        summary = {e["pid"]: e for e in summarize_resources(
            res_dir, parent_pid=os.getpid()
        )}
        assert summary[os.getpid()]["role"] == "parent"
        assert all(summary[pid]["role"] == "worker" for pid in worker_pids)

    def test_watch_once_json_is_valid_and_exits_3(self, stall_run, capsys):
        run_dir, _, _, _ = stall_run
        assert main(["watch", str(run_dir), "--once", "--json"]) == 3
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["kind"] == "fullchip_status"
        assert snapshot["eta_s"] == 0.0
        phases = {t["name"]: t["phase"] for t in snapshot["tile_states"]}
        assert set(phases.values()) == {"done", "failed"}
        assert snapshot["resources"], "snapshot carries no resource summaries"

    def test_watch_once_dashboard_renders(self, stall_run, capsys):
        run_dir, _, _, _ = stall_run
        assert main(["watch", str(run_dir), "--once"]) == 3
        out = capsys.readouterr().out
        assert "tiles done" in out and "[failed]" in out
        assert "tile_r0_c1" in out and "parent" in out

    def test_watch_rejects_non_run_dir(self, tmp_path, capsys):
        assert main(["watch", str(tmp_path)]) == 1
        assert STATUS_FILENAME in capsys.readouterr().err

    def test_report_json_shares_the_text_builder(self, stall_run, capsys):
        run_dir, _, _, result = stall_run
        assert main(["report", str(run_dir), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["kind"] == "fullchip_report"
        assert len(report["run"]["tiles"]) == 4
        pids = {e["pid"] for e in report["resources"]}
        assert os.getpid() in pids and len(pids) >= 2
        assert report["convergence"], "report --json carries no convergence"
        # The text path renders from the same artifacts, resources included.
        assert main(["report", str(run_dir)]) == 0
        text = capsys.readouterr().out
        assert "--- resources ---" in text and "rss peak" in text


class TestHeartbeatWriter:
    def test_round_trip(self, tmp_path):
        writer = HeartbeatWriter(tmp_path, "tile_r0_c0")
        writer.beat(phase="optimize", iteration=7, objective=1.5)
        beat = read_heartbeat(writer.path)
        assert beat == Heartbeat(
            tile="tile_r0_c0", pid=os.getpid(), phase="optimize",
            iteration=7, objective=1.5, ts=beat.ts,
        )
        assert beat.age_s(beat.ts + 2.0) == 2.0

    def test_throttle_skips_and_force_overrides(self, tmp_path):
        ticks = iter([100.0, 100.5, 101.0, 120.0])
        writer = HeartbeatWriter(
            tmp_path, "t", min_interval_s=10.0, clock=lambda: next(ticks)
        )
        writer.beat(phase="optimize", iteration=0)  # t=100: writes
        writer.beat(phase="optimize", iteration=1)  # t=100.5: throttled
        assert read_heartbeat(writer.path).iteration == 0
        writer.beat(phase="failed", iteration=2, force=True)  # t=101: forced
        assert read_heartbeat(writer.path).phase == "failed"
        writer.beat(phase="optimize", iteration=3)  # t=120: interval elapsed
        assert read_heartbeat(writer.path).iteration == 3

    def test_negative_interval_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            HeartbeatWriter(tmp_path, "t", min_interval_s=-1.0)

    def test_null_twin_is_inert(self):
        assert NULL_HEARTBEAT.enabled is False
        NULL_HEARTBEAT.beat(phase="optimize", iteration=1, force=True)

    def test_torn_heartbeat_reads_as_none(self, tmp_path):
        path = tmp_path / heartbeat_filename("t")
        path.write_text('{"tile": "t", "pid":')
        assert read_heartbeat(path) is None
        assert read_heartbeats(tmp_path) == {}


def _beat(tile, iteration, ts, pid=None, phase="optimize"):
    return Heartbeat(
        tile=tile, pid=pid if pid is not None else os.getpid(),
        phase=phase, iteration=iteration, ts=ts,
    )


class TestLivenessWatchdog:
    def _watchdog(self, events, **kwargs):
        config = WatchdogConfig(
            poll_s=1.0, stall_factor=2.0, min_stall_s=5.0, **kwargs
        )
        obs = Instrumentation.collecting(
            trace=False, metrics=True, events_sink=events.append
        )
        return LivenessWatchdog(config, obs=obs, clock=lambda: 0.0), obs

    def test_stall_flags_after_threshold_then_rearms(self):
        events = []
        dog, obs = self._watchdog(events)
        # Iterations 1s apart: median iteration time 1s, threshold
        # max(5, 2*1) = 5s.
        dog.observe({"t": _beat("t", 0, ts=0.0)}, now=0.0)
        dog.observe({"t": _beat("t", 1, ts=1.0)}, now=1.0)
        dog.observe({"t": _beat("t", 2, ts=2.0)}, now=2.0)
        assert dog.threshold_s() == 5.0
        # Silence within threshold: nothing raised.
        assert dog.observe({"t": _beat("t", 2, ts=2.0)}, now=6.0) == []
        # Past it: exactly one flag, latched against re-raising.
        flags = dog.observe({"t": _beat("t", 2, ts=2.0)}, now=8.0)
        assert [f.reason for f in flags] == ["stalled"]
        assert flags[0].stalled_for_s == 6.0 and flags[0].threshold_s == 5.0
        assert dog.observe({"t": _beat("t", 2, ts=2.0)}, now=9.0) == []
        assert [e["event"] for e in events] == ["worker_stalled"]
        assert obs.metrics.as_dict()["fullchip_workers_stalled"]["value"] == 1
        # Progress re-arms the latch and announces the resume.
        assert dog.observe({"t": _beat("t", 3, ts=10.0)}, now=10.0) == []
        assert [e["event"] for e in events] == ["worker_stalled", "worker_resumed"]
        flags = dog.observe({"t": _beat("t", 3, ts=10.0)}, now=20.0)
        assert len(flags) == 1 and len(dog.stalls) == 2

    def test_dead_pid_flags_immediately(self):
        child = subprocess.Popen(["true"])
        child.wait()  # reaped: the pid no longer exists
        events = []
        dog, _ = self._watchdog(events)
        dog.observe({"t": _beat("t", 0, ts=0.0, pid=child.pid)}, now=0.0)
        flags = dog.observe({"t": _beat("t", 0, ts=0.0, pid=child.pid)}, now=0.5)
        assert [f.reason for f in flags] == ["dead"]

    def test_done_tiles_and_final_phases_are_ignored(self):
        events = []
        dog, _ = self._watchdog(events)
        dog.observe({"a": _beat("a", 0, ts=0.0)}, now=0.0)
        dog.mark_done("a")
        assert dog.observe({"a": _beat("a", 0, ts=0.0)}, now=100.0) == []
        dog.observe({"b": _beat("b", 0, ts=0.0, phase="done")}, now=0.0)
        assert dog.observe(
            {"b": _beat("b", 0, ts=0.0, phase="done")}, now=100.0
        ) == []

    def test_config_validation(self):
        with pytest.raises(ReproError):
            WatchdogConfig(poll_s=0.0)
        with pytest.raises(ReproError):
            WatchdogConfig(stall_factor=0.5)
        with pytest.raises(ReproError):
            WatchdogConfig(min_stall_s=0.0)


class TestStatusWriter:
    def _writer(self, tmp_path, now):
        return StatusWriter(
            tmp_path,
            {"tile_r0_c0": (0, 0), "tile_r0_c1": (0, 1),
             "tile_r1_c0": (1, 0), "tile_r1_c1": (1, 1)},
            layout="synth", workers=2, clock=lambda: now[0],
        )

    def test_eta_extrapolates_completion_rate(self, tmp_path):
        now = [0.0]
        status = self._writer(tmp_path, now)
        now[0] = 10.0
        payload = status.payload()
        assert payload["eta_s"] is None  # nothing settled yet
        status.mark_done("tile_r0_c0", "ok")
        status.mark_done("tile_r0_c1", "failed", error="boom")
        payload = status.payload()
        # 2 settled in 10s -> 0.2 tiles/s -> 2 remaining / 0.2 = 10s.
        assert payload["tiles_per_s"] == pytest.approx(0.2)
        assert payload["eta_s"] == pytest.approx(10.0)
        status.mark_done("tile_r1_c0", "recovered")
        status.mark_done("tile_r1_c1", "timeout")
        assert status.payload()["eta_s"] == 0.0

    def test_heartbeats_never_override_terminal_states(self, tmp_path):
        now = [0.0]
        status = self._writer(tmp_path, now)
        status.apply_heartbeat(_beat("tile_r0_c0", 2, ts=1.0))
        tile = {t["name"]: t for t in status.payload()["tile_states"]}
        assert tile["tile_r0_c0"]["state"] == "running"
        assert tile["tile_r0_c0"]["iteration"] == 2
        status.mark_done("tile_r0_c0", "ok", iterations=3, score_total=12.0)
        status.apply_heartbeat(_beat("tile_r0_c0", 99, ts=2.0))
        tile = {t["name"]: t for t in status.payload()["tile_states"]}
        assert tile["tile_r0_c0"]["state"] == "ok"
        assert tile["tile_r0_c0"]["iteration"] == 3
        assert tile["tile_r0_c0"]["phase"] == "done"

    def test_finalize_auto_state_and_stall_flagging(self, tmp_path):
        now = [0.0]
        status = self._writer(tmp_path, now)
        status.mark_running("tile_r0_c0", pid=1234)
        status.mark_stalled("tile_r0_c0")
        tile = {t["name"]: t for t in status.payload()["tile_states"]}
        assert tile["tile_r0_c0"]["stalled"] and tile["tile_r0_c0"]["pid"] == 1234
        status.mark_done("tile_r0_c0", "failed")
        for name in ("tile_r0_c1", "tile_r1_c0", "tile_r1_c1"):
            status.mark_done(name, "ok")
        status.finalize(score={"total": 1.0})
        payload = status.payload()
        assert payload["state"] == "failed"  # auto: a tile failed
        assert payload["score"] == {"total": 1.0}
        tile = {t["name"]: t for t in payload["tile_states"]}
        assert tile["tile_r0_c0"]["stalled"] is False  # settled clears it

    def test_write_then_load_round_trips(self, tmp_path):
        now = [5.0]
        status = self._writer(tmp_path, now)
        status.set_counters({"iterations_total": 12})
        status.write()
        loaded = load_status(tmp_path)
        assert loaded["schema"] == 1 and loaded["layout"] == "synth"
        assert loaded["counters"] == {"iterations_total": 12}
        assert [t["name"] for t in loaded["tile_states"]] == sorted(
            ["tile_r0_c0", "tile_r0_c1", "tile_r1_c0", "tile_r1_c1"]
        )

    def test_load_status_requires_the_file(self, tmp_path):
        with pytest.raises(ReproError, match=STATUS_FILENAME):
            load_status(tmp_path)


class TestWatchSnapshot:
    def _seed_run(self, tmp_path):
        now = [0.0]
        status = StatusWriter(
            tmp_path, {"tile_r0_c0": (0, 0), "tile_r0_c1": (0, 1)},
            layout="synth", workers=2, clock=lambda: now[0],
        )
        status.write()
        return status

    def test_snapshot_overlays_live_heartbeats(self, tmp_path):
        self._seed_run(tmp_path)
        writer = HeartbeatWriter(tmp_path / HEARTBEAT_DIRNAME, "tile_r0_c0")
        writer.beat(phase="optimize", iteration=5, objective=2.5)
        snapshot = collect_snapshot(tmp_path)
        tile = {t["name"]: t for t in snapshot["tile_states"]}
        assert tile["tile_r0_c0"]["state"] == "running"
        assert tile["tile_r0_c0"]["iteration"] == 5
        assert tile["tile_r0_c0"]["heartbeat_age_s"] >= 0.0
        assert tile["tile_r0_c1"]["state"] == "pending"
        rendered = render_snapshot(snapshot)
        assert "optimize" in rendered and "tile_r0_c1" in rendered

    def test_exit_code_contract(self):
        assert watch_exit_code({"state": "done", "tile_states": []}) == 0
        assert watch_exit_code({"state": "failed", "tile_states": []}) == 3
        assert watch_exit_code(
            {"state": "done", "tile_states": [{"state": "timeout"}]}
        ) == 3


class TestStallSpec:
    def test_parses_tiles_and_durations(self):
        spec = parse_stall_spec("0,1; 1,0:2.5")
        assert spec[(0, 1)] == 3600.0  # default hold
        assert spec[(1, 0)] == 2.5

    def test_rejects_malformed_entries(self):
        for bad in ("0", "a,b", "0,1:zap", "0,1:-2", "0,1:0"):
            with pytest.raises(FullChipError):
                parse_stall_spec(bad)


class TestResourceSampler:
    def test_samples_and_counters_land_in_the_timeline(self, tmp_path):
        obs = Instrumentation.collecting(trace=False, metrics=True)
        obs.metrics.counter("iterations_total").inc(5)
        path = tmp_path / resources_filename(os.getpid())
        with ResourceSampler(path, interval_s=0.01, metrics=obs.metrics):
            import time

            time.sleep(0.08)
        timeline = read_resource_timeline(path)
        assert timeline
        sample = timeline[-1]
        assert sample.pid == os.getpid()
        assert sample.rss_bytes > 0 and sample.cpu_s >= 0
        assert sample.counters["iterations_total"] == 5
        summary = summarize_resources(tmp_path, parent_pid=os.getpid())
        assert summary[0]["role"] == "parent"
        assert summary[0]["rss_peak_bytes"] >= sample.rss_bytes


class TestBenchUpdate:
    def test_update_preserves_one_previous_generation(self, tmp_path):
        path = tmp_path / "BENCH_fullchip.json"
        path.write_text(json.dumps(
            {"parallel_s": 10.0, "previous": {"parallel_s": 20.0}}
        ))
        payload = update_bench_baseline(path, {"parallel_s": 8.0})
        assert payload == {"parallel_s": 8.0, "previous": {"parallel_s": 10.0}}
        assert json.loads(path.read_text()) == payload

    def test_per_key_tolerance_overrides(self):
        baseline = {"parallel_s": 10.0, "stitch_s": 10.0}
        fresh = {"parallel_s": 13.0, "stitch_s": 13.0}
        deltas = {
            d.key: d for d in compare_bench(
                baseline, fresh, tolerance=0.15, overrides={"stitch_s": 0.5}
            )
        }
        assert deltas["parallel_s"].regressed
        assert not deltas["stitch_s"].regressed
        with pytest.raises(ReproError):
            compare_bench(baseline, fresh, overrides={"stitch_s": -0.1})

    def test_parse_tolerances(self):
        assert _parse_tolerances(None) == (0.15, {})
        assert _parse_tolerances(["0.5"]) == (0.5, {})
        default, overrides = _parse_tolerances(["0.3", "stitch_s=0.9"])
        assert default == 0.3 and overrides == {"stitch_s": 0.9}
        with pytest.raises(ReproError):
            _parse_tolerances(["stitch_s=wat"])

    def test_cli_update_rewrites_baseline_and_exits_0(self, tmp_path, capsys):
        baseline = tmp_path / "BENCH_fullchip.json"
        baseline.write_text(json.dumps({"parallel_s": 10.0}))
        fresh = tmp_path / "fresh.json"
        fresh.write_text(json.dumps({"parallel_s": 25.0}))  # a regression
        assert main([
            "bench-check", str(baseline), str(fresh),
            "--tolerance", "0.15", "--tolerance", "parallel_s=0.1",
        ]) == 2
        capsys.readouterr()
        assert main(
            ["bench-check", str(baseline), str(fresh), "--update"]
        ) == 0
        assert "Updated baseline" in capsys.readouterr().out
        updated = json.loads(baseline.read_text())
        assert updated["parallel_s"] == 25.0
        assert updated["previous"] == {"parallel_s": 10.0}
