"""Tests for the process-window-EPE extension solver."""

import numpy as np
import pytest

from repro.config import OptimizerConfig
from repro.opc.extensions import MosaicExactPW
from repro.opc.objectives.epe_objective import EPEObjective
from repro.opc.state import ForwardContext
from repro.process.corners import ProcessCorner
from repro.workloads.iccad2013 import load_benchmark


class TestCornerEPEObjective:
    def test_corner_changes_evaluation(self, sim):
        from repro.geometry.raster import rasterize_layout

        layout = load_benchmark("B4")
        target = rasterize_layout(layout, sim.grid).astype(float)
        nominal = EPEObjective(target, layout, sim.grid)
        defocused = EPEObjective(
            target, layout, sim.grid, corner=ProcessCorner("df", 25.0, 0.98)
        )
        mask = np.clip(target + 0.1, 0, 1)
        ctx = ForwardContext(mask, sim)
        v_nom = nominal.value(ctx)
        v_df = defocused.value(ForwardContext(mask, sim))
        assert v_nom != v_df
        # The defocused/underdosed corner prints worse: more violations.
        assert v_df >= v_nom

    def test_default_is_nominal(self, sim):
        from repro.geometry.raster import rasterize_layout

        layout = load_benchmark("B1")
        target = rasterize_layout(layout, sim.grid).astype(float)
        obj = EPEObjective(target, layout, sim.grid)
        assert obj.corner is None


class TestMosaicExactPW:
    def test_objective_has_corner_terms(self, reduced_config, sim):
        from repro.geometry.raster import rasterize_layout

        layout = load_benchmark("B1")
        target = rasterize_layout(layout, sim.grid).astype(float)
        solver = MosaicExactPW(reduced_config, simulator=sim)
        objective = solver.build_objective(target, layout)
        # nominal EPE + 4 corner EPE + PVB = 6 terms.
        assert len(objective.terms) == 6

    def test_pw_weight_scaling(self, reduced_config, sim):
        from repro.geometry.raster import rasterize_layout

        layout = load_benchmark("B1")
        target = rasterize_layout(layout, sim.grid).astype(float)
        solver = MosaicExactPW(reduced_config, simulator=sim, pw_weight_fraction=0.5)
        objective = solver.build_objective(target, layout)
        alpha = objective.terms[0][0]
        assert objective.terms[1][0] == pytest.approx(0.5 * alpha)

    def test_solves_cleanly(self, reduced_config, sim):
        cfg = OptimizerConfig(max_iterations=25, theta_epe=1.0)
        result = MosaicExactPW(
            reduced_config, optimizer_config=cfg, simulator=sim
        ).solve(load_benchmark("B1"))
        assert result.score.epe_violations <= 1
        assert result.score.shape_violations == 0
