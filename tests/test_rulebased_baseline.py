"""Tests for the pure rule-based OPC baseline."""

import numpy as np

from repro.baselines.rulebased import RuleBasedOPC
from repro.geometry.raster import rasterize_layout
from repro.metrics.score import contest_score
from repro.workloads.iccad2013 import load_benchmark


class TestRuleBasedOPC:
    def test_improves_over_no_opc(self, reduced_config, sim):
        layout = load_benchmark("B1")
        target = rasterize_layout(layout, sim.grid).astype(float)
        no_opc = contest_score(sim, target, layout)
        result = RuleBasedOPC(reduced_config, simulator=sim).solve(layout)
        assert result.score.epe_violations < no_opc.epe_violations

    def test_calibration_picks_nonzero_bias(self, reduced_config, sim):
        # The drawn mask underprints, so calibration must choose a bias.
        layout = load_benchmark("B1")
        target = rasterize_layout(layout, sim.grid).astype(float)
        solver = RuleBasedOPC(reduced_config, simulator=sim)
        assert solver.calibrate_bias(layout, target) > 0

    def test_calibrated_bias_recorded_in_history(self, reduced_config, sim):
        result = RuleBasedOPC(reduced_config, simulator=sim).solve(load_benchmark("B1"))
        assert result.optimization.history.records[0].objective > 0

    def test_fast_single_pass(self, reduced_config, sim):
        result = RuleBasedOPC(reduced_config, simulator=sim).solve(load_benchmark("B1"))
        assert result.optimization.iterations == 1
        assert result.optimization.converged

    def test_mask_contains_target(self, reduced_config, sim):
        layout = load_benchmark("B1")
        target = rasterize_layout(layout, sim.grid)
        result = RuleBasedOPC(reduced_config, simulator=sim).solve(layout)
        assert np.all(result.mask[target] == 1.0)  # bias only grows

    def test_weaker_than_ilt_on_hard_clip(self, reduced_config, sim):
        # The paper's motivation: rule-based OPC cannot handle aggressive
        # 2-D patterns; MOSAIC must beat it decisively on a jog clip.
        from repro.opc.mosaic import MosaicFast

        layout = load_benchmark("B6")
        rule = RuleBasedOPC(reduced_config, simulator=sim).solve(layout)
        ilt = MosaicFast(reduced_config, simulator=sim).solve(layout)
        assert ilt.score.total < rule.score.total

    def test_sraf_disabled(self, reduced_config, sim):
        layout = load_benchmark("B1")
        with_sraf = RuleBasedOPC(reduced_config, simulator=sim, use_sraf=True).solve(layout)
        without = RuleBasedOPC(reduced_config, simulator=sim, use_sraf=False).solve(layout)
        assert with_sraf.mask.sum() >= without.mask.sum()
