"""Fault-injection + harness-isolation tests.

Covers the injector's own determinism and the harness acceptance
criterion: a 3-solver x 3-layout batch with one solver raising on one
layout still returns the other 8 cells and renders a table.
"""

import csv
import time

import numpy as np
import pytest

from repro.baselines import ModelBasedOPC, RuleBasedOPC
from repro.errors import ReproError
from repro.harness import CellStatus, run_experiment
from repro.obs import Instrumentation
from repro.testing.faults import FaultInjector, FaultRecord, InjectedFault
from repro.workloads.iccad2013 import load_benchmark


class TestInjectorUnits:
    def test_gradient_fault_fires_once_at_exact_call(self):
        class Inner:
            def value_and_gradient(self, ctx):
                return 1.0, np.ones((4, 4))

        injector = FaultInjector().arm_gradient_fault(at_call=2, mode="nan")
        wrapped = injector.wrap_objective(Inner())
        results = [wrapped.value_and_gradient(None) for _ in range(5)]
        nan_calls = [
            i for i, (_, g) in enumerate(results) if not np.all(np.isfinite(g))
        ]
        assert nan_calls == [2]  # exactly call 2, one-shot
        assert injector.log == [
            FaultRecord(kind="gradient", where="call 2", detail="nan x1")
        ]

    def test_gradient_fraction_controls_corruption(self):
        class Inner:
            def value_and_gradient(self, ctx):
                return 1.0, np.ones(100)

        injector = FaultInjector().arm_gradient_fault(
            at_call=0, mode="inf", fraction=0.05
        )
        _, grad = injector.wrap_objective(Inner()).value_and_gradient(None)
        assert int(np.sum(~np.isfinite(grad))) == 5

    def test_value_fault_modes(self):
        class Inner:
            def value_and_gradient(self, ctx):
                return 2.0, np.ones(4)

        injector = FaultInjector().arm_value_fault(at_call=0, mode="nan")
        value, _ = injector.wrap_objective(Inner()).value_and_gradient(None)
        assert np.isnan(value)

        injector = FaultInjector().arm_value_fault(
            at_call=0, mode="blowup", blowup_factor=1e6
        )
        value, _ = injector.wrap_objective(Inner()).value_and_gradient(None)
        assert value == 2e6

    def test_invalid_modes_rejected(self):
        with pytest.raises(ReproError):
            FaultInjector().arm_gradient_fault(at_call=0, mode="zero")
        with pytest.raises(ReproError):
            FaultInjector().arm_value_fault(at_call=0, mode="inf")

    def test_wrapper_delegates_attributes(self):
        class Inner:
            last_term_values = {"image": 1.0}

            def value_and_gradient(self, ctx):
                return 1.0, np.ones(4)

            def value(self, ctx):
                return 1.0

        wrapped = FaultInjector().wrap_objective(Inner())
        assert wrapped.last_term_values == {"image": 1.0}
        assert wrapped.value(None) == 1.0

    def test_solve_fault_targets_exact_cell(self):
        class Solver:
            def solve(self, layout):
                return f"solved {layout.name}"

        class L:
            def __init__(self, name):
                self.name = name

        injector = FaultInjector().arm_solve_fault(label="a", layout_name="B2")
        factory = injector.wrap_factory("a", Solver)
        assert factory().solve(L("B1")) == "solved B1"
        with pytest.raises(InjectedFault, match="a on B2"):
            factory().solve(L("B2"))
        # One-shot (times=1): the retry succeeds.
        assert factory().solve(L("B2")) == "solved B2"


@pytest.fixture(scope="module")
def cheap_solvers(reduced_config, sim):
    """Three fast solver factories sharing the prewarmed simulator."""
    return [
        ("rule", lambda: RuleBasedOPC(
            reduced_config, bias_candidates_nm=(0.0, 16.0), use_sraf=False,
            simulator=sim,
        )),
        ("mb", lambda: ModelBasedOPC(
            reduced_config, max_iterations=2, simulator=sim,
        )),
        ("mb-slow", lambda: ModelBasedOPC(
            reduced_config, max_iterations=3, simulator=sim,
        )),
    ]


@pytest.fixture(scope="module")
def three_layouts():
    return [load_benchmark(name) for name in ("B1", "B2", "B4")]


class TestHarnessIsolation:
    def test_one_failing_cell_leaves_other_eight_intact(
        self, cheap_solvers, three_layouts
    ):
        """Acceptance: 3 solvers x 3 layouts with one solver raising on
        one layout -> the other 8 cells complete and the table renders."""
        injector = FaultInjector().arm_solve_fault(
            label="mb", layout_name="B2", times=99
        )
        solvers = [
            (label, injector.wrap_factory(label, factory))
            for label, factory in cheap_solvers
        ]
        events = []
        obs = Instrumentation.collecting(events_sink=events.append)
        result = run_experiment(
            solvers, three_layouts, obs=obs, keep_going=True
        )

        assert [r.kind for r in injector.log] == ["solve_raise"]
        assert len(result.scores) == 8
        assert result.failed_cells() == [("mb", "B2")]
        assert result.statuses[("mb", "B2")].status == "failed"
        assert "InjectedFault" in result.statuses[("mb", "B2")].error
        assert not result.is_complete("mb")
        assert result.is_complete("rule") and result.is_complete("mb-slow")
        assert obs.metrics.counter("harness_cells_failed").value == 1
        assert obs.metrics.counter("harness_cells_total").value == 9
        failed_events = [e for e in events if e["event"] == "cell_failed"]
        assert len(failed_events) == 1
        assert failed_events[0]["solver"] == "mb"

        # The partial matrix still renders, ranks, and exports.
        table = result.format_table()
        assert "--" in table and "ratio" in table
        for name in ("B1", "B2", "B4"):
            assert name in table
        assert result.ranking()[-1] == "mb"  # incomplete solver sorts last
        totals = result.totals()
        assert set(totals) == {"rule", "mb", "mb-slow"}

    def test_partial_csv_round_trips(self, cheap_solvers, three_layouts, tmp_path):
        injector = FaultInjector().arm_solve_fault(label="mb", layout_name="B2",
                                                   times=99)
        solvers = [
            (label, injector.wrap_factory(label, factory))
            for label, factory in cheap_solvers[:2]
        ]
        result = run_experiment(solvers, three_layouts, keep_going=True)
        path = tmp_path / "partial.csv"
        result.to_csv(path)
        with open(path) as handle:
            rows = {(r["solver"], r["layout"]): r for r in csv.DictReader(handle)}
        assert len(rows) == 6
        failed = rows[("mb", "B2")]
        assert failed["status"] == "failed"
        assert failed["score"] == ""
        assert "InjectedFault" in failed["error"]
        ok = rows[("rule", "B1")]
        assert ok["status"] == "ok" and float(ok["score"]) > 0

    def test_retry_recovers_transient_fault(self, cheap_solvers, three_layouts):
        injector = FaultInjector().arm_solve_fault(
            label="rule", layout_name="B1", times=1
        )
        label, factory = cheap_solvers[0]
        events = []
        obs = Instrumentation.collecting(events_sink=events.append)
        result = run_experiment(
            [(label, injector.wrap_factory(label, factory))],
            three_layouts[:1],
            obs=obs,
            max_retries=1,
        )
        status = result.statuses[("rule", "B1")]
        assert status.status == "recovered"
        assert status.attempts == 2
        assert status.ok
        assert result.has_cell("rule", "B1")
        assert obs.metrics.counter("harness_cell_retries").value == 1
        assert any(e["event"] == "cell_retry" for e in events)

    def test_default_contract_still_raises(self, cheap_solvers, three_layouts):
        injector = FaultInjector().arm_solve_fault(label="rule", times=99)
        label, factory = cheap_solvers[0]
        with pytest.raises(InjectedFault):
            run_experiment(
                [(label, injector.wrap_factory(label, factory))],
                three_layouts[:1],
            )

    def test_stalled_cell_times_out(self, reduced_config, sim):
        injector = FaultInjector().arm_solve_stall(seconds=5.0, times=99)
        factory = injector.wrap_factory(
            "rule",
            lambda: RuleBasedOPC(
                reduced_config, bias_candidates_nm=(0.0,), use_sraf=False,
                simulator=sim,
            ),
        )
        obs = Instrumentation.collecting()
        start = time.perf_counter()
        result = run_experiment(
            [("rule", factory)],
            [load_benchmark("B1")],
            obs=obs,
            keep_going=True,
            cell_timeout_s=0.3,
        )
        elapsed = time.perf_counter() - start
        assert elapsed < 4.0  # the batch did not wait out the stall
        status = result.statuses[("rule", "B1")]
        assert status.status == "timeout"
        assert "wall-clock budget" in status.error
        assert result.failed_cells() == [("rule", "B1")]
        assert obs.metrics.counter("harness_cell_timeouts").value == 1

    def test_validation_errors(self, cheap_solvers, three_layouts):
        label, factory = cheap_solvers[0]
        with pytest.raises(ReproError, match="max_retries"):
            run_experiment([(label, factory)], three_layouts[:1], max_retries=-1)
        with pytest.raises(ReproError, match="cell_timeout_s"):
            run_experiment([(label, factory)], three_layouts[:1], cell_timeout_s=0)


class TestCellStatus:
    def test_ok_property(self):
        assert CellStatus(status="ok").ok
        assert CellStatus(status="recovered", attempts=2).ok
        assert not CellStatus(status="failed", error="boom").ok
        assert not CellStatus(status="timeout").ok
