"""Unit and property tests for repro.mask.transform (sigmoid relaxation)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st
from hypothesis.extra import numpy as hnp

from repro.mask.transform import (
    mask_from_params,
    mask_param_derivative,
    params_from_mask,
)


class TestRoundTrip:
    @given(
        hnp.arrays(
            np.float64,
            (6, 6),
            elements=st.floats(min_value=0.01, max_value=0.99),
        )
    )
    def test_soft_mask_roundtrip_exact(self, mask):
        recovered = mask_from_params(params_from_mask(mask))
        assert np.allclose(recovered, mask, atol=1e-12)

    def test_binary_mask_roundtrip_close(self):
        mask = np.array([[0.0, 1.0], [1.0, 0.0]])
        recovered = mask_from_params(params_from_mask(mask))
        assert np.allclose(recovered, mask, atol=2e-3)
        assert np.array_equal(recovered > 0.5, mask > 0.5)

    def test_zero_params_give_half(self):
        assert mask_from_params(np.zeros((3, 3)))[1, 1] == pytest.approx(0.5)

    def test_theta_m_steepness(self):
        p = np.array([[0.5]])
        shallow = mask_from_params(p, theta_m=1.0)
        steep = mask_from_params(p, theta_m=8.0)
        assert steep[0, 0] > shallow[0, 0]


class TestDerivative:
    def test_matches_finite_difference(self):
        params = np.linspace(-1.5, 1.5, 13).reshape(1, -1)
        eps = 1e-7
        mask = mask_from_params(params)
        analytic = mask_param_derivative(mask)
        numeric = (mask_from_params(params + eps) - mask) / eps
        assert np.allclose(analytic, numeric, rtol=1e-4)

    def test_vanishes_at_saturation(self):
        assert mask_param_derivative(np.array([[0.0, 1.0]])).max() == 0.0

    def test_peak_at_half(self):
        masks = np.array([[0.2, 0.5, 0.8]])
        d = mask_param_derivative(masks)
        assert d[0, 1] == d.max()

    @given(
        hnp.arrays(
            np.float64, (4, 4), elements=st.floats(min_value=0.0, max_value=1.0)
        )
    )
    def test_non_negative(self, mask):
        assert np.all(mask_param_derivative(mask) >= 0)
