"""Canonical serialization/hashing contract (`repro.utils.hashing`).

The service cache key, queue meta writes, and checkpoint meta all ride
on one serialization — these tests pin the equivalences it promises
(key order, container type, numpy scalars, float identity) and the
non-finite policies.
"""

import json

import numpy as np
import pytest

from repro.errors import ReproError
from repro.utils.hashing import canonical_hash, sha256_hex, stable_json_dumps
from repro.utils.io import write_json_atomic


class TestStableJsonDumps:
    def test_key_order_irrelevant(self):
        assert stable_json_dumps({"b": 1, "a": 2}) == stable_json_dumps(
            {"a": 2, "b": 1}
        )

    def test_nested_normalization(self):
        text = stable_json_dumps({"t": (1, 2), "s": {3, 1, 2}})
        assert json.loads(text) == {"t": [1, 2], "s": [1, 2, 3]}

    def test_numpy_scalars_collapse(self):
        assert stable_json_dumps(
            {"i": np.int64(7), "f": np.float64(1.5), "b": np.bool_(True)}
        ) == stable_json_dumps({"i": 7, "f": 1.5, "b": True})

    def test_equal_numbers_serialize_identically(self):
        # 1024 vs 1024.0 vs np.float64(1024), and -0.0 vs 0: one form.
        assert stable_json_dumps({"x": 1024.0}) == stable_json_dumps({"x": 1024})
        assert stable_json_dumps({"x": -0.0}) == stable_json_dumps({"x": 0})

    def test_float_repr_round_trips(self):
        value = 0.1 + 0.2  # classic non-representable sum
        assert json.loads(stable_json_dumps({"v": value}))["v"] == value

    def test_compact_by_default_indent_on_request(self):
        compact = stable_json_dumps({"a": 1, "b": 2})
        assert " " not in compact
        pretty = stable_json_dumps({"a": 1}, indent=2)
        assert "\n" in pretty and json.loads(pretty) == {"a": 1}

    def test_paths_become_strings(self):
        from pathlib import Path

        assert json.loads(stable_json_dumps({"p": Path("/x/y")}))["p"] == "/x/y"

    def test_non_finite_error_default(self):
        with pytest.raises(ReproError, match="non-finite"):
            stable_json_dumps({"x": float("inf")})
        with pytest.raises(ReproError):
            stable_json_dumps({"x": float("nan")})

    def test_non_finite_null(self):
        text = stable_json_dumps(
            {"x": float("nan"), "y": 1.0}, non_finite="null"
        )
        assert json.loads(text) == {"x": None, "y": 1}

    def test_non_finite_allow(self):
        text = stable_json_dumps({"x": float("inf")}, non_finite="allow")
        assert json.loads(text)["x"] == float("inf")

    def test_bad_policy_rejected(self):
        with pytest.raises(ReproError, match="non_finite"):
            stable_json_dumps({}, non_finite="whatever")


class TestHashes:
    def test_sha256_str_bytes_agree(self):
        assert sha256_hex("abc") == sha256_hex(b"abc")
        # Known digest of "abc" (FIPS 180-2 test vector).
        assert sha256_hex("abc").startswith("ba7816bf")

    def test_canonical_hash_equivalences(self):
        a = {"workers": 2, "tile": (1, 2), "nm": np.float64(1024)}
        b = {"nm": 1024, "tile": [1, 2], "workers": np.int32(2)}
        assert canonical_hash(a) == canonical_hash(b)

    def test_canonical_hash_distinguishes(self):
        assert canonical_hash({"x": 1}) != canonical_hash({"x": 2})
        assert canonical_hash({"x": 1.5}) != canonical_hash({"x": 1})

    def test_canonical_hash_rejects_non_finite(self):
        with pytest.raises(ReproError):
            canonical_hash({"best": float("inf")})


class TestWriteJsonAtomicCanonical:
    def test_sorted_keys_and_newline(self, tmp_path):
        path = tmp_path / "out.json"
        write_json_atomic(path, {"b": 1, "a": 2})
        text = path.read_text()
        assert text.endswith("\n")
        assert text.index('"a"') < text.index('"b"')
        assert json.loads(text) == {"a": 2, "b": 1}

    def test_non_finite_payloads_allowed(self, tmp_path):
        # Telemetry/meta writes must never fail on sentinel inf/nan
        # (e.g. a checkpoint's best_value before the first improvement).
        path = tmp_path / "meta.json"
        write_json_atomic(path, {"best_value": float("inf")})
        assert "Infinity" in path.read_text()

    def test_numpy_payloads_allowed(self, tmp_path):
        path = tmp_path / "np.json"
        write_json_atomic(path, {"n": np.int64(3), "f": np.float32(0.5)})
        assert json.loads(path.read_text()) == {"n": 3, "f": 0.5}
