"""Unit tests for repro.geometry.edges (edge extraction, EPE samples)."""

import pytest

from repro.config import GridSpec
from repro.geometry.edges import (
    EdgeOrientation,
    extract_edges,
    generate_sample_points,
    split_samples,
)
from repro.geometry.layout import Layout
from repro.geometry.polygon import Polygon
from repro.geometry.rect import Rect

GRID = GridSpec(shape=(128, 128), pixel_nm=1.0)


class TestExtractEdges:
    def test_rect_has_four_edges(self):
        edges = extract_edges(Polygon.from_rect(Rect(10, 10, 50, 30)))
        assert len(edges) == 4
        horizontals = [e for e in edges if e.orientation is EdgeOrientation.HORIZONTAL]
        verticals = [e for e in edges if e.orientation is EdgeOrientation.VERTICAL]
        assert len(horizontals) == 2
        assert len(verticals) == 2

    def test_interior_signs(self):
        edges = extract_edges(Polygon.from_rect(Rect(10, 10, 50, 30)))
        by_key = {(e.orientation, e.fixed): e for e in edges}
        # Bottom edge (y=10): interior above -> +1.
        assert by_key[(EdgeOrientation.HORIZONTAL, 10)].interior_sign == 1
        # Top edge (y=30): interior below -> -1.
        assert by_key[(EdgeOrientation.HORIZONTAL, 30)].interior_sign == -1
        # Left edge (x=10): interior to the right -> +1.
        assert by_key[(EdgeOrientation.VERTICAL, 10)].interior_sign == 1
        # Right edge (x=50): interior to the left -> -1.
        assert by_key[(EdgeOrientation.VERTICAL, 50)].interior_sign == -1

    def test_edge_lengths(self):
        edges = extract_edges(Polygon.from_rect(Rect(0, 0, 40, 20)))
        assert sorted(e.length for e in edges) == [20, 20, 40, 40]

    def test_l_shape_has_six_edges(self):
        poly = Polygon([(0, 0), (30, 0), (30, 30), (20, 30), (20, 10), (0, 10)])
        assert len(extract_edges(poly)) == 6


class TestSamplePoints:
    def _layout(self, rect: Rect) -> Layout:
        return Layout.from_rects("t", [rect], clip=Rect(0, 0, 128, 128))

    def test_short_edges_get_midpoint_sample(self):
        layout = self._layout(Rect(10, 10, 40, 40))  # 30 nm edges < 40 nm spacing
        samples = generate_sample_points(layout, GRID, spacing_nm=40)
        assert len(samples) == 4
        xs = sorted(s.x for s in samples)
        assert xs == [10, 25, 25, 40]

    def test_long_edges_ladder(self):
        layout = self._layout(Rect(4, 4, 124, 44))  # 120 nm horizontal edges
        samples = generate_sample_points(layout, GRID, spacing_nm=40)
        hs, vs = split_samples(samples)
        assert len(hs) == 6  # 3 per horizontal edge (120/40)
        assert len(vs) == 2  # midpoint on each 40 nm vertical edge

    def test_sample_pixels_inside_pattern(self):
        layout = self._layout(Rect(10, 10, 90, 90))
        from repro.geometry.raster import rasterize_layout

        target = rasterize_layout(layout, GRID)
        for s in generate_sample_points(layout, GRID):
            assert target[s.row, s.col], f"sample pixel ({s.row},{s.col}) not inside"

    def test_orientation_split(self):
        layout = self._layout(Rect(10, 10, 90, 90))
        samples = generate_sample_points(layout, GRID)
        hs, vs = split_samples(samples)
        assert all(s.orientation is EdgeOrientation.HORIZONTAL for s in hs)
        assert all(s.orientation is EdgeOrientation.VERTICAL for s in vs)
        assert len(hs) == len(vs)  # square is symmetric

    def test_spacing_respected(self):
        layout = self._layout(Rect(4, 4, 124, 44))
        samples = generate_sample_points(layout, GRID, spacing_nm=40)
        bottom = sorted(s.x for s in samples if s.orientation is EdgeOrientation.HORIZONTAL and s.y == 4)
        diffs = [b - a for a, b in zip(bottom, bottom[1:])]
        assert all(d == pytest.approx(40) for d in diffs)

    def test_coarse_grid_clamps_pixels(self):
        grid = GridSpec(shape=(16, 16), pixel_nm=8.0)
        layout = self._layout(Rect(0, 0, 128, 128))  # fills the clip
        samples = generate_sample_points(layout, grid)
        for s in samples:
            assert 0 <= s.row < 16
            assert 0 <= s.col < 16
