"""Tests for the command-line interface (python -m repro)."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_solve_defaults(self):
        args = build_parser().parse_args(["solve", "B1"])
        assert args.mode == "fast"
        assert args.scale == "reduced"

    def test_solve_options(self):
        args = build_parser().parse_args(
            ["solve", "B2", "--mode", "exact", "--scale", "paper", "--out", "x"]
        )
        assert (args.mode, args.scale, args.out) == ("exact", "paper", "x")

    def test_bad_mode_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["solve", "B1", "--mode", "bogus"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_benchmarks_lists_all(self, capsys):
        assert main(["benchmarks"]) == 0
        out = capsys.readouterr().out
        for name in ("B1", "B10"):
            assert name in out

    def test_export_and_solve_glp(self, tmp_path, capsys):
        glp = tmp_path / "b1.glp"
        assert main(["export", "B1", str(glp)]) == 0
        assert glp.exists()
        assert main(["simulate", str(glp)]) == 0
        out = capsys.readouterr().out
        assert "#EPE" in out

    def test_simulate_benchmark(self, capsys):
        assert main(["simulate", "B1"]) == 0
        assert "no OPC" in capsys.readouterr().out

    def test_unknown_layout_error(self, capsys):
        assert main(["simulate", "B99"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_solve_writes_bundle(self, tmp_path, capsys):
        # Smallest possible solve: model-based on B1 at reduced scale.
        code = main(
            ["solve", "B1", "--mode", "modelbased", "--out", str(tmp_path), "--render"]
        )
        assert code == 0
        bundle = tmp_path / "B1_modelbased.npz"
        assert bundle.exists()
        data = np.load(bundle)
        assert set(data.files) == {"target", "mask", "printed", "pv_band"}
        out = capsys.readouterr().out
        assert "optimized mask" in out
