"""Tests for the command-line interface (python -m repro)."""

import json

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_solve_defaults(self):
        args = build_parser().parse_args(["solve", "B1"])
        assert args.mode == "fast"
        assert args.scale == "reduced"

    def test_solve_options(self):
        args = build_parser().parse_args(
            ["solve", "B2", "--mode", "exact", "--scale", "paper", "--out", "x"]
        )
        assert (args.mode, args.scale, args.out) == ("exact", "paper", "x")

    def test_bad_mode_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["solve", "B1", "--mode", "bogus"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_observability_defaults_off(self):
        args = build_parser().parse_args(["solve", "B1"])
        assert args.trace is False
        assert args.metrics_out is None
        assert args.log_json is None
        assert args.verbose == 0

    def test_observability_flags(self):
        args = build_parser().parse_args(
            ["solve", "B1", "-vv", "--trace",
             "--metrics-out", "m.json", "--log-json", "e.jsonl"]
        )
        assert args.trace is True
        assert args.metrics_out == "m.json"
        assert args.log_json == "e.jsonl"
        assert args.verbose == 2

    def test_observability_flags_on_simulate_and_verify(self):
        assert build_parser().parse_args(["simulate", "B1", "--trace"]).trace
        assert build_parser().parse_args(["verify", "B1", "--trace"]).trace


class TestCommands:
    def test_benchmarks_lists_all(self, capsys):
        assert main(["benchmarks"]) == 0
        out = capsys.readouterr().out
        for name in ("B1", "B10"):
            assert name in out

    def test_export_and_solve_glp(self, tmp_path, capsys):
        glp = tmp_path / "b1.glp"
        assert main(["export", "B1", str(glp)]) == 0
        assert glp.exists()
        assert main(["simulate", str(glp)]) == 0
        out = capsys.readouterr().out
        assert "#EPE" in out

    def test_simulate_benchmark(self, capsys):
        assert main(["simulate", "B1"]) == 0
        assert "no OPC" in capsys.readouterr().out

    def test_unknown_layout_error(self, capsys):
        assert main(["simulate", "B99"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_solve_writes_bundle(self, tmp_path, capsys):
        # Smallest possible solve: model-based on B1 at reduced scale.
        code = main(
            ["solve", "B1", "--mode", "modelbased", "--out", str(tmp_path), "--render"]
        )
        assert code == 0
        bundle = tmp_path / "B1_modelbased.npz"
        assert bundle.exists()
        data = np.load(bundle)
        assert set(data.files) == {"target", "mask", "printed", "pv_band"}
        out = capsys.readouterr().out
        assert "optimized mask" in out

    def test_solve_with_observability_outputs(self, tmp_path, capsys):
        metrics_path = tmp_path / "metrics.json"
        events_path = tmp_path / "events.jsonl"
        code = main(
            ["solve", "B1", "--mode", "fast", "--trace",
             "--metrics-out", str(metrics_path), "--log-json", str(events_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        # Per-phase breakdown printed with the core optimizer phases.
        assert "phase breakdown" in out
        assert "optimize" in out and "iteration" in out
        # Metrics dump carries the headline counters.
        metrics = json.loads(metrics_path.read_text())
        for name in ("forward_evals_total", "kernel_cache_hits",
                     "line_search_backtracks"):
            assert name in metrics, f"missing metric {name}"
        assert metrics["forward_evals_total"]["value"] > 0
        # Event stream: lifecycle + one record per iteration, loadable
        # as a history.
        from repro.opc.history import OptimizationHistory

        events = [json.loads(line) for line in events_path.read_text().splitlines()]
        kinds = [e["event"] for e in events]
        assert kinds[0] == "run_start" and kinds[-1] == "run_end"
        history = OptimizationHistory.from_jsonl(events_path)
        assert len(history) == kinds.count("iteration") > 0

    def test_simulate_trace_counts_forward_evals(self, capsys):
        assert main(["simulate", "B1", "--trace"]) == 0
        out = capsys.readouterr().out
        assert "forward_evals_total" in out
