"""The job service: admission, cache, cancellation, and the HTTP front.

The expensive acceptance paths run on the miniature litho config (64x64
grid, 4 kernels, 3 iterations) so a full submit→solve→artifact round
trip costs well under a second of solver time.
"""

import json
import threading
import time

import numpy as np
import pytest

from repro.config import (
    GridSpec,
    LithoConfig,
    OpticsConfig,
    OptimizerConfig,
    ProcessConfig,
    ResistConfig,
)
from repro.errors import (
    JobNotFoundError,
    RateLimitedError,
    ReproError,
    ServiceError,
)
from repro.service import (
    IltService,
    RateLimitConfig,
    ServiceClient,
    ServiceConfig,
    TenantLimiter,
    TokenBucket,
    cache_key_for,
    normalize_payload,
    serve,
)

PROBE_NM = 1024.0


def tiny_litho():
    return LithoConfig(
        grid=GridSpec(shape=(64, 64), pixel_nm=16.0),
        optics=OpticsConfig(num_kernels=4),
        resist=ResistConfig(),
        process=ProcessConfig(),
    )


def tiny_optimizer(max_iterations=3):
    return OptimizerConfig(max_iterations=max_iterations, use_jump=False)


def tiny_service_config(root, **overrides):
    defaults = dict(
        root=root,
        litho=tiny_litho(),
        optimizer=tiny_optimizer(),
        fullchip_overrides={"probe_extent_nm": PROBE_NM},
        poll_s=0.05,
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


SERIAL_PAYLOAD = {
    "layout": "synth:1024x1024:1",
    "mode": "fast",
    "executor": "serial",
}


# -- admission units ---------------------------------------------------------


class TestTokenBucket:
    def test_burst_then_exact_wait(self):
        now = [0.0]
        bucket = TokenBucket(capacity=3, refill_per_s=2.0, clock=lambda: now[0])
        assert [bucket.try_acquire() for _ in range(3)] == [0.0, 0.0, 0.0]
        # Empty: next token is 1/rate away, and the failed acquire
        # must not consume anything.
        assert bucket.try_acquire() == pytest.approx(0.5)
        assert bucket.try_acquire() == pytest.approx(0.5)

    def test_refill_caps_at_capacity(self):
        now = [0.0]
        bucket = TokenBucket(capacity=2, refill_per_s=1.0, clock=lambda: now[0])
        bucket.try_acquire()
        bucket.try_acquire()
        now[0] = 100.0  # far more than capacity's worth of refill
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() > 0.0

    def test_validation(self):
        with pytest.raises(ServiceError):
            TokenBucket(0, 1.0)
        with pytest.raises(ServiceError):
            TokenBucket(1, 0.0)


class TestTenantLimiter:
    def test_rate_gate_with_exact_retry_after(self):
        now = [0.0]
        limiter = TenantLimiter(
            RateLimitConfig(rate_per_s=1.0, burst=2, max_active=0),
            clock=lambda: now[0],
        )
        limiter.admit("t", 0)
        limiter.admit("t", 0)
        with pytest.raises(RateLimitedError) as exc:
            limiter.admit("t", 0)
        assert exc.value.retry_after_s == pytest.approx(1.0)
        now[0] = 1.0  # one token refilled
        limiter.admit("t", 0)

    def test_tenants_are_independent(self):
        now = [0.0]
        limiter = TenantLimiter(
            RateLimitConfig(rate_per_s=1.0, burst=1, max_active=0),
            clock=lambda: now[0],
        )
        limiter.admit("a", 0)
        with pytest.raises(RateLimitedError):
            limiter.admit("a", 0)
        # Tenant b still has a full bucket.
        limiter.admit("b", 0)

    def test_concurrency_gate_uses_configured_hint(self):
        config = RateLimitConfig(
            rate_per_s=100.0, burst=100, max_active=2, retry_after_s=7.0
        )
        limiter = TenantLimiter(config)
        limiter.admit("t", 1)
        with pytest.raises(RateLimitedError) as exc:
            limiter.admit("t", 2)
        assert exc.value.retry_after_s == pytest.approx(7.0)


# -- cache key ---------------------------------------------------------------


class TestCacheKey:
    def test_placement_knobs_do_not_change_the_key(self):
        base = normalize_payload(dict(SERIAL_PAYLOAD))
        moved = normalize_payload(
            {**SERIAL_PAYLOAD, "workers": 4, "executor": "queue", "keep_going": True}
        )
        assert cache_key_for(base, "1.0") == cache_key_for(moved, "1.0")

    @pytest.mark.parametrize(
        "change",
        [
            {"layout": "synth:1024x1024:2"},
            {"mode": "exact"},
            {"tile_nm": 512.0},
            {"use_sraf": False},
        ],
    )
    def test_result_knobs_change_the_key(self, change):
        base = normalize_payload(dict(SERIAL_PAYLOAD))
        other = normalize_payload({**SERIAL_PAYLOAD, **change})
        assert cache_key_for(base, "1.0") != cache_key_for(other, "1.0")

    def test_version_and_fingerprint_pin_the_key(self):
        base = normalize_payload(dict(SERIAL_PAYLOAD))
        assert cache_key_for(base, "1.0") != cache_key_for(base, "2.0")
        assert cache_key_for(base, "1.0") != cache_key_for(base, "1.0", "cfg-abc")


# -- payload validation ------------------------------------------------------


class TestNormalizePayload:
    def test_defaults_filled(self):
        normalized = normalize_payload({"layout": "B1"})
        assert normalized["mode"] == "fast"
        assert normalized["executor"] == "queue"
        assert normalized["tile_nm"] == 1024.0
        assert normalized["workers"] == 1

    @pytest.mark.parametrize(
        "payload",
        [
            "not a dict",
            {},  # no layout
            {"layout": "B1", "bogus": 1},
            {"layout": "nope-not-a-spec"},
            {"layout": "synth:axb"},
            {"layout": "/tmp/secret.glp"},  # paths refused over the wire
            {"layout": "B1", "mode": "heroic"},
            {"layout": "B1", "scale": "huge"},
            {"layout": "B1", "executor": "carrier-pigeon"},
            {"layout": "B1", "tile_nm": -5},
            {"layout": "B1", "tile_nm": "wide"},
            {"layout": "B1", "workers": 0},
            {"layout": "B1", "halo_nm": -1.0},
        ],
    )
    def test_rejects_eagerly(self, payload):
        # ServiceError or a workload-spec ReproError — the HTTP layer
        # maps both to 400; a RateLimitedError here would be a 429 bug.
        with pytest.raises(ReproError) as exc:
            normalize_payload(payload)
        assert not isinstance(exc.value, RateLimitedError)


# -- end-to-end: solve, cache, cancel ---------------------------------------


@pytest.fixture
def service(tmp_path):
    svc = IltService(tiny_service_config(tmp_path / "svc"))
    yield svc
    svc.close()


class TestServiceEndToEnd:
    def test_http_job_mask_is_bit_identical_to_direct_solve(self, service, tmp_path):
        job = service.submit(dict(SERIAL_PAYLOAD))
        job = service.wait(job.id, timeout_s=120)
        assert job.state == "DONE", job.error
        assert job.score is not None and "total" in job.score

        mask_path = service.artifact_path(job.id, "mask.npz")
        assert mask_path is not None
        service_mask = np.load(mask_path)["mask"]

        # The same recipe, driven directly through the engine.
        from repro.fullchip import FullChipConfig, FullChipEngine
        from repro.workloads import load_workload

        engine = FullChipEngine(
            tiny_litho(),
            optimizer=tiny_optimizer(),
            config=FullChipConfig(
                tile_nm=1024.0,
                workers=1,
                solver_mode="fast",
                executor="serial",
                probe_extent_nm=PROBE_NM,
                telemetry_dir=str(tmp_path / "direct"),
            ),
        )
        direct = engine.solve(load_workload(SERIAL_PAYLOAD["layout"]))
        assert np.array_equal(service_mask, direct.mask)

    def test_identical_resubmit_hits_cache_with_zero_new_tiles(self, service):
        first = service.wait(service.submit(dict(SERIAL_PAYLOAD)).id, timeout_s=120)
        assert first.state == "DONE"
        run_dirs = list(service.store.root.glob("*/run"))
        assert len(run_dirs) == 1

        second = service.submit(dict(SERIAL_PAYLOAD))
        # DONE instantly - no PENDING phase, no runner thread, no run dir.
        assert second.state == "DONE"
        assert second.cached and second.cached_from == first.id
        assert second.score == first.score
        assert list(service.store.root.glob("*/run")) == run_dirs
        counters = service.metrics_snapshot()
        assert counters["service_cache_hits"]["value"] == 1
        assert counters["service_jobs_submitted"]["value"] == 2

        # Artifacts resolve through the job that actually solved.
        assert service.artifact_path(second.id, "mask.npz") == (
            service.artifact_path(first.id, "mask.npz")
        )
        assert "mask.npz" in service.list_artifacts(second.id)

    def test_placement_variant_also_hits_cache(self, service):
        first = service.wait(service.submit(dict(SERIAL_PAYLOAD)).id, timeout_s=120)
        assert first.state == "DONE"
        variant = service.submit({**SERIAL_PAYLOAD, "workers": 2})
        assert variant.cached and variant.cached_from == first.id

    def test_events_replay_ends_with_terminal_job_record(self, service):
        job = service.wait(service.submit(dict(SERIAL_PAYLOAD)).id, timeout_s=120)
        records = list(service.events(job.id, timeout_s=30))
        kinds = [r["kind"] for r in records]
        assert kinds[-1] == "job"
        assert records[-1]["state"] == "DONE"
        assert "event" in kinds  # the run's events.jsonl was replayed
        assert "status" in kinds  # and at least one status snapshot

    def test_failed_job_reports_error_and_is_not_cached(self, service):
        # An unresolvable backend blows up inside the runner thread: the
        # fault must surface as a FAILED record, not a hung job.
        job = service.submit({**SERIAL_PAYLOAD, "backend": "not-a-backend"})
        job = service.wait(job.id, timeout_s=60)
        assert job.state == "FAILED"
        assert job.error and "backend" in job.error
        assert len(service.cache) == 0
        assert service.metrics_snapshot()["service_jobs_failed"]["value"] == 1

    def test_unknown_job_raises(self, service):
        with pytest.raises(JobNotFoundError):
            service.get("doesnotexist")
        with pytest.raises(JobNotFoundError):
            service.cancel("doesnotexist")


class TestQueueCancel:
    def test_cancel_running_queue_job_leaves_no_live_leases(self, tmp_path):
        # Enough tiles x iterations that the run is mid-flight for
        # seconds — the cancel lands while workers hold leases.
        config = tiny_service_config(
            tmp_path / "svc",
            optimizer=tiny_optimizer(max_iterations=300),
            fullchip_overrides={
                "probe_extent_nm": PROBE_NM,
                "queue_lease_s": 10.0,
            },
        )
        service = IltService(config)
        try:
            job = service.submit(
                {
                    "layout": "synth:2048x2048:3",
                    "mode": "fast",
                    "executor": "queue",
                    "workers": 1,
                }
            )
            run_dir = service.store.run_dir(job.id)

            from repro.fullchip.queue import load_queue_state

            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                state = load_queue_state(run_dir)
                if state and (
                    state["counts"]["leased"] > 0 or state["counts"]["done"] > 0
                ):
                    break
                assert service.get(job.id).state not in ("DONE", "FAILED"), (
                    "job settled before the queue went live"
                )
                time.sleep(0.1)
            else:
                pytest.fail("queue never started leasing tiles")

            service.cancel(job.id)
            job = service.wait(job.id, timeout_s=120)
            assert job.state == "CANCELLED"
            assert job.error

            counts = load_queue_state(run_dir)["counts"]
            assert counts["leased"] == 0, f"live leases after cancel: {counts}"
            assert counts["done"] < counts["total"]

            status = json.loads((run_dir / "status.json").read_text())
            assert status["state"] == "cancelled"
            assert (
                service.metrics_snapshot()["service_jobs_cancelled"]["value"] == 1
            )
        finally:
            service.close()


# -- the HTTP front end ------------------------------------------------------


@pytest.fixture(scope="module")
def http_env(tmp_path_factory):
    root = tmp_path_factory.mktemp("service-http")
    service = IltService(
        tiny_service_config(
            root / "svc",
            ratelimit=RateLimitConfig(
                rate_per_s=0.01, burst=3, max_active=0, retry_after_s=5.0
            ),
        )
    )
    server = serve(service, host="127.0.0.1", port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server, service
    server.shutdown()
    service.close()
    thread.join(timeout=10)


class TestHttpApi:
    def test_service_file_published(self, http_env):
        server, service = http_env
        published = json.loads((service.root / "service.json").read_text())
        assert published["url"] == server.url
        assert published["port"] == server.address[1]

    def test_healthz_reports_version(self, http_env):
        server, _ = http_env
        health = ServiceClient(server.url).healthz()
        from repro import __version__

        assert health["ok"] is True
        assert health["version"] == __version__

    def test_full_round_trip_and_429_burst(self, http_env):
        server, service = http_env
        client = ServiceClient(server.url, tenant="alpha", timeout_s=120)

        # Submit, stream to DONE, pull the mask back over the wire.
        job = client.submit(dict(SERIAL_PAYLOAD))
        assert job["state"] in ("PENDING", "RUNNING")
        final = client.wait(job["id"], timeout_s=120)
        assert final["state"] == "DONE"
        assert "mask.npz" in client.artifacts(job["id"])
        blob = client.artifact(job["id"], "mask.npz")
        assert blob[:2] == b"PK"  # npz = zip container

        # Identical resubmit: served from cache, still DONE, no thread.
        hit = client.submit(dict(SERIAL_PAYLOAD))
        assert hit["state"] == "DONE" and hit["cached"]
        assert hit["cached_from"] == job["id"]
        assert client.metricsz()["service_cache_hits"]["value"] >= 1

        # A burst past tenant "bursty"'s budget: 3 admitted (as 400s -
        # admission happens before validation), the 4th is 429 with a
        # Retry-After hint...
        bursty = ServiceClient(server.url, tenant="bursty")
        outcomes = []
        for _ in range(4):
            try:
                bursty.submit({})
                outcomes.append("accepted")
            except RateLimitedError as exc:
                outcomes.append(("limited", exc.retry_after_s))
            except ServiceError:
                outcomes.append("rejected-400")
        assert outcomes[:3] == ["rejected-400"] * 3
        assert outcomes[3][0] == "limited" and outcomes[3][1] > 0
        # ... while the admitted tenant's job is unaffected.
        assert client.job(job["id"])["state"] == "DONE"

    def test_http_error_mapping(self, http_env):
        server, _ = http_env
        client = ServiceClient(server.url, tenant="beta")
        with pytest.raises(ServiceError, match="400"):
            client.submit({"layout": "synth:balloonxcat"})
        with pytest.raises(JobNotFoundError):
            client.job("nope")
        with pytest.raises(JobNotFoundError):
            list(client.events("nope"))
        with pytest.raises(JobNotFoundError):
            client.cancel("nope")

    def test_delete_cancels_pending_or_running(self, http_env):
        server, service = http_env
        client = ServiceClient(server.url, tenant="gamma", timeout_s=120)
        job = client.submit(dict(SERIAL_PAYLOAD))
        cancelled = client.cancel(job["id"])
        assert cancelled["id"] == job["id"]
        final = client.wait(job["id"], timeout_s=120)
        # The cancel raced job completion: either it landed (CANCELLED)
        # or the tiny job finished first (DONE). Both are terminal and
        # the service must agree with the wire.
        assert final["state"] in ("CANCELLED", "DONE")
        assert service.get(job["id"]).state == final["state"]
