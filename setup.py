"""Legacy setup shim.

Kept so ``pip install -e .`` works in offline environments that lack the
``wheel`` package needed by the PEP 517 editable-install path.  All
metadata lives in pyproject.toml; setuptools >= 61 reads it from there.
"""

from setuptools import setup

setup()
