"""Small shared IO helpers (atomic writes).

The checkpoint/spool/artifact writers all follow the same discipline:
write to a temp file in the target directory, then ``os.replace`` onto
the final name, so readers see a complete file or none at all.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Union

from .hashing import stable_json_dumps

__all__ = ["write_text_atomic", "write_json_atomic"]


def write_text_atomic(path: Union[str, Path], text: str) -> Path:
    """Atomically replace ``path`` with ``text`` (tmp + ``os.replace``)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=target.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(tmp_name, target)
    except BaseException:
        if os.path.exists(tmp_name):
            os.unlink(tmp_name)
        raise
    return target


def write_json_atomic(path: Union[str, Path], payload: object) -> Path:
    """Atomically replace ``path`` with ``payload`` as canonical JSON.

    Serialized via :func:`~repro.utils.hashing.stable_json_dumps` with
    ``non_finite="allow"`` — telemetry payloads may carry sentinel
    inf/nan values and a status write must never fail on them.
    """
    text = stable_json_dumps(payload, indent=2, non_finite="allow")
    return write_text_atomic(path, text + "\n")
