"""Small shared IO helpers (atomic writes).

The checkpoint/spool/artifact writers all follow the same discipline:
write to a temp file in the target directory, then ``os.replace`` onto
the final name, so readers see a complete file or none at all.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Union

__all__ = ["write_text_atomic", "write_json_atomic"]


def write_text_atomic(path: Union[str, Path], text: str) -> Path:
    """Atomically replace ``path`` with ``text`` (tmp + ``os.replace``)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=target.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(tmp_name, target)
    except BaseException:
        if os.path.exists(tmp_name):
            os.unlink(tmp_name)
        raise
    return target


def write_json_atomic(path: Union[str, Path], payload: object) -> Path:
    """Atomically replace ``path`` with ``payload`` as JSON."""
    return write_text_atomic(path, json.dumps(payload, indent=2) + "\n")
