"""Canonical JSON serialization and content hashing.

One serialization to rule them all: the service's content-addressed
result cache, the durable queue's meta/ticket writes, and the
checkpoint metadata blobs must agree on what "the same payload" looks
like on disk, or dedup silently breaks.  :func:`stable_json_dumps`
pins the free choices JSON leaves open:

* object keys are sorted (``sort_keys=True``),
* containers are normalized (tuples/sets become lists, numpy scalars
  become their Python equivalents, paths become strings),
* floats are emitted via ``float.__repr__`` — the shortest string that
  round-trips exactly (guaranteed since Python 3.1), so equal doubles
  always serialize to equal bytes,
* negative zero is normalized to ``0.0`` (they compare equal; they
  must hash equal), and
* non-finite floats are an explicit policy choice (``non_finite``),
  never an accident.

:func:`canonical_hash` is the content address built on top: the
SHA-256 of the canonical serialization.
"""

from __future__ import annotations

import hashlib
import json
import math
from pathlib import Path
from typing import Optional, Union

from ..errors import ReproError

__all__ = ["stable_json_dumps", "sha256_hex", "canonical_hash"]

#: Accepted ``non_finite`` policies (see :func:`stable_json_dumps`).
_NON_FINITE_POLICIES = ("error", "null", "allow")


def _canonicalize(value: object, non_finite: str, where: str) -> object:
    """Normalize a payload into plain JSON-able Python objects."""
    if value is None or isinstance(value, (str, bool, int)):
        return value
    if isinstance(value, float):
        if not math.isfinite(value):
            if non_finite == "error":
                raise ReproError(
                    f"non-finite float {value!r} at {where} cannot be "
                    "canonically serialized (pass non_finite='null' or "
                    "'allow' to permit it)"
                )
            if non_finite == "null":
                return None
            return value  # "allow": stdlib emits NaN/Infinity tokens
        # Numbers that compare equal must serialize identically:
        # integral floats (1024.0, and -0.0 via 0) collapse to ints so
        # `1024` and `1024.0` produce one cache key.
        if value.is_integer():
            return int(value)
        return value
    if isinstance(value, dict):
        out = {}
        for key in sorted(value, key=str):
            out[str(key)] = _canonicalize(
                value[key], non_finite, f"{where}.{key}"
            )
        return out
    if isinstance(value, (list, tuple)):
        return [
            _canonicalize(v, non_finite, f"{where}[{i}]")
            for i, v in enumerate(value)
        ]
    if isinstance(value, (set, frozenset)):
        return sorted(
            (_canonicalize(v, non_finite, where) for v in value), key=str
        )
    if isinstance(value, Path):
        return str(value)
    item = getattr(value, "item", None)  # numpy scalars
    if callable(item):
        return _canonicalize(item(), non_finite, where)
    return str(value)


def stable_json_dumps(
    payload: object,
    indent: Optional[int] = None,
    non_finite: str = "error",
) -> str:
    """Serialize ``payload`` to deterministic JSON text.

    Args:
        payload: any JSON-able structure (numpy scalars, tuples, sets
            and paths are normalized along the way).
        indent: pretty-print indent; None emits the compact one-line
            form (``","``/``":"`` separators) used for hashing.
        non_finite: what to do with NaN/±Infinity floats — ``"error"``
            (raise :class:`~repro.errors.ReproError`; the right policy
            for cache keys), ``"null"`` (replace with JSON ``null``),
            or ``"allow"`` (emit the stdlib ``NaN``/``Infinity``
            tokens; the right policy for telemetry/metadata writes that
            must never fail on a stray sentinel value).

    Returns:
        The canonical JSON text (no trailing newline).
    """
    if non_finite not in _NON_FINITE_POLICIES:
        raise ReproError(
            f"non_finite must be one of {_NON_FINITE_POLICIES}, "
            f"got {non_finite!r}"
        )
    canonical = _canonicalize(payload, non_finite, "$")
    separators = (",", ": ") if indent is not None else (",", ":")
    return json.dumps(
        canonical,
        sort_keys=True,
        indent=indent,
        separators=separators,
        allow_nan=(non_finite == "allow"),
    )


def sha256_hex(data: Union[str, bytes]) -> str:
    """Hex SHA-256 digest of a string (UTF-8) or bytes payload."""
    if isinstance(data, str):
        data = data.encode("utf-8")
    return hashlib.sha256(data).hexdigest()


def canonical_hash(payload: object) -> str:
    """SHA-256 content address of a payload's canonical serialization.

    Two payloads hash equal iff they are semantically equal under the
    normalization rules of :func:`stable_json_dumps` — regardless of
    key order, tuple-vs-list container choice, or numpy scalar types.
    Non-finite floats are rejected: a cache key must never depend on a
    sentinel that other serializers render differently.
    """
    return sha256_hex(stable_json_dumps(payload))
