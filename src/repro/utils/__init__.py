"""Small shared utilities: timing, validation, array helpers."""

from .timer import Timer
from .validation import (
    ensure_binary_image,
    ensure_image,
    ensure_same_shape,
    sigmoid,
)

__all__ = [
    "Timer",
    "ensure_binary_image",
    "ensure_image",
    "ensure_same_shape",
    "sigmoid",
]
