"""Validation helpers and numerically safe primitives shared across modules."""

from __future__ import annotations

import numpy as np

from ..errors import GridError

#: Clamp for sigmoid exponents so ``exp`` never overflows float64.
_EXP_CLAMP = 500.0


def sigmoid(
    x: np.ndarray, steepness: float = 1.0, center: float = 0.0, xp=None
) -> np.ndarray:
    """Numerically stable logistic sigmoid ``1 / (1 + exp(-steepness*(x-center)))``.

    This is the workhorse of the whole paper: it approximates the resist
    threshold (Eq. 4), relaxes the binary mask (Eq. 8), and smooths the
    EPE-violation indicator (Eq. 11).

    Args:
        x: input array (any shape) or scalar.
        steepness: sigmoid steepness (theta in the paper).
        center: value of x at which the sigmoid crosses 0.5.
        xp: optional :class:`~repro.xp.ArrayBackend` (or spec string) to
            evaluate on; ``None`` keeps the host float64 numpy path.

    Returns:
        Array of the same shape with values in (0, 1), backend-native
        when ``xp`` is given.
    """
    # Extreme steepness values (theta_m sweeps, fault-injected params) can
    # overflow the product before the clamp ever sees it; suppress the
    # warning and let the clamp saturate the result instead.
    if xp is None:
        with np.errstate(over="ignore"):
            z = np.clip(
                steepness * (np.asarray(x, dtype=np.float64) - center),
                -_EXP_CLAMP,
                _EXP_CLAMP,
            )
        return 1.0 / (1.0 + np.exp(-z))
    from ..xp import resolve_backend  # deferred: utils must stay leaf-ish

    xp = resolve_backend(xp)
    with np.errstate(over="ignore"):
        z = xp.clip(
            steepness * (xp.asarray(x, "float") - center), -_EXP_CLAMP, _EXP_CLAMP
        )
        return 1.0 / (1.0 + xp.exp(-z))


def ensure_image(arr: np.ndarray, name: str = "image") -> np.ndarray:
    """Check that ``arr`` is a finite 2-D float array; return it as float64."""
    a = np.asarray(arr)
    if a.ndim != 2:
        raise GridError(f"{name} must be 2-D, got shape {a.shape}")
    a = a.astype(np.float64, copy=False)
    if not np.all(np.isfinite(a)):
        raise GridError(f"{name} contains non-finite values")
    return a


def ensure_binary_image(arr: np.ndarray, name: str = "image") -> np.ndarray:
    """Check that ``arr`` is 2-D and binary (only values 0 and 1); return bool array."""
    a = np.asarray(arr)
    if a.ndim != 2:
        raise GridError(f"{name} must be 2-D, got shape {a.shape}")
    if a.dtype == bool:
        return a
    vals = np.unique(a)
    if not np.all(np.isin(vals, (0, 1))):
        raise GridError(f"{name} must be binary, found values {vals[:5]}")
    return a.astype(bool)


def ensure_same_shape(*arrays: np.ndarray) -> None:
    """Raise :class:`GridError` unless every array has the same shape."""
    shapes = {np.asarray(a).shape for a in arrays}
    if len(shapes) > 1:
        raise GridError(f"shape mismatch: {sorted(shapes)}")
