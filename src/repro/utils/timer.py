"""Wall-clock timing helper used by the optimizers and the score metric."""

from __future__ import annotations

import time


class Timer:
    """Context-manager stopwatch.

    Example:
        >>> with Timer() as t:
        ...     _ = sum(range(1000))
        >>> t.elapsed >= 0.0
        True
    """

    def __init__(self) -> None:
        self._start: float = 0.0
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed = time.perf_counter() - self._start

    def lap(self) -> float:
        """Seconds since the timer was entered (without stopping it)."""
        return time.perf_counter() - self._start
