"""Simple text layout format ("GLP", after the contest's glp files).

Line-oriented, nm coordinates, ``#`` comments::

    CLIP <name> <x0> <y0> <x1> <y1>
    RECT <x0> <y0> <x1> <y1>
    POLY <x1> <y1> <x2> <y2> ... <xn> <yn>
    END

One CLIP per file.  RECT/POLY lines add shapes; END is optional but
recommended (it guards against truncated files).
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Union

from ..errors import LayoutIOError
from ..geometry.layout import Layout
from ..geometry.polygon import Polygon
from ..geometry.rect import Rect


def loads_glp(text: str) -> Layout:
    """Parse a layout from GLP text."""
    layout: Layout | None = None
    saw_end = False
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if saw_end:
            raise LayoutIOError(f"line {lineno}: content after END")
        parts = line.split()
        keyword = parts[0].upper()
        try:
            if keyword == "CLIP":
                if layout is not None:
                    raise LayoutIOError(f"line {lineno}: duplicate CLIP")
                if len(parts) != 6:
                    raise LayoutIOError(f"line {lineno}: CLIP needs name + 4 coords")
                name = parts[1]
                x0, y0, x1, y1 = (float(v) for v in parts[2:6])
                layout = Layout(name=name, clip=Rect(x0, y0, x1, y1))
            elif keyword == "RECT":
                if layout is None:
                    raise LayoutIOError(f"line {lineno}: RECT before CLIP")
                if len(parts) != 5:
                    raise LayoutIOError(f"line {lineno}: RECT needs 4 coords")
                x0, y0, x1, y1 = (float(v) for v in parts[1:5])
                layout.add(Rect(x0, y0, x1, y1))
            elif keyword == "POLY":
                if layout is None:
                    raise LayoutIOError(f"line {lineno}: POLY before CLIP")
                coords = [float(v) for v in parts[1:]]
                if len(coords) < 8 or len(coords) % 2:
                    raise LayoutIOError(
                        f"line {lineno}: POLY needs an even number (>= 8) of coords"
                    )
                points = list(zip(coords[0::2], coords[1::2]))
                layout.add(Polygon(points))
            elif keyword == "END":
                saw_end = True
            else:
                raise LayoutIOError(f"line {lineno}: unknown keyword {keyword!r}")
        except ValueError as exc:  # float() failures
            raise LayoutIOError(f"line {lineno}: bad number ({exc})") from exc
    if layout is None:
        raise LayoutIOError("no CLIP line found")
    return layout


def dumps_glp(layout: Layout) -> str:
    """Serialize a layout to GLP text (all shapes as POLY lines)."""
    clip = layout.clip
    lines = [
        f"# GLP layout: {layout.name}",
        f"CLIP {layout.name} {clip.x0:g} {clip.y0:g} {clip.x1:g} {clip.y1:g}",
    ]
    for poly in layout.polygons:
        coords = " ".join(f"{x:g} {y:g}" for x, y in poly.vertices)
        lines.append(f"POLY {coords}")
    lines.append("END")
    return "\n".join(lines) + "\n"


def read_glp(path: Union[str, Path]) -> Layout:
    """Read a layout from a GLP file."""
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise LayoutIOError(f"cannot read {path}: {exc}") from exc
    return loads_glp(text)


def write_glp(layout: Layout, path: Union[str, Path]) -> None:
    """Write a layout to a GLP file."""
    Path(path).write_text(dumps_glp(layout))
