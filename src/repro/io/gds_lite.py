"""Minimal GDSII stream reader/writer for rectilinear layouts.

Implements the subset of the GDSII binary format needed to exchange
clips with real EDA tools: one library, one structure, BOUNDARY elements
with XY coordinate lists.  Coordinates are written in database units of
1 nm (unit record: 1 dbu = 1e-9 m).

This is intentionally not a full GDS implementation — no SREF/AREF, no
paths, no text — but files written here load in standard viewers, and
BOUNDARY-only files exported by standard tools load here.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import List, Tuple, Union

from ..errors import LayoutIOError
from ..geometry.layout import Layout
from ..geometry.polygon import Polygon
from ..geometry.rect import Rect

# GDSII record types (high byte) + data types (low byte) used here.
_HEADER = 0x0002
_BGNLIB = 0x0102
_LIBNAME = 0x0206
_UNITS = 0x0305
_BGNSTR = 0x0502
_STRNAME = 0x0606
_ENDSTR = 0x0700
_BOUNDARY = 0x0800
_LAYER = 0x0D02
_DATATYPE = 0x0E02
_XY = 0x1003
_ENDEL = 0x1100
_ENDLIB = 0x0400

#: Database unit: 1 nm, expressed in metres.
_DBU_METERS = 1e-9
_DEFAULT_LAYER = 1

#: A zeroed BGNLIB/BGNSTR timestamp block (12 int16 fields).
_ZERO_TIMESTAMP = (0,) * 12


def _record(rectype: int, payload: bytes = b"") -> bytes:
    length = 4 + len(payload)
    if length % 2:
        payload += b"\0"
        length += 1
    return struct.pack(">HH", length, rectype) + payload


def _ascii(text: str) -> bytes:
    data = text.encode("ascii")
    return data + (b"\0" if len(data) % 2 else b"")


def _gds_real8(value: float) -> bytes:
    """Encode a float as GDSII 8-byte excess-64 real."""
    if value == 0.0:
        return b"\0" * 8
    sign = 0x80 if value < 0 else 0x00
    value = abs(value)
    exponent = 64
    while value >= 1.0:
        value /= 16.0
        exponent += 1
    while value < 1.0 / 16.0:
        value *= 16.0
        exponent -= 1
    mantissa = int(value * (1 << 56))
    return struct.pack(">B", sign | exponent) + mantissa.to_bytes(7, "big")


def _parse_real8(data: bytes) -> float:
    byte0 = data[0]
    sign = -1.0 if byte0 & 0x80 else 1.0
    exponent = (byte0 & 0x7F) - 64
    mantissa = int.from_bytes(data[1:8], "big") / float(1 << 56)
    return sign * mantissa * (16.0**exponent)


def write_gds(layout: Layout, path: Union[str, Path]) -> None:
    """Write a layout as a one-structure GDSII file (1 nm dbu, layer 1)."""
    chunks: List[bytes] = [
        _record(_HEADER, struct.pack(">h", 600)),  # GDSII v6
        _record(_BGNLIB, struct.pack(">12h", *_ZERO_TIMESTAMP)),
        _record(_LIBNAME, _ascii("REPRO")),
        _record(_UNITS, _gds_real8(1e-3) + _gds_real8(_DBU_METERS)),
        _record(_BGNSTR, struct.pack(">12h", *_ZERO_TIMESTAMP)),
        _record(_STRNAME, _ascii(layout.name or "TOP")),
    ]
    for poly in layout.polygons:
        points: List[Tuple[int, int]] = [
            (int(round(x)), int(round(y))) for x, y in poly.vertices
        ]
        points.append(points[0])  # GDS boundaries repeat the first point
        xy = b"".join(struct.pack(">ii", x, y) for x, y in points)
        chunks += [
            _record(_BOUNDARY),
            _record(_LAYER, struct.pack(">h", _DEFAULT_LAYER)),
            _record(_DATATYPE, struct.pack(">h", 0)),
            _record(_XY, xy),
            _record(_ENDEL),
        ]
    chunks += [_record(_ENDSTR), _record(_ENDLIB)]
    Path(path).write_bytes(b"".join(chunks))


def read_gds(path: Union[str, Path], clip: Rect | None = None) -> Layout:
    """Read a BOUNDARY-only GDSII file back into a Layout.

    Args:
        path: GDS file path.
        clip: clip window for the layout; defaults to the contest clip
            (shapes must fit inside whichever clip is used).
    """
    try:
        data = Path(path).read_bytes()
    except OSError as exc:
        raise LayoutIOError(f"cannot read {path}: {exc}") from exc

    offset = 0
    name = "TOP"
    dbu_nm = 1.0
    polygons: List[Polygon] = []
    current_xy: List[Tuple[float, float]] | None = None
    in_boundary = False

    while offset + 4 <= len(data):
        length, rectype = struct.unpack(">HH", data[offset: offset + 4])
        if length < 4:
            raise LayoutIOError(f"corrupt record at byte {offset}")
        payload = data[offset + 4: offset + length]
        offset += length

        if rectype == _UNITS:
            if len(payload) != 16:
                raise LayoutIOError("malformed UNITS record")
            dbu_nm = _parse_real8(payload[8:16]) / _DBU_METERS
        elif rectype == _STRNAME:
            name = payload.rstrip(b"\0").decode("ascii", errors="replace")
        elif rectype == _BOUNDARY:
            in_boundary = True
            current_xy = None
        elif rectype == _XY and in_boundary:
            count = len(payload) // 8
            coords = struct.unpack(f">{2 * count}i", payload[: 8 * count])
            current_xy = [
                (coords[2 * i] * dbu_nm, coords[2 * i + 1] * dbu_nm)
                for i in range(count)
            ]
        elif rectype == _ENDEL and in_boundary:
            if current_xy is None or len(current_xy) < 5:
                raise LayoutIOError("BOUNDARY element without a valid XY record")
            try:
                polygons.append(Polygon(current_xy[:-1]))  # drop repeated point
            except Exception as exc:
                raise LayoutIOError(f"unsupported boundary geometry: {exc}") from exc
            in_boundary = False
        elif rectype == _ENDLIB:
            break

    if not polygons:
        raise LayoutIOError(f"{path}: no BOUNDARY elements found")
    layout = Layout(name=name, clip=clip or Rect(0, 0, 1024, 1024))
    layout.extend(polygons)
    return layout
