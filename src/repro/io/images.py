"""Image dumps: NPZ bundles, PGM files, and ASCII renderings.

These are the output paths of the Fig. 5 example bench (target / OPC mask
/ nominal image / PV band); no plotting dependencies are available in the
offline environment, so images are persisted as arrays and portable
greyscale files and optionally rendered to text.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Union

import numpy as np

from ..errors import GridError


def save_npz_images(path: Union[str, Path], images: Dict[str, np.ndarray]) -> None:
    """Save named images into one compressed ``.npz`` bundle."""
    if not images:
        raise GridError("no images to save")
    np.savez_compressed(Path(path), **{k: np.asarray(v) for k, v in images.items()})


def save_pgm(path: Union[str, Path], image: np.ndarray) -> None:
    """Save a 2-D array as a binary PGM (P5) greyscale image.

    Values are min-max scaled to 0-255; the vertical axis is flipped so
    the file displays with y upward, matching the library's convention.
    """
    img = np.asarray(image, dtype=np.float64)
    if img.ndim != 2:
        raise GridError(f"PGM needs a 2-D image, got shape {img.shape}")
    lo, hi = float(img.min()), float(img.max())
    scale = 255.0 / (hi - lo) if hi > lo else 0.0
    data = ((img - lo) * scale).astype(np.uint8)[::-1, :]  # flip for display
    header = f"P5\n{data.shape[1]} {data.shape[0]}\n255\n".encode("ascii")
    Path(path).write_bytes(header + data.tobytes())


def ascii_render(image: np.ndarray, width: int = 64) -> str:
    """Coarse ASCII rendering of an image (for terminal inspection).

    Args:
        image: 2-D array (binary or continuous).
        width: output character columns; rows follow the aspect ratio
            (characters are ~2x taller than wide, compensated here).

    Returns:
        Multi-line string, y rendered upward.
    """
    img = np.asarray(image, dtype=np.float64)
    if img.ndim != 2:
        raise GridError(f"need a 2-D image, got shape {img.shape}")
    rows, cols = img.shape
    width = min(width, cols)
    height = max(int(round(rows / cols * width / 2.0)), 1)
    ry = np.linspace(0, rows - 1, height).astype(int)
    rx = np.linspace(0, cols - 1, width).astype(int)
    sampled = img[np.ix_(ry, rx)]
    lo, hi = float(sampled.min()), float(sampled.max())
    levels = " .:-=+*#%@"
    if hi > lo:
        quantized = ((sampled - lo) / (hi - lo) * (len(levels) - 1)).astype(int)
    else:
        quantized = np.zeros_like(sampled, dtype=int)
    lines = ["".join(levels[v] for v in row) for row in quantized[::-1]]
    return "\n".join(lines)
