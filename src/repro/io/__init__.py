"""Layout and image I/O."""

from .glp import read_glp, write_glp, loads_glp, dumps_glp
from .gds_lite import read_gds, write_gds
from .images import save_npz_images, save_pgm, ascii_render
from .svg import render_svg, save_svg

__all__ = [
    "read_gds",
    "write_gds",
    "render_svg",
    "save_svg",
    "read_glp",
    "write_glp",
    "loads_glp",
    "dumps_glp",
    "save_npz_images",
    "save_pgm",
    "ascii_render",
]
