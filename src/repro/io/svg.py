"""SVG rendering of layouts, masks and printed contours.

The offline environment has no plotting stack; SVG needs none.  The
renderer draws up to four layers into one scalable figure a browser or
vector editor opens directly:

* target polygons (filled),
* optimized mask (filled, distinct colour),
* printed contour (stroked line segments),
* PV band (filled, warning colour).

Coordinates are in nm with y flipped so the figure displays y-upward,
matching the library's convention.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from ..config import GridSpec
from ..errors import GridError
from ..geometry.contours import extract_contour_segments
from ..geometry.layout import Layout
from ..mask.fracture import fracture_mask

#: Default layer colours (fill, opacity).
TARGET_STYLE = ("#2563eb", 0.35)   # blue
MASK_STYLE = ("#16a34a", 0.45)     # green
PVBAND_STYLE = ("#dc2626", 0.6)    # red
CONTOUR_COLOR = "#111827"          # near-black stroke


def _polygon_element(points: Sequence[Tuple[float, float]], height: float,
                     fill: str, opacity: float) -> str:
    path = " ".join(f"{x:.2f},{height - y:.2f}" for x, y in points)
    return f'<polygon points="{path}" fill="{fill}" fill-opacity="{opacity}"/>'


def _rect_element(x0: float, y0: float, x1: float, y1: float, height: float,
                  fill: str, opacity: float) -> str:
    return (
        f'<rect x="{x0:.2f}" y="{height - y1:.2f}" width="{x1 - x0:.2f}" '
        f'height="{y1 - y0:.2f}" fill="{fill}" fill-opacity="{opacity}"/>'
    )


def render_svg(
    clip_nm: Tuple[float, float],
    layout: Optional[Layout] = None,
    mask: Optional[np.ndarray] = None,
    printed: Optional[np.ndarray] = None,
    pv_band: Optional[np.ndarray] = None,
    grid: Optional[GridSpec] = None,
    title: str = "",
) -> str:
    """Compose an SVG document from any subset of the four layers.

    Args:
        clip_nm: (width, height) of the drawing area in nm.
        layout: target polygons (drawn as filled shapes).
        mask: binary mask image (drawn as its fractured rectangles —
            exact and far smaller than per-pixel rects).
        printed: binary printed image (drawn as contour strokes).
        pv_band: boolean PV-band image (filled).
        grid: required when any image layer is given.
        title: optional figure title.

    Returns:
        The SVG document text.
    """
    width, height = clip_nm
    if (mask is not None or printed is not None or pv_band is not None) and grid is None:
        raise GridError("grid is required to render image layers")
    parts: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" viewBox="0 0 {width:g} {height:g}" '
        f'width="640" height="{640 * height / width:.0f}">',
        f'<rect width="{width:g}" height="{height:g}" fill="white"/>',
    ]
    if title:
        parts.append(
            f'<text x="8" y="20" font-family="monospace" font-size="16">{title}</text>'
        )
    if pv_band is not None:
        fill, opacity = PVBAND_STYLE
        for rect in fracture_mask(pv_band.astype(float), grid):
            parts.append(_rect_element(rect.x0, rect.y0, rect.x1, rect.y1, height, fill, opacity))
    if layout is not None:
        fill, opacity = TARGET_STYLE
        for poly in layout.polygons:
            parts.append(_polygon_element(poly.vertices, height, fill, opacity))
    if mask is not None:
        fill, opacity = MASK_STYLE
        for rect in fracture_mask(mask, grid):
            parts.append(_rect_element(rect.x0, rect.y0, rect.x1, rect.y1, height, fill, opacity))
    if printed is not None:
        segments = extract_contour_segments(printed, pixel_nm=grid.pixel_nm)
        lines = [
            f'<line x1="{x0:.2f}" y1="{height - y0:.2f}" x2="{x1:.2f}" '
            f'y2="{height - y1:.2f}"/>'
            for (x0, y0), (x1, y1) in segments
        ]
        parts.append(
            f'<g stroke="{CONTOUR_COLOR}" stroke-width="1.5">' + "".join(lines) + "</g>"
        )
    parts.append("</svg>")
    return "\n".join(parts)


def save_svg(
    path: Union[str, Path],
    clip_nm: Tuple[float, float],
    **layers,
) -> None:
    """Render and write an SVG figure (see :func:`render_svg`)."""
    Path(path).write_text(render_svg(clip_nm, **layers))
