"""Photoresist models (paper Eqs. 3-4, plus Gaussian acid diffusion)."""

from .threshold import ThresholdResist, hard_threshold, sigmoid_threshold
from .diffusion import diffuse

__all__ = ["ThresholdResist", "hard_threshold", "sigmoid_threshold", "diffuse"]
