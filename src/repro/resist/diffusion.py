"""Gaussian acid-diffusion for chemically amplified resists.

Post-exposure bake lets the photo-generated acid diffuse before it
deprotects the resist, blurring the latent image.  The standard compact
model is an isotropic Gaussian applied to the aerial intensity before
thresholding:

    I_eff = G_sigma (*) I ,    Z = step(I_eff - th_r).

The Gaussian is symmetric, so the adjoint needed by the optimizer's
gradient chain is the same filter — :func:`diffuse` serves both
directions.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from ..errors import GridError


def diffuse(intensity: np.ndarray, diffusion_nm: float, pixel_nm: float) -> np.ndarray:
    """Gaussian-blur an intensity image by the diffusion length.

    Args:
        intensity: aerial image (any real 2-D array).
        diffusion_nm: Gaussian sigma in nanometres (0 returns the input
            as float64, unblurred).
        pixel_nm: pixel size of the image grid.

    Returns:
        Diffused image; wrap-around boundary to match the FFT-circular
        convention of the imaging model.
    """
    img = np.asarray(intensity, dtype=np.float64)
    if img.ndim != 2:
        raise GridError(f"intensity must be 2-D, got shape {img.shape}")
    if pixel_nm <= 0:
        raise GridError(f"pixel size must be positive, got {pixel_nm}")
    if diffusion_nm < 0:
        raise GridError(f"diffusion length must be non-negative, got {diffusion_nm}")
    if diffusion_nm == 0:
        return img.astype(np.float64, copy=True)
    sigma_px = diffusion_nm / pixel_nm
    return ndimage.gaussian_filter(img, sigma=sigma_px, mode="wrap")
