"""Constant-threshold resist model.

The printed pattern forms where aerial intensity exceeds the dose-to-clear
threshold th_r (paper Eq. 3).  For gradient-based optimization the step is
approximated by a sigmoid with steepness theta_Z (paper Eq. 4, Fig. 2):

    Z(x, y) = 1 / (1 + exp(-theta_Z * (I(x, y) - th_r)))
"""

from __future__ import annotations

import numpy as np

from ..config import ResistConfig
from ..utils.validation import ensure_image, sigmoid


def hard_threshold(intensity: np.ndarray, resist: ResistConfig) -> np.ndarray:
    """Binary printed image: ``intensity > th_r`` (paper Eq. 3)."""
    return ensure_image(intensity, "intensity") > resist.threshold


def sigmoid_threshold(intensity: np.ndarray, resist: ResistConfig) -> np.ndarray:
    """Differentiable printed image via the paper's sigmoid (Eq. 4)."""
    return sigmoid(ensure_image(intensity, "intensity"), resist.theta_z, resist.threshold)


def sigmoid_threshold_derivative(printed: np.ndarray, resist: ResistConfig) -> np.ndarray:
    """dZ/dI for the sigmoid resist: ``theta_Z * Z * (1 - Z)``.

    Takes the already-computed sigmoid image to avoid recomputing the
    exponential (the paper's gradient expressions reuse Z this way).
    """
    z = np.asarray(printed, dtype=np.float64)
    return resist.theta_z * z * (1.0 - z)


class ThresholdResist:
    """Object-style facade over the threshold model functions.

    When ``config.diffusion_nm`` is set, a Gaussian acid-diffusion blur
    is applied to the aerial image before thresholding (the chemically
    amplified resist extension); ``pixel_nm`` converts the diffusion
    length into pixels.

    Example:
        >>> import numpy as np
        >>> from repro.config import ResistConfig
        >>> model = ThresholdResist(ResistConfig())
        >>> model.develop(np.array([[0.4, 0.6]]))
        array([[False,  True]])
    """

    def __init__(self, config: ResistConfig, pixel_nm: float = 1.0) -> None:
        self.config = config
        self.pixel_nm = pixel_nm

    @property
    def has_diffusion(self) -> bool:
        return self.config.diffusion_nm > 0

    def diffuse(self, intensity: np.ndarray) -> np.ndarray:
        """Acid-diffusion blur (identity when diffusion is disabled).

        The Gaussian is symmetric, so this is also the adjoint the
        gradient chain applies to ``dF/dI_eff``.
        """
        if not self.has_diffusion:
            return np.asarray(intensity, dtype=np.float64)
        from .diffusion import diffuse

        return diffuse(intensity, self.config.diffusion_nm, self.pixel_nm)

    def develop(self, intensity: np.ndarray) -> np.ndarray:
        """Binary printed image (hard threshold after diffusion)."""
        return hard_threshold(self.diffuse(intensity), self.config)

    def develop_soft(self, intensity: np.ndarray) -> np.ndarray:
        """Sigmoid printed image in (0, 1) (after diffusion)."""
        return sigmoid_threshold(self.diffuse(intensity), self.config)

    def soft_derivative(self, printed_soft: np.ndarray) -> np.ndarray:
        """dZ/dI_eff evaluated from a soft printed image."""
        return sigmoid_threshold_derivative(printed_soft, self.config)
