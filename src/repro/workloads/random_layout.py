"""Seeded random M1-style layout generation.

Stress-testing and property-based tests need layouts beyond the ten
fixed clips.  ``random_layout`` places non-overlapping wires (straight,
L-shaped, jogged) and contact squares with spacing guarantees, all from
a seeded RNG so failures reproduce.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .. import constants
from ..errors import GeometryError
from ..geometry.layout import Layout
from ..geometry.rect import Rect
from .generator import isolated_line, jog_line, l_shape


def _bbox_of(shape) -> Rect:
    return shape if isinstance(shape, Rect) else shape.bbox


def random_layout(
    seed: int,
    num_shapes: int = 6,
    clip_nm: float = constants.CLIP_SIZE_NM,
    min_width_nm: float = 60.0,
    max_width_nm: float = 90.0,
    min_spacing_nm: float = 80.0,
    max_attempts: int = 200,
) -> Layout:
    """Generate a random non-overlapping rectilinear clip.

    Args:
        seed: RNG seed (layouts are a pure function of all arguments).
        num_shapes: target shape count; fewer are placed when the clip
            fills up before ``max_attempts`` placements fail.
        clip_nm: square clip side.
        min_width_nm, max_width_nm: wire width range.
        min_spacing_nm: guaranteed bbox-to-bbox spacing between shapes.
        max_attempts: placement attempts before giving up on a shape.

    Returns:
        Layout named ``"rand<seed>"`` with at least one shape.
    """
    if num_shapes < 1:
        raise GeometryError("num_shapes must be >= 1")
    margin = 40.0  # keep clear of the clip border
    if clip_nm < 2 * margin + 400:
        raise GeometryError(
            f"clip of {clip_nm} nm is too small to host generated shapes "
            f"(need >= {2 * margin + 400:.0f} nm)"
        )
    rng = np.random.default_rng(seed)
    layout = Layout(f"rand{seed}", clip=Rect(0, 0, clip_nm, clip_nm))
    placed_boxes: List[Rect] = []

    def fits(candidate) -> bool:
        box = _bbox_of(candidate)
        clip_inner = layout.clip.expanded(-margin)
        if not clip_inner.contains_rect(box):
            return False
        grown = box.expanded(min_spacing_nm)
        return not any(grown.intersects(other) for other in placed_boxes)

    kinds = ("line_h", "line_v", "l", "jog", "square")
    attempts = 0
    while layout.num_shapes < num_shapes and attempts < max_attempts:
        attempts += 1
        width = float(rng.uniform(min_width_nm, max_width_nm))
        x = float(rng.uniform(margin, clip_nm - margin - 200))
        y = float(rng.uniform(margin, clip_nm - margin - 200))
        kind = kinds[int(rng.integers(0, len(kinds)))]
        try:
            if kind == "line_h":
                shape = isolated_line(x, y, width=width, length=float(rng.uniform(250, 550)))
            elif kind == "line_v":
                shape = isolated_line(
                    x, y, width=width, length=float(rng.uniform(250, 550)), vertical=True
                )
            elif kind == "l":
                shape = l_shape(x, y, arm=float(rng.uniform(200, 350)), width=width)
            elif kind == "jog":
                shape = jog_line(
                    x, y,
                    length=float(rng.uniform(320, 550)),
                    width=width,
                    jog_offset=float(rng.uniform(width + 20, 150)),
                    jog_at=float(rng.uniform(0.3, 0.7)),
                )
            else:
                side = float(rng.uniform(80, 120))
                shape = Rect.from_size(x, y, side, side)
        except GeometryError:
            continue
        if fits(shape):
            layout.add(shape)
            placed_boxes.append(_bbox_of(shape))
    if layout.num_shapes == 0:
        raise GeometryError(
            f"could not place any shape in {max_attempts} attempts "
            f"(spacing {min_spacing_nm} nm too strict for clip {clip_nm} nm?)"
        )
    return layout


def random_layout_suite(
    base_seed: int, count: int, num_shapes: int = 6, **kwargs
) -> List[Layout]:
    """A reproducible list of random clips (seeds base_seed..base_seed+count-1)."""
    if count < 1:
        raise GeometryError("count must be >= 1")
    return [
        random_layout(base_seed + i, num_shapes=num_shapes, **kwargs)
        for i in range(count)
    ]
