"""Parametric M1-style pattern primitives.

All generators return shapes (rects or rectilinear polygons) in nanometre
coordinates, ready to add to a :class:`~repro.geometry.layout.Layout`.
Dimensions default to 32 nm-node M1 scale: drawn widths of 60-90 nm,
spaces of 70+ nm, inside a 1024 x 1024 nm clip.
"""

from __future__ import annotations

from typing import List

from ..errors import GeometryError
from ..geometry.polygon import Polygon
from ..geometry.rect import Rect


def line_grating(
    x: float,
    y: float,
    num_lines: int,
    width: float = 60.0,
    pitch: float = 140.0,
    length: float = 600.0,
    vertical: bool = False,
) -> List[Rect]:
    """Array of parallel lines — the canonical dense pattern.

    Args:
        x, y: lower-left corner of the first line.
        num_lines: number of lines.
        width: line width.
        pitch: line-to-line pitch (must exceed width).
        length: line length.
        vertical: lines run vertically when True, horizontally otherwise.
    """
    if pitch <= width:
        raise GeometryError(f"pitch {pitch} must exceed width {width}")
    if num_lines < 1:
        raise GeometryError("need at least one line")
    lines = []
    for i in range(num_lines):
        if vertical:
            lines.append(Rect.from_size(x + i * pitch, y, width, length))
        else:
            lines.append(Rect.from_size(x, y + i * pitch, length, width))
    return lines


def isolated_line(
    x: float, y: float, width: float = 70.0, length: float = 500.0, vertical: bool = False
) -> Rect:
    """A single line with no neighbours (worst case for process window)."""
    if vertical:
        return Rect.from_size(x, y, width, length)
    return Rect.from_size(x, y, length, width)


def l_shape(
    x: float, y: float, arm: float = 300.0, width: float = 70.0
) -> Polygon:
    """L-shaped wire: horizontal arm then vertical arm, both ``arm`` long."""
    if arm <= width:
        raise GeometryError(f"arm {arm} must exceed width {width}")
    return Polygon(
        [
            (x, y),
            (x + arm, y),
            (x + arm, y + arm),
            (x + arm - width, y + arm),
            (x + arm - width, y + width),
            (x, y + width),
        ]
    )


def t_shape(
    x: float, y: float, bar: float = 400.0, stem: float = 260.0, width: float = 70.0
) -> Polygon:
    """T-shaped wire: horizontal bar with a centred stem rising from it."""
    if bar <= width or stem <= 0:
        raise GeometryError("bar must exceed width and stem must be positive")
    cx = x + bar / 2.0
    return Polygon(
        [
            (x, y),
            (x + bar, y),
            (x + bar, y + width),
            (cx + width / 2.0, y + width),
            (cx + width / 2.0, y + width + stem),
            (cx - width / 2.0, y + width + stem),
            (cx - width / 2.0, y + width),
            (x, y + width),
        ]
    )


def u_shape(
    x: float, y: float, span: float = 360.0, height: float = 300.0, width: float = 70.0
) -> Polygon:
    """U-shaped wire: two vertical legs joined by a bottom bar."""
    if span <= 2 * width or height <= width:
        raise GeometryError("span must exceed 2*width and height must exceed width")
    return Polygon(
        [
            (x, y),
            (x + span, y),
            (x + span, y + height),
            (x + span - width, y + height),
            (x + span - width, y + width),
            (x + width, y + width),
            (x + width, y + height),
            (x, y + height),
        ]
    )


def jog_line(
    x: float,
    y: float,
    length: float = 600.0,
    width: float = 70.0,
    jog_offset: float = 100.0,
    jog_at: float = 0.5,
) -> Polygon:
    """Horizontal line with a vertical jog partway along (hard to print).

    Args:
        x, y: lower-left of the first segment.
        length: total horizontal extent.
        width: wire width.
        jog_offset: vertical displacement of the second segment.
        jog_at: fractional position of the jog along the length.
    """
    if not 0.1 <= jog_at <= 0.9:
        raise GeometryError("jog_at must be in [0.1, 0.9]")
    if jog_offset <= 0:
        raise GeometryError("jog_offset must be positive (use the mirror for down-jogs)")
    xj = x + length * jog_at
    return Polygon(
        [
            (x, y),
            (xj + width, y),
            (xj + width, y + jog_offset),
            (x + length, y + jog_offset),
            (x + length, y + jog_offset + width),
            (xj, y + jog_offset + width),
            (xj, y + width),
            (x, y + width),
        ]
    )


def contact_array(
    x: float,
    y: float,
    nx: int,
    ny: int,
    size: float = 80.0,
    pitch: float = 180.0,
) -> List[Rect]:
    """Grid of square contact-like features."""
    if nx < 1 or ny < 1:
        raise GeometryError("need at least a 1x1 array")
    if pitch <= size:
        raise GeometryError(f"pitch {pitch} must exceed size {size}")
    return [
        Rect.from_size(x + i * pitch, y + j * pitch, size, size)
        for i in range(nx)
        for j in range(ny)
    ]


def tip_to_tip(
    x: float,
    y: float,
    gap: float = 90.0,
    width: float = 70.0,
    length: float = 300.0,
) -> List[Rect]:
    """Two collinear lines facing each other across a small gap.

    The tip-to-tip (T2T) configuration is the classic line-end failure
    mode: diffraction pulls both line ends back, widening the printed
    gap far beyond drawn — the pattern OPC line-end treatment exists
    for.

    Args:
        x, y: lower-left of the left line.
        gap: drawn end-to-end space.
        width: line width.
        length: each line's length.
    """
    if gap <= 0:
        raise GeometryError("gap must be positive")
    left = Rect.from_size(x, y, length, width)
    right = Rect.from_size(x + length + gap, y, length, width)
    return [left, right]


def dense_via_field(
    x: float,
    y: float,
    nx: int,
    ny: int,
    size: float = 70.0,
    pitch: float = 140.0,
) -> List[Rect]:
    """Tightly pitched square array (denser than :func:`contact_array`).

    At pitches near the resolution limit the squares interact strongly;
    good for stressing the PV-band term.
    """
    if pitch <= size:
        raise GeometryError(f"pitch {pitch} must exceed size {size}")
    if nx < 2 or ny < 2:
        raise GeometryError("a dense field needs at least 2x2 sites")
    return [
        Rect.from_size(x + i * pitch, y + j * pitch, size, size)
        for i in range(nx)
        for j in range(ny)
    ]


def comb_structure(
    x: float,
    y: float,
    num_fingers: int = 4,
    finger_length: float = 300.0,
    finger_width: float = 70.0,
    finger_pitch: float = 160.0,
    spine_width: float = 80.0,
) -> Polygon:
    """Comb: a vertical spine with horizontal fingers (line-end rich)."""
    if num_fingers < 2:
        raise GeometryError("a comb needs at least two fingers")
    if finger_pitch <= finger_width:
        raise GeometryError("finger pitch must exceed finger width")
    # Trace the outline counter-clockwise starting at the spine's lower left.
    height = (num_fingers - 1) * finger_pitch + finger_width
    pts = [(x, y), (x + spine_width, y)]
    for i in range(num_fingers):
        fy = y + i * finger_pitch
        pts.extend(
            [
                (x + spine_width, fy),
                (x + spine_width + finger_length, fy),
                (x + spine_width + finger_length, fy + finger_width),
                (x + spine_width, fy + finger_width),
            ]
        )
    pts.extend([(x + spine_width, y + height), (x, y + height)])
    return Polygon(pts)


def synthetic_canvas(
    width_nm: float,
    height_nm: float,
    seed: int = 0,
    cell_nm: float = 1024.0,
    margin_nm: float = 112.0,
    name: "str | None" = None,
):
    """Large synthetic canvas: one primitive per cell of a regular grid.

    The full-chip engine needs layouts bigger than the single 1024 nm
    contest clip.  This tiles the canvas into ``cell_nm`` cells and
    drops a seeded choice of the M1 primitives into each, keeping a
    ``margin_nm`` guard band so neighbouring cells never merge.  The
    result is a pure function of the arguments — the same canvas spec
    always produces the same layout.

    Args:
        width_nm, height_nm: canvas extent; must fit at least one cell.
        seed: RNG seed for the per-cell primitive choice.
        cell_nm: cell pitch (primitives are scaled for >= 1024 nm cells).
        margin_nm: guard band inside each cell.
        name: layout name (default ``synth<W>x<H>s<seed>``).

    Returns:
        :class:`~repro.geometry.layout.Layout` with clip
        ``Rect(0, 0, width_nm, height_nm)``.
    """
    from ..geometry.layout import Layout  # local: keep generator import-light

    import numpy as np

    if cell_nm < 1024.0:
        raise GeometryError(f"cells must be >= 1024 nm, got {cell_nm}")
    if width_nm < cell_nm or height_nm < cell_nm:
        raise GeometryError(
            f"canvas {width_nm}x{height_nm} nm must fit one {cell_nm} nm cell"
        )
    if not 0 < margin_nm < cell_nm / 4:
        raise GeometryError(f"margin {margin_nm} must be in (0, {cell_nm / 4})")
    rng = np.random.default_rng(seed)
    if name is None:
        name = f"synth{width_nm:g}x{height_nm:g}s{seed}"
    layout = Layout(name, clip=Rect(0, 0, width_nm, height_nm))

    def place(kind: int, x: float, y: float) -> None:
        if kind == 0:
            for shape in line_grating(x, y, num_lines=3, length=600.0):
                layout.add(shape)
        elif kind == 1:
            for shape in line_grating(x, y, num_lines=3, length=600.0, vertical=True):
                layout.add(shape)
        elif kind == 2:
            layout.add(l_shape(x, y))
        elif kind == 3:
            layout.add(t_shape(x, y))
        elif kind == 4:
            layout.add(u_shape(x, y))
        elif kind == 5:
            layout.add(jog_line(x, y))
        elif kind == 6:
            for shape in contact_array(x, y, nx=3, ny=3):
                layout.add(shape)
        elif kind == 7:
            for shape in tip_to_tip(x, y):
                layout.add(shape)
        else:
            layout.add(comb_structure(x, y))

    num_cols = int(width_nm // cell_nm)
    num_rows = int(height_nm // cell_nm)
    for row in range(num_rows):
        for col in range(num_cols):
            kind = int(rng.integers(0, 9))
            # Jitter inside the guard band so seams don't align with
            # geometry-free gutters — keeps tile seam checks honest.
            jx = float(rng.uniform(0.0, margin_nm / 2))
            jy = float(rng.uniform(0.0, margin_nm / 2))
            place(kind, col * cell_nm + margin_nm + jx, row * cell_nm + margin_nm + jy)
    return layout
