"""Synthetic stand-ins for the ten IBM ICCAD-2013 contest clips.

The real benchmarks are 1024 x 1024 nm clips of 32 nm M1 layout,
"representing the most challenging shapes to print".  These ten
deterministic clips span the same difficulty axes:

* isolated vs dense features (process-window stress),
* jogs, T/U/L bends and line ends (EPE stress),
* contact-like squares (corner rounding),
* mixed-density composites (SRAF placement interactions),

with pattern areas growing from B1 (one isolated line) to B10 (a dense
composite), mirroring the area spread of Table 2 in the paper.
"""

from __future__ import annotations

from typing import Dict, List

from ..errors import GeometryError
from ..geometry.layout import Layout
from .generator import (
    comb_structure,
    contact_array,
    isolated_line,
    jog_line,
    l_shape,
    line_grating,
    t_shape,
    u_shape,
)

BENCHMARK_NAMES = tuple(f"B{i}" for i in range(1, 11))


def _b1() -> Layout:
    """Single isolated horizontal line — baseline printability."""
    layout = Layout("B1")
    layout.add(isolated_line(260, 480, width=72, length=500))
    return layout


def _b2() -> Layout:
    """Two isolated lines of different widths, perpendicular orientations."""
    layout = Layout("B2")
    layout.add(isolated_line(150, 320, width=64, length=540))
    layout.add(isolated_line(620, 480, width=88, length=420, vertical=True))
    return layout


def _b3() -> Layout:
    """Dense five-line grating — pitch-limited imaging."""
    layout = Layout("B3")
    layout.extend(line_grating(210, 230, num_lines=5, width=60, pitch=140, length=600))
    return layout


def _b4() -> Layout:
    """T-shape against a neighbouring bar (the paper's Fig. 5 upper row)."""
    layout = Layout("B4")
    layout.add(t_shape(240, 260, bar=440, stem=300, width=76))
    layout.add(isolated_line(240, 680, width=64, length=440))
    return layout


def _b5() -> Layout:
    """U-shape with an enclosed bar — enclosed spaces stress the band."""
    layout = Layout("B5")
    layout.add(u_shape(260, 220, span=420, height=380, width=80))
    layout.add(isolated_line(380, 420, width=60, length=180))
    layout.add(isolated_line(260, 700, width=64, length=420))
    return layout


def _b6() -> Layout:
    """Jogged wires (the paper's Fig. 5 lower row) — jog corners are the
    classic EPE hotspot."""
    layout = Layout("B6")
    layout.add(jog_line(160, 240, length=660, width=72, jog_offset=120, jog_at=0.45))
    layout.add(jog_line(160, 560, length=660, width=72, jog_offset=140, jog_at=0.6))
    return layout


def _b7() -> Layout:
    """Contact-like square array — isolated 2-D features."""
    layout = Layout("B7")
    layout.extend(contact_array(220, 220, nx=3, ny=3, size=90, pitch=240))
    return layout


def _b8() -> Layout:
    """Comb structure — many line ends at fixed pitch."""
    layout = Layout("B8")
    layout.add(
        comb_structure(
            220, 220, num_fingers=4, finger_length=380, finger_width=70,
            finger_pitch=170, spine_width=90,
        )
    )
    return layout


def _b9() -> Layout:
    """Mixed density: dense grating beside isolated bends."""
    layout = Layout("B9")
    layout.extend(line_grating(140, 160, num_lines=4, width=60, pitch=130, length=380))
    layout.add(l_shape(620, 160, arm=300, width=72))
    layout.add(isolated_line(140, 760, width=70, length=520))
    return layout


def _b10() -> Layout:
    """Large composite — the highest pattern area and shape count."""
    layout = Layout("B10")
    layout.extend(line_grating(120, 130, num_lines=4, width=64, pitch=150, length=420))
    layout.add(t_shape(590, 120, bar=340, stem=220, width=70))
    layout.add(u_shape(590, 520, span=340, height=300, width=70))
    layout.add(jog_line(120, 740, length=420, width=66, jog_offset=110, jog_at=0.5))
    return layout


_BUILDERS = {
    "B1": _b1,
    "B2": _b2,
    "B3": _b3,
    "B4": _b4,
    "B5": _b5,
    "B6": _b6,
    "B7": _b7,
    "B8": _b8,
    "B9": _b9,
    "B10": _b10,
}


def load_benchmark(name: str) -> Layout:
    """Build one benchmark clip by name (``"B1"`` ... ``"B10"``)."""
    try:
        return _BUILDERS[name]()
    except KeyError:
        raise GeometryError(
            f"unknown benchmark {name!r}; choose from {', '.join(BENCHMARK_NAMES)}"
        ) from None


def load_all_benchmarks() -> Dict[str, Layout]:
    """All ten clips, keyed by name, in contest order."""
    return {name: load_benchmark(name) for name in BENCHMARK_NAMES}
