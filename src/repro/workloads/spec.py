"""Workload spec parsing shared by the CLI and the job service.

A *workload spec* is the string users hand to ``repro solve`` /
``repro fullchip`` / ``POST /v1/jobs`` to name a layout:

* a bundled benchmark name (``B1`` .. ``B10``),
* ``synth:<W>x<H>[:seed]`` — a synthetic canvas with dimensions in nm
  (e.g. ``synth:2048x2048:7``), or
* a path to a ``.glp`` layout file (CLI only; the service rejects
  host-dependent paths).

Both front ends validate through the same functions so a malformed
spec fails eagerly at submission time (CLI usage error / HTTP 400)
instead of crashing a worker mid-run.
"""

from __future__ import annotations

from pathlib import Path
from typing import Tuple

from ..errors import ReproError
from .iccad2013 import BENCHMARK_NAMES, load_benchmark

__all__ = [
    "SYNTH_PREFIX",
    "parse_synth_spec",
    "validate_workload_spec",
    "load_workload",
]

SYNTH_PREFIX = "synth:"


def parse_synth_spec(spec: str) -> Tuple[float, float, int]:
    """Parse ``synth:<W>x<H>[:seed]`` into ``(width_nm, height_nm, seed)``.

    Raises :class:`~repro.errors.ReproError` on any malformed spec —
    wrong field count, non-numeric dimensions, non-positive sizes, or a
    non-integer seed.
    """
    if not spec.startswith(SYNTH_PREFIX):
        raise ReproError(f"not a synth spec: {spec!r}")
    parts = spec.split(":")
    if len(parts) not in (2, 3):
        raise ReproError(f"bad synth spec {spec!r}; expected synth:<W>x<H>[:seed]")
    dims = parts[1].lower().split("x")
    if len(dims) != 2:
        raise ReproError(f"bad synth dimensions {parts[1]!r}; expected <W>x<H> in nm")
    try:
        width, height = float(dims[0]), float(dims[1])
        seed = int(parts[2]) if len(parts) == 3 else 0
    except ValueError as exc:
        raise ReproError(f"bad synth spec {spec!r}: {exc}") from exc
    if not (width > 0 and height > 0):
        raise ReproError(
            f"bad synth dimensions {parts[1]!r}; width and height must be > 0"
        )
    return width, height, seed


def validate_workload_spec(spec: str, allow_paths: bool = True) -> str:
    """Check that ``spec`` names a loadable workload, without loading it.

    Returns the spec's kind: ``"benchmark"``, ``"synth"``, or
    ``"path"``.  Raises :class:`~repro.errors.ReproError` for anything
    unloadable, including path specs when ``allow_paths`` is false
    (the service refuses server-side file paths).
    """
    if not isinstance(spec, str) or not spec:
        raise ReproError(f"workload spec must be a non-empty string, got {spec!r}")
    if spec in BENCHMARK_NAMES:
        return "benchmark"
    if spec.startswith(SYNTH_PREFIX):
        parse_synth_spec(spec)
        return "synth"
    if not allow_paths:
        raise ReproError(
            f"{spec!r} is neither a bundled benchmark "
            f"({', '.join(BENCHMARK_NAMES)}) nor a synth:<W>x<H>[:seed] spec "
            "(file paths are not accepted here)"
        )
    path = Path(spec)
    if path.suffix == ".glp" or path.exists():
        return "path"
    raise ReproError(
        f"{spec!r} is neither a bundled benchmark ({', '.join(BENCHMARK_NAMES)}), "
        "a synth:<W>x<H>[:seed] spec, nor a readable .glp file"
    )


def load_workload(spec: str, allow_paths: bool = True):
    """Resolve a workload spec to a :class:`~repro.geometry.layout.Layout`."""
    kind = validate_workload_spec(spec, allow_paths=allow_paths)
    if kind == "benchmark":
        return load_benchmark(spec)
    if kind == "synth":
        from .generator import synthetic_canvas

        width, height, seed = parse_synth_spec(spec)
        return synthetic_canvas(width, height, seed=seed)
    from ..io.glp import read_glp

    return read_glp(Path(spec))
