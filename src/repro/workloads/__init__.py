"""Benchmark layout generation.

``generator`` provides parametric M1-style pattern primitives;
``iccad2013`` composes them into the ten deterministic clips B1-B10 that
stand in for the IBM contest testcases (see DESIGN.md §3).
"""

from .generator import (
    comb_structure,
    contact_array,
    dense_via_field,
    isolated_line,
    jog_line,
    l_shape,
    line_grating,
    synthetic_canvas,
    t_shape,
    tip_to_tip,
    u_shape,
)
from .iccad2013 import BENCHMARK_NAMES, load_benchmark, load_all_benchmarks
from .random_layout import random_layout, random_layout_suite
from .spec import (
    SYNTH_PREFIX,
    load_workload,
    parse_synth_spec,
    validate_workload_spec,
)

__all__ = [
    "random_layout",
    "random_layout_suite",
    "tip_to_tip",
    "dense_via_field",
    "line_grating",
    "isolated_line",
    "l_shape",
    "t_shape",
    "u_shape",
    "jog_line",
    "contact_array",
    "comb_structure",
    "synthetic_canvas",
    "BENCHMARK_NAMES",
    "load_benchmark",
    "load_all_benchmarks",
    "SYNTH_PREFIX",
    "parse_synth_spec",
    "validate_workload_spec",
    "load_workload",
]
