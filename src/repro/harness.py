"""Batch experiment harness: solvers x layouts -> aggregated results.

The benchmark files each regenerate one paper table; this harness is
the generic engine behind ad-hoc studies: run any set of solvers over
any set of layouts, collect the scores into a matrix, format it as a
text table, and export CSV for spreadsheet analysis.
"""

from __future__ import annotations

import csv
import logging
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from .errors import ReproError
from .geometry.layout import Layout
from .metrics.score import ScoreBreakdown
from .obs import Instrumentation

logger = logging.getLogger(__name__)

#: A solver factory: () -> object with .solve(layout) -> MosaicResult.
SolverFactory = Callable[[], object]


@dataclass
class ExperimentResult:
    """Scores for every (solver, layout) cell of one batch run."""

    solver_labels: List[str]
    layout_names: List[str]
    scores: Dict[Tuple[str, str], ScoreBreakdown] = field(default_factory=dict)
    runtimes: Dict[Tuple[str, str], float] = field(default_factory=dict)

    def score(self, solver: str, layout: str) -> ScoreBreakdown:
        return self.scores[(solver, layout)]

    def totals(self) -> Dict[str, float]:
        """Summed contest score per solver (lower is better)."""
        return {
            label: sum(self.scores[(label, name)].total for name in self.layout_names)
            for label in self.solver_labels
        }

    def ranking(self) -> List[str]:
        """Solver labels sorted best (lowest total) first."""
        totals = self.totals()
        return sorted(self.solver_labels, key=lambda label: totals[label])

    def format_table(self) -> str:
        """Fixed-width text table, one row per layout plus a ratio row."""
        header = f"{'case':8s}" + "".join(
            f"{label:>24s}" for label in self.solver_labels
        )
        sub = f"{'':8s}" + f"{'#EPE   PVB      score':>24s}" * len(self.solver_labels)
        rows = [header, sub]
        for name in self.layout_names:
            row = f"{name:8s}"
            for label in self.solver_labels:
                s = self.scores[(label, name)]
                row += f"{s.epe_violations:7d}{s.pv_band_nm2:7.0f}{s.total:10.0f}"
            rows.append(row)
        totals = self.totals()
        best = min(totals.values())
        rows.append(
            f"{'ratio':8s}"
            + "".join(f"{totals[label] / best:>24.3f}" for label in self.solver_labels)
        )
        return "\n".join(rows)

    def to_csv(self, path: Union[str, Path]) -> None:
        """One CSV row per (solver, layout) cell with all components."""
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(
                ["solver", "layout", "epe_violations", "pv_band_nm2",
                 "shape_violations", "runtime_s", "score"]
            )
            for label in self.solver_labels:
                for name in self.layout_names:
                    s = self.scores[(label, name)]
                    writer.writerow(
                        [label, name, s.epe_violations, s.pv_band_nm2,
                         s.shape_violations, f"{s.runtime_s:.3f}", f"{s.total:.1f}"]
                    )


def run_experiment(
    solvers: Sequence[Tuple[str, SolverFactory]],
    layouts: Sequence[Layout],
    progress: Callable[[str], None] = lambda msg: None,
    obs: Optional[Instrumentation] = None,
) -> ExperimentResult:
    """Run every solver on every layout.

    Args:
        solvers: (label, factory) pairs; a fresh solver is built per cell
            so per-run state never leaks (share a simulator through the
            factory closure to reuse kernel caches).
        layouts: the layouts to solve.
        progress: optional callback receiving one message per cell.
        obs: optional instrumentation; records one ``experiment`` span
            with a child span per (solver, layout) cell, a
            ``harness_cells_total`` counter, and a ``cell`` event per
            solved cell.

    Returns:
        The filled result matrix.
    """
    if not solvers:
        raise ReproError("run_experiment needs at least one solver")
    if not layouts:
        raise ReproError("run_experiment needs at least one layout")
    labels = [label for label, _ in solvers]
    if len(set(labels)) != len(labels):
        raise ReproError(f"duplicate solver labels: {labels}")
    obs = obs or Instrumentation.disabled()
    result = ExperimentResult(
        solver_labels=labels,
        layout_names=[layout.name for layout in layouts],
    )
    cells = obs.metrics.counter("harness_cells_total")
    with obs.tracer.span("experiment"):
        for layout in layouts:
            for label, factory in solvers:
                progress(f"{label} on {layout.name}")
                logger.info("solving %s with %s", layout.name, label)
                with obs.tracer.span(f"cell:{label}:{layout.name}"):
                    solved = factory().solve(layout)
                cells.inc()
                result.scores[(label, layout.name)] = solved.score
                result.runtimes[(label, layout.name)] = solved.runtime_s
                obs.events.emit(
                    "cell",
                    solver=label,
                    layout=layout.name,
                    score=solved.score.total,
                    epe_violations=solved.score.epe_violations,
                    pv_band_nm2=solved.score.pv_band_nm2,
                    runtime_s=solved.runtime_s,
                )
    return result
