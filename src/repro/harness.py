"""Batch experiment harness: solvers x layouts -> aggregated results.

The benchmark files each regenerate one paper table; this harness is
the generic engine behind ad-hoc studies: run any set of solvers over
any set of layouts, collect the scores into a matrix, format it as a
text table, and export CSV for spreadsheet analysis.

The harness isolates faults per cell: a solver that raises (or stalls
past its wall-clock budget) on one (solver, layout) cell no longer kills
the batch.  Each cell records a :class:`CellStatus` — ``ok``, ``failed``,
``timeout``, or ``recovered`` (succeeded after a retry) — and the result
matrix renders partial results: missing cells show as ``--`` in the
table, are skipped by :meth:`ExperimentResult.totals`, and exclude their
solver from the ratio row rather than raising ``KeyError``.
"""

from __future__ import annotations

import logging
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from .errors import CellTimeoutError, HarnessError
from .geometry.layout import Layout
from .metrics.score import ScoreBreakdown
from .obs import Instrumentation
from .tables import ColumnSpec, TextTable, write_csv_rows

logger = logging.getLogger(__name__)

#: A solver factory: () -> object with .solve(layout) -> MosaicResult.
SolverFactory = Callable[[], object]


@dataclass(frozen=True)
class CellStatus:
    """Execution record of one (solver, layout) cell.

    Attributes:
        status: ``"ok"`` (clean first attempt), ``"recovered"``
            (succeeded after >= 1 retry), ``"failed"`` (all attempts
            raised), or ``"timeout"`` (last attempt exceeded the
            wall-clock budget).
        attempts: solve attempts executed (1 = no retry needed).
        runtime_s: wall-clock spent on the cell across all attempts.
        error: message of the last failure (None for clean cells).
    """

    status: str
    attempts: int = 1
    runtime_s: float = 0.0
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        """True when the cell produced a score."""
        return self.status in ("ok", "recovered")


@dataclass
class ExperimentResult:
    """Scores for every (solver, layout) cell of one batch run.

    ``scores``/``runtimes`` only contain completed cells; ``statuses``
    covers every attempted cell, so a failed cell is visible without
    being confusable with a score.
    """

    solver_labels: List[str]
    layout_names: List[str]
    scores: Dict[Tuple[str, str], ScoreBreakdown] = field(default_factory=dict)
    runtimes: Dict[Tuple[str, str], float] = field(default_factory=dict)
    statuses: Dict[Tuple[str, str], CellStatus] = field(default_factory=dict)

    def score(self, solver: str, layout: str) -> ScoreBreakdown:
        return self.scores[(solver, layout)]

    def has_cell(self, solver: str, layout: str) -> bool:
        """True when the cell completed and carries a score."""
        return (solver, layout) in self.scores

    def is_complete(self, solver: str) -> bool:
        """True when every layout produced a score for this solver."""
        return all(self.has_cell(solver, name) for name in self.layout_names)

    def failed_cells(self) -> List[Tuple[str, str]]:
        """(solver, layout) keys that did not produce a score."""
        return [
            (label, name)
            for label in self.solver_labels
            for name in self.layout_names
            if not self.has_cell(label, name)
        ]

    def totals(self) -> Dict[str, float]:
        """Summed contest score per solver over its *completed* cells.

        Solvers with missing cells sum only what completed; compare
        totals across solvers only via :meth:`ranking`/:meth:`format_table`,
        which restrict the ratio comparison to complete solvers.
        """
        return {
            label: sum(
                self.scores[(label, name)].total
                for name in self.layout_names
                if self.has_cell(label, name)
            )
            for label in self.solver_labels
        }

    def ranking(self) -> List[str]:
        """Solver labels sorted best (lowest total) first.

        Solvers with missing cells sort after every complete solver
        (their partial totals are not comparable).
        """
        totals = self.totals()
        return sorted(
            self.solver_labels,
            key=lambda label: (not self.is_complete(label), totals[label]),
        )

    def format_table(self) -> str:
        """Fixed-width text table, one row per layout plus a ratio row.

        Missing cells render as ``--``; the ratio row compares only
        solvers whose every cell completed (incomplete solvers show
        ``--`` there too).
        """
        table = TextTable(
            [ColumnSpec("case", 8, "<")]
            + [ColumnSpec(label, 24) for label in self.solver_labels],
            separator="",
        )
        table.add_row([""] + ["#EPE   PVB      score"] * len(self.solver_labels))
        for name in self.layout_names:
            cells: List[Optional[str]] = [name]
            for label in self.solver_labels:
                if self.has_cell(label, name):
                    s = self.scores[(label, name)]
                    cells.append(
                        f"{s.epe_violations:7d}{s.pv_band_nm2:7.0f}{s.total:10.0f}"
                    )
                else:
                    cells.append(None)
            table.add_row(cells)
        totals = self.totals()
        complete = [label for label in self.solver_labels if self.is_complete(label)]
        best = min((totals[label] for label in complete), default=None)
        table.add_row(
            ["ratio"]
            + [
                f"{totals[label] / best:.3f}" if label in complete and best else None
                for label in self.solver_labels
            ]
        )
        return table.render()

    def to_csv(self, path: Union[str, Path]) -> None:
        """One CSV row per (solver, layout) cell with all components.

        Failed/timeout cells are exported too, with empty score fields
        and their status/error, so a batch's fault history survives in
        the same artifact as its results.
        """
        rows: List[List[object]] = []
        for label in self.solver_labels:
            for name in self.layout_names:
                status = self.statuses.get((label, name), CellStatus(status="ok"))
                if self.has_cell(label, name):
                    s = self.scores[(label, name)]
                    rows.append(
                        [label, name, status.status, s.epe_violations,
                         s.pv_band_nm2, s.shape_violations,
                         f"{s.runtime_s:.3f}", f"{s.total:.1f}", ""]
                    )
                else:
                    rows.append(
                        [label, name, status.status, "", "", "",
                         f"{status.runtime_s:.3f}", "", status.error or ""]
                    )
        write_csv_rows(
            path,
            ["solver", "layout", "status", "epe_violations", "pv_band_nm2",
             "shape_violations", "runtime_s", "score", "error"],
            rows,
        )


def call_with_budget(fn: Callable[[], object], timeout_s: Optional[float]) -> object:
    """Run ``fn``, enforcing a wall-clock budget when one is given.

    With a budget the call runs on a daemon worker thread and the caller
    waits at most ``timeout_s``; on expiry a :class:`CellTimeoutError`
    is raised and the worker is abandoned (it cannot be preempted — the
    budget bounds the *batch's* progress, not the worker's CPU).
    """
    if timeout_s is None:
        return fn()
    outcome: Dict[str, object] = {}
    done = threading.Event()

    def worker() -> None:
        try:
            outcome["value"] = fn()
        except BaseException as exc:  # noqa: BLE001 - relayed to the caller
            outcome["error"] = exc
        finally:
            done.set()

    thread = threading.Thread(target=worker, daemon=True, name="harness-cell")
    thread.start()
    if not done.wait(timeout_s):
        raise CellTimeoutError(
            f"cell exceeded its wall-clock budget of {timeout_s:g} s"
        )
    if "error" in outcome:
        raise outcome["error"]  # type: ignore[misc]
    return outcome["value"]


#: Backwards-compatible alias — the budget runner predates its public name.
_call_with_budget = call_with_budget


def run_experiment(
    solvers: Sequence[Tuple[str, SolverFactory]],
    layouts: Sequence[Layout],
    progress: Callable[[str], None] = lambda msg: None,
    obs: Optional[Instrumentation] = None,
    keep_going: bool = False,
    max_retries: int = 0,
    cell_timeout_s: Optional[float] = None,
) -> ExperimentResult:
    """Run every solver on every layout.

    Args:
        solvers: (label, factory) pairs; a fresh solver is built per cell
            so per-run state never leaks (share a simulator through the
            factory closure to reuse kernel caches).
        layouts: the layouts to solve.
        progress: optional callback receiving one message per cell.
        obs: optional instrumentation; records one ``experiment`` span
            with a child span per (solver, layout) cell, a
            ``harness_cells_total`` counter, and a ``cell`` event per
            solved cell (plus ``cell_failed`` / ``cell_retry`` events and
            ``harness_cells_failed`` / ``harness_cell_retries`` /
            ``harness_cell_timeouts`` counters on the fault paths).
        keep_going: when True a cell whose every attempt fails is
            recorded in ``statuses`` and the batch continues; when False
            (the default, the legacy contract) the last error re-raises
            after being recorded.
        max_retries: extra solve attempts per cell after the first
            failure (fresh solver per attempt).
        cell_timeout_s: optional wall-clock budget per attempt; an
            attempt past the budget counts as a failure with status
            ``timeout``.

    Returns:
        The result matrix — complete, or partial when ``keep_going``
        tolerated failed cells.
    """
    if not solvers:
        raise HarnessError("run_experiment needs at least one solver")
    if not layouts:
        raise HarnessError("run_experiment needs at least one layout")
    if max_retries < 0:
        raise HarnessError(f"max_retries must be >= 0, got {max_retries}")
    if cell_timeout_s is not None and cell_timeout_s <= 0:
        raise HarnessError(f"cell_timeout_s must be positive, got {cell_timeout_s}")
    labels = [label for label, _ in solvers]
    if len(set(labels)) != len(labels):
        raise HarnessError(f"duplicate solver labels: {labels}")
    obs = obs or Instrumentation.disabled()
    result = ExperimentResult(
        solver_labels=labels,
        layout_names=[layout.name for layout in layouts],
    )
    cells = obs.metrics.counter("harness_cells_total")
    # Register the fault-path counters up front so a metrics dump always
    # carries them, even for an all-clean batch.
    failed_cells = obs.metrics.counter("harness_cells_failed")
    retried_cells = obs.metrics.counter("harness_cell_retries")
    timeout_cells = obs.metrics.counter("harness_cell_timeouts")
    obs.events.emit(
        "experiment_start",
        solvers=labels,
        layouts=[layout.name for layout in layouts],
        keep_going=keep_going,
        max_retries=max_retries,
        cell_timeout_s=cell_timeout_s,
    )
    with obs.tracer.span("experiment"):
        for layout in layouts:
            for label, factory in solvers:
                progress(f"{label} on {layout.name}")
                logger.info("solving %s with %s", layout.name, label)
                # Liveness pulse for bundles wired with a heartbeat
                # writer (no-op on the default null twin): a batch run
                # reports which cell it is on, like tile workers do.
                obs.heartbeat.beat(phase=f"{label}:{layout.name}", force=True)
                cell_start = time.perf_counter()
                solved = None
                last_error: Optional[BaseException] = None
                attempts = 0
                for attempt in range(max_retries + 1):
                    attempts = attempt + 1
                    if attempt > 0:
                        retried_cells.inc()
                        obs.events.emit(
                            "cell_retry",
                            solver=label,
                            layout=layout.name,
                            attempt=attempts,
                        )
                        logger.warning(
                            "retrying %s on %s (attempt %d/%d)",
                            label, layout.name, attempts, max_retries + 1,
                        )
                    try:
                        with obs.tracer.span(f"cell:{label}:{layout.name}"):
                            solved = call_with_budget(
                                lambda: factory().solve(layout), cell_timeout_s
                            )
                        last_error = None
                        break
                    except KeyboardInterrupt:
                        raise
                    except Exception as exc:  # noqa: BLE001 - isolation boundary
                        last_error = exc
                        logger.warning(
                            "cell %s on %s failed (attempt %d): %s",
                            label, layout.name, attempts, exc,
                        )
                cell_runtime = time.perf_counter() - cell_start
                cells.inc()
                key = (label, layout.name)
                if solved is not None:
                    result.scores[key] = solved.score
                    result.runtimes[key] = solved.runtime_s
                    result.statuses[key] = CellStatus(
                        status="ok" if attempts == 1 else "recovered",
                        attempts=attempts,
                        runtime_s=cell_runtime,
                    )
                    obs.events.emit(
                        "cell",
                        solver=label,
                        layout=layout.name,
                        score=solved.score.total,
                        epe_violations=solved.score.epe_violations,
                        pv_band_nm2=solved.score.pv_band_nm2,
                        runtime_s=solved.runtime_s,
                        attempts=attempts,
                    )
                    continue
                timed_out = isinstance(last_error, CellTimeoutError)
                status = "timeout" if timed_out else "failed"
                result.statuses[key] = CellStatus(
                    status=status,
                    attempts=attempts,
                    runtime_s=cell_runtime,
                    error=f"{type(last_error).__name__}: {last_error}",
                )
                failed_cells.inc()
                if timed_out:
                    timeout_cells.inc()
                obs.events.emit(
                    "cell_failed",
                    solver=label,
                    layout=layout.name,
                    status=status,
                    attempts=attempts,
                    error=str(last_error),
                )
                logger.error(
                    "cell %s on %s %s after %d attempt(s): %s",
                    label, layout.name, status, attempts, last_error,
                )
                if not keep_going:
                    raise last_error
    obs.events.emit(
        "experiment_end",
        cells=len(result.statuses),
        failed=len(result.failed_cells()),
    )
    return result
