"""Single source of truth for the package version.

Kept in its own module so dependency-light entry points (CLI
``--version``, the service ``/healthz`` endpoint, run manifests) can
read it without importing the full ``repro`` package surface.
"""

__version__ = "1.1.0"
