"""Full verification report for an OPC result.

Aggregates every analysis the library offers — contest score, EPE
statistics, per-corner printing, CD gauges, mask rules, write cost,
process window — into one structured object with a formatted text
rendering.  This is the artifact a tapeout review would look at.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from .geometry.layout import Layout
from .litho.simulator import LithographySimulator
from .metrics.cd import CDMeasurement, gauges_for_layout, measure_gauges
from .metrics.complexity import MaskComplexity, mask_complexity
from .metrics.epe import EPEReport, measure_epe
from .metrics.mrc import MRCReport, check_mask_rules
from .metrics.score import ScoreBreakdown, contest_score
from .process.window_analysis import ProcessWindowMap, sweep_process_window


@dataclass
class VerificationReport:
    """Everything known about one optimized mask."""

    layout_name: str
    score: ScoreBreakdown
    epe: EPEReport
    cd: List[CDMeasurement]
    mrc: MRCReport
    complexity: MaskComplexity
    window: Optional[ProcessWindowMap]
    #: Rendered per-phase span breakdown (``Tracer.report()``), when traced.
    trace_report: Optional[str] = None
    #: Rendered metrics summary (``MetricsRegistry.summary()``), when collected.
    metrics_summary: Optional[str] = None

    @property
    def clean(self) -> bool:
        """True when nothing blocks tapeout: no EPE/shape violations and
        every CD gauge printed."""
        return (
            self.score.epe_violations == 0
            and self.score.shape_violations == 0
            and all(m.cd_nm is not None for m in self.cd)
        )

    def render(self) -> str:
        """Human-readable multi-section report."""
        lines = [
            f"=== Verification report: {self.layout_name} ===",
            f"verdict: {'CLEAN' if self.clean else 'VIOLATIONS PRESENT'}",
            "",
            f"score      : {self.score}",
            f"EPE        : {self.epe.num_violations}/{self.epe.num_samples} samples violate "
            f"(max |EPE| = {self._fmt_nm(self.epe.max_abs_epe())}, "
            f"mean |EPE| = {self._fmt_nm(self.epe.mean_abs_epe())})",
        ]
        printed_cds = [m for m in self.cd if m.cd_nm is not None]
        missing = len(self.cd) - len(printed_cds)
        if printed_cds:
            worst = max(printed_cds, key=lambda m: abs(m.error_nm))
            lines.append(
                f"CD gauges  : {len(printed_cds)}/{len(self.cd)} printed; worst error "
                f"{worst.error_nm:+.0f} nm at {worst.gauge.name}"
            )
        if missing:
            lines.append(f"             {missing} gauge(s) DID NOT PRINT")
        lines += [
            f"mask rules : width {self.mrc.width_violation_px} px, "
            f"space {self.mrc.space_violation_px} px violating "
            f"({self.mrc.min_width_nm:g}/{self.mrc.min_space_nm:g} nm rules)",
            f"write cost : {self.complexity.shot_count} shots, "
            f"{self.complexity.figure_count} figures, "
            f"{self.complexity.edge_length_nm:.0f} nm edge, "
            f"{self.complexity.corner_count} corners",
        ]
        if self.window is not None:
            lines.append(
                f"window     : {self.window.pass_fraction() * 100:.0f}% of swept "
                f"conditions pass; EL = {self.window.exposure_latitude() * 100:.1f}%, "
                f"DOF = {self.window.depth_of_focus():.0f} nm"
            )
        if self.trace_report is not None:
            lines += ["", self.trace_report]
        if self.metrics_summary is not None:
            lines += ["", self.metrics_summary]
        return "\n".join(lines)

    @staticmethod
    def _fmt_nm(value: Optional[float]) -> str:
        return "n/a" if value is None else f"{value:.0f} nm"


def verify_mask(
    sim: LithographySimulator,
    mask: np.ndarray,
    layout: Layout,
    runtime_s: float = 0.0,
    sweep_window: bool = True,
    min_width_nm: float = 20.0,
    min_space_nm: float = 20.0,
    obs=None,
) -> VerificationReport:
    """Run the full verification suite on one mask.

    Args:
        sim: configured simulator.
        mask: the optimized mask (binarized before checks).
        layout: the design target.
        runtime_s: optimizer wall-clock to charge to the score.
        sweep_window: include the (slower) process-window sweep.
        min_width_nm, min_space_nm: mask rules to check.
        obs: optional :class:`repro.obs.Instrumentation` whose collected
            phase breakdown and metrics are rendered into the report.

    Returns:
        The aggregated report; ``report.render()`` formats it.
    """
    grid = sim.grid
    binary = (np.asarray(mask, dtype=np.float64) > 0.5).astype(np.float64)
    printed = sim.print_binary(binary)
    window = None
    if sweep_window:
        window = sweep_process_window(
            sim,
            binary,
            layout,
            defocus_values_nm=(0.0, sim.config.process.defocus_range_nm),
            dose_values=(
                1.0 - sim.config.process.dose_range,
                1.0,
                1.0 + sim.config.process.dose_range,
            ),
        )
    trace_report = None
    metrics_summary = None
    if obs is not None:
        if getattr(obs.tracer, "enabled", False):
            trace_report = obs.tracer.report()
        if getattr(obs.metrics, "enabled", False):
            metrics_summary = obs.metrics.summary()
    return VerificationReport(
        layout_name=layout.name,
        score=contest_score(sim, binary, layout, runtime_s=runtime_s),
        epe=measure_epe(printed, layout, grid),
        cd=measure_gauges(printed, gauges_for_layout(layout), grid),
        mrc=check_mask_rules(binary, grid, min_width_nm=min_width_nm, min_space_nm=min_space_nm),
        complexity=mask_complexity(binary, grid),
        window=window,
        trace_report=trace_report,
        metrics_summary=metrics_summary,
    )
