"""OPC recipes: JSON-serializable solve settings.

A recipe captures everything about *how* to solve — solver mode,
optimizer hyper-parameters, post-OPC cleanup — so a flow can be
versioned, shared and replayed without code:

    {
      "mode": "exact",
      "optimizer": {"max_iterations": 40, "step_size": 10.0, "beta": 80.0},
      "cleanup": {"min_figure_area_nm2": 300.0, "smooth": false}
    }

Unknown keys are rejected loudly (a typo like ``"max_iteration"`` must
not silently fall back to defaults).
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Optional, Union

import numpy as np

from .config import LithoConfig, OptimizerConfig
from .errors import ReproError
from .geometry.layout import Layout
from .litho.simulator import LithographySimulator
from .mask.cleanup import CleanupConfig, cleanup_mask
from .metrics.score import contest_score
from .opc.mosaic import MosaicResult

_MODES = ("fast", "exact", "multires", "modelbased", "rulebased", "ilt", "levelset")


@dataclass(frozen=True)
class Recipe:
    """A named, replayable solve configuration.

    Attributes:
        mode: solver mode (same names as the CLI).
        optimizer: descent settings (None = the mode's defaults).
        cleanup: post-OPC cleanup (None = no cleanup).
        name: optional label for reports.
    """

    mode: str = "fast"
    optimizer: Optional[OptimizerConfig] = None
    cleanup: Optional[CleanupConfig] = None
    name: str = ""

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ReproError(f"unknown mode {self.mode!r}; choose from {_MODES}")


def _build_dataclass(cls, data: dict, context: str):
    valid = {f.name for f in dataclasses.fields(cls)}
    unknown = set(data) - valid
    if unknown:
        raise ReproError(
            f"{context}: unknown key(s) {sorted(unknown)}; valid keys: {sorted(valid)}"
        )
    try:
        return replace(cls(), **data)
    except Exception as exc:
        raise ReproError(f"{context}: {exc}") from exc


def recipe_from_dict(data: dict) -> Recipe:
    """Build a Recipe from parsed JSON, validating every key."""
    if not isinstance(data, dict):
        raise ReproError(f"recipe must be a JSON object, got {type(data).__name__}")
    unknown = set(data) - {"mode", "optimizer", "cleanup", "name"}
    if unknown:
        raise ReproError(f"recipe: unknown key(s) {sorted(unknown)}")
    optimizer = None
    if "optimizer" in data:
        optimizer = _build_dataclass(OptimizerConfig, data["optimizer"], "recipe.optimizer")
    cleanup = None
    if "cleanup" in data:
        cleanup = _build_dataclass(CleanupConfig, data["cleanup"], "recipe.cleanup")
    return Recipe(
        mode=data.get("mode", "fast"),
        optimizer=optimizer,
        cleanup=cleanup,
        name=data.get("name", ""),
    )


def load_recipe(path: Union[str, Path]) -> Recipe:
    """Read a recipe from a JSON file."""
    try:
        data = json.loads(Path(path).read_text())
    except OSError as exc:
        raise ReproError(f"cannot read recipe {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ReproError(f"recipe {path} is not valid JSON: {exc}") from exc
    return recipe_from_dict(data)


def dump_recipe(recipe: Recipe, path: Union[str, Path]) -> None:
    """Write a recipe to JSON (full settings, replayable)."""
    data: dict = {"mode": recipe.mode}
    if recipe.name:
        data["name"] = recipe.name
    if recipe.optimizer is not None:
        data["optimizer"] = dataclasses.asdict(recipe.optimizer)
    if recipe.cleanup is not None:
        data["cleanup"] = dataclasses.asdict(recipe.cleanup)
    Path(path).write_text(json.dumps(data, indent=2) + "\n")


def solve_with_recipe(
    recipe: Recipe,
    layout: Layout,
    litho_config: LithoConfig,
    simulator: Optional[LithographySimulator] = None,
) -> MosaicResult:
    """Execute a recipe: solve, optionally clean up, re-score.

    Returns a :class:`MosaicResult` whose mask has the recipe's cleanup
    applied and whose score reflects the cleaned mask.
    """
    from .baselines import BasicILT, LevelSetILT, ModelBasedOPC, RuleBasedOPC
    from .opc.mosaic import MosaicExact, MosaicFast
    from .opc.multires import MultiResolutionSolver

    sim = simulator or LithographySimulator(litho_config)
    if recipe.mode == "multires":
        solver = MultiResolutionSolver(
            litho_config, solver_cls=MosaicFast, simulator=sim
        )
    else:
        cls = {
            "fast": MosaicFast,
            "exact": MosaicExact,
            "modelbased": ModelBasedOPC,
            "rulebased": RuleBasedOPC,
            "ilt": BasicILT,
            "levelset": LevelSetILT,
        }[recipe.mode]
        if recipe.optimizer is not None and cls in (MosaicFast, MosaicExact, BasicILT):
            solver = cls(litho_config, optimizer_config=recipe.optimizer, simulator=sim)
        else:
            solver = cls(litho_config, simulator=sim)
    result = solver.solve(layout)

    if recipe.cleanup is None:
        return result
    cleaned = cleanup_mask(result.mask, sim.grid, recipe.cleanup)
    score = contest_score(sim, cleaned, layout, runtime_s=result.runtime_s)
    optimization = dataclasses.replace(
        result.optimization,
        mask=cleaned,
        binary_mask=(np.asarray(cleaned) > 0.5).astype(np.float64),
    )
    return MosaicResult(
        layout_name=result.layout_name,
        optimization=optimization,
        score=score,
        target=result.target,
        runtime_s=result.runtime_s,
    )
