"""MOSAIC: Mask Optimizing Solution with process-window-Aware Inverse Correction.

A from-scratch reproduction of the DAC 2014 paper: gradient-descent
inverse lithography (ILT) that co-optimizes nominal-condition fidelity
(EPE or image difference) and the process variability band across focus/
dose corners.

Quickstart::

    from repro import LithoConfig, MosaicFast, load_benchmark

    solver = MosaicFast(LithoConfig.reduced())
    result = solver.solve(load_benchmark("B1"))
    print(result.score)
"""

from .config import (
    GridSpec,
    LithoConfig,
    ObservabilityConfig,
    OpticsConfig,
    OptimizerConfig,
    ProcessConfig,
    ResistConfig,
)
from .errors import (
    CellTimeoutError,
    CheckpointError,
    FullChipError,
    GeometryError,
    GridError,
    HarnessError,
    LayoutIOError,
    OpticsError,
    OptimizationError,
    ProcessError,
    ReproError,
)
from .fullchip import (
    FullChipConfig,
    FullChipEngine,
    FullChipResult,
    ambit_model_for,
    build_tile_plan,
    stitch_masks,
)
from .geometry import Layout, Polygon, Rect, clip_polygon_to_rect, rasterize_layout
from .litho import LithographySimulator
from .metrics import ScoreBreakdown, contest_score, measure_epe
from .opc import (
    CheckpointConfig,
    EPEObjective,
    GradientDescentOptimizer,
    ImageDifferenceObjective,
    MosaicExact,
    MosaicFast,
    MosaicResult,
    PVBandObjective,
    RecoveryPolicy,
    latest_checkpoint,
    load_checkpoint,
)
from .harness import CellStatus, ExperimentResult, run_experiment
from .obs import EventEmitter, Instrumentation, MetricsRegistry, Tracer
from .process import ProcessCorner, enumerate_corners, pv_band, pv_band_area
from .recipe import Recipe, dump_recipe, load_recipe, solve_with_recipe
from .report import VerificationReport, verify_mask
from .tables import ColumnSpec, TextTable, write_csv_rows
from .workloads import BENCHMARK_NAMES, load_all_benchmarks, load_benchmark, synthetic_canvas

from ._version import __version__

__all__ = [
    # configuration
    "GridSpec",
    "OpticsConfig",
    "ResistConfig",
    "ProcessConfig",
    "OptimizerConfig",
    "LithoConfig",
    "ObservabilityConfig",
    # errors
    "ReproError",
    "GeometryError",
    "GridError",
    "OpticsError",
    "ProcessError",
    "OptimizationError",
    "CheckpointError",
    "HarnessError",
    "CellTimeoutError",
    "LayoutIOError",
    "FullChipError",
    # geometry
    "Rect",
    "Polygon",
    "Layout",
    "clip_polygon_to_rect",
    "rasterize_layout",
    # simulation
    "LithographySimulator",
    "ProcessCorner",
    "enumerate_corners",
    "pv_band",
    "pv_band_area",
    # optimization
    "MosaicFast",
    "MosaicExact",
    "MosaicResult",
    "GradientDescentOptimizer",
    "ImageDifferenceObjective",
    "EPEObjective",
    "PVBandObjective",
    # fault tolerance
    "RecoveryPolicy",
    "CheckpointConfig",
    "latest_checkpoint",
    "load_checkpoint",
    # metrics
    "contest_score",
    "ScoreBreakdown",
    "measure_epe",
    "verify_mask",
    "VerificationReport",
    "run_experiment",
    "ExperimentResult",
    "CellStatus",
    "Recipe",
    "load_recipe",
    "dump_recipe",
    "solve_with_recipe",
    "ColumnSpec",
    "TextTable",
    "write_csv_rows",
    # full-chip
    "FullChipEngine",
    "FullChipConfig",
    "FullChipResult",
    "ambit_model_for",
    "build_tile_plan",
    "stitch_masks",
    # observability
    "Instrumentation",
    "Tracer",
    "MetricsRegistry",
    "EventEmitter",
    # workloads
    "BENCHMARK_NAMES",
    "load_benchmark",
    "load_all_benchmarks",
    "synthetic_canvas",
]
