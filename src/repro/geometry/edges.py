"""Edge extraction and EPE sample-point generation (paper Fig. 3).

EPE is measured at points sampled along the target pattern boundary,
split into samples on horizontal edges (``HS`` — displacement measured
vertically) and samples on vertical edges (``VS`` — displacement measured
horizontally).  The paper samples every 40 nm.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from .. import constants
from ..config import GridSpec
from .layout import Layout
from .polygon import Polygon


class EdgeOrientation(enum.Enum):
    """Orientation of a polygon boundary edge."""

    HORIZONTAL = "H"
    VERTICAL = "V"


@dataclass(frozen=True)
class Edge:
    """One axis-aligned boundary edge of a target polygon.

    Attributes:
        orientation: horizontal or vertical.
        fixed: the invariant coordinate (y for horizontal, x for vertical), nm.
        lo: smaller varying coordinate, nm.
        hi: larger varying coordinate, nm.
        interior_sign: +1 if the pattern interior lies on the +normal side
            (+y for horizontal edges, +x for vertical edges), else -1.
    """

    orientation: EdgeOrientation
    fixed: float
    lo: float
    hi: float
    interior_sign: int

    @property
    def length(self) -> float:
        return self.hi - self.lo


@dataclass(frozen=True)
class SamplePoint:
    """One EPE measurement site on the target boundary.

    Attributes:
        x, y: physical coordinates in nm.
        row, col: pixel indices of the boundary pixel (interior side).
        orientation: orientation of the edge the sample sits on — a sample
            on a HORIZONTAL edge belongs to the paper's HS set and its EPE
            is measured along y; a VERTICAL-edge sample (VS) along x.
        interior_sign: +1 if the interior is on the +normal side.
    """

    x: float
    y: float
    row: int
    col: int
    orientation: EdgeOrientation
    interior_sign: int

    @property
    def is_horizontal(self) -> bool:
        return self.orientation is EdgeOrientation.HORIZONTAL


def extract_edges(poly: Polygon) -> List[Edge]:
    """Decompose a rectilinear polygon boundary into oriented edges.

    Vertices are counter-clockwise, so the interior is to the left of each
    directed segment: a horizontal segment traversed in +x has interior
    above it (+y); one traversed in -x has interior below.  A vertical
    segment traversed in +y has interior on -x; in -y on +x.
    """
    edges: List[Edge] = []
    for (x0, y0), (x1, y1) in poly.segments():
        if y0 == y1:  # horizontal
            sign = 1 if x1 > x0 else -1
            edges.append(
                Edge(
                    orientation=EdgeOrientation.HORIZONTAL,
                    fixed=y0,
                    lo=min(x0, x1),
                    hi=max(x0, x1),
                    interior_sign=sign,
                )
            )
        else:  # vertical
            sign = -1 if y1 > y0 else 1
            edges.append(
                Edge(
                    orientation=EdgeOrientation.VERTICAL,
                    fixed=x0,
                    lo=min(y0, y1),
                    hi=max(y0, y1),
                    interior_sign=sign,
                )
            )
    return edges


def _positions_along(lo: float, hi: float, spacing: float) -> List[float]:
    """Sample positions along [lo, hi]: midpoint for short edges, else a
    centred uniform ladder with the given spacing."""
    length = hi - lo
    if length <= spacing:
        return [(lo + hi) / 2.0]
    count = int(length // spacing)
    used = count * spacing
    start = lo + (length - used) / 2.0 + spacing / 2.0
    return [start + k * spacing for k in range(count)]


def _interior_pixel(
    coord_along: float, edge: Edge, grid: GridSpec
) -> Tuple[int, int]:
    """Pixel indices of the boundary pixel just inside the pattern."""
    dx = grid.pixel_nm
    rows, cols = grid.shape
    # Center the sample half a pixel inside the interior along the normal.
    if edge.orientation is EdgeOrientation.HORIZONTAL:
        x = coord_along
        y = edge.fixed + edge.interior_sign * dx / 2.0
    else:
        y = coord_along
        x = edge.fixed + edge.interior_sign * dx / 2.0
    col = min(max(int(x / dx), 0), cols - 1)
    row = min(max(int(y / dx), 0), rows - 1)
    return row, col


def generate_sample_points(
    layout: Layout,
    grid: GridSpec,
    spacing_nm: float = constants.EPE_SAMPLE_SPACING_NM,
) -> List[SamplePoint]:
    """Generate EPE sample points along every target edge.

    Args:
        layout: target layout.
        grid: pixel grid the mask/images live on.
        spacing_nm: distance between consecutive samples (paper: 40 nm).

    Returns:
        Sample points covering all edges; short edges get one midpoint
        sample so no feature goes unmeasured.
    """
    samples: List[SamplePoint] = []
    for poly in layout.polygons:
        for edge in extract_edges(poly):
            for pos in _positions_along(edge.lo, edge.hi, spacing_nm):
                row, col = _interior_pixel(pos, edge, grid)
                if edge.orientation is EdgeOrientation.HORIZONTAL:
                    x, y = pos, edge.fixed
                else:
                    x, y = edge.fixed, pos
                samples.append(
                    SamplePoint(
                        x=x,
                        y=y,
                        row=row,
                        col=col,
                        orientation=edge.orientation,
                        interior_sign=edge.interior_sign,
                    )
                )
    return samples


def split_samples(samples: Sequence[SamplePoint]) -> Tuple[List[SamplePoint], List[SamplePoint]]:
    """Split samples into the paper's (HS, VS) sets."""
    hs = [s for s in samples if s.orientation is EdgeOrientation.HORIZONTAL]
    vs = [s for s in samples if s.orientation is EdgeOrientation.VERTICAL]
    return hs, vs
