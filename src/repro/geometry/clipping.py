"""Clipping rectilinear polygons to axis-aligned windows.

Tiling a full-chip layout requires intersecting every target polygon with
a tile window.  A Sutherland–Hodgman clip is not usable here: for concave
shapes (U/comb structures) it emits degenerate "bridge" edges that lie in
empty space.  Rasterization would survive that (even-odd rule), but EPE
sample points are generated *on polygon edges*, so fake edges would
produce fake control points and phantom violations.

Instead the clip is computed as a union of slab rectangles followed by a
boundary trace:

1. **Slab decomposition** — cut the window's y-range at every polygon
   vertex y; inside each horizontal slab the polygon's cross-section is a
   set of disjoint x-intervals (even-odd pairing of vertical-edge
   crossings), each clamped to the window.
2. **Boundary trace** — every slab rectangle contributes four directed
   (counter-clockwise) edges; overlapping opposite-direction horizontal
   fragments between vertically adjacent slabs cancel, and the surviving
   edges are walked into closed loops (preferring the leftmost turn at
   pinch vertices so touching components stay separate).

All emitted coordinates are copies of input vertex/window coordinates —
no new floating-point values are synthesized — so exact equality is safe
throughout.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Sequence, Tuple

from ..errors import GeometryError
from .polygon import Point, Polygon
from .rect import Rect


def _slab_rects(poly: Polygon, window: Rect) -> List[Rect]:
    """Decompose ``poly ∩ window`` into disjoint slab rectangles."""
    ys = {window.y0, window.y1}
    for _, y in poly.vertices:
        if window.y0 < y < window.y1:
            ys.add(y)
    levels = sorted(ys)

    verticals = [
        (x0, min(y0, y1), max(y0, y1))
        for (x0, y0), (x1, y1) in poly.segments()
        if x0 == x1
    ]

    rects: List[Rect] = []
    for y_lo, y_hi in zip(levels[:-1], levels[1:]):
        y_mid = (y_lo + y_hi) / 2.0
        crossings = sorted(x for x, ya, yb in verticals if ya < y_mid < yb)
        if len(crossings) % 2:
            raise GeometryError(
                f"odd crossing count at y={y_mid} — polygon is not simple"
            )
        for x_in, x_out in zip(crossings[0::2], crossings[1::2]):
            x_lo = max(x_in, window.x0)
            x_hi = min(x_out, window.x1)
            if x_hi > x_lo:
                rects.append(Rect(x_lo, y_lo, x_hi, y_hi))
    return rects


def _cancel_horizontal(
    rects: Sequence[Rect],
) -> List[Tuple[Point, Point]]:
    """Directed horizontal boundary fragments after interior cancellation.

    Bottom edges run rightward (+1), top edges leftward (-1).  Where a
    slab's top edge coincides with the slab above's bottom edge the two
    cover the same x-interval with opposite signs and net to zero — that
    stretch is interior, not boundary.
    """
    # (sign, x_start, x_end) grouped per y level.
    by_y: Dict[float, List[Tuple[int, float, float]]] = defaultdict(list)
    for r in rects:
        by_y[r.y0].append((+1, r.x0, r.x1))
        by_y[r.y1].append((-1, r.x0, r.x1))

    fragments: List[Tuple[Point, Point]] = []
    for y, edges in by_y.items():
        cuts = sorted({x for _, x0, x1 in edges for x in (x0, x1)})
        for x_lo, x_hi in zip(cuts[:-1], cuts[1:]):
            net = sum(sign for sign, x0, x1 in edges if x0 <= x_lo and x_hi <= x1)
            if net > 0:
                fragments.append(((x_lo, y), (x_hi, y)))
            elif net < 0:
                fragments.append(((x_hi, y), (x_lo, y)))
    return fragments


def _trace_loops(edges: Sequence[Tuple[Point, Point]]) -> List[List[Point]]:
    """Walk directed edges into closed loops.

    The interior lies to the left of every edge (counter-clockwise
    convention), so at a vertex with several outgoing edges the correct
    continuation is the leftmost turn — that keeps components that only
    touch at a point separate.
    """
    outgoing: Dict[Point, List[int]] = defaultdict(list)
    for i, (start, _end) in enumerate(edges):
        outgoing[start].append(i)

    def turn_rank(d_in: Tuple[float, float], d_out: Tuple[float, float]) -> int:
        cross = d_in[0] * d_out[1] - d_in[1] * d_out[0]
        dot = d_in[0] * d_out[0] + d_in[1] * d_out[1]
        if cross > 0:
            return 0  # left turn — preferred
        if cross == 0 and dot > 0:
            return 1  # straight
        if cross < 0:
            return 2  # right turn
        return 3  # U-turn — only on degenerate input

    used = [False] * len(edges)
    loops: List[List[Point]] = []
    for seed in range(len(edges)):
        if used[seed]:
            continue
        loop: List[Point] = []
        origin = edges[seed][0]
        idx = seed
        while True:
            used[idx] = True
            start, end = edges[idx]
            loop.append(start)
            if end == origin:
                # Each component boundary is a simple curve, so returning
                # to the origin always means the loop is complete — close
                # here even if a pinch vertex offers further candidates.
                break
            d_in = (end[0] - start[0], end[1] - start[1])
            candidates = [j for j in outgoing[end] if not used[j]]
            if not candidates:
                raise GeometryError("open boundary chain while tracing clip")
            idx = min(
                candidates,
                key=lambda j: turn_rank(
                    d_in,
                    (
                        edges[j][1][0] - edges[j][0][0],
                        edges[j][1][1] - edges[j][0][1],
                    ),
                ),
            )
        loops.append(loop)
    return loops


def clip_polygon_to_rect(poly: Polygon, window: Rect) -> List[Polygon]:
    """Intersect a rectilinear polygon with a window.

    Returns a list of simple polygons (the intersection of a concave
    shape with a window can split into several components); the list is
    empty when the polygon misses the window entirely.  Every emitted
    edge is a true boundary edge of the intersection region, which keeps
    EPE sample-point generation honest on clipped shapes.
    """
    bbox = poly.bbox
    if not window.intersects(bbox):
        return []
    if window.contains_rect(bbox):
        return [poly]
    rects = _slab_rects(poly, window)
    if not rects:
        return []

    edges: List[Tuple[Point, Point]] = []
    for r in rects:
        edges.append(((r.x1, r.y0), (r.x1, r.y1)))  # right side, upward
        edges.append(((r.x0, r.y1), (r.x0, r.y0)))  # left side, downward
    edges.extend(_cancel_horizontal(rects))

    return [Polygon(loop) for loop in _trace_loops(edges)]
