"""Layout clips: a named collection of rectilinear polygons in a clip window."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Tuple, Union

from .. import constants
from ..errors import GeometryError
from .polygon import Polygon
from .rect import Rect

Shape = Union[Rect, Polygon]


@dataclass
class Layout:
    """A clip of rectilinear shapes, the unit the optimizer works on.

    Attributes:
        name: identifier (e.g. ``"B4"``).
        clip: the clip window in nanometres; shapes must lie inside it.
        polygons: the target patterns.
    """

    name: str
    clip: Rect = field(
        default_factory=lambda: Rect(0, 0, constants.CLIP_SIZE_NM, constants.CLIP_SIZE_NM)
    )
    polygons: List[Polygon] = field(default_factory=list)

    def __post_init__(self) -> None:
        for poly in self.polygons:
            self._check_inside(poly)

    def _check_inside(self, poly: Polygon) -> None:
        if not self.clip.contains_rect(poly.bbox):
            raise GeometryError(
                f"shape bbox {poly.bbox} falls outside clip {self.clip} in layout {self.name!r}"
            )

    def add(self, shape: Shape) -> None:
        """Add a polygon or rectangle to the layout."""
        poly = Polygon.from_rect(shape) if isinstance(shape, Rect) else shape
        self._check_inside(poly)
        self.polygons.append(poly)

    def extend(self, shapes: Iterable[Shape]) -> None:
        """Add several shapes."""
        for shape in shapes:
            self.add(shape)

    @classmethod
    def from_rects(cls, name: str, rects: Sequence[Rect], clip: Rect | None = None) -> "Layout":
        """Convenience constructor from a rectangle list."""
        layout = cls(name=name, clip=clip or Rect(0, 0, constants.CLIP_SIZE_NM, constants.CLIP_SIZE_NM))
        layout.extend(rects)
        return layout

    @property
    def num_shapes(self) -> int:
        return len(self.polygons)

    @property
    def pattern_area(self) -> float:
        """Total drawn area in nm^2 (shapes assumed non-overlapping)."""
        return sum(poly.area for poly in self.polygons)

    @property
    def total_perimeter(self) -> float:
        """Sum of all shape perimeters in nm."""
        return sum(poly.perimeter for poly in self.polygons)

    def bbox(self) -> Rect | None:
        """Bounding box of all shapes, or None for an empty layout."""
        if not self.polygons:
            return None
        boxes = [p.bbox for p in self.polygons]
        return Rect(
            min(b.x0 for b in boxes),
            min(b.y0 for b in boxes),
            max(b.x1 for b in boxes),
            max(b.y1 for b in boxes),
        )

    def contains_point(self, x: float, y: float) -> bool:
        """True if the point lies inside any shape."""
        return any(p.contains_point(x, y) for p in self.polygons)

    def translated(self, dx: float, dy: float) -> "Layout":
        """A copy with every shape shifted (clip unchanged)."""
        moved = Layout(name=self.name, clip=self.clip)
        moved.extend(p.translated(dx, dy) for p in self.polygons)
        return moved

    def clip_to(self, bbox: Rect, name: str | None = None) -> "Layout":
        """Extract the window ``bbox`` as a standalone layout.

        Every polygon is intersected with ``bbox`` (concave shapes may
        split into several pieces; shapes outside the window vanish) and
        the result is re-based so the new layout's clip is
        ``(0, 0, bbox.width, bbox.height)`` — ready to rasterize or feed
        to a solver as an independent cell.
        """
        from .clipping import clip_polygon_to_rect

        window = Layout(
            name=name if name is not None else f"{self.name}[{bbox.x0:g},{bbox.y0:g}]",
            clip=Rect(0.0, 0.0, bbox.width, bbox.height),
        )
        for poly in self.polygons:
            for piece in clip_polygon_to_rect(poly, bbox):
                window.add(piece.translated(-bbox.x0, -bbox.y0))
        return window
