"""Rectilinear geometry: rectangles, polygons, layout clips, rasterization.

Layouts in this library model ICCAD-2013-style M1 clips: rectilinear
polygons inside a square clip window, with coordinates in nanometres.
"""

from .rect import Rect
from .polygon import Polygon
from .layout import Layout
from .clipping import clip_polygon_to_rect
from .raster import rasterize_layout, rasterize_polygon, rasterize_rect
from .edges import Edge, EdgeOrientation, SamplePoint, extract_edges, generate_sample_points
from .contours import boundary_mask, extract_contour_segments

__all__ = [
    "Rect",
    "Polygon",
    "Layout",
    "clip_polygon_to_rect",
    "rasterize_layout",
    "rasterize_polygon",
    "rasterize_rect",
    "Edge",
    "EdgeOrientation",
    "SamplePoint",
    "extract_edges",
    "generate_sample_points",
    "boundary_mask",
    "extract_contour_segments",
]
