"""Rasterization of rectilinear geometry onto the pixel grid.

Array convention used throughout the library: images are indexed
``img[iy, ix]`` where ``iy`` grows with physical ``y`` (bottom row of the
clip is row 0) and ``ix`` grows with physical ``x``.  Pixel ``(iy, ix)``
covers ``[ix*dx, (ix+1)*dx) x [iy*dx, (iy+1)*dx)`` nm.  A pixel is set when
its *center* lies inside the shape — exact for shapes whose edges sit on
grid lines, which is the case for all ICCAD-style clips at 1 nm/px.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from ..config import GridSpec
from ..errors import GridError
from .layout import Layout
from .polygon import Polygon
from .rect import Rect


def _center_span(lo: float, hi: float, dx: float, n: int) -> Tuple[int, int]:
    """Index range [i0, i1) of pixels whose centers fall in [lo, hi)."""
    i0 = int(math.ceil(lo / dx - 0.5 - 1e-12))
    i1 = int(math.ceil(hi / dx - 0.5 - 1e-12))
    return max(i0, 0), min(i1, n)


def rasterize_rect(rect: Rect, grid: GridSpec, out: np.ndarray | None = None) -> np.ndarray:
    """Rasterize a rectangle; OR into ``out`` if given.

    Args:
        rect: rectangle in nm coordinates.
        grid: target pixel grid.
        out: optional boolean array of ``grid.shape`` to accumulate into.

    Returns:
        Boolean image of shape ``grid.shape``.
    """
    rows, cols = grid.shape
    if out is None:
        out = np.zeros((rows, cols), dtype=bool)
    elif out.shape != (rows, cols):
        raise GridError(f"output shape {out.shape} != grid shape {grid.shape}")
    dx = grid.pixel_nm
    j0, j1 = _center_span(rect.x0, rect.x1, dx, cols)
    i0, i1 = _center_span(rect.y0, rect.y1, dx, rows)
    if i0 < i1 and j0 < j1:
        out[i0:i1, j0:j1] = True
    return out


def rasterize_polygon(poly: Polygon, grid: GridSpec, out: np.ndarray | None = None) -> np.ndarray:
    """Rasterize a rectilinear polygon by even-odd scanline filling.

    For every pixel row, crossings of the polygon's vertical edges with the
    row's center line are collected; pixels between alternate crossings are
    filled.
    """
    rows, cols = grid.shape
    if out is None:
        out = np.zeros((rows, cols), dtype=bool)
    elif out.shape != (rows, cols):
        raise GridError(f"output shape {out.shape} != grid shape {grid.shape}")
    dx = grid.pixel_nm

    verticals = []  # (x, y_lo, y_hi)
    for (x0, y0), (x1, y1) in poly.segments():
        if x0 == x1:
            verticals.append((x0, min(y0, y1), max(y0, y1)))
    if not verticals:
        return out

    bbox = poly.bbox
    i_lo, i_hi = _center_span(bbox.y0, bbox.y1, dx, rows)
    for iy in range(i_lo, i_hi):
        yc = (iy + 0.5) * dx
        crossings = sorted(x for x, y_lo, y_hi in verticals if y_lo <= yc < y_hi)
        for k in range(0, len(crossings) - 1, 2):
            j0, j1 = _center_span(crossings[k], crossings[k + 1], dx, cols)
            if j0 < j1:
                out[iy, j0:j1] = True
    return out


def rasterize_layout(layout: Layout, grid: GridSpec) -> np.ndarray:
    """Rasterize every shape of a layout into one boolean target image."""
    rows, cols = grid.shape
    out = np.zeros((rows, cols), dtype=bool)
    for poly in layout.polygons:
        rasterize_polygon(poly, grid, out=out)
    return out
