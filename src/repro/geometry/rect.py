"""Axis-aligned rectangles in nanometre coordinates.

The convention throughout the library is ``(x0, y0)`` = lower-left corner,
``(x1, y1)`` = upper-right corner, with ``x`` growing rightwards (columns)
and ``y`` growing upwards (rows are stored top-to-bottom in arrays; the
rasterizer handles the flip).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

from ..errors import GeometryError


@dataclass(frozen=True, order=True)
class Rect:
    """Axis-aligned rectangle with strictly positive area.

    Attributes:
        x0: left edge (nm).
        y0: bottom edge (nm).
        x1: right edge (nm), must exceed ``x0``.
        y1: top edge (nm), must exceed ``y0``.
    """

    x0: float
    y0: float
    x1: float
    y1: float

    def __post_init__(self) -> None:
        if not (self.x1 > self.x0 and self.y1 > self.y0):
            raise GeometryError(
                f"degenerate rectangle ({self.x0},{self.y0})-({self.x1},{self.y1})"
            )

    @classmethod
    def from_size(cls, x: float, y: float, width: float, height: float) -> "Rect":
        """Build from a lower-left corner plus width and height."""
        return cls(x, y, x + width, y + height)

    @property
    def width(self) -> float:
        return self.x1 - self.x0

    @property
    def height(self) -> float:
        return self.y1 - self.y0

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Tuple[float, float]:
        return ((self.x0 + self.x1) / 2.0, (self.y0 + self.y1) / 2.0)

    def contains_point(self, x: float, y: float) -> bool:
        """True if ``(x, y)`` lies inside or on the boundary."""
        return self.x0 <= x <= self.x1 and self.y0 <= y <= self.y1

    def contains_rect(self, other: "Rect") -> bool:
        """True if ``other`` lies entirely inside this rectangle."""
        return (
            self.x0 <= other.x0
            and self.y0 <= other.y0
            and self.x1 >= other.x1
            and self.y1 >= other.y1
        )

    def intersects(self, other: "Rect") -> bool:
        """True if the interiors overlap (touching edges do not count)."""
        return (
            self.x0 < other.x1
            and other.x0 < self.x1
            and self.y0 < other.y1
            and other.y0 < self.y1
        )

    def intersection(self, other: "Rect") -> "Rect | None":
        """Overlap rectangle, or None if interiors are disjoint."""
        if not self.intersects(other):
            return None
        return Rect(
            max(self.x0, other.x0),
            max(self.y0, other.y0),
            min(self.x1, other.x1),
            min(self.y1, other.y1),
        )

    def expanded(self, margin: float) -> "Rect":
        """Rectangle grown by ``margin`` on every side (negative shrinks)."""
        return Rect(self.x0 - margin, self.y0 - margin, self.x1 + margin, self.y1 + margin)

    def translated(self, dx: float, dy: float) -> "Rect":
        """Rectangle shifted by ``(dx, dy)``."""
        return Rect(self.x0 + dx, self.y0 + dy, self.x1 + dx, self.y1 + dy)

    def corners(self) -> Iterator[Tuple[float, float]]:
        """Counter-clockwise corners starting at the lower-left."""
        yield (self.x0, self.y0)
        yield (self.x1, self.y0)
        yield (self.x1, self.y1)
        yield (self.x0, self.y1)

    def distance_to(self, other: "Rect") -> float:
        """Minimum euclidean gap between the two rectangles (0 if overlapping)."""
        dx = max(0.0, max(self.x0, other.x0) - min(self.x1, other.x1))
        dy = max(0.0, max(self.y0, other.y0) - min(self.y1, other.y1))
        return float((dx * dx + dy * dy) ** 0.5)
