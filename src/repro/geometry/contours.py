"""Contour utilities on binary printed images.

Used for EPE measurement (locating the printed edge near a sample point),
shape-violation detection support, and the Fig. 5 image dumps.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..utils.validation import ensure_binary_image


def boundary_mask(image: np.ndarray) -> np.ndarray:
    """Pixels that are set and touch an unset 4-neighbour (or the border).

    Args:
        image: binary printed image.

    Returns:
        Boolean mask of boundary pixels.
    """
    img = ensure_binary_image(image)
    padded = np.pad(img, 1, mode="constant", constant_values=False)
    interior = (
        padded[:-2, 1:-1]
        & padded[2:, 1:-1]
        & padded[1:-1, :-2]
        & padded[1:-1, 2:]
    )
    return img & ~interior


def extract_contour_segments(image: np.ndarray, pixel_nm: float = 1.0) -> List[Tuple[Tuple[float, float], Tuple[float, float]]]:
    """Extract unit contour segments between set and unset pixels.

    Each returned segment is ``((x0, y0), (x1, y1))`` in nm, lying on the
    pixel lattice between a set pixel and an unset 4-neighbour.  Suitable
    for plotting printed contours.
    """
    img = ensure_binary_image(image)
    rows, cols = img.shape
    segments: List[Tuple[Tuple[float, float], Tuple[float, float]]] = []
    padded = np.pad(img, 1, mode="constant", constant_values=False)

    # Horizontal boundaries: transitions between vertically adjacent pixels.
    diff_v = padded[1:, 1:-1] != padded[:-1, 1:-1]  # shape (rows+1, cols)
    ys, xs = np.nonzero(diff_v)
    for iy, ix in zip(ys, xs):
        y = iy * pixel_nm
        segments.append(((ix * pixel_nm, y), ((ix + 1) * pixel_nm, y)))

    # Vertical boundaries: transitions between horizontally adjacent pixels.
    diff_h = padded[1:-1, 1:] != padded[1:-1, :-1]  # shape (rows, cols+1)
    ys, xs = np.nonzero(diff_h)
    for iy, ix in zip(ys, xs):
        x = ix * pixel_nm
        segments.append(((x, iy * pixel_nm), (x, (iy + 1) * pixel_nm)))
    return segments


def edge_displacement(
    printed: np.ndarray,
    row: int,
    col: int,
    axis: int,
    interior_sign: int,
    max_search: int,
) -> int | None:
    """Signed pixel displacement from a target boundary pixel to the printed edge.

    Starting from the target boundary pixel ``(row, col)`` (which sits just
    inside the target pattern), walk along ``axis`` (0 = rows/y, 1 = cols/x)
    to find where the printed image transitions, searching up to
    ``max_search`` pixels in both directions.

    Returns:
        Signed displacement in pixels — positive when the printed edge lies
        *outside* the target edge (printed pattern bulges out), negative
        when it pulls in; ``None`` when no printed edge is found within the
        search range (catastrophic failure, e.g. the feature did not print).
    """
    printed = ensure_binary_image(printed)
    rows, cols = printed.shape

    def value_at(offset: int) -> bool:
        # offset counts pixels along the *outward* normal from the target pixel.
        delta = -interior_sign * offset
        r = row + (delta if axis == 0 else 0)
        c = col + (delta if axis == 1 else 0)
        if not (0 <= r < rows and 0 <= c < cols):
            return False
        return bool(printed[r, c])

    inside_here = value_at(0)
    if inside_here:
        # Printed covers the target boundary pixel: edge lies outward.
        for k in range(1, max_search + 1):
            if not value_at(k):
                return k - 1
        return None
    # Printed does not reach the target boundary pixel: edge lies inward.
    for k in range(1, max_search + 1):
        if value_at(-k):
            return -k
    return None
