"""Rectilinear (Manhattan) polygons.

A polygon is a closed, simple, axis-aligned loop of vertices given in
counter-clockwise order.  Consecutive edges alternate between horizontal
and vertical.  This matches the geometry of M1 routing shapes in the
ICCAD 2013 clips (lines, jogs, T/U/L shapes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

from ..errors import GeometryError
from .rect import Rect

Point = Tuple[float, float]


def _signed_area(vertices: Sequence[Point]) -> float:
    """Shoelace signed area; positive for counter-clockwise loops."""
    total = 0.0
    n = len(vertices)
    for i in range(n):
        x0, y0 = vertices[i]
        x1, y1 = vertices[(i + 1) % n]
        total += x0 * y1 - x1 * y0
    return total / 2.0


def _dedupe_collinear(vertices: Sequence[Point]) -> List[Point]:
    """Remove repeated points and merge collinear consecutive edges."""
    pts = [vertices[0]]
    for p in vertices[1:]:
        if p != pts[-1]:
            pts.append(p)
    if len(pts) > 1 and pts[0] == pts[-1]:
        pts.pop()
    # Merge collinear runs (all edges are axis-aligned so collinear means
    # the shared coordinate repeats across three consecutive points).
    out: List[Point] = []
    n = len(pts)
    for i in range(n):
        prev = pts[i - 1]
        cur = pts[i]
        nxt = pts[(i + 1) % n]
        if (prev[0] == cur[0] == nxt[0]) or (prev[1] == cur[1] == nxt[1]):
            continue
        out.append(cur)
    return out


@dataclass(frozen=True)
class Polygon:
    """Simple rectilinear polygon with counter-clockwise vertices.

    Construction normalizes orientation (clockwise input is reversed) and
    removes duplicate/collinear vertices, then validates rectilinearity.
    """

    vertices: Tuple[Point, ...]

    def __init__(self, vertices: Sequence[Point]) -> None:
        if len(vertices) < 4:
            raise GeometryError(f"polygon needs >= 4 vertices, got {len(vertices)}")
        pts = _dedupe_collinear([(float(x), float(y)) for x, y in vertices])
        if len(pts) < 4:
            raise GeometryError("polygon degenerates after removing collinear vertices")
        area = _signed_area(pts)
        if area == 0:
            raise GeometryError("polygon has zero area")
        if area < 0:
            pts = list(reversed(pts))
        n = len(pts)
        for i in range(n):
            x0, y0 = pts[i]
            x1, y1 = pts[(i + 1) % n]
            if x0 != x1 and y0 != y1:
                raise GeometryError(
                    f"non-rectilinear edge ({x0},{y0})-({x1},{y1})"
                )
        object.__setattr__(self, "vertices", tuple(pts))

    @classmethod
    def from_rect(cls, rect: Rect) -> "Polygon":
        """Polygon covering the same region as ``rect``."""
        return cls(list(rect.corners()))

    @property
    def area(self) -> float:
        """Enclosed area (always positive)."""
        return abs(_signed_area(self.vertices))

    @property
    def bbox(self) -> Rect:
        """Axis-aligned bounding box."""
        xs = [p[0] for p in self.vertices]
        ys = [p[1] for p in self.vertices]
        return Rect(min(xs), min(ys), max(xs), max(ys))

    @property
    def perimeter(self) -> float:
        """Total boundary length."""
        total = 0.0
        n = len(self.vertices)
        for i in range(n):
            x0, y0 = self.vertices[i]
            x1, y1 = self.vertices[(i + 1) % n]
            total += abs(x1 - x0) + abs(y1 - y0)
        return total

    def segments(self) -> Iterator[Tuple[Point, Point]]:
        """Yield boundary segments ``(start, end)`` in counter-clockwise order."""
        n = len(self.vertices)
        for i in range(n):
            yield (self.vertices[i], self.vertices[(i + 1) % n])

    def contains_point(self, x: float, y: float) -> bool:
        """Even-odd rule point-in-polygon test (boundary points count as inside)."""
        # Boundary check first: on any segment?
        for (x0, y0), (x1, y1) in self.segments():
            if x0 == x1 == x and min(y0, y1) <= y <= max(y0, y1):
                return True
            if y0 == y1 == y and min(x0, x1) <= x <= max(x0, x1):
                return True
        inside = False
        n = len(self.vertices)
        for i in range(n):
            x0, y0 = self.vertices[i]
            x1, y1 = self.vertices[(i + 1) % n]
            if (y0 > y) != (y1 > y):
                x_cross = x0 + (y - y0) / (y1 - y0) * (x1 - x0)
                if x < x_cross:
                    inside = not inside
        return inside

    def translated(self, dx: float, dy: float) -> "Polygon":
        """Polygon shifted by ``(dx, dy)``."""
        return Polygon([(x + dx, y + dy) for x, y in self.vertices])
