"""Deterministic testing aids: fault injection for the robustness stack.

Production code never imports this package; tests (and the CI
fault-injection lane) use it to exercise the recovery, checkpoint, and
harness-isolation paths end-to-end instead of trusting them on faith.
"""

from .faults import (
    FaultInjector,
    FaultRecord,
    FaultyObjective,
    FaultySolverFactory,
)

__all__ = [
    "FaultInjector",
    "FaultRecord",
    "FaultyObjective",
    "FaultySolverFactory",
]
