"""Deterministic fault injection for the fault-tolerance runtime.

A :class:`FaultInjector` is *armed* with faults that fire at exact,
reproducible points — "corrupt the gradient with NaN on the 5th
evaluation", "raise inside ``solve`` the first time solver X sees layout
Y", "stall that cell for 2 seconds" — and *wired* through the two seams
the stack exposes:

* **Objective seam** — :meth:`FaultInjector.wrap_objective` (or the
  ``objective_transform`` hook on :class:`~repro.opc.mosaic.MosaicSolver`)
  interposes on ``value_and_gradient`` calls, corrupting the returned
  value/gradient at the armed call index.  This drives the optimizer's
  :class:`~repro.opc.recovery.RecoveryPolicy` exactly as a real
  numerical fault would.
* **Harness seam** — :meth:`FaultInjector.wrap_factory` interposes on a
  solver factory, raising or stalling inside ``solve`` for the armed
  (label, layout, attempt) coordinates.  This drives the harness's
  per-cell isolation, retry, and timeout machinery.

Every fired fault is appended to :attr:`FaultInjector.log`, so a test
asserts both that the fault happened *and* that the system recovered
from it.  Nothing here is random: the same arming always produces the
same fault sequence.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

from ..errors import ReproError

__all__ = [
    "FaultInjector",
    "FaultRecord",
    "FaultyObjective",
    "FaultySolverFactory",
    "InjectedFault",
]


class InjectedFault(ReproError):
    """Default exception raised by an armed solve fault."""


@dataclass(frozen=True)
class FaultRecord:
    """One fault that actually fired."""

    kind: str                 # "gradient" | "value" | "solve_raise" | "solve_stall"
    where: str                # e.g. "call 5" or "fastB2 on B2 attempt 1"
    detail: str = ""


@dataclass
class _GradientFault:
    at_call: int
    mode: str                 # "nan" | "inf" | "value_nan" | "value_blowup"
    fraction: float = 0.01    # fraction of gradient entries corrupted
    blowup_factor: float = 1e9
    fired: bool = False


@dataclass
class _SolveFault:
    label: Optional[str]
    layout_name: Optional[str]
    times: int                # attempts that fail before succeeding
    stall_s: Optional[float]  # None = raise instead of stalling
    error: Optional[Exception]
    fired_count: int = 0

    def matches(self, label: str, layout_name: str) -> bool:
        return (self.label is None or self.label == label) and (
            self.layout_name is None or self.layout_name == layout_name
        )


class FaultInjector:
    """Armable, deterministic fault source for tests.

    Example::

        injector = FaultInjector()
        injector.arm_gradient_fault(at_call=5, mode="nan")
        solver = MosaicFast(config, simulator=sim,
                            objective_transform=injector.wrap_objective)
        result = solver.solve(layout)       # recovery machinery engages
        assert injector.log                 # the fault really fired
    """

    def __init__(self) -> None:
        self.log: List[FaultRecord] = []
        self._gradient_faults: List[_GradientFault] = []
        self._solve_faults: List[_SolveFault] = []

    # -- arming ------------------------------------------------------------

    def arm_gradient_fault(
        self,
        at_call: int,
        mode: str = "nan",
        fraction: float = 0.01,
    ) -> "FaultInjector":
        """Corrupt the gradient returned by the ``at_call``-th (0-based)
        ``value_and_gradient`` evaluation with NaN (``mode="nan"``) or
        Inf (``mode="inf"``) in ``fraction`` of its entries.  One-shot:
        the fault disarms after firing, so the optimizer's retry of the
        iteration sees a clean evaluation.
        """
        if mode not in ("nan", "inf"):
            raise ReproError(f"gradient fault mode must be 'nan' or 'inf', got {mode!r}")
        self._gradient_faults.append(
            _GradientFault(at_call=at_call, mode=mode, fraction=fraction)
        )
        return self

    def arm_value_fault(
        self,
        at_call: int,
        mode: str = "nan",
        blowup_factor: float = 1e9,
    ) -> "FaultInjector":
        """Corrupt the objective *value* of the ``at_call``-th evaluation:
        ``mode="nan"`` returns NaN, ``mode="blowup"`` multiplies the true
        value by ``blowup_factor`` (exercising restart-from-best).
        One-shot, like :meth:`arm_gradient_fault`.
        """
        if mode not in ("nan", "blowup"):
            raise ReproError(f"value fault mode must be 'nan' or 'blowup', got {mode!r}")
        self._gradient_faults.append(
            _GradientFault(
                at_call=at_call,
                mode="value_nan" if mode == "nan" else "value_blowup",
                blowup_factor=blowup_factor,
            )
        )
        return self

    def arm_solve_fault(
        self,
        label: Optional[str] = None,
        layout_name: Optional[str] = None,
        times: int = 1,
        error: Optional[Exception] = None,
    ) -> "FaultInjector":
        """Raise inside ``solve`` whenever a wrapped factory's solver
        matches ``(label, layout_name)`` — ``None`` matches anything.
        The first ``times`` matching attempts fail (``times=1`` with one
        harness retry yields a ``recovered`` cell); further attempts
        succeed.
        """
        self._solve_faults.append(
            _SolveFault(
                label=label, layout_name=layout_name, times=times,
                stall_s=None, error=error,
            )
        )
        return self

    def arm_solve_stall(
        self,
        seconds: float,
        label: Optional[str] = None,
        layout_name: Optional[str] = None,
        times: int = 1,
    ) -> "FaultInjector":
        """Sleep ``seconds`` inside matching ``solve`` calls before
        delegating — armed past a harness cell budget this drives the
        timeout path deterministically.
        """
        self._solve_faults.append(
            _SolveFault(
                label=label, layout_name=layout_name, times=times,
                stall_s=seconds, error=None,
            )
        )
        return self

    # -- seams -------------------------------------------------------------

    def wrap_objective(self, objective) -> "FaultyObjective":
        """Interpose on an objective (the optimizer-side seam)."""
        return FaultyObjective(objective, self)

    def wrap_factory(
        self, label: str, factory: Callable[[], object]
    ) -> Callable[[], object]:
        """Interpose on a solver factory (the harness-side seam)."""
        return FaultySolverFactory(label, factory, self)

    # -- firing (internal) -------------------------------------------------

    def _fire_gradient(
        self, call_index: int, value: float, gradient: np.ndarray
    ) -> Tuple[float, np.ndarray]:
        for fault in self._gradient_faults:
            if fault.fired or fault.at_call != call_index:
                continue
            fault.fired = True
            if fault.mode in ("nan", "inf"):
                bad = np.nan if fault.mode == "nan" else np.inf
                corrupted = np.array(gradient, dtype=np.float64, copy=True)
                flat = corrupted.reshape(-1)
                count = max(1, int(round(fault.fraction * flat.size)))
                # Deterministic positions: evenly strided through the array.
                stride = max(1, flat.size // count)
                flat[::stride][:count] = bad
                self.log.append(
                    FaultRecord(
                        kind="gradient",
                        where=f"call {call_index}",
                        detail=f"{fault.mode} x{count}",
                    )
                )
                gradient = corrupted
            elif fault.mode == "value_nan":
                self.log.append(
                    FaultRecord(kind="value", where=f"call {call_index}", detail="nan")
                )
                value = float("nan")
            elif fault.mode == "value_blowup":
                self.log.append(
                    FaultRecord(
                        kind="value",
                        where=f"call {call_index}",
                        detail=f"x{fault.blowup_factor:g}",
                    )
                )
                value = value * fault.blowup_factor if value != 0 else fault.blowup_factor
        return value, gradient

    def _fire_solve(self, label: str, layout_name: str) -> None:
        for fault in self._solve_faults:
            if not fault.matches(label, layout_name):
                continue
            if fault.fired_count >= fault.times:
                continue
            fault.fired_count += 1
            where = f"{label} on {layout_name} attempt {fault.fired_count}"
            if fault.stall_s is not None:
                self.log.append(
                    FaultRecord(kind="solve_stall", where=where,
                                detail=f"{fault.stall_s:g}s")
                )
                time.sleep(fault.stall_s)
                return
            error = fault.error or InjectedFault(
                f"injected solve failure: {where}"
            )
            self.log.append(
                FaultRecord(kind="solve_raise", where=where,
                            detail=type(error).__name__)
            )
            raise error


class FaultyObjective:
    """Objective proxy corrupting armed ``value_and_gradient`` calls.

    Delegates everything else (``value``, ``last_term_values``,
    ``required_corners``...) to the wrapped objective, so line searches
    and telemetry behave exactly as they would un-wrapped.
    """

    def __init__(self, inner, injector: FaultInjector) -> None:
        self._inner = inner
        self._injector = injector
        self.calls = 0

    def value_and_gradient(self, ctx):
        value, gradient = self._inner.value_and_gradient(ctx)
        value, gradient = self._injector._fire_gradient(self.calls, value, gradient)
        self.calls += 1
        return value, gradient

    def value(self, ctx):
        return self._inner.value(ctx)

    def __getattr__(self, name):
        return getattr(self._inner, name)


class FaultySolverFactory:
    """Factory proxy whose solvers fire armed solve faults first."""

    def __init__(
        self, label: str, factory: Callable[[], object], injector: FaultInjector
    ) -> None:
        self._label = label
        self._factory = factory
        self._injector = injector

    def __call__(self):
        return _FaultySolver(self._label, self._factory(), self._injector)


class _FaultySolver:
    def __init__(self, label: str, inner, injector: FaultInjector) -> None:
        self._label = label
        self._inner = inner
        self._injector = injector

    def solve(self, layout, *args, **kwargs):
        self._injector._fire_solve(self._label, layout.name)
        return self._inner.solve(layout, *args, **kwargs)

    def __getattr__(self, name):
        return getattr(self._inner, name)
