"""ICCAD 2013 contest scoring function (paper Eq. 22).

    Score = Runtime + 4 * PVBand + 5000 * #EPE_Violations
            + 10000 * #Shape_Violations

Lower is better.  PV band is in nm^2, runtime in seconds; the EPE and
shape weights follow the published contest scoring (the paper optimizes
its alpha/beta against this function).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import constants
from ..config import GridSpec
from ..geometry.layout import Layout
from ..geometry.raster import rasterize_layout
from ..litho.simulator import LithographySimulator
from .epe import measure_epe
from .pvband import pv_band_area_for_mask
from .shapes import count_shape_violations


@dataclass(frozen=True)
class ScoreBreakdown:
    """Contest score with its components.

    Attributes:
        runtime_s: optimizer wall-clock in seconds.
        pv_band_nm2: PV-band area.
        epe_violations: number of EPE violations at the nominal condition.
        shape_violations: number of holes/extra printed components.
    """

    runtime_s: float
    pv_band_nm2: float
    epe_violations: int
    shape_violations: int

    @property
    def total(self) -> float:
        """The Eq. 22 scalar score (lower is better)."""
        return (
            self.runtime_s
            + constants.SCORE_PVB_WEIGHT * self.pv_band_nm2
            + constants.SCORE_EPE_WEIGHT * self.epe_violations
            + constants.SCORE_SHAPE_WEIGHT * self.shape_violations
        )

    def __str__(self) -> str:
        return (
            f"score={self.total:.0f} (#EPE={self.epe_violations}, "
            f"PVB={self.pv_band_nm2:.0f} nm^2, shapes={self.shape_violations}, "
            f"runtime={self.runtime_s:.1f} s)"
        )


def contest_score(
    sim: LithographySimulator,
    mask: np.ndarray,
    layout: Layout,
    runtime_s: float = 0.0,
    grid: GridSpec | None = None,
) -> ScoreBreakdown:
    """Evaluate the full contest score of a mask for a layout.

    The mask is binarized, printed at the nominal condition for EPE and
    shape checks, and across all corners for the PV band.

    Args:
        sim: configured simulator.
        mask: optimized mask (continuous masks are binarized first).
        layout: the design target.
        runtime_s: wall-clock seconds to charge to the score.
        grid: grid override (defaults to the simulator's grid).

    Returns:
        The component-wise breakdown; ``.total`` gives Eq. 22.
    """
    grid = grid or sim.grid
    binary = (np.asarray(mask, dtype=np.float64) > 0.5).astype(np.float64)
    printed = sim.print_binary(binary)
    target = rasterize_layout(layout, grid)
    epe_report = measure_epe(printed, layout, grid)
    return ScoreBreakdown(
        runtime_s=runtime_s,
        pv_band_nm2=pv_band_area_for_mask(sim, binary),
        epe_violations=epe_report.num_violations,
        shape_violations=count_shape_violations(printed, target),
    )
