"""Evaluation metrics: EPE violations, PV band, shape violations, contest
score, mask rules, mask complexity, and aerial-image quality."""

from .epe import (
    EPEMeasurement,
    EPEReport,
    measure_epe,
    measure_epe_subpixel,
    subpixel_edge_position,
)
from .pvband import pv_band_area_for_mask
from .shapes import count_holes, count_shape_violations
from .score import ScoreBreakdown, contest_score
from .mrc import MRCReport, check_mask_rules, space_violations, width_violations
from .complexity import MaskComplexity, mask_complexity
from .imagequality import (
    EdgeSlope,
    edge_slopes,
    hotspot_samples,
    image_contrast,
    image_log_slope,
)
from .cd import (
    CDMeasurement,
    Gauge,
    cd_uniformity,
    gauges_for_layout,
    measure_cd,
    measure_gauges,
)

__all__ = [
    "Gauge",
    "CDMeasurement",
    "measure_cd",
    "measure_gauges",
    "cd_uniformity",
    "gauges_for_layout",
    "EPEMeasurement",
    "EPEReport",
    "measure_epe",
    "measure_epe_subpixel",
    "subpixel_edge_position",
    "pv_band_area_for_mask",
    "count_holes",
    "count_shape_violations",
    "ScoreBreakdown",
    "contest_score",
    "MRCReport",
    "check_mask_rules",
    "width_violations",
    "space_violations",
    "MaskComplexity",
    "mask_complexity",
    "EdgeSlope",
    "edge_slopes",
    "hotspot_samples",
    "image_contrast",
    "image_log_slope",
]
