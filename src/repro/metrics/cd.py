"""Critical-dimension (CD) measurement through cutlines (gauges).

A gauge is a measurement cutline across a feature; the CD is the
printed width along it.  CD error and CD uniformity across process
conditions are the fab's day-to-day counterparts of the contest's
EPE/PVB metrics, so a mask-optimization library needs them for
validation against production flows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..config import GridSpec
from ..errors import GridError
from ..geometry.layout import Layout
from ..utils.validation import ensure_binary_image


@dataclass(frozen=True)
class Gauge:
    """One CD measurement cutline.

    Attributes:
        name: identifier.
        x, y: cutline centre in nm (should sit inside the feature).
        horizontal: True measures width along x; False along y.
        target_cd_nm: drawn dimension for error reporting.
    """

    name: str
    x: float
    y: float
    horizontal: bool
    target_cd_nm: float


@dataclass(frozen=True)
class CDMeasurement:
    """Measured CD at one gauge.

    Attributes:
        gauge: where it was measured.
        cd_nm: printed dimension, or None if nothing printed at the gauge.
    """

    gauge: Gauge
    cd_nm: Optional[float]

    @property
    def error_nm(self) -> Optional[float]:
        """Signed CD error (printed - target), None when unprinted."""
        if self.cd_nm is None:
            return None
        return self.cd_nm - self.gauge.target_cd_nm


def measure_cd(printed: np.ndarray, gauge: Gauge, grid: GridSpec) -> CDMeasurement:
    """Printed dimension along one gauge's cutline.

    Walks outward from the gauge centre pixel in both directions along
    the measurement axis and counts contiguous printed pixels.
    """
    img = ensure_binary_image(printed, "printed")
    if img.shape != grid.shape:
        raise GridError(f"printed shape {img.shape} != grid {grid.shape}")
    rows, cols = img.shape
    dx = grid.pixel_nm
    row = min(max(int(gauge.y / dx), 0), rows - 1)
    col = min(max(int(gauge.x / dx), 0), cols - 1)
    if not img[row, col]:
        return CDMeasurement(gauge=gauge, cd_nm=None)

    if gauge.horizontal:
        line = img[row, :]
        center = col
    else:
        line = img[:, col]
        center = row
    lo = center
    while lo > 0 and line[lo - 1]:
        lo -= 1
    hi = center
    while hi < len(line) - 1 and line[hi + 1]:
        hi += 1
    return CDMeasurement(gauge=gauge, cd_nm=(hi - lo + 1) * dx)


def measure_gauges(
    printed: np.ndarray, gauges: Sequence[Gauge], grid: GridSpec
) -> List[CDMeasurement]:
    """CD at every gauge."""
    return [measure_cd(printed, g, grid) for g in gauges]


def cd_uniformity(measurements_per_condition: Sequence[Sequence[CDMeasurement]]) -> float:
    """Worst-case CD range (nm) across process conditions.

    Args:
        measurements_per_condition: for each process condition, the gauge
            measurements in the same gauge order.

    Returns:
        The largest (max - min) printed CD over conditions among gauges
        that printed everywhere; infinite when a gauge failed to print
        under some condition (the CD is unbounded-bad there).
    """
    if not measurements_per_condition:
        raise GridError("need at least one condition")
    num_gauges = len(measurements_per_condition[0])
    worst = 0.0
    for i in range(num_gauges):
        values = [conditions[i].cd_nm for conditions in measurements_per_condition]
        if any(v is None for v in values):
            return float("inf")
        worst = max(worst, max(values) - min(values))
    return worst


def gauges_for_layout(layout: Layout, max_per_shape: int = 1) -> List[Gauge]:
    """Auto-place one width gauge at each shape's bbox centre.

    The gauge measures across the bbox's narrow direction — the
    feature's critical dimension for simple shapes.  Complex shapes
    (L/T/U) get a usable if approximate gauge; hand-placed gauges are
    preferred for precision work.
    """
    if max_per_shape < 1:
        raise GridError("max_per_shape must be >= 1")
    gauges: List[Gauge] = []
    for index, poly in enumerate(layout.polygons):
        bbox = poly.bbox
        cx, cy = bbox.center
        horizontal = bbox.width <= bbox.height  # measure across the narrow axis
        target = bbox.width if horizontal else bbox.height
        gauges.append(
            Gauge(
                name=f"{layout.name}_g{index}",
                x=cx,
                y=cy,
                horizontal=horizontal,
                target_cd_nm=target,
            )
        )
    return gauges
