"""Shape-violation detection (paper Eq. 22: "existence of holes in the
final contour").

A hole is an enclosed background region inside a printed feature — resist
that should have cleared (or printed) but forms an island.  Holes are
catastrophic (they cannot be fixed by edge movement), so the contest
scores them with a large penalty.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from ..utils.validation import ensure_binary_image

#: 4-connectivity for background regions (matches 8-connectivity features).
_BG_STRUCTURE = np.array([[0, 1, 0], [1, 1, 1], [0, 1, 0]], dtype=bool)


def count_holes(printed: np.ndarray) -> int:
    """Number of enclosed background regions (holes) in a printed image."""
    img = ensure_binary_image(printed, "printed")
    background = ~img
    labels, count = ndimage.label(background, structure=_BG_STRUCTURE)
    if count == 0:
        return 0
    border_labels = set(np.unique(labels[0, :])) | set(np.unique(labels[-1, :]))
    border_labels |= set(np.unique(labels[:, 0])) | set(np.unique(labels[:, -1]))
    border_labels.discard(0)
    all_labels = set(range(1, count + 1))
    return len(all_labels - border_labels)


def count_shape_violations(printed: np.ndarray, target: np.ndarray | None = None) -> int:
    """Shape violations of a printed image.

    Counts holes in the printed contour; when the target is supplied,
    *extra* printed components (features merged by bridging do not add
    components, but spurious SRAF printing does) are counted as well.

    Args:
        printed: binary printed image at the nominal condition.
        target: optional binary target image for the component comparison.

    Returns:
        Number of violations (0 for a healthy result).
    """
    violations = count_holes(printed)
    if target is not None:
        tgt = ensure_binary_image(target, "target")
        printed_components = int(ndimage.label(printed)[1])
        target_components = int(ndimage.label(tgt)[1])
        if printed_components > target_components:
            violations += printed_components - target_components
    return violations
