"""Edge placement error measurement (paper Sec. 3.2, Fig. 3).

EPE at a sample point is the displacement between the target edge and the
printed contour, measured along the edge normal, under the nominal
process condition.  A sample *violates* when |EPE| exceeds th_epe (15 nm)
or when no printed edge exists near the sample at all (the feature failed
to print there — counted as a violation, since the distortion certainly
exceeds any threshold).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from .. import constants
from ..config import GridSpec
from ..errors import GridError
from ..geometry.contours import edge_displacement
from ..geometry.edges import EdgeOrientation, SamplePoint, generate_sample_points
from ..geometry.layout import Layout
from ..utils.validation import ensure_binary_image


@dataclass(frozen=True)
class EPEMeasurement:
    """EPE at one sample point.

    Attributes:
        sample: the measured sample point.
        epe_nm: signed EPE (positive = printed edge outside target), or
            None when no printed edge was found within the search range.
        violation: whether this sample counts as an EPE violation.
    """

    sample: SamplePoint
    epe_nm: Optional[float]
    violation: bool


@dataclass
class EPEReport:
    """All EPE measurements for one printed image."""

    measurements: List[EPEMeasurement]
    threshold_nm: float

    @property
    def num_samples(self) -> int:
        return len(self.measurements)

    @property
    def num_violations(self) -> int:
        return sum(1 for m in self.measurements if m.violation)

    @property
    def violations(self) -> List[EPEMeasurement]:
        return [m for m in self.measurements if m.violation]

    def max_abs_epe(self) -> Optional[float]:
        """Largest |EPE| among samples where an edge was found."""
        values = [abs(m.epe_nm) for m in self.measurements if m.epe_nm is not None]
        return max(values) if values else None

    def mean_abs_epe(self) -> Optional[float]:
        """Mean |EPE| among samples where an edge was found."""
        values = [abs(m.epe_nm) for m in self.measurements if m.epe_nm is not None]
        return float(np.mean(values)) if values else None


def measure_epe(
    printed: np.ndarray,
    layout: Layout,
    grid: GridSpec,
    threshold_nm: float = constants.EPE_THRESHOLD_NM,
    sample_spacing_nm: float = constants.EPE_SAMPLE_SPACING_NM,
    samples: Optional[Sequence[SamplePoint]] = None,
    search_factor: float = 3.0,
) -> EPEReport:
    """Measure EPE at every boundary sample of a layout.

    Args:
        printed: binary printed image under the nominal condition.
        layout: the target layout (provides boundary samples).
        grid: pixel grid.
        threshold_nm: violation threshold th_epe (paper: 15 nm).
        sample_spacing_nm: sample ladder spacing (paper: 40 nm).
        samples: precomputed sample points (regenerated when omitted).
        search_factor: printed-edge search range as a multiple of the
            threshold; beyond it the sample is a hard violation.

    Returns:
        The per-sample report.
    """
    printed = ensure_binary_image(printed, "printed")
    if samples is None:
        samples = generate_sample_points(layout, grid, spacing_nm=sample_spacing_nm)
    max_search = max(int(round(search_factor * threshold_nm / grid.pixel_nm)), 1)
    measurements: List[EPEMeasurement] = []
    for sample in samples:
        axis = 0 if sample.orientation is EdgeOrientation.HORIZONTAL else 1
        disp_px = edge_displacement(
            printed,
            sample.row,
            sample.col,
            axis=axis,
            interior_sign=sample.interior_sign,
            max_search=max_search,
        )
        if disp_px is None:
            measurements.append(EPEMeasurement(sample, None, True))
            continue
        epe_nm = disp_px * grid.pixel_nm
        measurements.append(
            EPEMeasurement(sample, epe_nm, abs(epe_nm) > threshold_nm)
        )
    return EPEReport(measurements=measurements, threshold_nm=threshold_nm)


def subpixel_edge_position(
    aerial: np.ndarray,
    sample: SamplePoint,
    grid: GridSpec,
    threshold: float,
    max_search_nm: float,
) -> Optional[float]:
    """Printed-edge coordinate along a sample's normal, to sub-pixel precision.

    Walks the aerial intensity along the sample's normal and linearly
    interpolates the resist-threshold crossing nearest the target edge.
    Pixel-quantized EPE (from the binary image) is limited to the grid
    resolution — at 4 nm/px the 15 nm criterion quantizes to 3-4 px;
    interpolation in intensity recovers the continuous edge.

    Args:
        aerial: aerial intensity image at the measurement condition.
        sample: the boundary sample.
        grid: pixel grid.
        threshold: resist threshold (dose-scaled by the caller if needed).
        max_search_nm: search range on either side of the target edge.

    Returns:
        Edge coordinate in nm along the measurement axis (x for vertical
        edges, y for horizontal), or None when no crossing exists.
    """
    img = np.asarray(aerial, dtype=np.float64)
    if img.shape != grid.shape:
        raise GridError(f"aerial shape {img.shape} != grid {grid.shape}")
    rows, cols = img.shape
    dx = grid.pixel_nm
    max_steps = max(int(np.ceil(max_search_nm / dx)), 2)

    # Pixel ladder along the normal, from inside (-max) to outside (+max),
    # measured in outward steps from the sample's interior pixel.
    offsets = np.arange(-max_steps, max_steps + 1)
    values = np.empty(len(offsets))
    positions = np.empty(len(offsets))
    for k, off in enumerate(offsets):
        delta = -sample.interior_sign * off  # outward = -interior_sign
        if sample.orientation is EdgeOrientation.HORIZONTAL:
            r = min(max(sample.row + delta, 0), rows - 1)
            c = sample.col
            positions[k] = (r + 0.5) * dx
        else:
            r = sample.row
            c = min(max(sample.col + delta, 0), cols - 1)
            positions[k] = (c + 0.5) * dx
        values[k] = img[r, c]

    edge_coord = sample.y if sample.orientation is EdgeOrientation.HORIZONTAL else sample.x
    best: Optional[float] = None
    diff = values - threshold
    for k in range(len(offsets) - 1):
        if diff[k] == 0.0:
            crossing = positions[k]
        elif diff[k] * diff[k + 1] < 0:
            frac = diff[k] / (diff[k] - diff[k + 1])
            crossing = positions[k] + frac * (positions[k + 1] - positions[k])
        else:
            continue
        if best is None or abs(crossing - edge_coord) < abs(best - edge_coord):
            best = crossing
    return best


def measure_epe_subpixel(
    aerial: np.ndarray,
    layout: Layout,
    grid: GridSpec,
    threshold: float = 0.5,
    threshold_nm: float = constants.EPE_THRESHOLD_NM,
    sample_spacing_nm: float = constants.EPE_SAMPLE_SPACING_NM,
    samples: Optional[Sequence[SamplePoint]] = None,
    search_factor: float = 3.0,
) -> EPEReport:
    """Sub-pixel EPE measurement from the aerial intensity.

    Same contract as :func:`measure_epe`, but EPE values are continuous:
    the printed edge is located by interpolating the aerial image's
    threshold crossing instead of scanning the binary printed image.

    Args:
        aerial: aerial intensity at the measurement condition (apply the
            dose factor before calling, or scale ``threshold``).
        threshold: resist threshold th_r.
        (other arguments as in :func:`measure_epe`)
    """
    if samples is None:
        samples = generate_sample_points(layout, grid, spacing_nm=sample_spacing_nm)
    max_search_nm = search_factor * threshold_nm
    measurements: List[EPEMeasurement] = []
    for sample in samples:
        position = subpixel_edge_position(
            aerial, sample, grid, threshold, max_search_nm
        )
        if position is None:
            measurements.append(EPEMeasurement(sample, None, True))
            continue
        edge_coord = (
            sample.y if sample.orientation is EdgeOrientation.HORIZONTAL else sample.x
        )
        outward = -sample.interior_sign
        epe_nm = (position - edge_coord) * outward
        measurements.append(
            EPEMeasurement(sample, epe_nm, abs(epe_nm) > threshold_nm)
        )
    return EPEReport(measurements=measurements, threshold_nm=threshold_nm)
