"""PV-band metric on an optimized mask (wraps the process-level computation)."""

from __future__ import annotations

import numpy as np

from ..litho.simulator import LithographySimulator


def pv_band_area_for_mask(sim: LithographySimulator, mask: np.ndarray) -> float:
    """PV-band area (nm^2) of a mask across the simulator's process corners.

    Contest convention: the mask is binarized before evaluation, since the
    manufactured mask cannot hold intermediate transmissions.
    """
    binary = (np.asarray(mask, dtype=np.float64) > 0.5).astype(np.float64)
    return sim.pv_band_area(binary)
