"""Aerial-image quality metrics: image log-slope and contrast.

The normalized image log-slope (NILS) at a feature edge predicts how
much the printed edge moves per percent of dose error — the classic
lithographic quality metric behind exposure latitude.  Low-NILS edges
are hotspot candidates: they are where PV-band area concentrates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..config import GridSpec
from ..errors import GridError
from ..geometry.edges import EdgeOrientation, SamplePoint


@dataclass(frozen=True)
class EdgeSlope:
    """Image slope measured at one boundary sample.

    Attributes:
        sample: where it was measured.
        ils: image log-slope |dI/dx| / I at the target edge (1/nm).
        nils: ILS normalized by the feature width (dimensionless).
    """

    sample: SamplePoint
    ils: float
    nils: float


def image_log_slope(
    intensity: np.ndarray,
    sample: SamplePoint,
    grid: GridSpec,
    feature_width_nm: float,
) -> EdgeSlope:
    """ILS/NILS at one boundary sample by central differences.

    Args:
        intensity: aerial image at the nominal condition.
        sample: boundary sample (the gradient is taken along its normal).
        grid: pixel grid.
        feature_width_nm: drawn width of the feature for normalization.
    """
    img = np.asarray(intensity, dtype=np.float64)
    if img.shape != grid.shape:
        raise GridError(f"intensity shape {img.shape} != grid {grid.shape}")
    rows, cols = img.shape
    r, c = sample.row, sample.col
    if sample.orientation is EdgeOrientation.HORIZONTAL:
        lo = img[max(r - 1, 0), c]
        hi = img[min(r + 1, rows - 1), c]
    else:
        lo = img[r, max(c - 1, 0)]
        hi = img[r, min(c + 1, cols - 1)]
    derivative = abs(hi - lo) / (2.0 * grid.pixel_nm)
    local = max(img[r, c], 1e-12)
    ils = derivative / local
    return EdgeSlope(sample=sample, ils=ils, nils=ils * feature_width_nm)


def edge_slopes(
    intensity: np.ndarray,
    samples: List[SamplePoint],
    grid: GridSpec,
    feature_width_nm: float = 70.0,
) -> List[EdgeSlope]:
    """ILS/NILS at every sample point."""
    return [image_log_slope(intensity, s, grid, feature_width_nm) for s in samples]


def hotspot_samples(
    slopes: List[EdgeSlope], nils_threshold: float = 1.0
) -> List[EdgeSlope]:
    """Samples whose NILS falls below the threshold (hotspot candidates)."""
    return [s for s in slopes if s.nils < nils_threshold]


def image_contrast(intensity: np.ndarray, target: np.ndarray) -> float:
    """Michelson-style contrast between pattern interiors and exteriors.

    ``(I_in - I_out) / (I_in + I_out)`` using the mean intensity over the
    target's interior vs exterior pixels.  Higher is better; a value near
    zero means the image barely distinguishes pattern from background.
    """
    img = np.asarray(intensity, dtype=np.float64)
    tgt = np.asarray(target) > 0.5
    if img.shape != tgt.shape:
        raise GridError("intensity and target shapes differ")
    if not tgt.any() or tgt.all():
        raise GridError("target must contain both pattern and background")
    mean_in = float(img[tgt].mean())
    mean_out = float(img[~tgt].mean())
    denom = mean_in + mean_out
    return (mean_in - mean_out) / denom if denom > 0 else 0.0
