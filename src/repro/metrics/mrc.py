"""Mask rule checking (MRC).

Free-form ILT masks must still obey the mask shop's minimum width and
spacing rules.  These checks flag the violating regions by morphology:
a figure narrower than min-width disappears under opening; a gap
narrower than min-space disappears under closing of the background.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np
from scipy import ndimage

from ..config import GridSpec
from ..errors import GridError


@dataclass(frozen=True)
class MRCReport:
    """Mask-rule-check outcome.

    Attributes:
        min_width_nm: rule checked.
        min_space_nm: rule checked.
        width_violation_px: pixels belonging to sub-min-width figures.
        space_violation_px: background pixels inside sub-min spaces.
    """

    min_width_nm: float
    min_space_nm: float
    width_violation_px: int
    space_violation_px: int

    @property
    def clean(self) -> bool:
        return self.width_violation_px == 0 and self.space_violation_px == 0


def _structure(rule_nm: float, grid: GridSpec) -> np.ndarray | None:
    px = int(round(rule_nm / grid.pixel_nm))
    if px <= 1:
        return None
    return np.ones((px, px), dtype=bool)


def width_violations(mask: np.ndarray, grid: GridSpec, min_width_nm: float) -> np.ndarray:
    """Pixels of transmitting regions narrower than the width rule."""
    m = np.asarray(mask) > 0.5
    if m.shape != grid.shape:
        raise GridError(f"mask shape {m.shape} != grid {grid.shape}")
    structure = _structure(min_width_nm, grid)
    if structure is None:
        return np.zeros_like(m)
    survives = ndimage.binary_opening(m, structure=structure)
    return m & ~survives


def space_violations(mask: np.ndarray, grid: GridSpec, min_space_nm: float) -> np.ndarray:
    """Background pixels inside gaps narrower than the spacing rule."""
    m = np.asarray(mask) > 0.5
    if m.shape != grid.shape:
        raise GridError(f"mask shape {m.shape} != grid {grid.shape}")
    structure = _structure(min_space_nm, grid)
    if structure is None:
        return np.zeros_like(m)
    # Pad with background so the clip border never creates false gaps.
    pad = structure.shape[0]
    padded = np.pad(m, pad, mode="constant", constant_values=False)
    closed = ndimage.binary_closing(padded, structure=structure)
    gaps = closed & ~padded
    return gaps[pad:-pad, pad:-pad]


def check_mask_rules(
    mask: np.ndarray,
    grid: GridSpec,
    min_width_nm: float = 20.0,
    min_space_nm: float = 20.0,
) -> MRCReport:
    """Run both rules and return the violation report.

    Default rules (20 nm width/space) are loose 193i mask-scale values
    (mask features are 4x the wafer dimensions on a 4x reticle; 20 nm
    wafer scale = 80 nm mask scale).
    """
    return MRCReport(
        min_width_nm=min_width_nm,
        min_space_nm=min_space_nm,
        width_violation_px=int(width_violations(mask, grid, min_width_nm).sum()),
        space_violation_px=int(space_violations(mask, grid, min_space_nm).sum()),
    )
