"""Mask complexity metrics — e-beam write-cost proxies.

ILT masks are expensive to write because they decompose into many more
shots than Manhattan OPC masks (the concern of the paper's ref [6]).
These metrics quantify that cost without a full fracturing engine:

* ``figure_count``  — connected transmitting regions,
* ``edge_length``   — total boundary length (nm),
* ``corner_count``  — convex + concave corner transitions,
* ``shot_count``    — rectangles in a row-run decomposition, the
  standard lower-bound proxy for VSB shot count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

from ..config import GridSpec
from ..errors import GridError


@dataclass(frozen=True)
class MaskComplexity:
    """Complexity summary of one mask.

    Attributes:
        figure_count: number of connected transmitting regions.
        edge_length_nm: total boundary length.
        corner_count: boundary direction changes (jaggedness measure).
        shot_count: rectangles in a greedy row-run decomposition.
    """

    figure_count: int
    edge_length_nm: float
    corner_count: int
    shot_count: int


def _validated(mask: np.ndarray, grid: GridSpec) -> np.ndarray:
    m = np.asarray(mask) > 0.5
    if m.shape != grid.shape:
        raise GridError(f"mask shape {m.shape} != grid {grid.shape}")
    return m


def edge_length_nm(mask: np.ndarray, grid: GridSpec) -> float:
    """Total boundary length: set/unset transitions times the pixel size."""
    m = _validated(mask, grid)
    padded = np.pad(m, 1, mode="constant", constant_values=False)
    horizontal = np.count_nonzero(padded[1:, :] != padded[:-1, :])
    vertical = np.count_nonzero(padded[:, 1:] != padded[:, :-1])
    return (horizontal + vertical) * grid.pixel_nm


def corner_count(mask: np.ndarray, grid: GridSpec) -> int:
    """Boundary corners, counted via 2x2 neighbourhood parity.

    A 2x2 window holding an odd number of set pixels sits on a corner of
    the boundary; this counts convex and concave corners alike.
    """
    m = _validated(mask, grid)
    padded = np.pad(m, 1, mode="constant", constant_values=False).astype(np.int8)
    window_sum = (
        padded[:-1, :-1] + padded[:-1, 1:] + padded[1:, :-1] + padded[1:, 1:]
    )
    return int(np.count_nonzero(window_sum % 2 == 1))


def shot_count(mask: np.ndarray, grid: GridSpec) -> int:
    """Rectangles in a greedy decomposition: maximal row runs merged
    vertically when horizontally identical — a VSB shot-count proxy."""
    m = _validated(mask, grid)
    shots = 0
    previous_runs: set = set()
    for row in m:
        # Maximal runs [start, end) of this row.
        diff = np.diff(row.astype(np.int8))
        starts = list(np.nonzero(diff == 1)[0] + 1)
        ends = list(np.nonzero(diff == -1)[0] + 1)
        if row[0]:
            starts.insert(0, 0)
        if row[-1]:
            ends.append(len(row))
        runs = set(zip(starts, ends))
        # A run identical to one in the previous row extends that shot.
        shots += len(runs - previous_runs)
        previous_runs = runs
    return shots


def mask_complexity(mask: np.ndarray, grid: GridSpec) -> MaskComplexity:
    """All complexity metrics for a mask."""
    m = _validated(mask, grid)
    return MaskComplexity(
        figure_count=int(ndimage.label(m)[1]),
        edge_length_nm=edge_length_nm(m, grid),
        corner_count=corner_count(m, grid),
        shot_count=shot_count(m, grid),
    )
