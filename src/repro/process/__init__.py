"""Process-window modelling: corners, PV band, and window analysis."""

from .corners import ProcessCorner, enumerate_corners, nominal_corner
from .pvband import pv_band, pv_band_area
from .window_analysis import (
    ProcessWindowMap,
    WindowPoint,
    sweep_process_window,
)

__all__ = [
    "ProcessCorner",
    "enumerate_corners",
    "nominal_corner",
    "pv_band",
    "pv_band_area",
    "ProcessWindowMap",
    "WindowPoint",
    "sweep_process_window",
]
