"""Process-window analysis: exposure latitude and depth of focus.

Beyond the contest's PV-band scalar, lithographers characterize a mask
by its *process window*: the set of (dose, defocus) conditions under
which the design still prints within the EPE tolerance.  This module
sweeps the window on a grid of conditions and extracts exposure
latitude (at best focus) and depth of focus (at nominal dose) — the
natural extension experiments for a process-window-aware optimizer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Sequence

import numpy as np

from ..config import GridSpec
from ..errors import ProcessError
from ..geometry.layout import Layout
from .corners import ProcessCorner

if TYPE_CHECKING:  # avoid a circular import: the simulator imports this package
    from ..litho.simulator import LithographySimulator


@dataclass(frozen=True)
class WindowPoint:
    """EPE outcome at one (defocus, dose) condition."""

    defocus_nm: float
    dose: float
    epe_violations: int

    @property
    def passes(self) -> bool:
        return self.epe_violations == 0


@dataclass
class ProcessWindowMap:
    """EPE-violation counts over a (defocus x dose) condition grid."""

    points: List[WindowPoint]

    def passing(self) -> List[WindowPoint]:
        return [p for p in self.points if p.passes]

    def exposure_latitude(self, at_defocus_nm: float = 0.0) -> float:
        """Fractional dose range that passes at the given focus.

        Returns (dose_max - dose_min) over passing points, or 0.0 when
        nothing passes at that focus.
        """
        doses = [p.dose for p in self.passing() if p.defocus_nm == at_defocus_nm]
        return (max(doses) - min(doses)) if len(doses) >= 2 else 0.0

    def depth_of_focus(self, at_dose: float = 1.0) -> float:
        """Defocus span (nm) that passes at the given dose."""
        focuses = [p.defocus_nm for p in self.passing() if p.dose == at_dose]
        return (max(focuses) - min(focuses)) if len(focuses) >= 2 else 0.0

    def pass_fraction(self) -> float:
        """Fraction of swept conditions that print violation-free."""
        return len(self.passing()) / len(self.points) if self.points else 0.0


def sweep_process_window(
    sim: "LithographySimulator",
    mask: np.ndarray,
    layout: Layout,
    defocus_values_nm: Sequence[float] = (0.0, 10.0, 25.0, 40.0),
    dose_values: Sequence[float] = (0.94, 0.96, 0.98, 1.0, 1.02, 1.04, 1.06),
    grid: GridSpec | None = None,
) -> ProcessWindowMap:
    """Measure EPE violations over a grid of process conditions.

    Args:
        sim: configured simulator (kernel sets are built per new focus).
        mask: the mask under test (binarized before simulation).
        layout: the design target for EPE measurement.
        defocus_values_nm: focus sweep (non-negative; blur is symmetric).
        dose_values: dose sweep around 1.0.
        grid: grid override (defaults to the simulator's grid).

    Returns:
        The full condition map with latitude/DOF accessors.
    """
    # Imported here to keep the module import-safe: the simulator package
    # imports repro.process, so a top-level import would be circular.
    from ..metrics.epe import measure_epe

    if not defocus_values_nm or not dose_values:
        raise ProcessError("process-window sweep needs non-empty condition lists")
    grid = grid or sim.grid
    binary = (np.asarray(mask, dtype=np.float64) > 0.5).astype(np.float64)
    points: List[WindowPoint] = []
    for defocus in defocus_values_nm:
        for dose in dose_values:
            corner = ProcessCorner(f"f{defocus:g}/d{dose:g}", float(defocus), float(dose))
            printed = sim.print_binary(binary, corner)
            report = measure_epe(printed, layout, grid)
            points.append(
                WindowPoint(
                    defocus_nm=float(defocus),
                    dose=float(dose),
                    epe_violations=report.num_violations,
                )
            )
    return ProcessWindowMap(points=points)
