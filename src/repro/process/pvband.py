"""Process variability band (PV band) computation (paper Fig. 4, ref [20]).

The PV band is the region between the outermost and innermost printed
edges over all process conditions: the XOR of the union and intersection
of the per-condition printed images.  Its area (nm^2) is the contest's
process-window metric.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import ProcessError
from ..utils.validation import ensure_binary_image, ensure_same_shape


def pv_band(printed_images: Sequence[np.ndarray]) -> np.ndarray:
    """Boolean PV-band mask: printed under some condition but not all.

    Args:
        printed_images: binary printed images, one per process condition
            (order irrelevant; the nominal image should be included).

    Returns:
        Boolean array — True where edge placement varies across conditions.
    """
    if not printed_images:
        raise ProcessError("pv_band needs at least one printed image")
    images = [ensure_binary_image(img, f"printed[{i}]") for i, img in enumerate(printed_images)]
    ensure_same_shape(*images)
    union = images[0].copy()
    intersection = images[0].copy()
    for img in images[1:]:
        union |= img
        intersection &= img
    return union & ~intersection


def pv_band_area(printed_images: Sequence[np.ndarray], pixel_nm: float) -> float:
    """PV-band area in nm^2."""
    if pixel_nm <= 0:
        raise ProcessError(f"pixel size must be positive, got {pixel_nm}")
    band = pv_band(printed_images)
    return float(np.count_nonzero(band)) * pixel_nm * pixel_nm
