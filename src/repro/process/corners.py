"""Process-condition corners.

The contest setup the paper evaluates on exposes a defocus range of
+/-25 nm and a dose range of +/-2 %.  Defocus blur is symmetric in sign to
first order, so corners enumerate the *worst* focus (full defocus) against
both dose extremes, plus the two dose extremes at best focus:

    nominal:  (focus,   dose 1.00)
    corners:  (focus,   dose 0.98), (focus,   dose 1.02),
              (defocus, dose 0.98), (defocus, dose 1.02)

The defocused/low-dose corner forms the innermost printed contour and the
nominal-focus/high-dose corner the outermost — together they bound the PV
band (paper Fig. 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..config import ProcessConfig
from ..errors import ProcessError


@dataclass(frozen=True)
class ProcessCorner:
    """One lithography process condition.

    Attributes:
        name: human-readable label.
        defocus_nm: focus offset from best focus.
        dose: exposure-dose multiplier (1.0 = nominal).
    """

    name: str
    defocus_nm: float
    dose: float

    def __post_init__(self) -> None:
        if self.dose <= 0:
            raise ProcessError(f"dose must be positive, got {self.dose}")

    @property
    def is_nominal(self) -> bool:
        return self.defocus_nm == 0.0 and self.dose == 1.0


def nominal_corner() -> ProcessCorner:
    """The nominal process condition (best focus, unit dose)."""
    return ProcessCorner("nominal", 0.0, 1.0)


def enumerate_corners(process: ProcessConfig, include_nominal: bool = True) -> List[ProcessCorner]:
    """All process conditions used for PV-band evaluation.

    Args:
        process: defocus/dose ranges.
        include_nominal: prepend the nominal condition (always first when
            present, so callers can index it reliably).

    Returns:
        Nominal (optional) followed by the four (focus x dose) corners.
        Degenerate ranges collapse duplicates away.
    """
    corners: List[ProcessCorner] = []
    if include_nominal:
        corners.append(nominal_corner())
    dose_lo = 1.0 - process.dose_range
    dose_hi = 1.0 + process.dose_range
    defocus = process.defocus_range_nm
    candidates = [
        ProcessCorner("focus/dose-", 0.0, dose_lo),
        ProcessCorner("focus/dose+", 0.0, dose_hi),
        ProcessCorner("defocus/dose-", defocus, dose_lo),
        ProcessCorner("defocus/dose+", defocus, dose_hi),
    ]
    seen = {(c.defocus_nm, c.dose) for c in corners}
    for c in candidates:
        key = (c.defocus_nm, c.dose)
        if key not in seen:
            seen.add(key)
            corners.append(c)
    return corners
