"""Hierarchical span tracer for per-phase runtime breakdowns.

``Tracer.span("name")`` opens a context-managed span; spans nest, and
each unique root-to-leaf *path* (``optimize/iteration/objective``)
accumulates a call count and total monotonic time.  ``Tracer.report()``
renders the aggregated tree with total, self (total minus child) and
percent-of-root columns — the per-phase table behind the Table 3 /
Fig. 6 runtime analyses.

The module also provides :class:`NullTracer`, a no-op stand-in whose
``span()`` returns a shared do-nothing context manager, so instrumented
code pays only one attribute lookup and one method call when tracing is
disabled.

Two capabilities support distributed telemetry (:mod:`repro.obs.distributed`):

* **Timeline mode** (``Tracer(timeline=True)``) additionally records one
  :class:`TraceSlice` per completed span — a timestamped interval on a
  shared epoch clock — which the Chrome trace exporter
  (:mod:`repro.obs.export`) turns into Perfetto-loadable slices.
* **Absorption** (:meth:`Tracer.absorb`) merges span statistics recorded
  elsewhere (another tracer, a worker process's spool file) into this
  tracer's aggregate, keyed by span path, so a parent's ``report()``
  covers work done in forked workers.

Spans are exception-safe: a span exited via a raising body is still
recorded (the context manager's ``__exit__`` always runs) and is
additionally tagged *failed* — ``SpanStats.failures`` counts them and
``report()`` marks the path.
"""

from __future__ import annotations

import time
import uuid
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Union

__all__ = [
    "SpanStats",
    "TraceSlice",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "new_trace_id",
]


def new_trace_id() -> str:
    """Mint a correlation id tying one request to every artifact it leaves.

    Opaque hex, stable across processes: the service stamps it into job
    records, run manifests, queue history, heartbeats, and spools so a
    single grep reconstructs a request's path through the system.
    """
    return uuid.uuid4().hex


@dataclass(frozen=True)
class SpanStats:
    """Aggregated timing of every span recorded under one path.

    Attributes:
        path: slash-joined ancestry, e.g. ``"optimize/iteration"``.
        count: number of spans completed at this path.
        total_s: wall-clock seconds summed over those spans.
        self_s: ``total_s`` minus time spent in child spans.
        failures: how many of those spans exited via an exception.
    """

    path: str
    count: int
    total_s: float
    self_s: float
    failures: int = 0

    @property
    def name(self) -> str:
        return self.path.rsplit("/", 1)[-1]

    @property
    def depth(self) -> int:
        return self.path.count("/")

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly form (the spool-file ``span`` record payload)."""
        return {
            "path": self.path,
            "count": self.count,
            "total_s": self.total_s,
            "self_s": self.self_s,
            "failures": self.failures,
        }


@dataclass(frozen=True)
class TraceSlice:
    """One completed span as a timestamped interval (timeline mode).

    Attributes:
        path: the span's slash-joined path.
        ts_us: start time in microseconds on the epoch clock (Unix time),
            comparable across processes on one machine.
        dur_us: duration in microseconds.
        failed: the span exited via an exception.
    """

    path: str
    ts_us: float
    dur_us: float
    failed: bool = False

    @property
    def name(self) -> str:
        return self.path.rsplit("/", 1)[-1]


class _Span:
    """One live span; created by ``Tracer.span`` and closed on ``__exit__``."""

    __slots__ = ("_tracer", "_name", "_path", "_start")

    def __init__(self, tracer: "Tracer", name: str) -> None:
        self._tracer = tracer
        self._name = name

    def __enter__(self) -> "_Span":
        tracer = self._tracer
        tracer._stack.append(self._name)
        self._path = "/".join(tracer._stack)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        elapsed = time.perf_counter() - self._start
        tracer = self._tracer
        failed = bool(exc_info) and exc_info[0] is not None
        tracer._totals[self._path] = tracer._totals.get(self._path, 0.0) + elapsed
        tracer._counts[self._path] = tracer._counts.get(self._path, 0) + 1
        if failed:
            tracer._failures[self._path] = tracer._failures.get(self._path, 0) + 1
        if tracer._timeline:
            if len(tracer._slices) < tracer.max_slices:
                tracer._slices.append(
                    TraceSlice(
                        path=self._path,
                        ts_us=(tracer._epoch_offset + self._start) * 1e6,
                        dur_us=elapsed * 1e6,
                        failed=failed,
                    )
                )
            else:
                tracer._dropped_slices += 1
        tracer._stack.pop()
        if tracer._stack:
            parent = "/".join(tracer._stack)
            tracer._child_time[parent] = tracer._child_time.get(parent, 0.0) + elapsed


class _NullSpan:
    """Shared do-nothing span (returned by :class:`NullTracer`)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """No-op tracer: the default when observability is disabled."""

    enabled = False
    timeline = False
    current_path = ""

    def span(self, name: str) -> _NullSpan:
        return _NULL_SPAN

    def stats(self) -> Dict[str, SpanStats]:
        return {}

    def slices(self) -> List[TraceSlice]:
        return []

    def absorb(self, stats: object, under: str = "") -> None:
        pass

    def total(self, path: str) -> float:
        return 0.0

    def root_total(self) -> float:
        return 0.0

    def reset(self) -> None:
        pass

    def report(self) -> str:
        return "(tracing disabled)"


class Tracer:
    """Collecting tracer: nestable spans aggregated by path.

    Example:
        >>> tracer = Tracer()
        >>> with tracer.span("outer"):
        ...     with tracer.span("inner"):
        ...         pass
        >>> sorted(tracer.stats())
        ['outer', 'outer/inner']
    """

    enabled = True

    def __init__(self, timeline: bool = False, max_slices: int = 100_000) -> None:
        self._stack: List[str] = []
        self._totals: Dict[str, float] = {}
        self._counts: Dict[str, int] = {}
        self._child_time: Dict[str, float] = {}
        self._failures: Dict[str, int] = {}
        self._timeline = bool(timeline)
        self.max_slices = max_slices
        self._slices: List[TraceSlice] = []
        self._dropped_slices = 0
        # Maps perf_counter readings onto the epoch clock, so slices from
        # different processes land on one comparable time axis.
        self._epoch_offset = time.time() - time.perf_counter()

    @property
    def timeline(self) -> bool:
        """True when this tracer records timestamped slices."""
        return self._timeline

    @property
    def current_path(self) -> str:
        """Slash-joined path of the innermost open span ("" at top level).

        Callers absorbing external stats mid-span use this as the
        ``under`` anchor so the absorbed subtree nests where the work
        actually happened.
        """
        return "/".join(self._stack)

    def span(self, name: str) -> _Span:
        """Open a nestable span; use as a context manager."""
        return _Span(self, name)

    def stats(self) -> Dict[str, SpanStats]:
        """Snapshot of every recorded path's aggregate timing."""
        return {
            path: SpanStats(
                path=path,
                count=self._counts[path],
                total_s=total,
                self_s=max(total - self._child_time.get(path, 0.0), 0.0),
                failures=self._failures.get(path, 0),
            )
            for path, total in self._totals.items()
        }

    def slices(self) -> List[TraceSlice]:
        """Completed-span intervals recorded in timeline mode (a copy)."""
        return list(self._slices)

    @property
    def dropped_slices(self) -> int:
        """Slices discarded after ``max_slices`` was reached."""
        return self._dropped_slices

    def absorb(
        self,
        stats: Union[Mapping[str, SpanStats], Iterable[object]],
        under: str = "",
    ) -> None:
        """Merge externally recorded span statistics into this tracer.

        Accepts a ``stats()`` mapping, an iterable of :class:`SpanStats`,
        or an iterable of their ``as_dict()`` payloads (the spool-file
        form).  Aggregation is keyed by span path; with ``under`` set,
        absorbed paths are re-rooted beneath it (``under/<path>``) and
        the absorbed roots' time is charged to ``under``'s child time so
        the rendered tree nests them naturally.
        """
        items = stats.values() if isinstance(stats, Mapping) else stats
        for item in items:
            if isinstance(item, SpanStats):
                path, count = item.path, item.count
                total, self_s = item.total_s, item.self_s
                failures = item.failures
            else:
                path = str(item["path"])  # type: ignore[index]
                count = int(item.get("count", 1))  # type: ignore[union-attr]
                total = float(item.get("total_s", 0.0))  # type: ignore[union-attr]
                self_s = float(item.get("self_s", total))  # type: ignore[union-attr]
                failures = int(item.get("failures", 0))  # type: ignore[union-attr]
            full = f"{under}/{path}" if under else path
            self._totals[full] = self._totals.get(full, 0.0) + total
            self._counts[full] = self._counts.get(full, 0) + count
            if failures:
                self._failures[full] = self._failures.get(full, 0) + failures
            child = max(total - self_s, 0.0)
            if child:
                self._child_time[full] = self._child_time.get(full, 0.0) + child
            if under and "/" not in path:
                self._child_time[under] = self._child_time.get(under, 0.0) + total

    def total(self, path: str) -> float:
        """Total seconds recorded under one exact path (0.0 if unseen)."""
        return self._totals.get(path, 0.0)

    def root_total(self) -> float:
        """Summed time of all root (depth-0) spans."""
        return sum(t for path, t in self._totals.items() if "/" not in path)

    def reset(self) -> None:
        """Drop all recorded spans (open spans keep nesting correctly)."""
        self._totals.clear()
        self._counts.clear()
        self._child_time.clear()
        self._failures.clear()
        self._slices.clear()
        self._dropped_slices = 0

    def report(self, title: str = "phase breakdown") -> str:
        """Fixed-width per-phase table, children indented under parents.

        Paths whose spans ever exited via an exception carry a
        ``[N failed]`` marker after their label.
        """
        stats = self.stats()
        if not stats:
            return f"--- {title} ---\n(no spans recorded)"
        root_total = self.root_total() or 1e-12
        lines = [
            f"--- {title} ---",
            f"{'span':40s} {'count':>7s} {'total s':>9s} {'self s':>9s} {'%root':>6s}",
        ]
        for path in sorted(stats):
            s = stats[path]
            label = "  " * s.depth + s.name
            if s.failures:
                label += f" [{s.failures} failed]"
            lines.append(
                f"{label:40s} {s.count:7d} {s.total_s:9.3f} {s.self_s:9.3f} "
                f"{100.0 * s.total_s / root_total:6.1f}"
            )
        return "\n".join(lines)


#: Shared no-op tracer instance for disabled-observability defaults.
NULL_TRACER = NullTracer()
