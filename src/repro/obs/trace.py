"""Hierarchical span tracer for per-phase runtime breakdowns.

``Tracer.span("name")`` opens a context-managed span; spans nest, and
each unique root-to-leaf *path* (``optimize/iteration/objective``)
accumulates a call count and total monotonic time.  ``Tracer.report()``
renders the aggregated tree with total, self (total minus child) and
percent-of-root columns — the per-phase table behind the Table 3 /
Fig. 6 runtime analyses.

The module also provides :class:`NullTracer`, a no-op stand-in whose
``span()`` returns a shared do-nothing context manager, so instrumented
code pays only one attribute lookup and one method call when tracing is
disabled.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional

__all__ = ["SpanStats", "Tracer", "NullTracer", "NULL_TRACER"]


@dataclass(frozen=True)
class SpanStats:
    """Aggregated timing of every span recorded under one path.

    Attributes:
        path: slash-joined ancestry, e.g. ``"optimize/iteration"``.
        count: number of spans completed at this path.
        total_s: wall-clock seconds summed over those spans.
        self_s: ``total_s`` minus time spent in child spans.
    """

    path: str
    count: int
    total_s: float
    self_s: float

    @property
    def name(self) -> str:
        return self.path.rsplit("/", 1)[-1]

    @property
    def depth(self) -> int:
        return self.path.count("/")


class _Span:
    """One live span; created by ``Tracer.span`` and closed on ``__exit__``."""

    __slots__ = ("_tracer", "_name", "_path", "_start")

    def __init__(self, tracer: "Tracer", name: str) -> None:
        self._tracer = tracer
        self._name = name

    def __enter__(self) -> "_Span":
        tracer = self._tracer
        tracer._stack.append(self._name)
        self._path = "/".join(tracer._stack)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        elapsed = time.perf_counter() - self._start
        tracer = self._tracer
        tracer._totals[self._path] = tracer._totals.get(self._path, 0.0) + elapsed
        tracer._counts[self._path] = tracer._counts.get(self._path, 0) + 1
        tracer._stack.pop()
        if tracer._stack:
            parent = "/".join(tracer._stack)
            tracer._child_time[parent] = tracer._child_time.get(parent, 0.0) + elapsed


class _NullSpan:
    """Shared do-nothing span (returned by :class:`NullTracer`)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """No-op tracer: the default when observability is disabled."""

    enabled = False

    def span(self, name: str) -> _NullSpan:
        return _NULL_SPAN

    def stats(self) -> Dict[str, SpanStats]:
        return {}

    def total(self, path: str) -> float:
        return 0.0

    def root_total(self) -> float:
        return 0.0

    def reset(self) -> None:
        pass

    def report(self) -> str:
        return "(tracing disabled)"


class Tracer:
    """Collecting tracer: nestable spans aggregated by path.

    Example:
        >>> tracer = Tracer()
        >>> with tracer.span("outer"):
        ...     with tracer.span("inner"):
        ...         pass
        >>> sorted(tracer.stats())
        ['outer', 'outer/inner']
    """

    enabled = True

    def __init__(self) -> None:
        self._stack: List[str] = []
        self._totals: Dict[str, float] = {}
        self._counts: Dict[str, int] = {}
        self._child_time: Dict[str, float] = {}

    def span(self, name: str) -> _Span:
        """Open a nestable span; use as a context manager."""
        return _Span(self, name)

    def stats(self) -> Dict[str, SpanStats]:
        """Snapshot of every recorded path's aggregate timing."""
        return {
            path: SpanStats(
                path=path,
                count=self._counts[path],
                total_s=total,
                self_s=max(total - self._child_time.get(path, 0.0), 0.0),
            )
            for path, total in self._totals.items()
        }

    def total(self, path: str) -> float:
        """Total seconds recorded under one exact path (0.0 if unseen)."""
        return self._totals.get(path, 0.0)

    def root_total(self) -> float:
        """Summed time of all root (depth-0) spans."""
        return sum(t for path, t in self._totals.items() if "/" not in path)

    def reset(self) -> None:
        """Drop all recorded spans (open spans keep nesting correctly)."""
        self._totals.clear()
        self._counts.clear()
        self._child_time.clear()

    def report(self, title: str = "phase breakdown") -> str:
        """Fixed-width per-phase table, children indented under parents."""
        stats = self.stats()
        if not stats:
            return f"--- {title} ---\n(no spans recorded)"
        root_total = self.root_total() or 1e-12
        lines = [
            f"--- {title} ---",
            f"{'span':40s} {'count':>7s} {'total s':>9s} {'self s':>9s} {'%root':>6s}",
        ]
        for path in sorted(stats):
            s = stats[path]
            label = "  " * s.depth + s.name
            lines.append(
                f"{label:40s} {s.count:7d} {s.total_s:9.3f} {s.self_s:9.3f} "
                f"{100.0 * s.total_s / root_total:6.1f}"
            )
        return "\n".join(lines)


#: Shared no-op tracer instance for disabled-observability defaults.
NULL_TRACER = NullTracer()
