"""Live run monitoring: worker heartbeats, liveness watchdog, status feed.

Three cooperating pieces turn a full-chip run from a black box into a
live feed (everything post-mortem stays in :mod:`repro.obs.distributed`
and :mod:`repro.obs.report`):

1. **Heartbeats** — each tile worker owns a :class:`HeartbeatWriter`
   that atomically rewrites ``heartbeat_<tile>.json`` (pid, phase,
   iteration, objective, write timestamp) on every optimizer iteration,
   via the ``Instrumentation.heartbeat`` seam the optimizer already
   beats through.  Atomic rewrite (temp + ``os.replace``) means a
   reader never sees a torn heartbeat, and the newest write wins.

2. **Liveness watchdog** — the parent-side :class:`LivenessWatchdog`
   observes the heartbeat files between pool completions and flags a
   worker as *stalled* when its heartbeat has made no progress for
   ``stall_factor`` times the observed median iteration time (floored
   at ``min_stall_s``) — or as *dead* when its pid is gone.  Each flag
   emits one ``worker_stalled`` event and bumps the
   ``fullchip_workers_stalled`` counter; progress re-arms the flag with
   a ``worker_resumed`` event.  This fires long before a tile's
   wall-clock ``timeout_s`` budget — the watchdog measures *progress*,
   the budget measures *time*.

3. **Status feed** — the scheduler-owned :class:`StatusWriter`
   atomically rewrites ``status.json``: per-tile states (pending /
   running / ok / recovered / failed / timeout), live iteration + phase
   from the heartbeats, an ETA extrapolated from the observed
   tile-completion rate, and the merged live counters.  ``repro watch``
   tails this file.
"""

from __future__ import annotations

import json
import logging
import math
import os
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Deque, Dict, List, Optional, Tuple, Union

from ..errors import ReproError
from ..utils.io import write_json_atomic
from . import Instrumentation

__all__ = [
    "STATUS_FILENAME",
    "HEARTBEAT_DIRNAME",
    "Heartbeat",
    "HeartbeatWriter",
    "heartbeat_filename",
    "read_heartbeat",
    "read_heartbeats",
    "iter_heartbeat_files",
    "WatchdogConfig",
    "StallFlag",
    "LivenessWatchdog",
    "StatusWriter",
    "load_status",
]

logger = logging.getLogger(__name__)

#: The progress-feed file at the root of a telemetry run directory.
STATUS_FILENAME = "status.json"

#: Heartbeat files live in this subdirectory of a telemetry run dir.
HEARTBEAT_DIRNAME = "heartbeats"

#: Tile states that mean "finished" (mirrors harness CellStatus values).
TERMINAL_TILE_STATES = ("ok", "recovered", "failed", "timeout")


def heartbeat_filename(tile_name: str) -> str:
    """The heartbeat file name for one tile (``heartbeat_<tile>.json``)."""
    return f"heartbeat_{tile_name}.json"


def iter_heartbeat_files(directory: Union[str, Path]) -> List[Path]:
    """All heartbeat files under a directory, sorted by name."""
    path = Path(directory)
    if not path.is_dir():
        return []
    return sorted(path.glob("heartbeat_*.json"))


@dataclass
class Heartbeat:
    """One worker's latest progress pulse.

    Attributes:
        tile: tile name (``tile_r<row>_c<col>``).
        pid: writing process id.
        phase: what the worker is doing (``setup`` / ``optimize`` /
            ``final_eval`` / ``done`` / ``failed``).
        iteration: latest optimizer iteration index.
        objective: latest objective value (None before the first
            evaluation or when non-finite).
        ts: epoch timestamp of the write.
        attempt: 1-based attempt generation of the writing worker.  A
            requeued tile's fresh worker beats with a higher attempt,
            which the watchdog treats as progress — so pulses left over
            from a dead attempt can never flag the re-run as stalled.
    """

    tile: str
    pid: int
    phase: str = ""
    iteration: int = 0
    objective: Optional[float] = None
    ts: float = 0.0
    attempt: int = 1
    trace_id: Optional[str] = None

    def age_s(self, now: float) -> float:
        """Seconds since this heartbeat was written."""
        return max(0.0, now - self.ts)

    def as_dict(self) -> Dict[str, object]:
        record: Dict[str, object] = {
            "tile": self.tile,
            "pid": self.pid,
            "phase": self.phase,
            "iteration": self.iteration,
            "objective": self.objective,
            "ts": self.ts,
            "attempt": self.attempt,
        }
        if self.trace_id:
            record["trace_id"] = self.trace_id
        return record

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Heartbeat":
        objective = data.get("objective")
        trace_id = data.get("trace_id")
        return cls(
            tile=str(data.get("tile", "")),
            pid=int(data.get("pid", 0)),
            phase=str(data.get("phase", "")),
            iteration=int(data.get("iteration", 0)),
            objective=float(objective) if objective is not None else None,
            ts=float(data.get("ts", 0.0)),
            attempt=int(data.get("attempt", 1)),
            trace_id=str(trace_id) if trace_id else None,
        )


def read_heartbeat(path: Union[str, Path]) -> Optional[Heartbeat]:
    """Parse one heartbeat file; None when missing or unreadable."""
    try:
        with open(path) as handle:
            return Heartbeat.from_dict(json.load(handle))
    except (OSError, json.JSONDecodeError, ValueError, TypeError):
        return None


def read_heartbeats(directory: Union[str, Path]) -> Dict[str, Heartbeat]:
    """All readable heartbeats under a directory, keyed by tile name."""
    beats: Dict[str, Heartbeat] = {}
    for path in iter_heartbeat_files(directory):
        beat = read_heartbeat(path)
        if beat is not None and beat.tile:
            beats[beat.tile] = beat
    return beats


class HeartbeatWriter:
    """Worker-side heartbeat publisher (atomic rewrite per beat).

    Plugs into ``Instrumentation.heartbeat`` so the optimizer's
    per-iteration ``beat()`` calls land here.  A ``min_interval_s``
    throttle bounds the rewrite rate for sub-second iterations;
    ``force=True`` (phase transitions, final states) always writes.
    Writing never raises into the solve — a failed beat is logged and
    dropped.

    ``attempt`` versions the pulses per requeue generation (see
    :class:`Heartbeat`), and ``on_beat`` is an optional callback fired
    on *every* ``beat()`` call (throttled writes included) with the
    current timestamp — the seam the queue executor uses to renew a
    worker's lease from the pulses the optimizer already emits.
    """

    enabled = True

    def __init__(
        self,
        directory: Union[str, Path],
        tile: str,
        min_interval_s: float = 0.0,
        clock=time.time,
        attempt: int = 1,
        on_beat=None,
        trace_id: Optional[str] = None,
    ) -> None:
        if min_interval_s < 0:
            raise ValueError(f"min_interval_s must be >= 0, got {min_interval_s}")
        self.directory = Path(directory)
        self.tile = tile
        self.min_interval_s = min_interval_s
        self.clock = clock
        self.attempt = attempt
        self.on_beat = on_beat
        self.trace_id = trace_id
        self._last_write = -math.inf
        self.path = self.directory / heartbeat_filename(tile)

    def beat(
        self,
        phase: str,
        iteration: int = 0,
        objective: Optional[float] = None,
        force: bool = False,
    ) -> None:
        now = float(self.clock())
        if self.on_beat is not None:
            try:
                self.on_beat(now)
            except Exception as exc:  # noqa: BLE001 - hooks must not fail solves
                logger.warning("heartbeat on_beat hook failed: %s", exc)
        if not force and (now - self._last_write) < self.min_interval_s:
            return
        record = Heartbeat(
            tile=self.tile,
            pid=os.getpid(),
            phase=phase,
            iteration=iteration,
            objective=objective,
            ts=now,
            attempt=self.attempt,
            trace_id=self.trace_id,
        )
        try:
            write_json_atomic(self.path, record.as_dict())
            self._last_write = now
        except OSError as exc:
            logger.warning("heartbeat write failed for %s: %s", self.tile, exc)


# -- liveness watchdog --------------------------------------------------------


@dataclass(frozen=True)
class WatchdogConfig:
    """Parent-side liveness thresholds.

    Attributes:
        poll_s: seconds between watchdog observations (doubles as the
            scheduler's pool-wait timeout).
        stall_factor: a worker is stalled after ``stall_factor`` times
            the observed median iteration time with no progress.
        min_stall_s: floor on the stall threshold — protects fast
            iterations from flagging on scheduler jitter.
        cancel: kill a stalled/dead worker's pid (SIGKILL) as soon as
            it is flagged.  On a fork pool this *breaks the pool*: the
            remaining in-flight tiles fail too (they come back as
            failed :class:`TileResult`s under ``keep_going``), so
            cancel trades the rest of the batch for an immediate stop
            — off by default.
    """

    poll_s: float = 2.0
    stall_factor: float = 8.0
    min_stall_s: float = 10.0
    cancel: bool = False

    def __post_init__(self) -> None:
        if self.poll_s <= 0:
            raise ReproError(f"poll_s must be positive, got {self.poll_s}")
        if self.stall_factor < 1:
            raise ReproError(f"stall_factor must be >= 1, got {self.stall_factor}")
        if self.min_stall_s <= 0:
            raise ReproError(f"min_stall_s must be positive, got {self.min_stall_s}")


@dataclass
class StallFlag:
    """One watchdog detection (also the ``worker_stalled`` event body)."""

    tile: str
    pid: int
    reason: str  # "stalled" (no heartbeat progress) or "dead" (pid gone)
    phase: str
    iteration: int
    stalled_for_s: float
    threshold_s: float


class _TileTrack:
    """Per-tile progress memory inside the watchdog."""

    def __init__(self, beat: Heartbeat) -> None:
        self.iteration = beat.iteration
        self.phase = beat.phase
        self.attempt = beat.attempt
        self.last_progress_ts = beat.ts
        self.flagged = False


class LivenessWatchdog:
    """Flags tile workers whose heartbeats stop progressing.

    The watchdog is passive: :meth:`observe` is called by the scheduler
    with the freshly-read heartbeats (see :func:`read_heartbeats`), so
    the watchdog itself does no IO and is trivially testable with a
    fake clock.

    Progress means the heartbeat's iteration or phase changed; each
    observed iteration advance contributes ``dt / d_iter`` samples to
    the median iteration time that scales the stall threshold.
    """

    def __init__(
        self,
        config: Optional[WatchdogConfig] = None,
        obs: Optional[Instrumentation] = None,
        clock=time.time,
    ) -> None:
        self.config = config or WatchdogConfig()
        self.obs = obs or Instrumentation.disabled()
        self.clock = clock
        self._tracks: Dict[str, _TileTrack] = {}
        self._done: set = set()
        self._iter_times: Deque[float] = deque(maxlen=256)
        #: Every flag raised over the run (latched flags re-raise only
        #: after a ``worker_resumed`` re-arm).
        self.stalls: List[StallFlag] = []

    def mark_done(self, tile: str) -> None:
        """Stop watching a tile whose result has settled."""
        self._done.add(tile)
        self._tracks.pop(tile, None)

    def threshold_s(self) -> float:
        """Current stall threshold: max(min_stall_s, factor * median iter)."""
        cfg = self.config
        if not self._iter_times:
            return cfg.min_stall_s
        ordered = sorted(self._iter_times)
        mid = len(ordered) // 2
        median = (
            ordered[mid]
            if len(ordered) % 2
            else 0.5 * (ordered[mid - 1] + ordered[mid])
        )
        return max(cfg.min_stall_s, cfg.stall_factor * median)

    @staticmethod
    def _pid_alive(pid: int) -> bool:
        if pid <= 0:
            return False
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return False
        except PermissionError:
            return True
        except OSError:
            return False
        return True

    def observe(
        self, beats: Dict[str, Heartbeat], now: Optional[float] = None
    ) -> List[StallFlag]:
        """Fold one round of heartbeats in; return freshly-raised flags."""
        now = float(self.clock()) if now is None else now
        flags: List[StallFlag] = []
        for tile, beat in beats.items():
            if tile in self._done or beat.phase in ("done", "failed"):
                continue
            track = self._tracks.get(tile)
            if track is None:
                self._tracks[tile] = _TileTrack(beat)
                continue
            new_attempt = beat.attempt != track.attempt
            progressed = (
                new_attempt
                or beat.iteration != track.iteration
                or beat.phase != track.phase
            )
            if progressed:
                d_iter = beat.iteration - track.iteration
                dt = beat.ts - track.last_progress_ts
                # A new attempt restarts the iteration counter — its
                # first pulse is a fresh track, not an iteration sample.
                if d_iter > 0 and dt > 0 and not new_attempt:
                    self._iter_times.append(dt / d_iter)
                track.iteration = beat.iteration
                track.phase = beat.phase
                track.attempt = beat.attempt
                track.last_progress_ts = beat.ts
                if track.flagged:
                    track.flagged = False
                    self.obs.events.emit(
                        "worker_resumed", tile=tile, pid=beat.pid,
                        iteration=beat.iteration,
                    )
                continue
            if track.flagged:
                continue
            stalled_for = now - track.last_progress_ts
            threshold = self.threshold_s()
            dead = not self._pid_alive(beat.pid)
            if not dead and stalled_for <= threshold:
                continue
            flag = StallFlag(
                tile=tile,
                pid=beat.pid,
                reason="dead" if dead else "stalled",
                phase=beat.phase,
                iteration=beat.iteration,
                stalled_for_s=stalled_for,
                threshold_s=threshold,
            )
            track.flagged = True
            self.stalls.append(flag)
            flags.append(flag)
            self.obs.metrics.counter("fullchip_workers_stalled").inc()
            self.obs.events.emit(
                "worker_stalled",
                tile=flag.tile,
                pid=flag.pid,
                reason=flag.reason,
                phase=flag.phase,
                iteration=flag.iteration,
                stalled_for_s=flag.stalled_for_s,
                threshold_s=flag.threshold_s,
            )
            logger.warning(
                "watchdog: tile %s worker pid %d %s (%.1fs without progress, "
                "threshold %.1fs)",
                flag.tile, flag.pid, flag.reason, flag.stalled_for_s,
                flag.threshold_s,
            )
        return flags


# -- status feed --------------------------------------------------------------


@dataclass
class _TileState:
    """Mutable per-tile entry of the status feed."""

    index: Tuple[int, int]
    state: str = "pending"
    phase: Optional[str] = None
    iteration: Optional[int] = None
    objective: Optional[float] = None
    epe_violations: Optional[int] = None
    pv_band_nm2: Optional[float] = None
    score_total: Optional[float] = None
    runtime_s: Optional[float] = None
    attempts: Optional[int] = None
    pid: Optional[int] = None
    cached: bool = False
    stalled: bool = False
    error: Optional[str] = None

    def as_dict(self, name: str) -> Dict[str, object]:
        return {
            "name": name,
            "index": list(self.index),
            "state": self.state,
            "phase": self.phase,
            "iteration": self.iteration,
            "objective": self.objective,
            "epe_violations": self.epe_violations,
            "pv_band_nm2": self.pv_band_nm2,
            "score_total": self.score_total,
            "runtime_s": self.runtime_s,
            "attempts": self.attempts,
            "pid": self.pid,
            "cached": self.cached,
            "stalled": self.stalled,
            "error": self.error,
        }


class StatusWriter:
    """Atomically-rewritten ``status.json`` progress feed.

    Owned by the parent: the full-chip engine seeds it with every
    planned tile, the scheduler feeds it heartbeats, stall flags, and
    completions, and every :meth:`write` replaces ``status.json`` in
    one atomic step so ``repro watch`` never reads a torn feed.
    """

    def __init__(
        self,
        run_dir: Union[str, Path],
        tiles: Dict[str, Tuple[int, int]],
        layout: str = "",
        workers: int = 1,
        clock=time.time,
    ) -> None:
        self.path = Path(run_dir) / STATUS_FILENAME
        self.layout = layout
        self.workers = workers
        self.clock = clock
        self.started_at = float(clock())
        self.state = "running"
        self._tiles: Dict[str, _TileState] = {
            name: _TileState(index=index) for name, index in tiles.items()
        }
        self._counters: Dict[str, int] = {}
        self._score: Optional[Dict[str, object]] = None

    # -- mutation hooks (scheduler/engine) ---------------------------------

    def mark_running(self, name: str, pid: Optional[int] = None) -> None:
        tile = self._tiles.get(name)
        if tile is not None and tile.state == "pending":
            tile.state = "running"
            if pid is not None:
                tile.pid = pid

    def apply_heartbeat(self, beat: Heartbeat) -> None:
        tile = self._tiles.get(beat.tile)
        if tile is None or tile.state in TERMINAL_TILE_STATES:
            return
        tile.state = "running"
        tile.phase = beat.phase
        tile.iteration = beat.iteration
        tile.objective = beat.objective
        tile.pid = beat.pid

    def mark_stalled(self, name: str, stalled: bool = True) -> None:
        tile = self._tiles.get(name)
        if tile is not None:
            tile.stalled = stalled

    def mark_done(
        self,
        name: str,
        status: str,
        attempts: int = 1,
        runtime_s: float = 0.0,
        epe_violations: Optional[int] = None,
        pv_band_nm2: Optional[float] = None,
        score_total: Optional[float] = None,
        iterations: Optional[int] = None,
        cached: bool = False,
        error: Optional[str] = None,
    ) -> None:
        tile = self._tiles.get(name)
        if tile is None:
            return
        tile.state = status
        tile.attempts = attempts
        tile.runtime_s = runtime_s
        tile.epe_violations = epe_violations
        tile.pv_band_nm2 = pv_band_nm2
        tile.score_total = score_total
        if iterations is not None:
            tile.iteration = iterations
        tile.phase = "done" if status in ("ok", "recovered") else status
        tile.cached = cached
        tile.stalled = False
        tile.error = error

    def set_counters(self, counters: Dict[str, int]) -> None:
        self._counters = dict(counters)

    def finalize(
        self,
        state: Optional[str] = None,
        score: Optional[Dict[str, object]] = None,
    ) -> None:
        """Settle the run-level state (auto: failed if any tile failed)."""
        if state is None:
            failed = any(
                t.state in ("failed", "timeout") for t in self._tiles.values()
            )
            state = "failed" if failed else "done"
        self.state = state
        if score is not None:
            self._score = dict(score)

    # -- payload + write ---------------------------------------------------

    def counts(self) -> Dict[str, int]:
        done = running = failed = pending = 0
        for tile in self._tiles.values():
            if tile.state in ("ok", "recovered"):
                done += 1
            elif tile.state in ("failed", "timeout"):
                failed += 1
            elif tile.state == "running":
                running += 1
            else:
                pending += 1
        return {
            "total": len(self._tiles),
            "done": done,
            "running": running,
            "failed": failed,
            "pending": pending,
        }

    def payload(self, now: Optional[float] = None) -> Dict[str, object]:
        now = float(self.clock()) if now is None else now
        counts = self.counts()
        elapsed = max(0.0, now - self.started_at)
        settled = counts["done"] + counts["failed"]
        remaining = counts["total"] - settled
        rate = settled / elapsed if elapsed > 0 and settled > 0 else None
        # A finished run's ETA is 0 by definition; mid-run it
        # extrapolates the observed tile-completion rate over the
        # workers still draining the remaining tiles.
        if remaining == 0:
            eta_s: Optional[float] = 0.0
        elif rate:
            eta_s = remaining / rate
        else:
            eta_s = None
        return {
            "schema": 1,
            "kind": "fullchip_status",
            "layout": self.layout,
            "state": self.state,
            "workers": self.workers,
            "parent_pid": os.getpid(),
            "started_at": self.started_at,
            "updated_at": now,
            "elapsed_s": elapsed,
            "eta_s": eta_s,
            "tiles_per_s": rate,
            "tiles": counts,
            "score": self._score,
            "counters": dict(self._counters),
            "tile_states": [
                state.as_dict(name) for name, state in sorted(self._tiles.items())
            ],
        }

    def write(self) -> None:
        """Atomically replace ``status.json``; never raises into the run."""
        try:
            write_json_atomic(self.path, self.payload())
        except OSError as exc:
            logger.warning("status feed write failed: %s", exc)


def load_status(run_dir: Union[str, Path]) -> Dict[str, object]:
    """Parse ``status.json`` from a telemetry run directory.

    Raises:
        ReproError: the directory has no readable ``status.json`` (not a
            telemetry run dir, or the run has not started writing yet).
    """
    path = Path(run_dir) / STATUS_FILENAME
    if not path.is_file():
        raise ReproError(
            f"no {STATUS_FILENAME} in {run_dir} — not a (live) telemetry run "
            f"directory, or the run has not started yet"
        )
    try:
        with open(path) as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise ReproError(f"unreadable {path}: {exc}") from exc
