"""Metrics registry: counters, gauges, and fixed-bucket histograms.

Instruments are created on demand and identified by name, so call sites
stay one-liners::

    registry.counter("forward_evals_total").inc()
    registry.gauge("best_objective").set(value)
    registry.histogram("gradient_rms").observe(rms)

Instruments may carry Prometheus-style labels: ``labels={"tenant": "a"}``
folds into the instrument's identity as ``name{tenant="a"}`` (sorted
keys, escaped values), so each label combination is its own time series
while snapshots, merges, and persistence stay plain name→dict maps.
:func:`render_prometheus` turns any registry snapshot into the
Prometheus text exposition format (``# HELP``/``# TYPE`` comments,
cumulative ``_bucket{le=...}``/``_sum``/``_count`` histogram expansion).

A process-global :func:`default_registry` exists for convenience wiring;
tests and the CLI inject their own :class:`MetricsRegistry` instances.
:class:`NullMetricsRegistry` returns shared no-op instruments, so
instrumented hot paths cost one method call when metrics are disabled.
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_left
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_REGISTRY",
    "default_registry",
    "set_default_registry",
    "DEFAULT_GRADIENT_RMS_BUCKETS",
    "DEFAULT_LATENCY_BUCKETS",
    "encode_labels",
    "split_series_name",
    "escape_label_value",
    "render_prometheus",
]

#: Log-spaced upper bounds suited to gradient-RMS magnitudes (paper th_g = 1e-5).
DEFAULT_GRADIENT_RMS_BUCKETS = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0,
)

#: Latency bounds (seconds) spanning HTTP round trips to full solves.
DEFAULT_LATENCY_BUCKETS = (
    0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0, 600.0,
)


def escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition rules."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def encode_labels(name: str, labels: Optional[Mapping[str, object]]) -> str:
    """Fold labels into an instrument identity: ``name{k="v",...}``.

    Keys are sorted so ``{"a": 1, "b": 2}`` and ``{"b": 2, "a": 1}``
    land on the same series; values are escaped so the encoded name is
    already a valid Prometheus series reference.
    """
    if not labels:
        return name
    inner = ",".join(
        f'{key}="{escape_label_value(str(labels[key]))}"'
        for key in sorted(labels)
    )
    return f"{name}{{{inner}}}"


def split_series_name(encoded: str) -> Tuple[str, str]:
    """``name{k="v"}`` → ``("name", 'k="v"')``; bare names → ``(name, "")``."""
    if encoded.endswith("}"):
        brace = encoded.find("{")
        if brace >= 0:
            return encoded[:brace], encoded[brace + 1 : -1]
    return encoded, ""


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        self._value += amount

    @property
    def value(self) -> int:
        return self._value

    def as_dict(self) -> Dict[str, Union[str, int]]:
        return {"type": "counter", "value": self._value}


class Gauge:
    """Last-written value (e.g. the current best objective)."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value: Optional[float] = None

    def set(self, value: float) -> None:
        self._value = float(value)

    @property
    def value(self) -> Optional[float]:
        return self._value

    def as_dict(self) -> Dict[str, Union[str, Optional[float]]]:
        return {"type": "gauge", "value": self._value}


class Histogram:
    """Fixed-bucket histogram with cumulative-friendly summary stats.

    Buckets are upper bounds (inclusive); one implicit overflow bucket
    catches everything above the last bound.
    """

    __slots__ = ("name", "buckets", "counts", "_count", "_sum", "_min", "_max")

    def __init__(self, name: str, buckets: Sequence[float]) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError(f"histogram {name!r} needs ascending bucket bounds")
        self.name = name
        self.buckets: List[float] = [float(b) for b in buckets]
        self.counts: List[int] = [0] * (len(self.buckets) + 1)
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect_left(self.buckets, value)] += 1
        self._count += 1
        self._sum += value
        self._min = value if self._min is None else min(self._min, value)
        self._max = value if self._max is None else max(self._max, value)

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> Optional[float]:
        return self._sum / self._count if self._count else None

    def as_dict(self) -> Dict[str, object]:
        return {
            "type": "histogram",
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "count": self._count,
            "sum": self._sum,
            "min": self._min,
            "max": self._max,
        }

    def merge_dict(self, data: Dict[str, object]) -> None:
        """Fold another histogram's ``as_dict`` snapshot into this one.

        Bucket bounds must match exactly (the snapshots come from the
        same instrumented code running in a worker process).

        Raises:
            ValueError: on mismatched bucket bounds or counts length.
        """
        buckets = [float(b) for b in data.get("buckets", [])]
        counts = list(data.get("counts", []))
        if buckets != self.buckets or len(counts) != len(self.counts):
            raise ValueError(
                f"histogram {self.name!r}: cannot merge snapshot with "
                f"buckets {buckets} into buckets {self.buckets}"
            )
        for i, c in enumerate(counts):
            self.counts[i] += int(c)
        self._count += int(data.get("count", 0))
        self._sum += float(data.get("sum", 0.0))
        for bound, pick in (("min", min), ("max", max)):
            other = data.get(bound)
            if other is None:
                continue
            mine = self._min if bound == "min" else self._max
            merged = float(other) if mine is None else pick(mine, float(other))
            if bound == "min":
                self._min = merged
            else:
                self._max = merged


class MetricsRegistry:
    """Named instrument store with a JSON-friendly snapshot."""

    enabled = True

    def __init__(self) -> None:
        self._instruments: Dict[str, object] = {}
        self._mutex = threading.Lock()

    def _get(self, name: str, cls, *args):
        instrument = self._instruments.get(name)
        if instrument is None:
            with self._mutex:
                instrument = self._instruments.get(name)
                if instrument is None:
                    instrument = cls(name, *args)
                    self._instruments[name] = instrument
        if not isinstance(instrument, cls):
            raise ValueError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}, not {cls.__name__}"
            )
        return instrument

    def counter(
        self, name: str, labels: Optional[Mapping[str, object]] = None
    ) -> Counter:
        return self._get(encode_labels(name, labels), Counter)

    def gauge(
        self, name: str, labels: Optional[Mapping[str, object]] = None
    ) -> Gauge:
        return self._get(encode_labels(name, labels), Gauge)

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_GRADIENT_RMS_BUCKETS,
        labels: Optional[Mapping[str, object]] = None,
    ) -> Histogram:
        return self._get(encode_labels(name, labels), Histogram, buckets)

    def merge_snapshot(self, snapshot: Dict[str, Dict[str, object]]) -> None:
        """Fold another registry's ``as_dict`` snapshot into this one.

        Counters add, gauges take the snapshot's value (last write wins),
        histograms merge bucket-by-bucket.  This is how a parent process
        absorbs the registries its tile workers spooled to disk, so the
        merged ``summary()`` covers the whole distributed run.

        Raises:
            ValueError: when a name is already registered as a different
                instrument type, or histogram buckets mismatch.
        """
        for name, data in snapshot.items():
            kind = data.get("type")
            if kind == "counter":
                self.counter(name).inc(int(data.get("value", 0) or 0))
            elif kind == "gauge":
                value = data.get("value")
                if value is not None:
                    self.gauge(name).set(float(value))
            elif kind == "histogram":
                buckets = data.get("buckets") or DEFAULT_GRADIENT_RMS_BUCKETS
                self.histogram(name, buckets).merge_dict(data)
            # "null" (and unknown) instrument snapshots carry no data.

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __len__(self) -> int:
        return len(self._instruments)

    def names(self) -> List[str]:
        return sorted(self._instruments)

    def as_dict(self) -> Dict[str, Dict[str, object]]:
        """Snapshot of every instrument, ready for ``json.dump``."""
        return {name: self._instruments[name].as_dict() for name in self.names()}

    def reset(self) -> None:
        self._instruments.clear()

    def summary(self, title: str = "metrics") -> str:
        """Compact text rendering (used by reports and ``--trace`` output)."""
        if not self._instruments:
            return f"--- {title} ---\n(no metrics recorded)"
        lines = [f"--- {title} ---"]
        for name in self.names():
            instrument = self._instruments[name]
            if isinstance(instrument, Counter):
                lines.append(f"{name:36s} {instrument.value}")
            elif isinstance(instrument, Gauge):
                value = instrument.value
                lines.append(
                    f"{name:36s} {'n/a' if value is None else f'{value:g}'}"
                )
            else:
                mean = instrument.mean
                lines.append(
                    f"{name:36s} n={instrument.count} "
                    f"mean={'n/a' if mean is None else f'{mean:.3g}'} "
                    f"min={'n/a' if instrument._min is None else f'{instrument._min:.3g}'} "
                    f"max={'n/a' if instrument._max is None else f'{instrument._max:.3g}'}"
                )
        return "\n".join(lines)


class _NullInstrument:
    """Shared sink accepted anywhere a Counter/Gauge/Histogram is."""

    __slots__ = ()
    name = "null"
    value = None
    count = 0
    sum = 0.0
    mean = None

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def as_dict(self) -> Dict[str, object]:
        return {"type": "null"}


_NULL_INSTRUMENT = _NullInstrument()


class NullMetricsRegistry:
    """No-op registry: the default when observability is disabled."""

    enabled = False

    def counter(
        self, name: str, labels: Optional[Mapping[str, object]] = None
    ) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(
        self, name: str, labels: Optional[Mapping[str, object]] = None
    ) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = (),
        labels: Optional[Mapping[str, object]] = None,
    ) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def merge_snapshot(self, snapshot: Dict[str, Dict[str, object]]) -> None:
        pass

    def __contains__(self, name: str) -> bool:
        return False

    def __len__(self) -> int:
        return 0

    def names(self) -> List[str]:
        return []

    def as_dict(self) -> Dict[str, Dict[str, object]]:
        return {}

    def reset(self) -> None:
        pass

    def summary(self, title: str = "metrics") -> str:
        return "(metrics disabled)"


#: Shared no-op registry instance for disabled-observability defaults.
NULL_REGISTRY = NullMetricsRegistry()

_default_registry = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-global registry (for wiring-free instrumentation)."""
    return _default_registry


def set_default_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-global registry (tests); returns the previous one."""
    global _default_registry
    previous = _default_registry
    _default_registry = registry
    return previous


_METRIC_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")


def _sanitize_metric_name(name: str) -> str:
    if _METRIC_NAME_RE.match(name):
        return name
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not cleaned or not re.match(r"[a-zA-Z_:]", cleaned[0]):
        cleaned = "_" + cleaned
    return cleaned


def _format_value(value: object) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    number = float(value)  # type: ignore[arg-type]
    if math.isnan(number):
        return "NaN"
    if math.isinf(number):
        return "+Inf" if number > 0 else "-Inf"
    return repr(number)


def _format_bound(bound: float) -> str:
    if math.isinf(bound):
        return "+Inf"
    return f"{float(bound):g}"


def _with_extra_label(labelstr: str, extra: str) -> str:
    return f"{labelstr},{extra}" if labelstr else extra


def render_prometheus(snapshot: Mapping[str, Mapping[str, object]]) -> str:
    """Render a registry snapshot in the Prometheus text exposition format.

    Accepts the output of :meth:`MetricsRegistry.as_dict` (or any merged
    snapshot of the same shape).  Series whose encoded name carries
    labels (``name{k="v"}``) are grouped under one ``# HELP``/``# TYPE``
    header per base name; histograms expand to cumulative
    ``_bucket{le=...}`` series plus ``_sum`` and ``_count``.  Unset
    gauges and null instruments are omitted.  Ends with a newline, per
    the format spec.
    """
    groups: Dict[Tuple[str, str], List[Tuple[str, Mapping[str, object]]]] = {}
    order: List[Tuple[str, str]] = []
    for encoded in sorted(snapshot):
        data = snapshot[encoded]
        kind = str(data.get("type", ""))
        if kind not in ("counter", "gauge", "histogram"):
            continue
        if kind == "gauge" and data.get("value") is None:
            continue
        base, labelstr = split_series_name(encoded)
        base = _sanitize_metric_name(base)
        key = (base, kind)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append((labelstr, data))

    lines: List[str] = []
    for base, kind in order:
        lines.append(f"# HELP {base} repro {kind} {base}")
        lines.append(f"# TYPE {base} {kind}")
        for labelstr, data in groups[(base, kind)]:
            suffix = f"{{{labelstr}}}" if labelstr else ""
            if kind in ("counter", "gauge"):
                lines.append(f"{base}{suffix} {_format_value(data.get('value', 0))}")
                continue
            buckets = [float(b) for b in data.get("buckets", [])]
            counts = [int(c) for c in data.get("counts", [])]
            cumulative = 0
            for bound, count in zip(buckets + [math.inf], counts or [0] * (len(buckets) + 1)):
                cumulative += count
                le = _with_extra_label(labelstr, f'le="{_format_bound(bound)}"')
                lines.append(f"{base}_bucket{{{le}}} {cumulative}")
            lines.append(f"{base}_sum{suffix} {_format_value(data.get('sum', 0.0))}")
            lines.append(f"{base}_count{suffix} {_format_value(int(data.get('count', 0)))}")
    return "\n".join(lines) + "\n" if lines else ""
