"""The ``repro watch`` dashboard: tail a live telemetry run directory.

Everything here is read-only over the files the run writes anyway —
``status.json`` (atomic snapshot), ``heartbeats/heartbeat_*.json``
(atomic per-tile pulses), and ``resources/resources_*.jsonl`` (append
feeds) — so watching never perturbs the run and works on a live,
finished, or crashed run directory alike.

:func:`collect_snapshot` fuses the three sources into one JSON-able
dict (the ``--json`` output), :func:`render_snapshot` draws it as the
terminal dashboard, and :func:`run_watch` loops with a refresh until
the run reaches a terminal state.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..errors import ReproError
from ..tables import ColumnSpec, TextTable
from .live import HEARTBEAT_DIRNAME, TERMINAL_TILE_STATES, load_status, read_heartbeats
from .resources import RESOURCES_DIRNAME, summarize_resources

__all__ = ["collect_snapshot", "render_snapshot", "run_watch", "watch_exit_code"]

#: ANSI: clear screen + home the cursor (the refresh between frames).
_CLEAR = "\x1b[2J\x1b[H"

#: Queue tile states mapped onto the status-feed tile-state vocabulary.
_QUEUE_TILE_STATES = {
    "pending": "pending",
    "leased": "running",
    "done": "done",
    "failed": "failed",
    "quarantined": "failed",
}


def _snapshot_from_queue(queue_state: Dict[str, object]) -> Dict[str, object]:
    """A minimal status snapshot derived from the queue directory alone.

    Used when a run directory has a seeded ``queue/`` but no (or a
    deleted) ``status.json`` — e.g. watching a fleet of hand-launched
    ``repro worker`` processes with no supervising engine.
    """
    counts = queue_state.get("counts") or {}
    failed = int(counts.get("failed", 0)) + int(counts.get("quarantined", 0))
    done = int(counts.get("done", 0))
    total = int(counts.get("total", 0))
    if total and done + failed >= total:
        state = "failed" if failed else "done"
    else:
        state = "running"
    tile_states = []
    for tile in queue_state.get("tiles", []):
        qstate = str(tile.get("state", "pending"))
        tile_states.append(
            {
                "name": tile.get("name"),
                "state": _QUEUE_TILE_STATES.get(qstate, qstate),
                "attempts": tile.get("attempts"),
            }
        )
    return {
        "schema": 1,
        "kind": "fullchip_status",
        "layout": None,
        "state": state,
        "tiles": {
            "total": total,
            "done": done,
            "running": int(counts.get("leased", 0)),
            "failed": failed,
        },
        "tile_states": tile_states,
        "queue_only": True,
    }


def collect_snapshot(run_dir: Union[str, Path]) -> Dict[str, object]:
    """One fused view of a run directory (the ``--json`` payload).

    Starts from ``status.json`` (raising
    :class:`~repro.errors.ReproError` when absent), then overlays the
    per-tile heartbeat files — which a busy scheduler may trail by up to
    a poll interval — onto the still-running tiles, and attaches the
    per-process resource summaries.  A directory holding a seeded
    durable queue additionally carries its state under ``"queue"`` —
    and a queue *without* a ``status.json`` (a hand-launched worker
    fleet) still renders, from the queue directory alone.
    """
    run_dir = Path(run_dir)
    # Imported lazily: obs stays importable without the fullchip package.
    from ..fullchip.queue import load_queue_state

    queue_state = load_queue_state(run_dir)
    try:
        snapshot = load_status(run_dir)
    except ReproError:
        if queue_state is None:
            raise
        snapshot = _snapshot_from_queue(queue_state)
    if queue_state is not None:
        snapshot["queue"] = queue_state
    beats = read_heartbeats(run_dir / HEARTBEAT_DIRNAME)
    for tile in snapshot.get("tile_states", []):
        beat = beats.get(tile.get("name"))
        if beat is None or tile.get("state") in TERMINAL_TILE_STATES:
            continue
        if beat.phase in ("done", "failed"):
            continue
        tile["state"] = "running"
        tile["phase"] = beat.phase
        tile["iteration"] = beat.iteration
        tile["objective"] = beat.objective
        tile["pid"] = beat.pid
        tile["heartbeat_age_s"] = beat.age_s(time.time())
    snapshot["resources"] = summarize_resources(
        run_dir / RESOURCES_DIRNAME, parent_pid=snapshot.get("parent_pid")
    )
    return snapshot


def _fmt_duration(seconds: Optional[float]) -> Optional[str]:
    if seconds is None:
        return None
    seconds = max(0.0, float(seconds))
    if seconds < 60:
        return f"{seconds:.0f}s"
    minutes, secs = divmod(int(round(seconds)), 60)
    hours, minutes = divmod(minutes, 60)
    if hours:
        return f"{hours}h{minutes:02d}m"
    return f"{minutes}m{secs:02d}s"


def _fmt_bytes(count: Optional[object]) -> Optional[str]:
    if count is None:
        return None
    value = float(count)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if value < 1024 or unit == "TiB":
            return f"{value:.0f}{unit}" if unit == "B" else f"{value:.1f}{unit}"
        value /= 1024
    return None


def render_snapshot(snapshot: Dict[str, object]) -> str:
    """Draw one snapshot as the multi-section terminal dashboard."""
    lines: List[str] = []
    counts = snapshot.get("tiles", {}) or {}
    eta = _fmt_duration(snapshot.get("eta_s"))
    lines.append(
        f"run {snapshot.get('layout') or '?'} [{snapshot.get('state')}] — "
        f"{counts.get('done', 0)}/{counts.get('total', 0)} tiles done, "
        f"{counts.get('running', 0)} running, {counts.get('failed', 0)} failed | "
        f"elapsed {_fmt_duration(snapshot.get('elapsed_s')) or '--'}"
        + (f", ETA {eta}" if eta is not None else "")
    )
    score = snapshot.get("score")
    if score:
        lines.append(
            f"chip score: total={score.get('total'):.0f} "
            f"#EPE={score.get('epe_violations')} "
            f"PVB={score.get('pv_band_nm2'):.0f}nm^2"
        )
    lines.append("")

    table = TextTable(
        [
            ColumnSpec("tile", 12, "<"),
            ColumnSpec("state", 9, "<"),
            ColumnSpec("phase", 10, "<"),
            ColumnSpec("iter", 5),
            ColumnSpec("objective", 11),
            ColumnSpec("#EPE", 6),
            ColumnSpec("score", 9),
            ColumnSpec("runtime", 8),
            ColumnSpec("pid", 7),
        ]
    )
    for tile in snapshot.get("tile_states", []):
        objective = tile.get("objective")
        score_total = tile.get("score_total")
        state = str(tile.get("state", ""))
        if tile.get("stalled"):
            state += "!"
        table.add_row(
            [
                tile.get("name"),
                state,
                tile.get("phase"),
                str(tile["iteration"]) if tile.get("iteration") is not None else None,
                f"{objective:.4g}" if objective is not None else None,
                str(tile["epe_violations"])
                if tile.get("epe_violations") is not None
                else None,
                f"{score_total:.0f}" if score_total is not None else None,
                _fmt_duration(tile.get("runtime_s")),
                str(tile["pid"]) if tile.get("pid") else None,
            ]
        )
    lines.append(table.render())

    resources = snapshot.get("resources") or []
    if resources:
        lines.append("")
        res_table = TextTable(
            [
                ColumnSpec("pid", 7),
                ColumnSpec("role", 7, "<"),
                ColumnSpec("rss", 10),
                ColumnSpec("rss peak", 10),
                ColumnSpec("cpu", 8),
                ColumnSpec("samples", 7),
            ]
        )
        for entry in resources:
            cpu = entry.get("cpu_s")
            res_table.add_row(
                [
                    str(entry.get("pid")),
                    entry.get("role"),
                    _fmt_bytes(entry.get("rss_last_bytes")),
                    _fmt_bytes(entry.get("rss_peak_bytes")),
                    f"{cpu:.1f}s" if cpu is not None else None,
                    str(entry.get("samples")),
                ]
            )
        lines.append(res_table.render())

    queue = snapshot.get("queue")
    if queue:
        from .report import render_queue_state

        lines.append("")
        lines.append(render_queue_state(queue))

    stalled = [
        t.get("name") for t in snapshot.get("tile_states", []) if t.get("stalled")
    ]
    if stalled:
        lines.append("")
        lines.append("stalled worker(s): " + ", ".join(str(n) for n in stalled))
    return "\n".join(lines)


def watch_exit_code(snapshot: Dict[str, object]) -> int:
    """The CLI contract: 3 when any tile (or the run) failed, else 0."""
    if snapshot.get("state") == "failed":
        return 3
    for tile in snapshot.get("tile_states", []):
        if tile.get("state") in ("failed", "timeout"):
            return 3
    return 0


def run_watch(
    run_dir: Union[str, Path],
    interval_s: float = 2.0,
    once: bool = False,
    as_json: bool = False,
    stream=None,
    clock=time.time,
    sleep=time.sleep,
) -> int:
    """Tail a run directory until it reaches a terminal state.

    Args:
        run_dir: a telemetry run directory (the ``--telemetry-dir`` of
            a ``repro fullchip`` run).
        interval_s: refresh period.
        once: render a single snapshot and return.
        as_json: emit the raw snapshot dict as JSON instead of the
            dashboard (implies no screen clearing).
        stream: output stream (default stdout).
        clock / sleep: injectable for tests.

    Returns:
        Process exit code — 0 for a clean (or still clean) run, 3 when
        the run or any tile failed.

    Raises:
        ReproError: ``run_dir`` has no readable ``status.json``.
    """
    out = stream if stream is not None else sys.stdout
    first = True
    while True:
        snapshot = collect_snapshot(run_dir)
        if as_json:
            out.write(json.dumps(snapshot, indent=2) + "\n")
        else:
            prefix = "" if (once or first) else _CLEAR
            out.write(prefix + render_snapshot(snapshot) + "\n")
        out.flush()
        first = False
        if once or snapshot.get("state") in ("done", "failed"):
            return watch_exit_code(snapshot)
        sleep(interval_s)
