"""Chrome trace-event export for timeline traces.

Converts the timestamped :class:`~repro.obs.trace.TraceSlice` intervals
recorded by timeline-mode tracers — the parent's own slices plus the
per-tile worker slices read back from spool files — into the Chrome
trace-event JSON format, loadable in Perfetto (https://ui.perfetto.dev)
or ``chrome://tracing``.

Each process is one *lane*: a ``process_name`` metadata record labels
it, and every completed span becomes a complete ("X") event with
microsecond ``ts``/``dur`` on the shared epoch clock, so parent
scheduling and worker solves line up on one time axis.  Nesting falls
out of interval containment: a worker's ``iteration`` slices sit inside
its ``optimize`` slice, which sits inside the ``tile:<name>`` slice.

The trace-viewer spec this targets:
https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Sequence, Union

from ..utils.io import write_text_atomic
from .trace import TraceSlice

__all__ = [
    "TraceLane",
    "chrome_trace_events",
    "write_chrome_trace",
    "read_chrome_trace",
    "validate_chrome_trace",
]


@dataclass
class TraceLane:
    """One process's slices, rendered as one lane in the trace viewer.

    Attributes:
        pid: process id (the lane key; duplicates merge into one lane).
        label: human-readable lane name (``parent``, ``tile_r0_c0``...).
        slices: the lane's completed-span intervals.
        tid: thread id within the lane (workers solve tiles
            sequentially, so a fixed 0 keeps X-event nesting exact).
        sort_index: explicit lane ordering in the viewer (parent first).
    """

    pid: int
    label: str
    slices: List[TraceSlice] = field(default_factory=list)
    tid: int = 0
    sort_index: int = 0


def chrome_trace_events(lanes: Sequence[TraceLane]) -> List[Dict[str, object]]:
    """Flatten lanes into trace-event records (metadata first).

    Multiple lanes may share a pid (several tiles solved by one pool
    worker); the first label wins the ``process_name`` metadata and the
    slices interleave on the shared time axis, which is exactly what
    happened at runtime.
    """
    events: List[Dict[str, object]] = []
    named_pids: Dict[int, str] = {}
    for lane in lanes:
        if lane.pid not in named_pids:
            named_pids[lane.pid] = lane.label
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": lane.pid,
                    "tid": lane.tid,
                    "args": {"name": lane.label},
                }
            )
            events.append(
                {
                    "name": "process_sort_index",
                    "ph": "M",
                    "pid": lane.pid,
                    "tid": lane.tid,
                    "args": {"sort_index": lane.sort_index},
                }
            )
    for lane in lanes:
        for item in lane.slices:
            record: Dict[str, object] = {
                "name": item.name,
                "cat": "span",
                "ph": "X",
                "ts": item.ts_us,
                "dur": item.dur_us,
                "pid": lane.pid,
                "tid": lane.tid,
                "args": {"path": item.path},
            }
            if item.failed:
                record["args"]["failed"] = True  # type: ignore[index]
            events.append(record)
    return events


def write_chrome_trace(
    path: Union[str, Path], lanes: Sequence[TraceLane]
) -> Path:
    """Write a complete ``trace.json`` atomically (tmp + ``os.replace``)."""
    document = {
        "traceEvents": chrome_trace_events(lanes),
        "displayTimeUnit": "ms",
    }
    return write_text_atomic(path, json.dumps(document))


def read_chrome_trace(path: Union[str, Path]) -> List[TraceLane]:
    """Parse a ``trace.json`` back into lanes (inverse of the writer).

    ``process_name`` metadata creates a lane per pid (first label wins,
    matching the writer); ``process_sort_index`` updates the lane's
    ordering; every "X" event appends a :class:`TraceSlice` to its
    pid's lane.  X events on a pid with no metadata get a synthesized
    ``pid-<N>`` lane, so hand-edited or foreign traces still round-trip.
    Lanes come back in first-appearance order.
    """
    with open(path, "r") as handle:
        document = json.load(handle)
    events = document.get("traceEvents") if isinstance(document, dict) else None
    lanes: Dict[int, TraceLane] = {}
    order: List[int] = []

    def lane_for(pid: int, label: str) -> TraceLane:
        lane = lanes.get(pid)
        if lane is None:
            lane = TraceLane(pid=pid, label=label)
            lanes[pid] = lane
            order.append(pid)
        return lane

    for event in events or []:
        if not isinstance(event, dict):
            continue
        pid = event.get("pid")
        if not isinstance(pid, int):
            continue
        phase = event.get("ph")
        args = event.get("args") if isinstance(event.get("args"), dict) else {}
        if phase == "M":
            name = event.get("name")
            if name == "process_name":
                label = str(args.get("name", f"pid-{pid}"))
                if pid in lanes:
                    pass  # first label wins, matching the writer
                else:
                    lane_for(pid, label)
            elif name == "process_sort_index":
                lane_for(pid, f"pid-{pid}").sort_index = int(
                    args.get("sort_index", 0)
                )
        elif phase == "X":
            lane_for(pid, f"pid-{pid}").slices.append(
                TraceSlice(
                    path=str(args.get("path") or event.get("name", "")),
                    ts_us=float(event.get("ts", 0.0)),
                    dur_us=float(event.get("dur", 0.0)),
                    failed=bool(args.get("failed", False)),
                )
            )
    return [lanes[pid] for pid in order]


def validate_chrome_trace(document: object) -> List[str]:
    """Structural check against the trace-event schema; returns problems.

    Verifies the JSON-object container shape, per-event required fields
    ("M" metadata needs ``name``/``pid``/``args``; "X" complete events
    need numeric ``ts``/``dur`` and a ``pid``), and that every "X"
    event's pid carries a ``process_name``.  An empty list means the
    trace loads cleanly in Perfetto / ``chrome://tracing``.
    """
    problems: List[str] = []
    if not isinstance(document, dict):
        return [f"trace document must be a JSON object, got {type(document).__name__}"]
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    named_pids = set()
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {i}: not an object")
            continue
        phase = event.get("ph")
        if phase == "M":
            if event.get("name") not in ("process_name", "process_sort_index",
                                         "thread_name", "thread_sort_index"):
                problems.append(f"event {i}: unknown metadata name {event.get('name')!r}")
            if not isinstance(event.get("pid"), int):
                problems.append(f"event {i}: metadata without integer pid")
            if not isinstance(event.get("args"), dict):
                problems.append(f"event {i}: metadata without args object")
            elif event.get("name") == "process_name":
                named_pids.add(event.get("pid"))
        elif phase == "X":
            if not event.get("name"):
                problems.append(f"event {i}: X event without name")
            if not isinstance(event.get("pid"), int):
                problems.append(f"event {i}: X event without integer pid")
            for key in ("ts", "dur"):
                value = event.get(key)
                if not isinstance(value, (int, float)) or value < 0:
                    problems.append(f"event {i}: X event with bad {key}={value!r}")
        else:
            problems.append(f"event {i}: unsupported phase {phase!r}")
    for i, event in enumerate(events):
        if isinstance(event, dict) and event.get("ph") == "X":
            if event.get("pid") not in named_pids:
                problems.append(
                    f"event {i}: pid {event.get('pid')} has no process_name lane"
                )
    return problems
