"""Observability: hierarchical tracing, metrics, and structured events.

The three pillars, each with a no-op null twin so instrumented code is
free when observability is off:

* :mod:`repro.obs.trace`   — nestable spans, per-phase time breakdown.
* :mod:`repro.obs.metrics` — counters / gauges / fixed-bucket histograms.
* :mod:`repro.obs.events`  — JSONL run telemetry (one record/iteration).

:class:`Instrumentation` bundles one of each and is what the stack
threads around: the simulator owns a bundle, and the optimizer, the
objectives, the harness and the CLI all pick it up from there.

Example::

    from repro.obs import Instrumentation

    obs = Instrumentation.collecting()
    sim = LithographySimulator(LithoConfig.reduced(), obs=obs)
    MosaicFast(config, simulator=sim).solve(layout)
    print(obs.tracer.report())
    print(obs.metrics.summary())
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .events import NULL_EMITTER, EventEmitter, EventSink, NullEventEmitter
from .metrics import (
    DEFAULT_GRADIENT_RMS_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
    default_registry,
    set_default_registry,
)
from .trace import NULL_TRACER, NullTracer, SpanStats, Tracer, TraceSlice

__all__ = [
    "Instrumentation",
    "Tracer",
    "NullTracer",
    "SpanStats",
    "TraceSlice",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "default_registry",
    "set_default_registry",
    "DEFAULT_GRADIENT_RMS_BUCKETS",
    "EventEmitter",
    "NullEventEmitter",
    "NullHeartbeat",
    "NULL_TRACER",
    "NULL_REGISTRY",
    "NULL_EMITTER",
    "NULL_HEARTBEAT",
]


class NullHeartbeat:
    """No-op twin of :class:`repro.obs.live.HeartbeatWriter`.

    Defined here (not in :mod:`repro.obs.live`) so the bundle has a
    zero-dependency default and instrumented code can always call
    ``obs.heartbeat.beat(...)`` unconditionally.
    """

    enabled = False

    def beat(self, phase, iteration=0, objective=None, force=False):  # noqa: D102
        pass


NULL_HEARTBEAT = NullHeartbeat()


@dataclass
class Instrumentation:
    """Bundle of tracer + metrics + events threaded through the stack.

    The default-constructed bundle is fully disabled (all three nulls),
    so ``obs = obs or Instrumentation.disabled()`` keeps hot paths
    no-op-cheap.  Use :meth:`collecting` (or mix and match fields) to
    turn pillars on.
    """

    tracer: object = field(default=NULL_TRACER)
    metrics: object = field(default=NULL_REGISTRY)
    events: object = field(default=NULL_EMITTER)
    heartbeat: object = field(default=NULL_HEARTBEAT)

    @property
    def is_enabled(self) -> bool:
        """True when any pillar collects data."""
        return bool(
            getattr(self.tracer, "enabled", False)
            or getattr(self.metrics, "enabled", False)
            or getattr(self.events, "enabled", False)
            or getattr(self.heartbeat, "enabled", False)
        )

    @classmethod
    def disabled(cls) -> "Instrumentation":
        """All-null bundle (shared singleton)."""
        return _DISABLED

    @classmethod
    def collecting(
        cls,
        trace: bool = True,
        metrics: bool = True,
        events_sink: Optional[EventSink] = None,
        timeline: bool = False,
        heartbeat: Optional[object] = None,
    ) -> "Instrumentation":
        """Fresh live bundle; events stay off unless a sink is given.

        ``timeline=True`` makes the tracer additionally record
        timestamped :class:`TraceSlice` intervals for Chrome-trace
        export (see :mod:`repro.obs.export`).  ``heartbeat`` accepts a
        :class:`repro.obs.live.HeartbeatWriter` (or any duck-typed
        ``beat()``-bearer) for live worker liveness reporting.
        """
        return cls(
            tracer=Tracer(timeline=timeline) if trace else NULL_TRACER,
            metrics=MetricsRegistry() if metrics else NULL_REGISTRY,
            events=EventEmitter(events_sink) if events_sink is not None else NULL_EMITTER,
            heartbeat=heartbeat if heartbeat is not None else NULL_HEARTBEAT,
        )

    @classmethod
    def from_config(cls, config) -> "Instrumentation":
        """Build from an :class:`repro.config.ObservabilityConfig`."""
        if not (config.trace or config.metrics or config.events_path):
            return _DISABLED
        return cls.collecting(
            trace=config.trace,
            metrics=config.metrics,
            events_sink=config.events_path,
            timeline=getattr(config, "timeline", False),
        )

    def close(self) -> None:
        """Close any file-backed event sink."""
        self.events.close()


_DISABLED = Instrumentation()
