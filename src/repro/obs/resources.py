"""Per-process resource telemetry: RSS / CPU / counter timelines.

Full-chip runs are hours-long multi-process affairs, and the spool-based
telemetry (:mod:`repro.obs.distributed`) is strictly post-mortem — a
thrashing or leaking worker is invisible until it finishes or dies.
:class:`ResourceSampler` closes that gap: a daemon thread samples the
*current process* at a fixed interval — resident set size, cumulative
CPU time, and a configurable set of live counters (FFTs, optimizer
iterations) read from a :class:`~repro.obs.metrics.MetricsRegistry` —
into a capped in-memory timeline that is simultaneously appended, one
JSON line per sample, to ``resources_<pid>.jsonl`` in the run's
telemetry directory.

Append-per-sample (rather than the atomic rewrite the spools use) is
deliberate: the file is a *live* feed the ``repro watch`` dashboard
tails mid-run, and JSONL degrades gracefully — a torn final line from a
dying process is skipped by :func:`read_resource_timeline`, every
complete line stays valid.

Readers (:func:`read_resource_timeline`, :func:`summarize_resources`)
work from the files alone so ``repro watch`` and ``repro report`` can
consume timelines of any finished, crashed, or still-running process.
"""

from __future__ import annotations

import json
import logging
import os
import resource
import sys
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Deque, Dict, List, Optional, Sequence, Union

__all__ = [
    "RESOURCES_DIRNAME",
    "DEFAULT_COUNTER_NAMES",
    "ResourceSample",
    "ResourceSampler",
    "process_rss_bytes",
    "process_cpu_s",
    "resources_filename",
    "iter_resource_files",
    "read_resource_timeline",
    "summarize_resources",
]

logger = logging.getLogger(__name__)

#: Resource timelines live in this subdirectory of a telemetry run dir.
RESOURCES_DIRNAME = "resources"

#: Counters sampled by default: the optimizer's iteration count and the
#: forward engine's FFT accounting (see docs/observability.md).
DEFAULT_COUNTER_NAMES = ("iterations_total", "forward_mask_ffts", "forward_fft_reuse")


def resources_filename(pid: int) -> str:
    """The resource-timeline file name for one process."""
    return f"resources_{pid}.jsonl"


def iter_resource_files(directory: Union[str, Path]) -> List[Path]:
    """All resource timelines under a directory, sorted by name."""
    path = Path(directory)
    if not path.is_dir():
        return []
    return sorted(path.glob("resources_*.jsonl"))


def process_rss_bytes() -> int:
    """Current resident set size of this process, in bytes.

    Reads ``/proc/self/statm`` where available (Linux); elsewhere falls
    back to ``ru_maxrss`` — the *peak* RSS, still monotone enough for a
    leak trend line.
    """
    try:
        with open("/proc/self/statm") as handle:
            pages = int(handle.read().split()[1])
        return pages * os.sysconf("SC_PAGE_SIZE")
    except (OSError, ValueError, IndexError):
        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # ru_maxrss is kilobytes on Linux, bytes on macOS.
        return int(peak) * (1 if sys.platform == "darwin" else 1024)


def process_cpu_s() -> float:
    """Cumulative user+system CPU seconds of this process."""
    times = os.times()
    return float(times.user + times.system)


@dataclass
class ResourceSample:
    """One point on a per-process resource timeline.

    Attributes:
        ts: epoch timestamp of the sample.
        pid: sampled process id.
        rss_bytes: resident set size at the sample.
        cpu_s: cumulative user+system CPU seconds at the sample.
        counters: live counter values (``iterations_total`` etc.) read
            from the process's metrics registry.
    """

    ts: float
    pid: int
    rss_bytes: int
    cpu_s: float
    counters: Dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {
            "ts": self.ts,
            "pid": self.pid,
            "rss_bytes": self.rss_bytes,
            "cpu_s": self.cpu_s,
            "counters": dict(self.counters),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ResourceSample":
        return cls(
            ts=float(data.get("ts", 0.0)),
            pid=int(data.get("pid", 0)),
            rss_bytes=int(data.get("rss_bytes", 0)),
            cpu_s=float(data.get("cpu_s", 0.0)),
            counters={
                str(k): int(v) for k, v in dict(data.get("counters") or {}).items()
            },
        )


class ResourceSampler:
    """Daemon-thread sampler appending one JSONL line per interval.

    Args:
        path: target ``resources_<pid>.jsonl`` file (parent directories
            are created; an existing file is appended to, so a pool
            worker reused across tiles extends one continuous timeline).
        interval_s: seconds between samples.
        metrics: optional metrics registry whose counters named in
            ``counter_names`` ride along on every sample (duck-typed;
            the null registry contributes nothing).
        counter_names: which counters to sample.
        max_samples: in-memory timeline cap (oldest samples drop; the
            file keeps everything).
        clock: epoch clock, injectable for tests.

    Use as a context manager, or call :meth:`start` / :meth:`stop`.
    Sampling never raises into the host process: a failed sample is
    logged and skipped.
    """

    def __init__(
        self,
        path: Union[str, Path],
        interval_s: float = 0.5,
        metrics: Optional[object] = None,
        counter_names: Sequence[str] = DEFAULT_COUNTER_NAMES,
        max_samples: int = 10_000,
        clock=time.time,
    ) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval_s must be positive, got {interval_s}")
        if max_samples < 1:
            raise ValueError(f"max_samples must be >= 1, got {max_samples}")
        self.path = Path(path)
        self.interval_s = interval_s
        self.metrics = metrics
        self.counter_names = tuple(counter_names)
        self.clock = clock
        self._timeline: Deque[ResourceSample] = deque(maxlen=max_samples)
        self._stop = threading.Event()
        self._lock = threading.Lock()
        self._thread: Optional[threading.Thread] = None
        self._handle = None

    @property
    def samples(self) -> List[ResourceSample]:
        """Snapshot of the capped in-memory timeline."""
        with self._lock:
            return list(self._timeline)

    def _read_counters(self) -> Dict[str, int]:
        if self.metrics is None:
            return {}
        try:
            snapshot = self.metrics.as_dict()
        except Exception:  # noqa: BLE001 - telemetry must not fail the host
            return {}
        counters: Dict[str, int] = {}
        for name in self.counter_names:
            data = snapshot.get(name)
            if data and data.get("type") == "counter":
                counters[name] = int(data.get("value", 0) or 0)
        return counters

    def sample(self) -> Optional[ResourceSample]:
        """Take one sample now: append to the timeline and the file."""
        try:
            record = ResourceSample(
                ts=float(self.clock()),
                pid=os.getpid(),
                rss_bytes=process_rss_bytes(),
                cpu_s=process_cpu_s(),
                counters=self._read_counters(),
            )
        except Exception as exc:  # noqa: BLE001 - never fail the host
            logger.warning("resource sample failed: %s", exc)
            return None
        with self._lock:
            self._timeline.append(record)
            if self._handle is not None:
                try:
                    self._handle.write(json.dumps(record.as_dict()) + "\n")
                    self._handle.flush()
                except OSError as exc:
                    logger.warning("resource timeline write failed: %s", exc)
        return record

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.sample()

    def start(self) -> "ResourceSampler":
        """Open the timeline file and start the sampling thread."""
        if self._thread is not None:
            return self
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "a")
        self._stop.clear()
        self.sample()
        self._thread = threading.Thread(
            target=self._run, daemon=True, name="resource-sampler"
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Take a final sample, stop the thread, and close the file."""
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=max(1.0, 4 * self.interval_s))
        self._thread = None
        self.sample()
        with self._lock:
            if self._handle is not None:
                try:
                    self._handle.close()
                except OSError:
                    pass
                self._handle = None

    def __enter__(self) -> "ResourceSampler":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


def read_resource_timeline(path: Union[str, Path]) -> List[ResourceSample]:
    """Parse one timeline file; torn/bad lines are skipped silently.

    A still-running (or killed) writer can leave a partial final line —
    that is expected, not an error.
    """
    samples: List[ResourceSample] = []
    try:
        with open(path, "r") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    samples.append(ResourceSample.from_dict(json.loads(line)))
                except (json.JSONDecodeError, ValueError, TypeError):
                    continue
    except OSError as exc:
        logger.warning("unreadable resource timeline %s: %s", path, exc)
    return samples


def summarize_resources(
    directory: Union[str, Path], parent_pid: Optional[int] = None
) -> List[Dict[str, object]]:
    """Distill every timeline under ``directory`` to one summary each.

    Returns JSON-able dicts (consumed by ``repro report`` and ``repro
    watch``): pid, role (``parent``/``worker`` when ``parent_pid`` is
    known), sample count, covered wall-clock span, peak and last RSS,
    last CPU seconds, and the final counter values.
    """
    summaries: List[Dict[str, object]] = []
    for path in iter_resource_files(directory):
        samples = read_resource_timeline(path)
        if not samples:
            continue
        last = samples[-1]
        role = None
        if parent_pid is not None:
            role = "parent" if last.pid == parent_pid else "worker"
        summaries.append(
            {
                "pid": last.pid,
                "role": role,
                "file": path.name,
                "samples": len(samples),
                "duration_s": last.ts - samples[0].ts,
                "rss_peak_bytes": max(s.rss_bytes for s in samples),
                "rss_last_bytes": last.rss_bytes,
                "cpu_s": last.cpu_s,
                "counters": dict(last.counters),
            }
        )
    return summaries
