"""Run reports and perf-regression checks over telemetry artifacts.

Everything here renders from *artifacts alone* — the ``run.json`` /
``metrics.json`` / ``spool/*.jsonl`` files a telemetry-enabled full-chip
run leaves in its run directory (see
:meth:`repro.fullchip.FullChipEngine.solve` with
``FullChipConfig.telemetry_dir``) — no live engine objects, so the
``repro report`` CLI can post-mortem any finished or crashed run.

Three pieces:

* :func:`render_run_report` — per-tile runtime/EPE/PV-band/retry table,
  merged phase-time breakdown, metrics summary, ambit-cache stats, and
  per-tile convergence diagnostics rebuilt from the spooled iteration
  events.
* :func:`diagnose_history` — convergence analysis of one
  :class:`~repro.opc.history.OptimizationHistory`: objective drop,
  per-term contributions, step-size trace, stall and oscillation flags,
  recovery-event overlay.
* :func:`compare_bench` / :func:`render_bench_check` — the ``repro
  bench-check`` regression gate comparing a fresh benchmark JSON
  against a checked-in ``BENCH_*.json`` baseline.  Direction is
  inferred from the key: ``*speedup*`` is higher-is-better, ``*_s``
  (seconds) is lower-is-better, everything else is informational.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..errors import ReproError
from ..opc.history import IterationRecord, OptimizationHistory
from ..tables import ColumnSpec, TextTable
from .distributed import SPOOL_DIRNAME, SpoolData, read_spool
from .metrics import MetricsRegistry
from .resources import RESOURCES_DIRNAME, summarize_resources
from .trace import Tracer

__all__ = [
    "RUN_FILENAME",
    "METRICS_FILENAME",
    "TRACE_FILENAME",
    "ConvergenceDiagnostics",
    "diagnose_history",
    "load_run",
    "build_run_report",
    "render_run_report",
    "render_queue_state",
    "BenchDelta",
    "bench_direction",
    "compare_bench",
    "render_bench_check",
    "update_bench_baseline",
]

RUN_FILENAME = "run.json"
METRICS_FILENAME = "metrics.json"
TRACE_FILENAME = "trace.json"

#: Stall detection: relative objective improvement over the trailing
#: window below this fraction flags the trajectory as stalled.
STALL_WINDOW = 5
STALL_REL_TOL = 1e-3

#: Oscillation detection: fraction of sign flips in successive objective
#: deltas above this threshold flags the trajectory as oscillating.
OSCILLATION_THRESHOLD = 0.5


# -- convergence diagnostics -------------------------------------------------


@dataclass
class ConvergenceDiagnostics:
    """Distilled convergence behaviour of one optimization trajectory.

    Attributes:
        iterations: recorded iteration count.
        first_objective / final_objective / best_objective: objective
            trajectory endpoints (None when the history is empty).
        final_step_size: last applied step (after jumps/backtracking).
        min_step_size / max_step_size: step-size trace envelope.
        final_terms: per-term objective values at the last iteration.
        stalled: trailing-window relative improvement below tolerance.
        oscillating: objective deltas flip sign more often than not.
        recoveries: recovery events overlaid from the event stream.
    """

    iterations: int = 0
    first_objective: Optional[float] = None
    final_objective: Optional[float] = None
    best_objective: Optional[float] = None
    final_step_size: Optional[float] = None
    min_step_size: Optional[float] = None
    max_step_size: Optional[float] = None
    final_terms: Dict[str, float] = field(default_factory=dict)
    stalled: bool = False
    oscillating: bool = False
    recoveries: int = 0

    @property
    def flags(self) -> List[str]:
        flags = []
        if self.stalled:
            flags.append("stalled")
        if self.oscillating:
            flags.append("oscillating")
        if self.recoveries:
            flags.append(f"{self.recoveries} recovery")
        return flags

    def as_dict(self) -> Dict[str, object]:
        """JSON-able form (embedded in the structured run report)."""
        return {
            "iterations": self.iterations,
            "first_objective": self.first_objective,
            "final_objective": self.final_objective,
            "best_objective": self.best_objective,
            "final_step_size": self.final_step_size,
            "min_step_size": self.min_step_size,
            "max_step_size": self.max_step_size,
            "final_terms": dict(self.final_terms),
            "stalled": self.stalled,
            "oscillating": self.oscillating,
            "recoveries": self.recoveries,
            "flags": list(self.flags),
        }


def diagnose_history(
    history: OptimizationHistory,
    recoveries: int = 0,
    stall_window: int = STALL_WINDOW,
    stall_rel_tol: float = STALL_REL_TOL,
    oscillation_threshold: float = OSCILLATION_THRESHOLD,
) -> ConvergenceDiagnostics:
    """Analyse one trajectory for stalls, oscillation, and step health."""
    records = list(history)
    if not records:
        return ConvergenceDiagnostics(recoveries=recoveries)
    objectives = [r.objective for r in records]
    steps = [r.step_size for r in records]
    diag = ConvergenceDiagnostics(
        iterations=len(records),
        first_objective=objectives[0],
        final_objective=objectives[-1],
        best_objective=min(objectives),
        final_step_size=steps[-1],
        min_step_size=min(steps),
        max_step_size=max(steps),
        final_terms=dict(records[-1].term_values),
        recoveries=recoveries,
    )
    if len(objectives) > stall_window:
        window = objectives[-(stall_window + 1):]
        base = abs(window[0]) or 1.0
        diag.stalled = (window[0] - min(window)) / base < stall_rel_tol
    deltas = [b - a for a, b in zip(objectives, objectives[1:])]
    flips = sum(
        1 for a, b in zip(deltas, deltas[1:]) if a * b < 0
    )
    if len(deltas) > 2:
        diag.oscillating = flips / (len(deltas) - 1) > oscillation_threshold
    return diag


def _history_from_events(events: List[Dict[str, object]]) -> OptimizationHistory:
    """Rebuild a history from spooled event records (dicts, not lines)."""
    history = OptimizationHistory()
    for event in events:
        if event.get("event") == "iteration":
            history.append(IterationRecord.from_event(event))
    return history


def _render_convergence_line(tile: str, diag: Dict[str, object]) -> str:
    if not diag.get("iterations"):
        return f"{tile}: no iterations recorded"
    final_terms = diag.get("final_terms") or {}
    terms = ", ".join(f"{k}={v:.3g}" for k, v in sorted(final_terms.items()))
    flag_list = diag.get("flags") or []
    flags = f"  [{', '.join(flag_list)}]" if flag_list else ""
    line = (
        f"{tile}: {diag['iterations']} iters, "
        f"F {diag['first_objective']:.4g} -> {diag['final_objective']:.4g} "
        f"(best {diag['best_objective']:.4g}), "
        f"step {diag['final_step_size']:.3g} "
        f"[{diag['min_step_size']:.3g}..{diag['max_step_size']:.3g}]"
    )
    if terms:
        line += f", terms: {terms}"
    return line + flags


# -- durable queue state ------------------------------------------------------


def render_queue_state(queue: Dict[str, object]) -> str:
    """Render one ``load_queue_state`` payload as a text section.

    Shared by ``repro watch`` and ``repro report`` so the two views of
    the durable queue can never drift apart.  Works from the queue
    directory's files alone — no ``status.json`` / ``run.json`` needed.
    """
    counts = queue.get("counts") or {}
    lines = [
        "--- durable queue ---",
        f"{counts.get('pending', 0)} pending, {counts.get('leased', 0)} leased, "
        f"{counts.get('done', 0)} done, {counts.get('failed', 0)} failed, "
        f"{counts.get('quarantined', 0)} quarantined | "
        f"{counts.get('requeued', 0)} requeue incident(s) | "
        f"lease {float(queue.get('lease_s', 0.0)):g}s, "
        f"max requeues {queue.get('max_requeues')}, "
        f"backoff {float(queue.get('backoff_s', 0.0)):g}s",
    ]
    table = TextTable(
        [
            ColumnSpec("tile", 12, "<"),
            ColumnSpec("queue state", 11, "<"),
            ColumnSpec("attempts", 8),
            ColumnSpec("requeues", 8),
            ColumnSpec("history", 40, "<"),
        ]
    )
    for tile in queue.get("tiles", []):
        kinds = [str(h.get("kind", "?")) for h in tile.get("history") or []]
        if len(kinds) > 6:
            kinds = ["..."] + kinds[-6:]
        table.add_row(
            [
                str(tile.get("name", "?")),
                str(tile.get("state", "?")),
                str(tile.get("attempts", "?")),
                str(tile.get("requeues", 0)),
                " -> ".join(kinds) if kinds else None,
            ]
        )
    lines.append(table.render())
    return "\n".join(lines)


# -- run report --------------------------------------------------------------


def load_run(run_dir: Union[str, Path]) -> Dict[str, object]:
    """Parse ``run.json`` from a telemetry run directory.

    Raises:
        ReproError: the directory has no readable ``run.json``.
    """
    path = Path(run_dir) / RUN_FILENAME
    if not path.is_file():
        raise ReproError(f"no {RUN_FILENAME} in {run_dir} (not a telemetry run dir?)")
    try:
        with open(path) as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise ReproError(f"unreadable {path}: {exc}") from exc


def _load_spools(run_dir: Path, run: Dict[str, object]) -> Dict[str, SpoolData]:
    """Per-tile spool data keyed by tile name (missing files skipped)."""
    spools: Dict[str, SpoolData] = {}
    spool_dir = run_dir / SPOOL_DIRNAME
    for tile in run.get("tiles", []):
        telemetry = tile.get("telemetry") or {}
        spool_file = telemetry.get("spool_file")
        if not spool_file:
            continue
        path = spool_dir / str(spool_file)
        if path.is_file():
            spools[str(tile.get("name", ""))] = read_spool(path)
    return spools


def build_run_report(run_dir: Union[str, Path]) -> Dict[str, object]:
    """Assemble the structured run report (the ``report --json`` payload).

    One JSON-able dict fusing every artifact of a telemetry run
    directory: the ``run.json`` manifest, the merged ``metrics.json``
    snapshot, per-tile convergence diagnostics rebuilt from the spooled
    iteration events, and the per-process resource summaries.  The text
    report (:func:`render_run_report`) renders from *this* structure, so
    the two paths can never drift apart.

    Raises:
        ReproError: the directory has no readable ``run.json``.
    """
    run_dir = Path(run_dir)
    run = load_run(run_dir)
    metrics: Optional[Dict[str, object]] = None
    metrics_path = run_dir / METRICS_FILENAME
    if metrics_path.is_file():
        try:
            with open(metrics_path) as handle:
                metrics = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise ReproError(f"unreadable {metrics_path}: {exc}") from exc
    convergence: Dict[str, Dict[str, object]] = {}
    for name, spool in sorted(_load_spools(run_dir, run).items()):
        recoveries = sum(
            1 for e in spool.events if str(e.get("event", "")).startswith("recovery")
        )
        convergence[name] = diagnose_history(
            _history_from_events(spool.events), recoveries=recoveries
        ).as_dict()
    # Durable-queue state, read from the queue/ directory alone (None
    # for pool/serial runs that never seeded one).  Imported lazily:
    # obs must stay importable without the fullchip package.
    from ..fullchip.queue import load_queue_state

    return {
        "schema": 1,
        "kind": "fullchip_report",
        "run": run,
        "metrics": metrics,
        "convergence": convergence,
        "queue": load_queue_state(run_dir),
        "resources": summarize_resources(
            run_dir / RESOURCES_DIRNAME, parent_pid=run.get("parent_pid")
        ),
    }


def render_run_report(run_dir: Union[str, Path]) -> str:
    """Render the full run summary from a telemetry run directory."""
    report = build_run_report(run_dir)
    run = report["run"]
    sections: List[str] = []

    layout = run.get("layout", "?")
    grid = run.get("grid") or ["?", "?"]
    score = run.get("score") or {}
    sections.append(
        f"run: {layout} | {grid[0]}x{grid[1]} tiles | "
        f"{run.get('workers', '?')} worker(s) | "
        f"runtime {float(run.get('runtime_s', 0.0)):.1f} s"
    )
    if run.get("trace_id"):
        sections.append(f"trace: {run['trace_id']}")
    if score:
        sections.append(
            f"chip score: {float(score.get('total', 0.0)):.0f} "
            f"(#EPE={score.get('epe_violations', '?')}, "
            f"PVB={float(score.get('pv_band_nm2', 0.0)):.0f} nm^2, "
            f"shapes={score.get('shape_violations', '?')})"
        )
    seams = run.get("seams") or {}
    if seams:
        sections.append(
            f"seams: max|dM|={float(seams.get('max_abs_mask_delta', 0.0)):.3e}, "
            f"{seams.get('seam_epe_violations', '?')} seam EPE violation(s)"
        )
    ambit = run.get("ambit_cache") or {}
    if ambit:
        sections.append(
            f"ambit model cache: hits={ambit.get('hits', 0)} "
            f"misses={ambit.get('misses', 0)} entries={ambit.get('entries', 0)}"
        )

    # Per-tile table.
    table = TextTable(
        [
            ColumnSpec("tile", 12, "<"),
            ColumnSpec("status", 10, "<"),
            ColumnSpec("attempts", 8),
            ColumnSpec("iters", 6),
            ColumnSpec("#EPE", 6),
            ColumnSpec("PVB", 10),
            ColumnSpec("score", 10),
            ColumnSpec("runtime", 9),
            ColumnSpec("pid", 7),
        ]
    )
    tiles = run.get("tiles", [])
    for tile in tiles:
        telemetry = tile.get("telemetry") or {}
        ok = tile.get("status") in ("ok", "recovered")
        table.add_row(
            [
                str(tile.get("name", "?")),
                str(tile.get("status", "?")) + ("*" if tile.get("cached") else ""),
                str(tile.get("attempts", "?")),
                str(telemetry.get("iterations")) if telemetry else None,
                str(tile.get("epe_violations")) if ok else None,
                f"{float(tile.get('pv_band_nm2', 0.0)):.0f}" if ok else None,
                f"{float(tile.get('score_total', 0.0)):.0f}" if ok else None,
                f"{float(tile.get('runtime_s', 0.0)):.1f}s",
                str(telemetry.get("pid")) if telemetry else None,
            ]
        )
    sections.append(table.render())

    # Phase breakdown rebuilt from the persisted (already merged) stats.
    span_stats = run.get("span_stats") or []
    if span_stats:
        tracer = Tracer()
        tracer.absorb(span_stats)
        sections.append(tracer.report())

    # Metrics summary rebuilt from the persisted snapshot.
    if report["metrics"] is not None:
        registry = MetricsRegistry()
        registry.merge_snapshot(report["metrics"])
        sections.append(registry.summary())

    # Durable-queue state (queue-executor runs only).
    queue = report.get("queue")
    if queue:
        sections.append(render_queue_state(queue))

    # Convergence diagnostics from the spooled iteration events.
    convergence = report["convergence"]
    if convergence:
        lines = ["--- convergence ---"]
        for name in sorted(convergence):
            lines.append(_render_convergence_line(name, convergence[name]))
        sections.append("\n".join(lines))

    # Per-process resource timelines (when the sampler ran).
    resources = report["resources"]
    if resources:
        lines = ["--- resources ---"]
        for entry in resources:
            counters = entry.get("counters") or {}
            counter_text = (
                ", " + ", ".join(f"{k}={v}" for k, v in sorted(counters.items()))
                if counters
                else ""
            )
            lines.append(
                f"pid {entry.get('pid')} ({entry.get('role') or 'unknown'}): "
                f"rss peak {float(entry.get('rss_peak_bytes', 0)) / 2**20:.1f} MiB, "
                f"cpu {float(entry.get('cpu_s', 0.0)):.1f} s, "
                f"{entry.get('samples')} sample(s) over "
                f"{float(entry.get('duration_s', 0.0)):.1f} s{counter_text}"
            )
        sections.append("\n".join(lines))

    return "\n\n".join(sections)


# -- bench-check -------------------------------------------------------------


@dataclass(frozen=True)
class BenchDelta:
    """One benchmark key compared between baseline and fresh results.

    Attributes:
        key: the benchmark JSON key.
        baseline / fresh: the two values.
        direction: ``"higher"`` / ``"lower"`` is better, or None for
            informational keys that never gate.
        change: relative change ``(fresh - baseline) / |baseline|``.
        regressed: the change moved the wrong way beyond tolerance.
    """

    key: str
    baseline: float
    fresh: float
    direction: Optional[str]
    change: float
    regressed: bool


def bench_direction(key: str) -> Optional[str]:
    """Infer better-direction from a benchmark key name."""
    lowered = key.lower()
    if "floor" in lowered or "tol" in lowered:
        return None  # config echoes, not measurements
    if "speedup" in lowered:
        return "higher"
    if lowered.endswith("_s"):
        return "lower"
    return None


def compare_bench(
    baseline: Dict[str, object],
    fresh: Dict[str, object],
    tolerance: float = 0.15,
    overrides: Optional[Dict[str, float]] = None,
) -> List[BenchDelta]:
    """Compare two benchmark JSON payloads key by key.

    Only numeric keys present in *both* payloads participate; a key is
    *regressed* when it moved against its inferred direction by more
    than its tolerance (fractional) — ``overrides`` maps individual
    keys to their own tolerance, everything else uses ``tolerance``.
    Keys with no inferred direction are reported with
    ``regressed=False``.
    """
    if tolerance < 0:
        raise ReproError(f"tolerance must be >= 0, got {tolerance}")
    overrides = overrides or {}
    for key, value in overrides.items():
        if value < 0:
            raise ReproError(f"tolerance for {key!r} must be >= 0, got {value}")
    deltas: List[BenchDelta] = []
    for key in sorted(set(baseline) & set(fresh)):
        base_value, fresh_value = baseline[key], fresh[key]
        if isinstance(base_value, bool) or isinstance(fresh_value, bool):
            continue
        if not isinstance(base_value, (int, float)) or not isinstance(
            fresh_value, (int, float)
        ):
            continue
        direction = bench_direction(key)
        base_f, fresh_f = float(base_value), float(fresh_value)
        change = (fresh_f - base_f) / abs(base_f) if base_f else 0.0
        key_tolerance = overrides.get(key, tolerance)
        regressed = False
        if direction == "higher":
            regressed = change < -key_tolerance
        elif direction == "lower":
            regressed = change > key_tolerance
        deltas.append(
            BenchDelta(
                key=key,
                baseline=base_f,
                fresh=fresh_f,
                direction=direction,
                change=change,
                regressed=regressed,
            )
        )
    return deltas


def render_bench_check(
    name: str, deltas: List[BenchDelta], tolerance: float
) -> str:
    """Fixed-width bench comparison table plus the verdict line."""
    table = TextTable(
        [
            ColumnSpec("key", 24, "<"),
            ColumnSpec("baseline", 12),
            ColumnSpec("fresh", 12),
            ColumnSpec("change", 8),
            ColumnSpec("better", 6, "<"),
            ColumnSpec("verdict", 10, "<"),
        ]
    )
    for d in deltas:
        table.add_row(
            [
                d.key,
                f"{d.baseline:.4g}",
                f"{d.fresh:.4g}",
                f"{d.change:+.1%}",
                {"higher": "high", "lower": "low"}.get(d.direction or "", "-"),
                "REGRESSED" if d.regressed else "ok",
            ]
        )
    regressions = [d for d in deltas if d.regressed]
    verdict = (
        f"{len(regressions)} regression(s) beyond {tolerance:.0%} tolerance: "
        + ", ".join(d.key for d in regressions)
        if regressions
        else f"no regressions beyond {tolerance:.0%} tolerance"
    )
    return f"--- bench-check: {name} ---\n{table.render()}\n{verdict}"


def update_bench_baseline(
    baseline_path: Union[str, Path], fresh: Dict[str, object]
) -> Dict[str, object]:
    """Rewrite a bench baseline in place with the fresh measurements.

    The old baseline's top-level values are preserved one generation
    deep under a ``previous`` key (the old baseline's own ``previous``
    is dropped — baselines don't grow unboundedly).  The write is
    atomic.  Returns the payload that was written.
    """
    from ..utils.io import write_json_atomic

    path = Path(baseline_path)
    try:
        with open(path) as handle:
            old = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise ReproError(f"unreadable baseline {path}: {exc}") from exc
    payload = {k: v for k, v in fresh.items() if k != "previous"}
    payload["previous"] = {k: v for k, v in old.items() if k != "previous"}
    write_json_atomic(path, payload)
    return payload
