"""Structured JSONL event stream for run telemetry.

One JSON object per line, each with an ``"event"`` type plus free-form
fields — one record per optimizer iteration and per run-lifecycle event
(``run_start`` / ``run_end`` / harness cells).  The sink is a file path,
an open text stream, or a callback receiving the event dict; the same
schema is produced by ``OptimizationHistory.to_jsonl`` so trajectories
round-trip between live streams and saved histories.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Callable, Dict, IO, Optional, Union

__all__ = ["EventEmitter", "NullEventEmitter", "NULL_EMITTER"]

#: Anything an emitter can write to.
EventSink = Union[str, Path, IO[str], Callable[[Dict[str, object]], None]]


def _jsonable(value: object) -> object:
    """Coerce numpy scalars and other oddballs into plain JSON types."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    item = getattr(value, "item", None)  # numpy scalar -> python scalar
    if callable(item):
        return item()
    return str(value)


class EventEmitter:
    """Streams structured events to a file, stream, or callback.

    Emission is thread-safe: a lock serializes writes (and the lazy file
    open), so concurrent ``emit`` calls — e.g. the harness cell-timeout
    path emitting from its daemon budget thread while the main thread
    streams iteration events — can never interleave or tear JSONL lines.

    Args:
        sink: destination — a path (opened lazily, line-buffered), an
            open text stream (``write`` is used, never closed), or a
            callable invoked with each event dict.

    Example:
        >>> seen = []
        >>> emitter = EventEmitter(seen.append)
        >>> emitter.emit("run_start", shape=[4, 4])
        >>> seen[0]["event"]
        'run_start'
    """

    enabled = True

    def __init__(self, sink: EventSink) -> None:
        self._callback: Optional[Callable[[Dict[str, object]], None]] = None
        self._stream: Optional[IO[str]] = None
        self._path: Optional[Path] = None
        self._owns_stream = False
        self._lock = threading.Lock()
        if callable(sink):
            self._callback = sink
        elif hasattr(sink, "write"):
            self._stream = sink  # type: ignore[assignment]
        else:
            self._path = Path(sink)  # type: ignore[arg-type]

    def emit(self, event: str, **fields: object) -> None:
        """Record one event (the ``event`` key is always first)."""
        record: Dict[str, object] = {"event": event}
        for key, value in fields.items():
            record[key] = _jsonable(value)
        if self._callback is not None:
            self._callback(record)
            return
        line = json.dumps(record) + "\n"
        with self._lock:
            if self._stream is None:
                self._stream = open(self._path, "a", buffering=1)
                self._owns_stream = True
            self._stream.write(line)

    def close(self) -> None:
        """Flush and close a lazily opened file sink (idempotent)."""
        with self._lock:
            if self._owns_stream and self._stream is not None:
                self._stream.close()
                self._stream = None
                self._owns_stream = False

    def __enter__(self) -> "EventEmitter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class NullEventEmitter:
    """No-op emitter: the default when observability is disabled."""

    enabled = False

    def emit(self, event: str, **fields: object) -> None:
        pass

    def close(self) -> None:
        pass

    def __enter__(self) -> "NullEventEmitter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


#: Shared no-op emitter instance for disabled-observability defaults.
NULL_EMITTER = NullEventEmitter()
