"""Worker-side telemetry for the tile pool, spooled and merged.

Since the tiled engine (PR 4) runs each tile solve in a forked
``ProcessPoolExecutor`` worker, the parent's :class:`Instrumentation`
only observes scheduling — the per-iteration Hopkins simulations that
dominate full-chip cost happen in processes the parent's tracer never
sees.  This module closes that gap with a spool-and-merge scheme:

1. **Worker side** — :func:`worker_instrumentation` builds a live bundle
   inside ``solve_tile_job`` (timeline tracing + metrics + an in-memory
   event buffer).  After the solve, :func:`write_spool` persists the
   whole bundle as one atomic per-tile JSONL *spool file* (temp file +
   ``os.replace``, the checkpoint discipline) and
   :func:`summarize_worker` distills a compact, picklable
   :class:`TileTelemetry` that rides back to the parent inside
   ``TileResult``.

2. **Parent side** — :func:`merge_tile_telemetry` folds each summary
   into the parent's bundle (counter sums, histogram bucket merges,
   span stats re-rooted under ``fullchip.tiles/<tile>``), so the
   parent's ``metrics.summary()`` and ``tracer.report()`` cover the
   whole chip.  The spool files remain on disk as the ground-truth
   artifacts consumed by the Chrome-trace exporter
   (:mod:`repro.obs.export`) and the ``repro report`` renderer
   (:mod:`repro.obs.report`).

Spool-file format: one JSON object per line, discriminated by ``kind``:

* ``header`` — tile name, worker pid, wall-clock bounds.
* ``span``   — one :class:`~repro.obs.trace.SpanStats` ``as_dict()``.
* ``slice``  — one :class:`~repro.obs.trace.TraceSlice` (timeline mode).
* ``metric`` — one named instrument snapshot (``as_dict()`` form).
* ``event``  — one structured event record, verbatim.
"""

from __future__ import annotations

import json
import logging
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..utils.io import write_text_atomic
from . import Instrumentation
from .trace import TraceSlice

__all__ = [
    "WorkerTelemetryConfig",
    "TileTelemetry",
    "SpoolData",
    "worker_instrumentation",
    "summarize_worker",
    "write_spool",
    "read_spool",
    "iter_spool_files",
    "spool_filename",
    "merge_tile_telemetry",
]

logger = logging.getLogger(__name__)

#: Spool files live in this subdirectory of a telemetry run directory.
SPOOL_DIRNAME = "spool"


def spool_filename(tile_name: str) -> str:
    """The spool file name for one tile (``spool_<tile>.jsonl``)."""
    return f"spool_{tile_name}.jsonl"


def iter_spool_files(spool_dir: Union[str, Path]) -> List[Path]:
    """All spool files under a directory, sorted by name."""
    directory = Path(spool_dir)
    if not directory.is_dir():
        return []
    return sorted(directory.glob("spool_*.jsonl"))


@dataclass(frozen=True)
class WorkerTelemetryConfig:
    """Telemetry settings shipped into tile workers (picklable).

    Attributes:
        spool_dir: directory receiving per-tile spool files (created on
            demand inside the worker).
        timeline: record timestamped slices for Chrome-trace export.
        heartbeat_dir: directory receiving per-tile heartbeat files;
            None disables worker heartbeats.
        heartbeat_min_interval_s: throttle between heartbeat rewrites
            (0 = every optimizer iteration).
        resource_dir: directory receiving per-pid ``resources_*.jsonl``
            timelines; None disables the worker resource sampler.
        resource_interval_s: sampling interval for the worker resource
            sampler (≤ 0 disables it even when ``resource_dir`` is set).
        trace_id: request correlation id stamped into heartbeats and
            spool headers; None when the run has no originating request.
    """

    spool_dir: str
    timeline: bool = True
    heartbeat_dir: Optional[str] = None
    heartbeat_min_interval_s: float = 0.0
    resource_dir: Optional[str] = None
    resource_interval_s: float = 0.0
    trace_id: Optional[str] = None


@dataclass
class TileTelemetry:
    """Compact worker-telemetry summary returned inside ``TileResult``.

    Everything here is plain JSON-able data so the summary pickles
    cheaply across the pool boundary and serializes into ``run.json``.

    Attributes:
        tile: the tile's name (``tile_r<row>_c<col>``).
        pid: worker process id (a Chrome-trace lane).
        spool_file: spool file basename under the run's spool directory.
        iterations: optimizer iterations recorded by the worker
            (``iterations_total`` counter).
        span_stats: the worker tracer's ``stats()`` in ``as_dict`` form.
        metrics: the worker registry's ``as_dict()`` snapshot.
        events_count: structured events captured in the spool.
    """

    tile: str
    pid: int
    spool_file: str
    iterations: int = 0
    span_stats: List[Dict[str, object]] = field(default_factory=list)
    metrics: Dict[str, Dict[str, object]] = field(default_factory=dict)
    events_count: int = 0

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly form (embedded in ``run.json``)."""
        return {
            "tile": self.tile,
            "pid": self.pid,
            "spool_file": self.spool_file,
            "iterations": self.iterations,
            "span_stats": list(self.span_stats),
            "metrics": dict(self.metrics),
            "events_count": self.events_count,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "TileTelemetry":
        return cls(
            tile=str(data["tile"]),
            pid=int(data.get("pid", 0)),
            spool_file=str(data.get("spool_file", "")),
            iterations=int(data.get("iterations", 0)),
            span_stats=list(data.get("span_stats", [])),
            metrics=dict(data.get("metrics", {})),
            events_count=int(data.get("events_count", 0)),
        )


def worker_instrumentation(
    config: WorkerTelemetryConfig,
    tile: Optional[str] = None,
    attempt: int = 1,
    on_beat=None,
) -> Tuple[Instrumentation, List[Dict[str, object]]]:
    """Build a worker-local bundle whose events buffer in memory.

    Returns the bundle plus the event buffer; :func:`write_spool` later
    flushes both to the tile's spool file in one atomic write.  When the
    config carries a ``heartbeat_dir`` and a ``tile`` name is given, the
    bundle also gets a live :class:`~repro.obs.live.HeartbeatWriter` so
    the optimizer's per-iteration beats land in ``heartbeat_<tile>.json``
    — stamped with ``attempt`` (the requeue generation) and firing the
    optional ``on_beat`` hook on every pulse (the queue executor's
    lease-renewal seam).
    """
    events: List[Dict[str, object]] = []
    heartbeat = None
    if config.heartbeat_dir and tile:
        from .live import HeartbeatWriter

        heartbeat = HeartbeatWriter(
            config.heartbeat_dir,
            tile,
            min_interval_s=config.heartbeat_min_interval_s,
            attempt=attempt,
            on_beat=on_beat,
            trace_id=config.trace_id,
        )
    obs = Instrumentation.collecting(
        trace=True,
        metrics=True,
        events_sink=events.append,
        timeline=config.timeline,
        heartbeat=heartbeat,
    )
    return obs, events


def summarize_worker(
    tile_name: str,
    obs: Instrumentation,
    events: List[Dict[str, object]],
) -> TileTelemetry:
    """Distill a worker bundle into the picklable cross-pool summary."""
    metrics = obs.metrics.as_dict()
    iterations = 0
    counter = metrics.get("iterations_total")
    if counter and counter.get("type") == "counter":
        iterations = int(counter.get("value", 0) or 0)
    return TileTelemetry(
        tile=tile_name,
        pid=os.getpid(),
        spool_file=spool_filename(tile_name),
        iterations=iterations,
        span_stats=[s.as_dict() for s in obs.tracer.stats().values()],
        metrics=metrics,
        events_count=len(events),
    )


def write_spool(
    spool_dir: Union[str, Path],
    tile_name: str,
    obs: Instrumentation,
    events: List[Dict[str, object]],
    trace_id: Optional[str] = None,
) -> Path:
    """Atomically persist one worker bundle as a per-tile spool file.

    The file appears complete or not at all (temp file + ``os.replace``
    in the target directory), so a reader never observes a torn spool
    even if the worker dies mid-write.
    """
    directory = Path(spool_dir)
    directory.mkdir(parents=True, exist_ok=True)
    target = directory / spool_filename(tile_name)
    header: Dict[str, object] = {
        "kind": "header",
        "tile": tile_name,
        "pid": os.getpid(),
    }
    if trace_id:
        header["trace_id"] = trace_id
    lines = [json.dumps(header)]
    for stats in obs.tracer.stats().values():
        lines.append(json.dumps({"kind": "span", **stats.as_dict()}))
    for item in obs.tracer.slices():
        lines.append(
            json.dumps(
                {
                    "kind": "slice",
                    "path": item.path,
                    "ts_us": item.ts_us,
                    "dur_us": item.dur_us,
                    "failed": item.failed,
                }
            )
        )
    for name, data in obs.metrics.as_dict().items():
        lines.append(json.dumps({"kind": "metric", "name": name, **data}))
    for record in events:
        lines.append(json.dumps({"kind": "event", **record}))
    return write_text_atomic(target, "\n".join(lines) + "\n")


@dataclass
class SpoolData:
    """One parsed spool file (see module docstring for the line kinds)."""

    tile: str = ""
    pid: int = 0
    trace_id: Optional[str] = None
    spans: List[Dict[str, object]] = field(default_factory=list)
    slices: List[TraceSlice] = field(default_factory=list)
    metrics: Dict[str, Dict[str, object]] = field(default_factory=dict)
    events: List[Dict[str, object]] = field(default_factory=list)


def read_spool(path: Union[str, Path]) -> SpoolData:
    """Parse one spool file; unreadable lines are skipped with a warning."""
    data = SpoolData()
    with open(path, "r") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                logger.warning("%s:%d: skipping bad spool line: %s", path, lineno, exc)
                continue
            kind = record.pop("kind", None)
            if kind == "header":
                data.tile = str(record.get("tile", ""))
                data.pid = int(record.get("pid", 0))
                raw_trace = record.get("trace_id")
                data.trace_id = str(raw_trace) if raw_trace else None
            elif kind == "span":
                data.spans.append(record)
            elif kind == "slice":
                data.slices.append(
                    TraceSlice(
                        path=str(record.get("path", "")),
                        ts_us=float(record.get("ts_us", 0.0)),
                        dur_us=float(record.get("dur_us", 0.0)),
                        failed=bool(record.get("failed", False)),
                    )
                )
            elif kind == "metric":
                name = str(record.pop("name", ""))
                if name:
                    data.metrics[name] = record
            elif kind == "event":
                data.events.append(record)
            else:
                logger.warning("%s:%d: unknown spool kind %r", path, lineno, kind)
    return data


def merge_tile_telemetry(
    obs: Instrumentation,
    telemetry: Optional[TileTelemetry],
    under: str = "fullchip.tiles",
) -> None:
    """Fold one worker summary into the parent bundle.

    Counters add, gauges take the worker's last write, histograms merge
    bucket-wise; span stats are re-rooted beneath ``under`` so the
    parent's ``report()`` nests worker phases inside the scheduling
    span that launched them.  A ``None`` summary (telemetry disabled or
    a tile that died before spooling) is a no-op.
    """
    if telemetry is None:
        return
    obs.metrics.merge_snapshot(telemetry.metrics)
    if telemetry.span_stats:
        obs.tracer.absorb(telemetry.span_stats, under=under)
