"""Forward lithography simulator facade (paper Sec. 2: Z = f(M))."""

from .simulator import LithographySimulator

__all__ = ["LithographySimulator"]
