"""End-to-end forward lithography simulator.

``LithographySimulator`` glues together the optical SOCS model, the resist
threshold model and the process corners into the forward map ``Z = f(M)``
(paper Eq. 5).  Kernel sets are built lazily per focus condition and
cached, since TCC decomposition is the expensive setup step; the cache
is observable through :meth:`LithographySimulator.cache_info` and the
``kernel_cache_hits`` / ``kernel_cache_misses`` metrics.

Multi-corner evaluation is batched by default (``batch_forward=True``):
:meth:`simulate_all_corners` computes ``fft2(M)`` once, stacks every
(focus x kernel) spectrum and runs a single vectorized inverse FFT, and
:meth:`gradient_all_corners` folds the whole multi-corner adjoint into
one batched forward FFT plus a single inverse FFT.  Passing
``batch_forward=False`` restores the historical one-FFT-per-kernel path,
kept as the A/B reference for the equivalence tests and the
``benchmarks/test_perf_forward_batching.py`` benchmark.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..config import LithoConfig
from ..obs import Instrumentation
from ..optics.hopkins import (
    ForwardCache,
    accumulate_backprojection,
    aerial_image,
    backproject_fields,
    batched_field_stacks,
    field_stack,
    weight_fields,
)
from ..xp import ArrayBackend, resolve_backend
from ..optics.kernels import SOCSKernels, build_socs_kernels
from ..process.corners import ProcessCorner, enumerate_corners, nominal_corner
from ..process.pvband import pv_band, pv_band_area
from ..resist.threshold import ThresholdResist

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class KernelCacheInfo:
    """Snapshot of the SOCS kernel cache (mirrors ``functools.cache_info``).

    Attributes:
        hits: lookups served from the cache.
        misses: lookups that triggered a kernel build.
        size: kernel sets currently cached.
        defocus_values_nm: the cached focus conditions.
    """

    hits: int
    misses: int
    size: int
    defocus_values_nm: tuple


class LithographySimulator:
    """Mask -> aerial image -> printed image, at any process condition.

    Example:
        >>> import numpy as np
        >>> from repro.config import LithoConfig
        >>> sim = LithographySimulator(LithoConfig.reduced())
        >>> mask = np.zeros(sim.grid.shape)
        >>> mask[96:160, 96:160] = 1.0
        >>> printed = sim.print_binary(mask)
        >>> bool(printed[128, 128])
        True

    Args:
        config: full lithography configuration.
        source: optional illumination source overriding the default
            annular source built from ``config.optics``.
        obs: optional instrumentation bundle; disabled (no-op) when
            omitted.  Downstream components (optimizer, objectives,
            harness) inherit the simulator's bundle by default.
        batch_forward: evaluate multi-corner forward models and adjoints
            through the batched shared-FFT engine (the default).  False
            restores the per-corner, one-FFT-per-kernel legacy path —
            numerically equivalent, kept as the A/B reference.
        backend: array backend for the numeric core — an
            :class:`~repro.xp.ArrayBackend` instance or a spec string
            (``"numpy"``, ``"numpy:float32"``, ``"torch"``, ...).
            Defaults to ``config.optics.backend``, then the
            ``REPRO_ARRAY_BACKEND`` environment variable, then the numpy
            float64 reference.  Raises
            :class:`~repro.errors.OpticsError` for unknown specs.
    """

    def __init__(
        self,
        config: LithoConfig,
        source: Optional[object] = None,
        obs: Optional[Instrumentation] = None,
        batch_forward: bool = True,
        backend: Optional[ArrayBackend | str] = None,
    ) -> None:
        self.config = config
        self.grid = config.grid
        self.resist = ThresholdResist(config.resist, pixel_nm=config.grid.pixel_nm)
        self.obs = obs or Instrumentation.disabled()
        self.batch_forward = batch_forward
        if backend is None:
            backend = config.optics.backend
        self.xp = resolve_backend(backend)
        self._source = source
        self._kernel_cache: Dict[float, SOCSKernels] = {}
        self._cache_hits = 0
        self._cache_misses = 0

    # -- kernel management ---------------------------------------------------

    def kernels_at(self, defocus_nm: float = 0.0) -> SOCSKernels:
        """SOCS kernel set at the given focus (built once, then cached)."""
        key = float(defocus_nm)
        cached = self._kernel_cache.get(key)
        if cached is not None:
            self._cache_hits += 1
            self.obs.metrics.counter("kernel_cache_hits").inc()
            return cached
        self._cache_misses += 1
        self.obs.metrics.counter("kernel_cache_misses").inc()
        logger.debug("building SOCS kernels at defocus %.1f nm", key)
        with self.obs.tracer.span("kernel_build"):
            kernels = build_socs_kernels(
                self.grid, self.config.optics, defocus_nm=key, source=self._source
            )
        self._kernel_cache[key] = kernels
        return kernels

    def cache_info(self) -> KernelCacheInfo:
        """Hit/miss statistics of the kernel cache since construction."""
        return KernelCacheInfo(
            hits=self._cache_hits,
            misses=self._cache_misses,
            size=len(self._kernel_cache),
            defocus_values_nm=tuple(sorted(self._kernel_cache)),
        )

    def corners(self, include_nominal: bool = True) -> List[ProcessCorner]:
        """Process corners for the configured process window."""
        return enumerate_corners(self.config.process, include_nominal=include_nominal)

    def prewarm(self) -> None:
        """Build all kernel sets up front (useful before timing runs)."""
        for corner in self.corners():
            self.kernels_at(corner.defocus_nm)

    # -- forward simulation ----------------------------------------------------

    def aerial(self, mask: np.ndarray, corner: Optional[ProcessCorner] = None) -> np.ndarray:
        """Aerial intensity image at a process condition (default nominal)."""
        corner = corner or nominal_corner()
        kernels = self.kernels_at(corner.defocus_nm)
        self.obs.metrics.counter("forward_evals_total").inc()
        with self.obs.tracer.span("aerial"):
            return aerial_image(mask, kernels, dose=corner.dose, xp=self.xp)

    def fields(self, mask: np.ndarray, corner: Optional[ProcessCorner] = None) -> np.ndarray:
        """Per-kernel coherent fields at a condition (for gradient reuse)."""
        corner = corner or nominal_corner()
        kernels = self.kernels_at(corner.defocus_nm)
        with self.obs.tracer.span("fields"):
            return field_stack(mask, kernels, xp=self.xp)

    def print_binary(self, mask: np.ndarray, corner: Optional[ProcessCorner] = None) -> np.ndarray:
        """Hard-threshold printed image Z (paper Eq. 3)."""
        return self.resist.develop(self.aerial(mask, corner))

    def print_soft(self, mask: np.ndarray, corner: Optional[ProcessCorner] = None) -> np.ndarray:
        """Sigmoid printed image (paper Eq. 4), differentiable in the mask."""
        return self.resist.develop_soft(self.aerial(mask, corner))

    def print_all_corners(
        self, mask: np.ndarray, corners: Optional[Sequence[ProcessCorner]] = None
    ) -> List[np.ndarray]:
        """Binary printed images at every process condition."""
        corners = list(corners) if corners is not None else self.corners()
        return [
            self.resist.develop(image)
            for image in self.simulate_all_corners(mask, corners)
        ]

    # -- batched multi-corner engine -------------------------------------------

    def context(self, mask: np.ndarray, batched: Optional[bool] = None):
        """A :class:`repro.opc.ForwardContext` wired to this simulator.

        The context inherits the simulator's forward engine
        (``batch_forward``) unless ``batched`` overrides it.
        """
        from ..opc.state import ForwardContext  # deferred: opc imports litho

        return ForwardContext(mask, self, batched=batched)

    def simulate_all_corners(
        self, mask: np.ndarray, corners: Optional[Sequence[ProcessCorner]] = None
    ) -> List[np.ndarray]:
        """Aerial images at every corner from one batched evaluation.

        Computes ``fft2(M)`` once, stacks all (focus x kernel) spectra
        into a single array and runs one vectorized ``ifft2`` over the
        leading axis, then applies each corner's dose.  Corners sharing
        a focus share one intensity image.  Falls back to per-corner
        :meth:`aerial` calls when ``batch_forward`` is off.

        Returns:
            Aerial intensity images aligned with ``corners``
            (default: :meth:`corners`).
        """
        corners = list(corners) if corners is not None else self.corners()
        if not self.batch_forward:
            return [self.aerial(mask, c) for c in corners]
        # Per-corner lookups keep kernel-cache accounting identical to
        # the legacy path: one hit/miss per corner, not per focus.
        kernel_by_corner = [self.kernels_at(c.defocus_nm) for c in corners]
        focus_kernels: Dict[float, SOCSKernels] = {}
        for corner, kernels in zip(corners, kernel_by_corner):
            focus_kernels.setdefault(float(corner.defocus_nm), kernels)
        cache = ForwardCache(mask, obs=self.obs, xp=self.xp)
        with self.obs.tracer.span("forward.batched"):
            stacks = batched_field_stacks(cache, list(focus_kernels.values()))
            intensity: Dict[float, np.ndarray] = {}
            for (focus, kernels), fields in zip(focus_kernels.items(), stacks):
                intensity[focus] = aerial_image(mask, kernels, fields=fields, xp=self.xp)
        self.obs.metrics.counter("forward_evals_total").inc(len(corners))
        return [c.dose * intensity[float(c.defocus_nm)] for c in corners]

    def gradient_all_corners(
        self,
        mask: np.ndarray,
        contributions: Sequence[Tuple[ProcessCorner, np.ndarray]],
        fields_by_focus: Optional[Dict[float, np.ndarray]] = None,
        batched: Optional[bool] = None,
    ) -> np.ndarray:
        """Mask-plane gradient accumulated across corners in one adjoint pass.

        Each contribution is a ``(corner, dF/dI_eff)`` pair (``I_eff`` is
        the post-diffusion intensity the resist thresholds, exactly as in
        :meth:`repro.opc.ForwardContext.intensity_gradient_to_mask`).
        Same-focus corners are dose-combined *before* the adjoint — FFTs
        are linear — so the whole set costs one batched forward FFT plus
        a single inverse FFT.

        Args:
            mask: the mask iterate the fields belong to.
            contributions: per-corner intensity-space gradients.
            fields_by_focus: optional precomputed field stacks keyed by
                defocus (e.g. a ForwardContext's) to reuse.
            batched: override the simulator's ``batch_forward`` setting.

        Returns:
            ``dF/dM`` summed over all contributions.
        """
        contributions = [
            (corner if corner is not None else nominal_corner(), df_di)
            for corner, df_di in contributions
        ]
        if not contributions:
            return np.zeros(self.grid.shape)
        batched = self.batch_forward if batched is None else batched
        # Dose-combine per focus BEFORE the diffusion blur: both are
        # linear, so the whole corner set costs one blur per focus.
        combined: Dict[float, np.ndarray] = {}
        for corner, df_di in contributions:
            key = float(corner.defocus_nm)
            scaled = corner.dose * np.asarray(df_di, dtype=np.float64)
            combined[key] = combined[key] + scaled if key in combined else scaled
        combined = {key: self.resist.diffuse(value) for key, value in combined.items()}
        if fields_by_focus is None or any(f not in fields_by_focus for f in combined):
            cache = ForwardCache(mask, obs=self.obs, xp=self.xp)
            kernel_sets = [self.kernels_at(f) for f in combined]
            with self.obs.tracer.span("forward.batched"):
                stacks = batched_field_stacks(cache, kernel_sets)
            fields_by_focus = dict(zip(combined, stacks))
        with self.obs.tracer.span("backproject.batched"):
            if batched:
                groups = [
                    (
                        weight_fields(combined[f], fields_by_focus[f], self.xp),
                        self.kernels_at(f),
                    )
                    for f in combined
                ]
                return accumulate_backprojection(groups, xp=self.xp)
            total = np.zeros(self.grid.shape)
            for focus, df_di in combined.items():
                kernels = self.kernels_at(focus)
                total += backproject_fields(
                    weight_fields(df_di, fields_by_focus[focus], self.xp),
                    kernels,
                    xp=self.xp,
                )
            return total

    # -- process-window evaluation ----------------------------------------------

    def pv_band(self, mask: np.ndarray) -> np.ndarray:
        """Boolean PV-band mask across all configured corners."""
        with self.obs.tracer.span("pv_band"):
            return pv_band(self.print_all_corners(mask))

    def pv_band_area(self, mask: np.ndarray) -> float:
        """PV-band area in nm^2 across all configured corners."""
        with self.obs.tracer.span("pv_band"):
            return pv_band_area(self.print_all_corners(mask), self.grid.pixel_nm)
