"""End-to-end forward lithography simulator.

``LithographySimulator`` glues together the optical SOCS model, the resist
threshold model and the process corners into the forward map ``Z = f(M)``
(paper Eq. 5).  Kernel sets are built lazily per focus condition and
cached, since TCC decomposition is the expensive setup step; the cache
is observable through :meth:`LithographySimulator.cache_info` and the
``kernel_cache_hits`` / ``kernel_cache_misses`` metrics.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..config import LithoConfig
from ..obs import Instrumentation
from ..optics.hopkins import aerial_image, field_stack
from ..optics.kernels import SOCSKernels, build_socs_kernels
from ..process.corners import ProcessCorner, enumerate_corners, nominal_corner
from ..process.pvband import pv_band, pv_band_area
from ..resist.threshold import ThresholdResist

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class KernelCacheInfo:
    """Snapshot of the SOCS kernel cache (mirrors ``functools.cache_info``).

    Attributes:
        hits: lookups served from the cache.
        misses: lookups that triggered a kernel build.
        size: kernel sets currently cached.
        defocus_values_nm: the cached focus conditions.
    """

    hits: int
    misses: int
    size: int
    defocus_values_nm: tuple


class LithographySimulator:
    """Mask -> aerial image -> printed image, at any process condition.

    Example:
        >>> import numpy as np
        >>> from repro.config import LithoConfig
        >>> sim = LithographySimulator(LithoConfig.reduced())
        >>> mask = np.zeros(sim.grid.shape)
        >>> mask[96:160, 96:160] = 1.0
        >>> printed = sim.print_binary(mask)
        >>> bool(printed[128, 128])
        True

    Args:
        config: full lithography configuration.
        source: optional illumination source overriding the default
            annular source built from ``config.optics``.
        obs: optional instrumentation bundle; disabled (no-op) when
            omitted.  Downstream components (optimizer, objectives,
            harness) inherit the simulator's bundle by default.
    """

    def __init__(
        self,
        config: LithoConfig,
        source: Optional[object] = None,
        obs: Optional[Instrumentation] = None,
    ) -> None:
        self.config = config
        self.grid = config.grid
        self.resist = ThresholdResist(config.resist, pixel_nm=config.grid.pixel_nm)
        self.obs = obs or Instrumentation.disabled()
        self._source = source
        self._kernel_cache: Dict[float, SOCSKernels] = {}
        self._cache_hits = 0
        self._cache_misses = 0

    # -- kernel management ---------------------------------------------------

    def kernels_at(self, defocus_nm: float = 0.0) -> SOCSKernels:
        """SOCS kernel set at the given focus (built once, then cached)."""
        key = float(defocus_nm)
        cached = self._kernel_cache.get(key)
        if cached is not None:
            self._cache_hits += 1
            self.obs.metrics.counter("kernel_cache_hits").inc()
            return cached
        self._cache_misses += 1
        self.obs.metrics.counter("kernel_cache_misses").inc()
        logger.debug("building SOCS kernels at defocus %.1f nm", key)
        with self.obs.tracer.span("kernel_build"):
            kernels = build_socs_kernels(
                self.grid, self.config.optics, defocus_nm=key, source=self._source
            )
        self._kernel_cache[key] = kernels
        return kernels

    def cache_info(self) -> KernelCacheInfo:
        """Hit/miss statistics of the kernel cache since construction."""
        return KernelCacheInfo(
            hits=self._cache_hits,
            misses=self._cache_misses,
            size=len(self._kernel_cache),
            defocus_values_nm=tuple(sorted(self._kernel_cache)),
        )

    def corners(self, include_nominal: bool = True) -> List[ProcessCorner]:
        """Process corners for the configured process window."""
        return enumerate_corners(self.config.process, include_nominal=include_nominal)

    def prewarm(self) -> None:
        """Build all kernel sets up front (useful before timing runs)."""
        for corner in self.corners():
            self.kernels_at(corner.defocus_nm)

    # -- forward simulation ----------------------------------------------------

    def aerial(self, mask: np.ndarray, corner: Optional[ProcessCorner] = None) -> np.ndarray:
        """Aerial intensity image at a process condition (default nominal)."""
        corner = corner or nominal_corner()
        kernels = self.kernels_at(corner.defocus_nm)
        self.obs.metrics.counter("forward_evals_total").inc()
        with self.obs.tracer.span("aerial"):
            return aerial_image(mask, kernels, dose=corner.dose)

    def fields(self, mask: np.ndarray, corner: Optional[ProcessCorner] = None) -> np.ndarray:
        """Per-kernel coherent fields at a condition (for gradient reuse)."""
        corner = corner or nominal_corner()
        kernels = self.kernels_at(corner.defocus_nm)
        with self.obs.tracer.span("fields"):
            return field_stack(mask, kernels)

    def print_binary(self, mask: np.ndarray, corner: Optional[ProcessCorner] = None) -> np.ndarray:
        """Hard-threshold printed image Z (paper Eq. 3)."""
        return self.resist.develop(self.aerial(mask, corner))

    def print_soft(self, mask: np.ndarray, corner: Optional[ProcessCorner] = None) -> np.ndarray:
        """Sigmoid printed image (paper Eq. 4), differentiable in the mask."""
        return self.resist.develop_soft(self.aerial(mask, corner))

    def print_all_corners(
        self, mask: np.ndarray, corners: Optional[Sequence[ProcessCorner]] = None
    ) -> List[np.ndarray]:
        """Binary printed images at every process condition."""
        corners = list(corners) if corners is not None else self.corners()
        return [self.print_binary(mask, c) for c in corners]

    # -- process-window evaluation ----------------------------------------------

    def pv_band(self, mask: np.ndarray) -> np.ndarray:
        """Boolean PV-band mask across all configured corners."""
        with self.obs.tracer.span("pv_band"):
            return pv_band(self.print_all_corners(mask))

    def pv_band_area(self, mask: np.ndarray) -> float:
        """PV-band area in nm^2 across all configured corners."""
        with self.obs.tracer.span("pv_band"):
            return pv_band_area(self.print_all_corners(mask), self.grid.pixel_nm)
