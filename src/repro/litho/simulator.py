"""End-to-end forward lithography simulator.

``LithographySimulator`` glues together the optical SOCS model, the resist
threshold model and the process corners into the forward map ``Z = f(M)``
(paper Eq. 5).  Kernel sets are built lazily per focus condition and
cached, since TCC decomposition is the expensive setup step.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..config import LithoConfig
from ..optics.hopkins import aerial_image, field_stack
from ..optics.kernels import SOCSKernels, build_socs_kernels
from ..process.corners import ProcessCorner, enumerate_corners, nominal_corner
from ..process.pvband import pv_band, pv_band_area
from ..resist.threshold import ThresholdResist


class LithographySimulator:
    """Mask -> aerial image -> printed image, at any process condition.

    Example:
        >>> import numpy as np
        >>> from repro.config import LithoConfig
        >>> sim = LithographySimulator(LithoConfig.reduced())
        >>> mask = np.zeros(sim.grid.shape)
        >>> mask[96:160, 96:160] = 1.0
        >>> printed = sim.print_binary(mask)
        >>> bool(printed[128, 128])
        True

    Args:
        config: full lithography configuration.
        source: optional illumination source overriding the default
            annular source built from ``config.optics``.
    """

    def __init__(self, config: LithoConfig, source: Optional[object] = None) -> None:
        self.config = config
        self.grid = config.grid
        self.resist = ThresholdResist(config.resist, pixel_nm=config.grid.pixel_nm)
        self._source = source
        self._kernel_cache: Dict[float, SOCSKernels] = {}

    # -- kernel management ---------------------------------------------------

    def kernels_at(self, defocus_nm: float = 0.0) -> SOCSKernels:
        """SOCS kernel set at the given focus (built once, then cached)."""
        key = float(defocus_nm)
        if key not in self._kernel_cache:
            self._kernel_cache[key] = build_socs_kernels(
                self.grid, self.config.optics, defocus_nm=key, source=self._source
            )
        return self._kernel_cache[key]

    def corners(self, include_nominal: bool = True) -> List[ProcessCorner]:
        """Process corners for the configured process window."""
        return enumerate_corners(self.config.process, include_nominal=include_nominal)

    def prewarm(self) -> None:
        """Build all kernel sets up front (useful before timing runs)."""
        for corner in self.corners():
            self.kernels_at(corner.defocus_nm)

    # -- forward simulation ----------------------------------------------------

    def aerial(self, mask: np.ndarray, corner: Optional[ProcessCorner] = None) -> np.ndarray:
        """Aerial intensity image at a process condition (default nominal)."""
        corner = corner or nominal_corner()
        kernels = self.kernels_at(corner.defocus_nm)
        return aerial_image(mask, kernels, dose=corner.dose)

    def fields(self, mask: np.ndarray, corner: Optional[ProcessCorner] = None) -> np.ndarray:
        """Per-kernel coherent fields at a condition (for gradient reuse)."""
        corner = corner or nominal_corner()
        return field_stack(mask, self.kernels_at(corner.defocus_nm))

    def print_binary(self, mask: np.ndarray, corner: Optional[ProcessCorner] = None) -> np.ndarray:
        """Hard-threshold printed image Z (paper Eq. 3)."""
        return self.resist.develop(self.aerial(mask, corner))

    def print_soft(self, mask: np.ndarray, corner: Optional[ProcessCorner] = None) -> np.ndarray:
        """Sigmoid printed image (paper Eq. 4), differentiable in the mask."""
        return self.resist.develop_soft(self.aerial(mask, corner))

    def print_all_corners(
        self, mask: np.ndarray, corners: Optional[Sequence[ProcessCorner]] = None
    ) -> List[np.ndarray]:
        """Binary printed images at every process condition."""
        corners = list(corners) if corners is not None else self.corners()
        return [self.print_binary(mask, c) for c in corners]

    # -- process-window evaluation ----------------------------------------------

    def pv_band(self, mask: np.ndarray) -> np.ndarray:
        """Boolean PV-band mask across all configured corners."""
        return pv_band(self.print_all_corners(mask))

    def pv_band_area(self, mask: np.ndarray) -> float:
        """PV-band area in nm^2 across all configured corners."""
        return pv_band_area(self.print_all_corners(mask), self.grid.pixel_nm)
