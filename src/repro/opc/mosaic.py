"""High-level MOSAIC solvers (paper Sec. 3.4, Eqs. 19-20).

``MosaicFast``  : F = alpha * F_id  + beta * F_pvb   (efficient gradients)
``MosaicExact`` : F = alpha * F_epe + beta * F_pvb   (direct EPE minimization)

Both seed the optimizer with the target plus rule-based SRAFs and run the
shared gradient-descent engine.  Default alpha/beta follow the contest
scoring (Eq. 22): an EPE violation costs 5000, one nm^2 of PV band costs
4 — so the exact solver weighs its violation count by 5000 and the PV
term by ``4 * pixel_nm^2`` (converting the pixel-sum objective into nm^2).
The fast solver's image-difference term is a per-pixel proxy for EPE;
its default weight makes a mismatched boundary pixel comparable to its
expected score impact.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable, Optional, Union

import numpy as np

from .. import constants
from ..config import LithoConfig, OptimizerConfig
from ..geometry.layout import Layout
from ..geometry.raster import rasterize_layout
from ..litho.simulator import LithographySimulator
from ..mask.sraf import initial_mask_with_srafs
from ..metrics.score import ScoreBreakdown, contest_score
from ..utils.timer import Timer
from .checkpoint import CheckpointConfig
from .objectives.base import Objective
from .objectives.composite import CompositeObjective
from .objectives.epe_objective import EPEObjective
from .objectives.image_diff import ImageDifferenceObjective
from .objectives.pvband_objective import PVBandObjective
from .optimizer import GradientDescentOptimizer, OptimizationResult
from .recovery import RecoveryPolicy


@dataclass
class MosaicResult:
    """Everything produced by one MOSAIC run on one layout.

    Attributes:
        layout_name: which testcase this solved.
        optimization: the raw optimizer output (mask, history, ...).
        score: contest-score breakdown of the binarized mask.
        target: rasterized target image.
        runtime_s: total wall-clock including setup and evaluation.
    """

    layout_name: str
    optimization: OptimizationResult
    score: ScoreBreakdown
    target: np.ndarray
    runtime_s: float

    @property
    def mask(self) -> np.ndarray:
        """The manufacturable (binary) optimized mask."""
        return self.optimization.binary_mask


class MosaicSolver:
    """Shared machinery for both MOSAIC modes.

    Args:
        litho_config: lithography stack configuration.
        optimizer_config: descent settings; ``alpha``/``beta`` weight the
            design-target and process-window terms.  When left at the
            generic defaults, mode-specific score-derived weights are
            substituted (see module docstring).
        use_sraf: seed with rule-based SRAFs (paper Alg. 1 line 2).
        simulator: optional pre-built simulator to share kernel caches
            across solvers/testcases.
        recovery: divergence-recovery policy forwarded to the optimizer
            (default: bounded rollback + step backoff).
        checkpoint: optional checkpoint configuration forwarded to the
            optimizer — periodic atomic state snapshots + SIGINT flush.
        objective_transform: optional seam wrapping the built objective
            before the optimizer sees it.  This is how deterministic
            fault injection (:mod:`repro.testing.faults`) exercises the
            recovery machinery end-to-end; adapters and extra telemetry
            wrappers fit the same hook.
        objective_region: optional grid-shaped per-pixel penalty weight
            applied to every imaging term (and, for the exact mode, an
            EPE-sample filter: samples on zero-weight pixels are
            dropped).  The tiled full-chip engine passes the window's
            physically-valid region here so boundary-cut halo geometry —
            unprintable under the window's periodic imaging — cannot
            dominate the descent.
    """

    #: Subclasses set this to label results/logs.
    mode_name = "base"
    #: Default iteration budget for this mode (see constants module note).
    default_iterations = constants.MAX_ITERATIONS

    def __init__(
        self,
        litho_config: Optional[LithoConfig] = None,
        optimizer_config: Optional[OptimizerConfig] = None,
        use_sraf: bool = True,
        simulator: Optional[LithographySimulator] = None,
        recovery: Optional[RecoveryPolicy] = None,
        checkpoint: Optional[CheckpointConfig] = None,
        objective_transform: Optional[Callable[[Objective], Objective]] = None,
        objective_region: Optional[np.ndarray] = None,
    ) -> None:
        self.litho_config = litho_config or LithoConfig.paper()
        if simulator is None:
            # OptimizerConfig.backend outranks the optics-level default
            # when the solver builds its own simulator; a pre-built
            # simulator keeps whatever backend it was constructed with.
            backend = optimizer_config.backend if optimizer_config is not None else None
            simulator = LithographySimulator(self.litho_config, backend=backend)
        self.sim = simulator
        if optimizer_config is None:
            optimizer_config = replace(
                OptimizerConfig(), max_iterations=self.default_iterations
            )
        self.optimizer_config = self._resolve_weights(optimizer_config)
        self.use_sraf = use_sraf
        self.recovery = recovery
        self.checkpoint = checkpoint
        self.objective_transform = objective_transform
        if objective_region is not None:
            objective_region = np.asarray(objective_region, dtype=np.float64)
        self.objective_region = objective_region

    # -- extension points ------------------------------------------------

    def _resolve_weights(self, config: OptimizerConfig) -> OptimizerConfig:
        """Substitute mode-specific defaults when generic weights are used."""
        return config

    def build_design_objective(self, target: np.ndarray, layout: Layout) -> Objective:
        """The design-target term (F_id or F_epe)."""
        raise NotImplementedError

    # -- solve -------------------------------------------------------------

    def initial_mask(self, layout: Layout) -> np.ndarray:
        """Optimizer seed: target (+ SRAFs when enabled)."""
        grid = self.sim.grid
        if self.use_sraf:
            return initial_mask_with_srafs(layout, grid)
        return rasterize_layout(layout, grid).astype(np.float64)

    def build_objective(self, target: np.ndarray, layout: Layout) -> CompositeObjective:
        """alpha * design_target + beta * F_pvb (Eqs. 19/20)."""
        cfg = self.optimizer_config
        design = self.build_design_objective(target, layout)
        pvb = PVBandObjective(target, weight=self.objective_region)
        return CompositeObjective([(cfg.alpha, design), (cfg.beta, pvb)])

    def solve(
        self,
        layout: Layout,
        iteration_callback: Optional[Callable] = None,
        initial_mask: Optional[np.ndarray] = None,
        resume_from: Union[str, Path, None] = None,
    ) -> MosaicResult:
        """Run the full MOSAIC flow on one layout clip.

        Args:
            layout: target layout.
            iteration_callback: optional per-iteration hook passed to the
                optimizer (see :class:`GradientDescentOptimizer`).
            initial_mask: optional seed overriding the default
                target(+SRAF) seed — used by warm starts and the
                multiresolution solver.
            resume_from: optional checkpoint file or directory to resume
                the optimization from mid-trajectory.

        Returns:
            Result with the optimized mask and its contest score.
        """
        obs = self.sim.obs
        with Timer() as total, obs.tracer.span("solve"):
            grid = self.sim.grid
            with obs.tracer.span("setup"):
                target = rasterize_layout(layout, grid).astype(np.float64)
                objective = self.build_objective(target, layout)
                if self.objective_transform is not None:
                    objective = self.objective_transform(objective)
                optimizer = GradientDescentOptimizer(
                    self.sim,
                    objective,
                    self.optimizer_config,
                    iteration_callback,
                    recovery=self.recovery,
                    checkpoint=self.checkpoint,
                )
                if initial_mask is None:
                    initial_mask = self.initial_mask(layout)
            optimization = optimizer.run(initial_mask, resume_from=resume_from)
        with obs.tracer.span("score"):
            score = contest_score(
                self.sim, optimization.binary_mask, layout, runtime_s=total.elapsed
            )
        return MosaicResult(
            layout_name=layout.name,
            optimization=optimization,
            score=score,
            target=target,
            runtime_s=total.elapsed,
        )


class MosaicFast(MosaicSolver):
    """MOSAIC_fast: gamma-power image difference + PV-band term (Eq. 20)."""

    mode_name = "MOSAIC_fast"
    default_iterations = constants.MOSAIC_FAST_ITERATIONS

    def _resolve_weights(self, config: OptimizerConfig) -> OptimizerConfig:
        defaults = OptimizerConfig()
        if config.alpha == defaults.alpha and config.beta == defaults.beta:
            # A boundary pixel mismatch at nominal is the score-relevant
            # event F_id guards against; weight it well above a PV pixel.
            pixel_area = self.sim.grid.pixel_nm**2
            config = config.with_weights(
                alpha=10.0 * constants.SCORE_PVB_WEIGHT * pixel_area,
                beta=constants.SCORE_PVB_WEIGHT * pixel_area,
            )
        return config

    def build_design_objective(self, target: np.ndarray, layout: Layout) -> Objective:
        return ImageDifferenceObjective(
            target, gamma=self.optimizer_config.gamma, weight=self.objective_region
        )


class MosaicExact(MosaicSolver):
    """MOSAIC_exact: sigmoid EPE-violation count + PV-band term (Eq. 19)."""

    mode_name = "MOSAIC_exact"
    default_iterations = constants.MOSAIC_EXACT_ITERATIONS

    def _resolve_weights(self, config: OptimizerConfig) -> OptimizerConfig:
        defaults = OptimizerConfig()
        if config.alpha == defaults.alpha and config.beta == defaults.beta:
            # Direct Eq. 22 weights: 5000 per violation, 4 per nm^2 of band.
            pixel_area = self.sim.grid.pixel_nm**2
            config = config.with_weights(
                alpha=constants.SCORE_EPE_WEIGHT,
                beta=constants.SCORE_PVB_WEIGHT * pixel_area,
            )
        return config

    def build_design_objective(self, target: np.ndarray, layout: Layout) -> Objective:
        return EPEObjective(
            target,
            layout,
            self.sim.grid,
            theta_epe=self.optimizer_config.theta_epe,
            region=self.objective_region,
        )
