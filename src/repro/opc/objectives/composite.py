"""Weighted sums of objectives (paper Eqs. 19-20)."""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ...errors import OptimizationError
from ...process.corners import ProcessCorner
from ..state import ForwardContext
from .base import ImagingObjective, Objective


def _term_name(objective: Objective) -> str:
    """Stable snake_case label for one term, e.g. ``image_difference``."""
    name = type(objective).__name__
    if name.endswith("Objective") and len(name) > len("Objective"):
        name = name[: -len("Objective")]
    return re.sub(r"(?<=[a-z0-9])(?=[A-Z])", "_", name).lower()


class CompositeObjective(Objective):
    """F = sum_i weight_i * F_i, with one shared forward context.

    Per-term values of the latest evaluation are exposed through
    ``last_term_values``, keyed by a stable snake_case term name derived
    from the objective class (``names`` overrides; duplicates get a
    positional suffix).  Per-term evaluation spans are recorded on the
    simulator's tracer when observability is enabled.

    Example:
        >>> # F_fast = alpha * F_id + beta * F_pvb   (paper Eq. 20)
        >>> # composite = CompositeObjective([(alpha, f_id), (beta, f_pvb)])
    """

    def __init__(
        self,
        terms: Sequence[Tuple[float, Objective]],
        names: Optional[Sequence[str]] = None,
    ) -> None:
        if not terms:
            raise OptimizationError("composite objective needs at least one term")
        for weight, _ in terms:
            if weight < 0:
                raise OptimizationError(f"term weights must be >= 0, got {weight}")
        self.terms: List[Tuple[float, Objective]] = list(terms)
        if names is not None:
            if len(names) != len(self.terms):
                raise OptimizationError(
                    f"got {len(names)} names for {len(self.terms)} terms"
                )
            self.term_names: List[str] = list(names)
        else:
            self.term_names = [_term_name(obj) for _, obj in self.terms]
            # Disambiguate repeated objective types positionally.
            for i, name in enumerate(self.term_names):
                if self.term_names.count(name) > 1:
                    self.term_names[i] = f"{name}_{i}"
        if len(set(self.term_names)) != len(self.term_names):
            raise OptimizationError(f"duplicate term names: {self.term_names}")
        #: Per-term values from the latest evaluation, for logging/history.
        self.last_term_values: Dict[str, float] = {}

    def value_and_gradient(self, ctx: ForwardContext) -> Tuple[float, np.ndarray]:
        tracer = ctx.sim.obs.tracer
        total = 0.0
        grad = np.zeros_like(ctx.mask)
        self.last_term_values = {}

        # Prefetch fields for every imaging term's corners in one batched
        # forward evaluation, so no term triggers its own FFT round-trip.
        wanted: List[ProcessCorner] = []
        for _, objective in self.terms:
            if isinstance(objective, ImagingObjective):
                wanted.extend(objective.required_corners(ctx))
        if wanted:
            ctx.ensure_fields(wanted)

        # Imaging terms hand back intensity-space gradients; merging them
        # lets the whole composite cost one adjoint pass (FFTs are linear,
        # so weighting dF/dI before the adjoint equals weighting dF/dM).
        merged: List[Tuple[ProcessCorner, np.ndarray]] = []
        for name, (weight, objective) in zip(self.term_names, self.terms):
            with tracer.span(f"term:{name}"):
                if isinstance(objective, ImagingObjective):
                    value, contributions = objective.intensity_contributions(ctx)
                    if weight:
                        merged.extend(
                            (corner, weight * df_di) for corner, df_di in contributions
                        )
                else:
                    value, g = objective.value_and_gradient(ctx)
                    if weight:
                        grad += weight * g
            self.last_term_values[name] = value
            if weight:
                total += weight * value
        if merged:
            grad += ctx.accumulate_intensity_gradients(merged)
        return total, grad

    def value(self, ctx: ForwardContext) -> float:
        """Composite value without any gradient work (line search path)."""
        tracer = ctx.sim.obs.tracer
        total = 0.0
        self.last_term_values = {}
        for name, (weight, objective) in zip(self.term_names, self.terms):
            with tracer.span(f"term:{name}"):
                value = objective.value(ctx)
            self.last_term_values[name] = value
            if weight:
                total += weight * value
        return total
