"""Weighted sums of objectives (paper Eqs. 19-20)."""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from ...errors import OptimizationError
from ..state import ForwardContext
from .base import Objective


class CompositeObjective(Objective):
    """F = sum_i weight_i * F_i, with one shared forward context.

    Example:
        >>> # F_fast = alpha * F_id + beta * F_pvb   (paper Eq. 20)
        >>> # composite = CompositeObjective([(alpha, f_id), (beta, f_pvb)])
    """

    def __init__(self, terms: Sequence[Tuple[float, Objective]]) -> None:
        if not terms:
            raise OptimizationError("composite objective needs at least one term")
        for weight, _ in terms:
            if weight < 0:
                raise OptimizationError(f"term weights must be >= 0, got {weight}")
        self.terms: List[Tuple[float, Objective]] = list(terms)
        #: Per-term values from the latest evaluation, for logging/history.
        self.last_term_values: Dict[int, float] = {}

    def value_and_gradient(self, ctx: ForwardContext) -> Tuple[float, np.ndarray]:
        total = 0.0
        grad = np.zeros_like(ctx.mask)
        self.last_term_values = {}
        for i, (weight, objective) in enumerate(self.terms):
            value, g = objective.value_and_gradient(ctx)
            self.last_term_values[i] = value
            if weight:
                total += weight * value
                grad += weight * g
        return total, grad
