"""Process-window objective F_pvb (paper Sec. 3.4, Eq. 18).

The PV band itself needs boolean operations over per-corner printed
images (paper Fig. 4) and is not differentiable; the paper instead
minimizes the summed quadratic difference between every corner's printed
image and the target,

    F_pvb = sum_{p corners} sum_{x,y} ( Z_p(x, y) - Z_t(x, y) )^2 ,

which pulls both the innermost and outermost printed edges toward the
target and thereby shrinks the band.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ...errors import OptimizationError
from ...process.corners import ProcessCorner
from ..state import ForwardContext
from .base import ImagingObjective, validated_weight


class PVBandObjective(ImagingObjective):
    """Quadratic image error summed over process corners.

    Args:
        target: binary target image Z_t.
        corners: process conditions to include.  Defaults to the
            simulator's non-nominal corners (the nominal condition is the
            design-target term's job).
        normalize: divide by pixel count for grid-size independence.
        weight: optional per-pixel penalty weight (target-shaped,
            non-negative); zero excludes a pixel from the objective.
    """

    def __init__(
        self,
        target: np.ndarray,
        corners: Optional[Sequence[ProcessCorner]] = None,
        normalize: bool = False,
        weight: Optional[np.ndarray] = None,
    ) -> None:
        self.target = np.asarray(target, dtype=np.float64)
        self._corners = list(corners) if corners is not None else None
        self.normalize = normalize
        self.weight = validated_weight(weight, self.target.shape)

    def corners_for(self, ctx: ForwardContext) -> List[ProcessCorner]:
        """The corner set actually evaluated (resolved lazily from ctx)."""
        if self._corners is not None:
            return self._corners
        return [c for c in ctx.sim.corners() if not c.is_nominal]

    def required_corners(self, ctx: ForwardContext) -> List[ProcessCorner]:
        return self.corners_for(ctx)

    def intensity_contributions(
        self, ctx: ForwardContext
    ) -> Tuple[float, List[Tuple[ProcessCorner, np.ndarray]]]:
        if ctx.mask.shape != self.target.shape:
            raise OptimizationError(
                f"mask {ctx.mask.shape} vs target {self.target.shape} shape mismatch"
            )
        corners = self.corners_for(ctx)
        if not corners:
            raise OptimizationError("PVBandObjective needs at least one process corner")
        scale = 1.0 / self.target.size if self.normalize else 1.0
        value = 0.0
        contributions: List[Tuple[ProcessCorner, np.ndarray]] = []
        for corner, z in zip(corners, ctx.soft_images(corners)):
            diff = z - self.target
            penalty = diff**2 if self.weight is None else self.weight * diff**2
            value += float(np.sum(penalty)) * scale
            dz_di = ctx.sim.resist.soft_derivative(z)
            df_di = scale * 2.0 * diff * dz_di
            if self.weight is not None:
                df_di = df_di * self.weight
            contributions.append((corner, df_di))
        return value, contributions
