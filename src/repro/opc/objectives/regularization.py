"""Mask regularization terms (Poonawala & Milanfar, paper ref [9]).

ILT's relaxed mask variables can converge to grey, fragmented masks.
Two classic penalties counteract that, both differentiable in M:

* **Discretization penalty** — ``F_q = sum 4 M (1 - M)`` — zero exactly
  at binary masks, maximal at M = 0.5; pushes transmissions to {0, 1} so
  the final binarization step loses nothing.
* **Total-variation penalty** — ``F_tv = sum |grad M|^2`` (squared,
  for differentiability) — penalizes high-frequency mask wiggles, the
  optimization-time counterpart of the post-hoc cleanup pipeline.

Both are cheap (no forward simulation) and compose with the design and
process-window terms through :class:`CompositeObjective`; their effect
is quantified in the regularization ablation bench.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..state import ForwardContext
from .base import Objective


class DiscretizationPenalty(Objective):
    """F_q = sum 4 M (1 - M): zero iff the mask is binary.

    The factor 4 normalizes the per-pixel penalty to [0, 1].
    """

    def value_and_gradient(self, ctx: ForwardContext) -> Tuple[float, np.ndarray]:
        m = ctx.mask
        value = float(np.sum(4.0 * m * (1.0 - m)))
        grad = 4.0 * (1.0 - 2.0 * m)
        return value, grad


class TotalVariationPenalty(Objective):
    """F_tv = sum of squared forward differences of M (both axes).

    Smooth surrogate of total variation: penalizes boundary length and
    grey gradients alike, discouraging fragmented masks.
    """

    def value_and_gradient(self, ctx: ForwardContext) -> Tuple[float, np.ndarray]:
        m = ctx.mask
        dy = np.diff(m, axis=0)
        dx = np.diff(m, axis=1)
        value = float(np.sum(dy**2) + np.sum(dx**2))

        grad = np.zeros_like(m)
        # d/dM of sum dy^2: each difference (m[i+1]-m[i]) contributes
        # -2*diff to row i and +2*diff to row i+1.
        grad[:-1, :] -= 2.0 * dy
        grad[1:, :] += 2.0 * dy
        grad[:, :-1] -= 2.0 * dx
        grad[:, 1:] += 2.0 * dx
        return value, grad
