"""Objective interface for the gradient-descent ILT engine."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Tuple

import numpy as np

from ..state import ForwardContext


class Objective(ABC):
    """A differentiable functional of the mask, F(M).

    Implementations compute the scalar value and the gradient with
    respect to the *mask* plane M (not the unconstrained parameters P —
    the optimizer applies the ``dM/dP`` chain-rule factor itself, so
    objectives stay independent of the relaxation).
    """

    @abstractmethod
    def value_and_gradient(self, ctx: ForwardContext) -> Tuple[float, np.ndarray]:
        """Evaluate F(M) and dF/dM for the mask held by ``ctx``.

        Returns:
            ``(value, gradient)`` with the gradient shaped like the mask.
        """

    def value(self, ctx: ForwardContext) -> float:
        """Objective value only (default: discards the gradient)."""
        return self.value_and_gradient(ctx)[0]
