"""Objective interface for the gradient-descent ILT engine."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional, Tuple

import numpy as np

from ...errors import OptimizationError
from ...process.corners import ProcessCorner
from ..state import ForwardContext


def validated_weight(
    weight: Optional[np.ndarray], shape: Tuple[int, ...]
) -> Optional[np.ndarray]:
    """Check an optional per-pixel penalty-weight map.

    Weights must match the target shape and be non-negative; ``None``
    (uniform weighting) passes through.
    """
    if weight is None:
        return None
    weight = np.asarray(weight, dtype=np.float64)
    if weight.shape != tuple(shape):
        raise OptimizationError(
            f"penalty weight {weight.shape} does not match target {tuple(shape)}"
        )
    if np.any(weight < 0):
        raise OptimizationError("penalty weights must be non-negative")
    return weight


class Objective(ABC):
    """A differentiable functional of the mask, F(M).

    Implementations compute the scalar value and the gradient with
    respect to the *mask* plane M (not the unconstrained parameters P —
    the optimizer applies the ``dM/dP`` chain-rule factor itself, so
    objectives stay independent of the relaxation).
    """

    @abstractmethod
    def value_and_gradient(self, ctx: ForwardContext) -> Tuple[float, np.ndarray]:
        """Evaluate F(M) and dF/dM for the mask held by ``ctx``.

        Returns:
            ``(value, gradient)`` with the gradient shaped like the mask.
        """

    def value(self, ctx: ForwardContext) -> float:
        """Objective value only (default: discards the gradient)."""
        return self.value_and_gradient(ctx)[0]


class ImagingObjective(Objective):
    """An objective whose gradient flows through the imaging adjoint.

    Every MOSAIC data term (EPE, image difference, PV band) has the same
    gradient structure: a scalar value plus one intensity-space gradient
    ``dF/dI_eff`` per evaluated process corner, all back-projected
    through the resist-diffusion and SOCS adjoints.  Splitting the
    interface at that seam lets the composite objective merge *every*
    term's contributions into one batched adjoint pass per iteration
    instead of one back-projection per (term x corner).

    Subclasses implement :meth:`intensity_contributions` (and
    :meth:`required_corners` so callers can prefetch fields);
    :meth:`value_and_gradient` comes for free.
    """

    @abstractmethod
    def required_corners(self, ctx: ForwardContext) -> List[ProcessCorner]:
        """Process corners this objective evaluates on ``ctx``.

        Used to prefetch all corners' fields in one batched forward
        evaluation before any term runs.
        """

    @abstractmethod
    def intensity_contributions(
        self, ctx: ForwardContext
    ) -> Tuple[float, List[Tuple[ProcessCorner, np.ndarray]]]:
        """Value and per-corner intensity-space gradients.

        Returns:
            ``(value, contributions)`` where each contribution is a
            ``(corner, dF/dI_eff)`` pair ready for
            :meth:`repro.opc.ForwardContext.accumulate_intensity_gradients`
            (``I_eff`` is the post-diffusion intensity the resist
            thresholds; the corner's dose factor is applied by the
            adjoint, not by the objective).
        """

    def value_and_gradient(self, ctx: ForwardContext) -> Tuple[float, np.ndarray]:
        value, contributions = self.intensity_contributions(ctx)
        return value, ctx.accumulate_intensity_gradients(contributions)

    def value(self, ctx: ForwardContext) -> float:
        """Objective value without the adjoint back-projection.

        Value-only evaluations (line search, final eval) don't need
        dF/dM, and the adjoint is the expensive half of an iteration.
        """
        return self.intensity_contributions(ctx)[0]
