"""Exact EPE design-target objective F_epe (paper Sec. 3.2, Eqs. 9-15).

At every boundary sample point the local image error is accumulated in a
window around the sample:

    Dsum_s = sum_{k in window(s)} ( Z_nom(k) - Z_t(k) )^2          (Eq. 9-10)

The paper's window is the +/-th_epe run of pixels through the sample; we
generalize it to a rectangle extending +/-th_epe along the edge *normal*
and half the sample spacing along the edge *tangent*, normalized by the
tangential width.  Adjacent windows then tile the whole boundary, so for
a printed edge displaced by ``e`` pixels near the sample, Dsum counts
roughly ``e`` — the local EPE in pixels — while the gradient covers every
boundary pixel instead of isolated one-pixel spokes (the paper's
degenerate tangential width of one pixel is available by passing
``tangent_halfwidth_px=0``).

Thresholding Dsum at th_epe (in pixels) detects a violation (Eq. 11),
and the step is smoothed by a sigmoid so the violation count becomes
differentiable (Eq. 12):

    F_epe = sum_s sig( theta_epe * (Dsum_s - th_epe) )

Gradient (Eqs. 13-15): each sample contributes
``theta_epe * sig * (1 - sig)`` times ``d Dsum / d Z`` over its window;
accumulating those coefficients into a pixel map and back-projecting
through the resist sigmoid and the imaging adjoint yields dF/dM.  The
cost scales with |HS| + |VS| exactly as the paper notes.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ... import constants
from ...config import GridSpec
from ...errors import OptimizationError
from ...geometry.edges import EdgeOrientation, SamplePoint, generate_sample_points
from ...geometry.layout import Layout
from ...process.corners import ProcessCorner
from ...utils.validation import sigmoid
from ..state import ForwardContext
from .base import ImagingObjective


class EPEObjective(ImagingObjective):
    """Differentiable EPE-violation count at target boundary samples.

    Args:
        target: binary target image Z_t.
        layout: target layout (provides boundary samples).
        grid: pixel grid.
        threshold_nm: EPE violation threshold th_epe (paper: 15 nm).
        sample_spacing_nm: boundary sample spacing (paper: 40 nm).
        theta_epe: sigmoid steepness of the violation indicator (in
            1/pixel units of Dsum).
        samples: precomputed sample points (regenerated when omitted).
        tangent_halfwidth_px: half-width of the window along the edge;
            None derives it from the sample spacing so windows tile the
            boundary; 0 reproduces the paper's one-pixel line window.
        corner: process condition the EPE is evaluated at.  The paper
            evaluates at nominal (the default); passing a corner builds
            the process-window-EPE extension (one EPEObjective per
            corner, composed with weights).
        region: optional grid-shaped mask; samples landing on zero-valued
            pixels are dropped.  The tiled full-chip engine uses this to
            confine EPE control to the region where a window's periodic
            image is physically valid.
    """

    def __init__(
        self,
        target: np.ndarray,
        layout: Layout,
        grid: GridSpec,
        threshold_nm: float = constants.EPE_THRESHOLD_NM,
        sample_spacing_nm: float = constants.EPE_SAMPLE_SPACING_NM,
        theta_epe: float = constants.THETA_EPE,
        samples: Optional[Sequence[SamplePoint]] = None,
        tangent_halfwidth_px: Optional[int] = None,
        corner: Optional[ProcessCorner] = None,
        region: Optional[np.ndarray] = None,
    ) -> None:
        self.target = np.asarray(target, dtype=np.float64)
        if self.target.shape != grid.shape:
            raise OptimizationError(
                f"target {self.target.shape} does not match grid {grid.shape}"
            )
        self.grid = grid
        self.theta_epe = theta_epe
        #: Dsum threshold in pixel units (one displaced pixel ~ one unit).
        self.threshold_px = threshold_nm / grid.pixel_nm
        if samples is None:
            samples = generate_sample_points(layout, grid, spacing_nm=sample_spacing_nm)
        if region is not None:
            region = np.asarray(region)
            if region.shape != grid.shape:
                raise OptimizationError(
                    f"region {region.shape} does not match grid {grid.shape}"
                )
            samples = [s for s in samples if region[s.row, s.col]]
        self.samples: List[SamplePoint] = list(samples)
        if not self.samples:
            raise OptimizationError(
                "layout produced no EPE sample points"
                + (" inside the objective region" if region is not None else "")
            )
        if tangent_halfwidth_px is None:
            tangent_halfwidth_px = max(
                int(round(sample_spacing_nm / grid.pixel_nm / 2.0)), 0
            )
        self.tangent_halfwidth_px = tangent_halfwidth_px
        self.corner = corner  # None = nominal condition (the paper's choice)
        self._window_flat, self._window_norm = self._build_windows()

    def _build_windows(self) -> Tuple[np.ndarray, float]:
        """Flattened-image indices of each sample's window rectangle.

        Returns ``(indices, norm)``: an ``(n_samples, window_px)`` int
        array indexing the flattened image, and the tangential width to
        normalize Dsum by.  Out-of-bounds offsets are clipped to the
        border (harmless: border pixels are empty in valid clips).
        """
        rows, cols = self.grid.shape
        half_n = max(int(round(self.threshold_px)), 1)
        normal_off = np.arange(-half_n, half_n + 1)
        half_t = self.tangent_halfwidth_px
        tangent_off = np.arange(-half_t, half_t + 1)
        idx = np.empty(
            (len(self.samples), len(normal_off) * len(tangent_off)), dtype=np.intp
        )
        for s, sample in enumerate(self.samples):
            if sample.orientation is EdgeOrientation.HORIZONTAL:
                r = np.clip(sample.row + normal_off[:, None], 0, rows - 1)
                c = np.clip(sample.col + tangent_off[None, :], 0, cols - 1)
            else:
                c = np.clip(sample.col + normal_off[:, None], 0, cols - 1)
                r = np.clip(sample.row + tangent_off[None, :], 0, rows - 1)
            idx[s] = (r * cols + c).ravel()
        return idx, float(len(tangent_off))

    @property
    def num_samples(self) -> int:
        return len(self.samples)

    def dsums(self, z_nominal: np.ndarray) -> np.ndarray:
        """Per-sample Dsum values (Eq. 9) for a nominal printed image,
        normalized by the tangential window width (units: pixels of EPE)."""
        d_flat = ((np.asarray(z_nominal, dtype=np.float64) - self.target) ** 2).ravel()
        return d_flat[self._window_flat].sum(axis=1) / self._window_norm

    def required_corners(self, ctx: ForwardContext) -> List[ProcessCorner]:
        return [self.corner if self.corner is not None else ctx.nominal]

    def intensity_contributions(
        self, ctx: ForwardContext
    ) -> Tuple[float, List[Tuple[ProcessCorner, np.ndarray]]]:
        corner = self.corner if self.corner is not None else ctx.nominal
        z = ctx.soft_image(corner)
        dsum = self.dsums(z)
        sig = sigmoid(dsum, self.theta_epe, self.threshold_px)
        value = float(np.sum(sig))

        # Eq. 14: each sample weights its window by theta_epe*sig*(1-sig);
        # scatter-add those coefficients, then chain through D and Z.
        coeff = self.theta_epe * sig * (1.0 - sig) / self._window_norm
        accum = np.zeros(self.target.size, dtype=np.float64)
        np.add.at(
            accum,
            self._window_flat.ravel(),
            np.repeat(coeff, self._window_flat.shape[1]),
        )
        accum = accum.reshape(self.target.shape)
        df_dz = accum * 2.0 * (z - self.target)
        df_di = df_dz * ctx.sim.resist.soft_derivative(z)
        return value, [(corner, df_di)]
