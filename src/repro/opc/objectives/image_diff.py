"""Image-difference design-target objective F_id (paper Sec. 3.3, Eq. 16).

    F_id = sum_{x,y} ( Z_nom(x, y) - Z_t(x, y) )^gamma

with even gamma (paper uses gamma = 4; gamma = 2 recovers the classic
quadratic ILT objective of refs [9, 12]).  Larger gamma concentrates the
penalty on large local errors, which the paper reports trades better
against the PV-band term during co-optimization.

Gradient (paper Eq. 17, generalized to the full SOCS kernel sum):

    dF/dM = gamma * theta_Z * Backproject( (Z-Z_t)^(gamma-1) Z (1-Z) )

where Backproject is the adjoint imaging operator implemented in
:func:`repro.optics.hopkins.backproject_fields`.  The paper's printed
Eq. 17 uses a single combined kernel H_nom (its Eq. 21 speedup); the
full-sum adjoint here is the exact version, and the combined-kernel
variant is available through the simulator's kernel modes.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ... import constants
from ...errors import OptimizationError
from ...process.corners import ProcessCorner
from ..state import ForwardContext
from .base import ImagingObjective, validated_weight


class ImageDifferenceObjective(ImagingObjective):
    """gamma-power nominal-image error against a target image.

    Args:
        target: binary target image Z_t.
        gamma: even integer exponent (paper: 4).
        normalize: divide by the pixel count so values are grid-size
            independent (weights alpha/beta then transfer across scales).
        weight: optional per-pixel penalty weight (target-shaped,
            non-negative).  Zero weight excludes a pixel from the
            objective entirely — the tiled full-chip engine uses this to
            confine the penalty to the region where a window's periodic
            image is physically valid.
    """

    def __init__(
        self,
        target: np.ndarray,
        gamma: float = constants.GAMMA_FAST,
        normalize: bool = False,
        weight: Optional[np.ndarray] = None,
    ) -> None:
        if gamma < 2 or int(gamma) != gamma or int(gamma) % 2:
            raise OptimizationError(f"gamma must be a positive even integer, got {gamma}")
        self.target = np.asarray(target, dtype=np.float64)
        self.gamma = int(gamma)
        self.normalize = normalize
        self.weight = validated_weight(weight, self.target.shape)

    def required_corners(self, ctx: ForwardContext) -> List[ProcessCorner]:
        return [ctx.nominal]

    def intensity_contributions(
        self, ctx: ForwardContext
    ) -> Tuple[float, List[Tuple[ProcessCorner, np.ndarray]]]:
        if ctx.mask.shape != self.target.shape:
            raise OptimizationError(
                f"mask {ctx.mask.shape} vs target {self.target.shape} shape mismatch"
            )
        corner = ctx.nominal
        z = ctx.soft_image(corner)
        diff = z - self.target
        scale = 1.0 / diff.size if self.normalize else 1.0
        penalty = diff**self.gamma
        if self.weight is not None:
            penalty = penalty * self.weight
        value = float(np.sum(penalty)) * scale

        # dF/dI = gamma * diff^(gamma-1) * dZ/dI, with dZ/dI = theta_Z Z (1-Z).
        dz_di = ctx.sim.resist.soft_derivative(z)
        df_di = scale * self.gamma * diff ** (self.gamma - 1) * dz_di
        if self.weight is not None:
            df_di = df_di * self.weight
        return value, [(corner, df_di)]
