"""Differentiable ILT objectives (paper Sec. 3)."""

from .base import ImagingObjective, Objective
from .composite import CompositeObjective
from .image_diff import ImageDifferenceObjective
from .epe_objective import EPEObjective
from .pvband_objective import PVBandObjective

__all__ = [
    "Objective",
    "ImagingObjective",
    "CompositeObjective",
    "ImageDifferenceObjective",
    "EPEObjective",
    "PVBandObjective",
]
