"""Per-iteration forward-simulation cache shared by all objectives.

Every objective needs some subset of {per-kernel fields, aerial image,
soft printed image} at some subset of process corners.  Computing these
once per iteration and sharing them is the single biggest runtime win in
the optimizer, so the cache is explicit and objectives receive it rather
than a raw mask.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..litho.simulator import LithographySimulator
from ..optics.hopkins import aerial_image, backproject_fields
from ..process.corners import ProcessCorner, nominal_corner


class ForwardContext:
    """Lazy, memoized forward simulation of one mask iterate.

    Args:
        mask: continuous mask M in (0, 1).
        sim: the lithography simulator (provides kernels, resist, corners).
    """

    def __init__(self, mask: np.ndarray, sim: LithographySimulator) -> None:
        self.mask = np.asarray(mask, dtype=np.float64)
        self.sim = sim
        self._fields: Dict[float, np.ndarray] = {}
        self._aerial: Dict[tuple, np.ndarray] = {}
        self._soft: Dict[tuple, np.ndarray] = {}

    @property
    def nominal(self) -> ProcessCorner:
        return nominal_corner()

    def fields(self, corner: Optional[ProcessCorner] = None) -> np.ndarray:
        """Per-kernel coherent fields E_k at a corner's focus (dose-free)."""
        corner = corner or self.nominal
        key = float(corner.defocus_nm)
        if key not in self._fields:
            self._fields[key] = self.sim.fields(self.mask, corner)
        return self._fields[key]

    def aerial(self, corner: Optional[ProcessCorner] = None) -> np.ndarray:
        """Aerial intensity at a corner (dose applied)."""
        corner = corner or self.nominal
        key = (float(corner.defocus_nm), float(corner.dose))
        if key not in self._aerial:
            kernels = self.sim.kernels_at(corner.defocus_nm)
            obs = self.sim.obs
            obs.metrics.counter("forward_evals_total").inc()
            with obs.tracer.span("aerial"):
                self._aerial[key] = aerial_image(
                    self.mask, kernels, dose=corner.dose, fields=self.fields(corner)
                )
        return self._aerial[key]

    def soft_image(self, corner: Optional[ProcessCorner] = None) -> np.ndarray:
        """Sigmoid printed image Z at a corner (paper Eq. 4)."""
        corner = corner or self.nominal
        key = (float(corner.defocus_nm), float(corner.dose))
        if key not in self._soft:
            self._soft[key] = self.sim.resist.develop_soft(self.aerial(corner))
        return self._soft[key]

    def intensity_gradient_to_mask(
        self, dF_dI: np.ndarray, corner: Optional[ProcessCorner] = None
    ) -> np.ndarray:
        """Back-propagate an intensity-space gradient onto the mask plane.

        Given ``dF/dI_eff`` at a corner (``I_eff`` is the post-diffusion
        intensity the resist thresholds), returns ``dF/dM`` using the
        adjoint chain: the symmetric Gaussian diffusion adjoint, then the
        adjoint of the SOCS imaging operator (the corner's dose factor is
        included, since ``I = dose * sum_k w_k |E_k|^2``).
        """
        corner = corner or self.nominal
        kernels = self.sim.kernels_at(corner.defocus_nm)
        fields = self.fields(corner)
        with self.sim.obs.tracer.span("backproject"):
            dF_dI = self.sim.resist.diffuse(np.asarray(dF_dI, dtype=np.float64))
            weighted = dF_dI[None, :, :] * fields
            return corner.dose * backproject_fields(weighted, kernels)
