"""Per-iteration forward-simulation cache shared by all objectives.

Every objective needs some subset of {per-kernel fields, aerial image,
soft printed image} at some subset of process corners.  Computing these
once per iteration and sharing them is the single biggest runtime win in
the optimizer, so the cache is explicit and objectives receive it rather
than a raw mask.

In batched mode (the default, inherited from the simulator's
``batch_forward``) the context additionally shares one ``fft2(M)`` per
iterate across *all* corners and objective terms (observable through
:meth:`ForwardContext.cache_info` and the ``forward_fft_reuse`` metric),
evaluates all requested focus conditions with a single vectorized
inverse FFT (:meth:`ForwardContext.ensure_fields`), and accumulates
multi-corner gradients through one batched adjoint pass
(:meth:`ForwardContext.accumulate_intensity_gradients`).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..litho.simulator import LithographySimulator
from ..optics.hopkins import (
    ForwardCache,
    ForwardCacheInfo,
    aerial_image,
    backproject_fields,
    batched_field_stacks,
    weight_fields,
)
from ..process.corners import ProcessCorner, nominal_corner


class ForwardContext:
    """Lazy, memoized forward simulation of one mask iterate.

    Args:
        mask: continuous mask M in (0, 1).
        sim: the lithography simulator (provides kernels, resist, corners).
        batched: use the batched shared-FFT engine; defaults to the
            simulator's ``batch_forward`` setting.
    """

    def __init__(
        self,
        mask: np.ndarray,
        sim: LithographySimulator,
        batched: Optional[bool] = None,
    ) -> None:
        self.mask = np.asarray(mask, dtype=np.float64)
        self.sim = sim
        self.batched = bool(
            getattr(sim, "batch_forward", True) if batched is None else batched
        )
        self._cache = ForwardCache(self.mask, obs=sim.obs, xp=sim.xp)
        self._fields: Dict[float, np.ndarray] = {}
        self._intensity: Dict[float, np.ndarray] = {}
        self._aerial: Dict[tuple, np.ndarray] = {}
        self._soft: Dict[tuple, np.ndarray] = {}

    @property
    def nominal(self) -> ProcessCorner:
        return nominal_corner()

    def cache_info(self) -> ForwardCacheInfo:
        """Mask-spectrum reuse statistics of the batched engine.

        ``mask_ffts`` is exactly 1 after any batched forward work: one
        ``fft2(M)`` per mask per iteration, shared everywhere.
        """
        return self._cache.info()

    def ensure_fields(self, corners: Iterable[ProcessCorner]) -> None:
        """Prefetch coherent fields for all corners' focus conditions.

        In batched mode every missing focus is evaluated through one
        vectorized ``ifft2`` call (the ``forward.batched`` span); the
        legacy mode computes them per focus.  Already-cached focus
        values cost nothing, so calling this repeatedly is safe.
        """
        wanted: List[float] = []
        for corner in corners:
            key = float((corner or self.nominal).defocus_nm)
            if key not in self._fields and key not in wanted:
                wanted.append(key)
        if not wanted:
            return
        if not self.batched:
            for key in wanted:
                self._fields[key] = self.sim.fields(
                    self.mask, ProcessCorner("prefetch", key, 1.0)
                )
            return
        kernel_sets = [self.sim.kernels_at(key) for key in wanted]
        with self.sim.obs.tracer.span("forward.batched"):
            stacks = batched_field_stacks(self._cache, kernel_sets)
        for key, stack in zip(wanted, stacks):
            self._fields[key] = stack

    def fields(self, corner: Optional[ProcessCorner] = None) -> np.ndarray:
        """Per-kernel coherent fields E_k at a corner's focus (dose-free)."""
        corner = corner or self.nominal
        key = float(corner.defocus_nm)
        if key not in self._fields:
            if self.batched:
                self.ensure_fields([corner])
            else:
                self._fields[key] = self.sim.fields(self.mask, corner)
        return self._fields[key]

    def _intensity_at_focus(self, corner: ProcessCorner) -> np.ndarray:
        """Unit-dose intensity at a corner's focus (dose applied by callers)."""
        key = float(corner.defocus_nm)
        if key not in self._intensity:
            kernels = self.sim.kernels_at(corner.defocus_nm)
            self._intensity[key] = aerial_image(
                self.mask, kernels, fields=self.fields(corner), xp=self.sim.xp
            )
        return self._intensity[key]

    def aerial(self, corner: Optional[ProcessCorner] = None) -> np.ndarray:
        """Aerial intensity at a corner (dose applied)."""
        corner = corner or self.nominal
        key = (float(corner.defocus_nm), float(corner.dose))
        if key not in self._aerial:
            obs = self.sim.obs
            obs.metrics.counter("forward_evals_total").inc()
            with obs.tracer.span("aerial"):
                if self.batched:
                    # Corners sharing a focus share one intensity image;
                    # dose is a scalar factor (I = dose * sum_k w_k |E_k|^2).
                    self._aerial[key] = corner.dose * self._intensity_at_focus(corner)
                else:
                    kernels = self.sim.kernels_at(corner.defocus_nm)
                    self._aerial[key] = aerial_image(
                        self.mask,
                        kernels,
                        dose=corner.dose,
                        fields=self.fields(corner),
                        xp=self.sim.xp,
                    )
        return self._aerial[key]

    def soft_image(self, corner: Optional[ProcessCorner] = None) -> np.ndarray:
        """Sigmoid printed image Z at a corner (paper Eq. 4)."""
        corner = corner or self.nominal
        key = (float(corner.defocus_nm), float(corner.dose))
        if key not in self._soft:
            self._soft[key] = self.sim.resist.develop_soft(self.aerial(corner))
        return self._soft[key]

    def soft_images(
        self, corners: Sequence[ProcessCorner]
    ) -> List[np.ndarray]:
        """Soft printed images at several corners (fields batch-prefetched)."""
        self.ensure_fields(corners)
        return [self.soft_image(corner) for corner in corners]

    def intensity_gradient_to_mask(
        self, dF_dI: np.ndarray, corner: Optional[ProcessCorner] = None
    ) -> np.ndarray:
        """Back-propagate an intensity-space gradient onto the mask plane.

        Given ``dF/dI_eff`` at a corner (``I_eff`` is the post-diffusion
        intensity the resist thresholds), returns ``dF/dM`` using the
        adjoint chain: the symmetric Gaussian diffusion adjoint, then the
        adjoint of the SOCS imaging operator (the corner's dose factor is
        included, since ``I = dose * sum_k w_k |E_k|^2``).
        """
        corner = corner or self.nominal
        kernels = self.sim.kernels_at(corner.defocus_nm)
        fields = self.fields(corner)
        with self.sim.obs.tracer.span("backproject"):
            dF_dI = self.sim.resist.diffuse(np.asarray(dF_dI, dtype=np.float64))
            weighted = weight_fields(dF_dI, fields, self.sim.xp)
            return corner.dose * backproject_fields(weighted, kernels, xp=self.sim.xp)

    def accumulate_intensity_gradients(
        self, contributions: Sequence[Tuple[Optional[ProcessCorner], np.ndarray]]
    ) -> np.ndarray:
        """Sum of per-corner intensity-space gradients on the mask plane.

        In batched mode the whole set is dose-combined per focus and
        back-projected through one batched adjoint
        (:meth:`LithographySimulator.gradient_all_corners`); the legacy
        mode back-projects each contribution separately, matching the
        historical per-corner path bit for bit.
        """
        resolved = [
            (corner if corner is not None else self.nominal, df_di)
            for corner, df_di in contributions
        ]
        if not resolved:
            return np.zeros_like(self.mask)
        if not self.batched:
            total = np.zeros_like(self.mask)
            for corner, df_di in resolved:
                total += self.intensity_gradient_to_mask(df_di, corner)
            return total
        self.ensure_fields([corner for corner, _ in resolved])
        return self.sim.gradient_all_corners(
            self.mask, resolved, fields_by_focus=self._fields, batched=True
        )
