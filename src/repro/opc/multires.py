"""Coarse-to-fine (multiresolution) mask optimization.

ILT iteration cost scales with pixel count, but the early iterations
only need to discover the mask's gross structure (biases, assist
features).  The multiresolution solver exploits that: it first runs the
chosen MOSAIC mode on a ``factor``-times coarser grid, upsamples the
resulting continuous mask, and uses it to warm-start a short run at
full resolution.  Same final quality for a fraction of the fine-grid
iterations — quantified in the multiresolution ablation bench.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Type

import numpy as np

from ..config import GridSpec, LithoConfig, OptimizerConfig
from ..errors import OptimizationError
from ..geometry.layout import Layout
from ..litho.simulator import LithographySimulator
from .mosaic import MosaicFast, MosaicResult, MosaicSolver


def upsample_mask(mask: np.ndarray, factor: int) -> np.ndarray:
    """Nearest-neighbour upsampling by an integer factor (pixel replication)."""
    if factor < 1:
        raise OptimizationError(f"upsampling factor must be >= 1, got {factor}")
    if factor == 1:
        return np.asarray(mask, dtype=np.float64).copy()
    return np.kron(np.asarray(mask, dtype=np.float64), np.ones((factor, factor)))


def coarsen_config(config: LithoConfig, factor: int) -> LithoConfig:
    """The same lithography setup on a ``factor``-times coarser grid."""
    rows, cols = config.grid.shape
    if rows % factor or cols % factor:
        raise OptimizationError(
            f"grid {config.grid.shape} not divisible by coarsening factor {factor}"
        )
    coarse_grid = GridSpec(
        shape=(rows // factor, cols // factor),
        pixel_nm=config.grid.pixel_nm * factor,
    )
    return replace(config, grid=coarse_grid)


class MultiResolutionSolver:
    """Two-level coarse-to-fine wrapper around a MOSAIC solver.

    Args:
        litho_config: full-resolution lithography configuration.
        solver_cls: which MOSAIC mode to run at both levels.
        factor: grid coarsening factor (the fine grid must divide by it).
        coarse_config: optimizer settings for the coarse stage (defaults
            to the solver's own defaults — coarse iterations are cheap).
        fine_config: optimizer settings for the refinement stage
            (defaults to one third of the mode's default budget).
        simulator: optional pre-built full-resolution simulator.
    """

    mode_name = "MOSAIC_multires"

    def __init__(
        self,
        litho_config: LithoConfig,
        solver_cls: Type[MosaicSolver] = MosaicFast,
        factor: int = 2,
        coarse_config: Optional[OptimizerConfig] = None,
        fine_config: Optional[OptimizerConfig] = None,
        simulator: Optional[LithographySimulator] = None,
    ) -> None:
        if factor < 2:
            raise OptimizationError("multiresolution needs factor >= 2")
        self.litho_config = litho_config
        self.factor = factor
        self.coarse_solver = solver_cls(
            coarsen_config(litho_config, factor), optimizer_config=coarse_config
        )
        if fine_config is None:
            fine_iterations = max(solver_cls.default_iterations // 3, 5)
            fine_config = replace(OptimizerConfig(), max_iterations=fine_iterations)
        self.fine_solver = solver_cls(
            litho_config, optimizer_config=fine_config, simulator=simulator
        )

    @property
    def sim(self) -> LithographySimulator:
        """The full-resolution simulator (for evaluation reuse)."""
        return self.fine_solver.sim

    def solve(self, layout: Layout) -> MosaicResult:
        """Coarse solve, upsample, refine at full resolution."""
        coarse = self.coarse_solver.solve(layout)
        seed = np.clip(upsample_mask(coarse.optimization.mask, self.factor), 0.0, 1.0)
        fine = self.fine_solver.solve(layout, initial_mask=seed)
        # Account for the coarse stage in the reported runtime/score.
        total_runtime = coarse.runtime_s + fine.runtime_s
        score = replace(fine.score, runtime_s=total_runtime)
        return MosaicResult(
            layout_name=fine.layout_name,
            optimization=fine.optimization,
            score=score,
            target=fine.target,
            runtime_s=total_runtime,
        )
