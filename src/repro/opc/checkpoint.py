"""Atomic checkpoint/resume for the gradient-descent engine.

A checkpoint freezes everything the optimizer needs to continue a run
mid-trajectory *bit-for-bit*: the unconstrained parameters, both Adam
moment buffers, the best-so-far iterate, the recovery step scale, and
the full iteration history.  Because the descent is deterministic, a run
resumed from iteration k reproduces the uninterrupted run's iterations
k..N exactly (float64 arrays round-trip exactly through ``.npz``; the
history round-trips through the same JSONL schema the event stream
uses).

Writes are atomic: the payload is written to a temporary file in the
checkpoint directory and ``os.replace``-d into its final name, so a
checkpoint file is either complete or absent — a kill mid-write can
never leave a torn file that a later resume would trust.

File layout: ``<dir>/ckpt_<iteration:06d>.npz`` containing the state
arrays plus one JSON metadata blob (see ``_META_KEY``).  Loading
validates a format version and the grid shape/theta_m against the
resuming optimizer, raising :class:`~repro.errors.CheckpointError` on
any mismatch or corruption.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from ..errors import CheckpointError
from ..utils.hashing import stable_json_dumps
from .history import OptimizationHistory

__all__ = [
    "CHECKPOINT_VERSION",
    "CheckpointConfig",
    "OptimizerCheckpoint",
    "latest_checkpoint",
    "list_checkpoints",
    "load_checkpoint",
    "save_checkpoint",
]

#: Bumped whenever the on-disk schema changes incompatibly.
CHECKPOINT_VERSION = 1

#: Key of the JSON metadata blob inside the npz archive.
_META_KEY = "meta_json"

#: Array-valued state fields stored verbatim in the archive.
_ARRAY_KEYS = ("params", "adam_m", "adam_v", "best_params")


@dataclass(frozen=True)
class CheckpointConfig:
    """Where and how often the optimizer checkpoints.

    Attributes:
        directory: directory receiving ``ckpt_*.npz`` files (created on
            first write).
        every: iterations between periodic checkpoints (a final
            checkpoint is also flushed on SIGINT/KeyboardInterrupt).
        keep: retain only the newest ``keep`` checkpoints, pruning older
            ones after each successful write (0 = keep everything).
    """

    directory: Union[str, Path]
    every: int = 5
    keep: int = 3

    def __post_init__(self) -> None:
        if self.every < 1:
            raise CheckpointError(f"checkpoint every must be >= 1, got {self.every}")
        if self.keep < 0:
            raise CheckpointError(f"checkpoint keep must be >= 0, got {self.keep}")

    @property
    def path(self) -> Path:
        return Path(self.directory)


@dataclass
class OptimizerCheckpoint:
    """Full optimizer state at the boundary between two iterations.

    ``iteration`` is the next iteration to run: a checkpoint taken after
    iteration 9 completes carries ``iteration=10`` and a 10-record
    history.
    """

    iteration: int
    params: np.ndarray
    adam_m: np.ndarray
    adam_v: np.ndarray
    best_params: np.ndarray
    best_value: float
    best_iteration: int
    step_scale: float
    history: OptimizationHistory = field(default_factory=OptimizationHistory)
    theta_m: float = 0.0
    grid_shape: tuple = ()

    def validate_against(self, grid_shape: tuple, theta_m: float) -> None:
        """Reject checkpoints from an incompatible configuration."""
        if tuple(self.grid_shape) != tuple(grid_shape):
            raise CheckpointError(
                f"checkpoint grid {tuple(self.grid_shape)} != simulator grid "
                f"{tuple(grid_shape)}"
            )
        if self.theta_m != theta_m:
            raise CheckpointError(
                f"checkpoint theta_m={self.theta_m} != config theta_m={theta_m}; "
                "resuming under a different relaxation would corrupt the trajectory"
            )


def _checkpoint_name(iteration: int) -> str:
    return f"ckpt_{iteration:06d}.npz"


def save_checkpoint(
    config: CheckpointConfig, state: OptimizerCheckpoint
) -> Path:
    """Atomically write ``state`` under ``config.directory``.

    Returns:
        The final checkpoint path.

    Raises:
        CheckpointError: when the directory cannot be created or the
            payload cannot be written.
    """
    directory = config.path
    try:
        directory.mkdir(parents=True, exist_ok=True)
    except OSError as exc:
        raise CheckpointError(f"cannot create checkpoint dir {directory}: {exc}") from exc

    meta: Dict[str, object] = {
        "version": CHECKPOINT_VERSION,
        "iteration": int(state.iteration),
        "best_value": float(state.best_value),
        "best_iteration": int(state.best_iteration),
        "step_scale": float(state.step_scale),
        "theta_m": float(state.theta_m),
        "grid_shape": list(state.grid_shape),
        "history_jsonl": state.history.to_jsonl(),
    }
    final_path = directory / _checkpoint_name(state.iteration)
    fd, tmp_name = tempfile.mkstemp(
        prefix=final_path.name + ".tmp-", dir=str(directory)
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            np.savez(
                handle,
                params=state.params,
                adam_m=state.adam_m,
                adam_v=state.adam_v,
                best_params=state.best_params,
                **{_META_KEY: np.array(stable_json_dumps(meta, non_finite="allow"))},
            )
        os.replace(tmp_name, final_path)
    except OSError as exc:
        raise CheckpointError(f"cannot write checkpoint {final_path}: {exc}") from exc
    finally:
        if os.path.exists(tmp_name):
            os.unlink(tmp_name)
    _prune(config)
    return final_path


def _prune(config: CheckpointConfig) -> None:
    """Drop all but the newest ``config.keep`` checkpoints (best effort)."""
    if config.keep <= 0:
        return
    checkpoints = list_checkpoints(config.path)
    for stale in checkpoints[:-config.keep]:
        try:
            stale.unlink()
        except OSError:  # pragma: no cover - benign race with a reader
            pass


def list_checkpoints(directory: Union[str, Path]) -> List[Path]:
    """All checkpoint files in ``directory``, oldest first."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return sorted(directory.glob("ckpt_*.npz"))


def latest_checkpoint(directory: Union[str, Path]) -> Optional[Path]:
    """The newest checkpoint in ``directory``, or None when there is none."""
    checkpoints = list_checkpoints(directory)
    return checkpoints[-1] if checkpoints else None


def load_checkpoint(path: Union[str, Path]) -> OptimizerCheckpoint:
    """Read and validate one checkpoint file.

    Raises:
        CheckpointError: missing file, unreadable archive, missing keys,
            or an incompatible format version.
    """
    path = Path(path)
    if path.is_dir():
        found = latest_checkpoint(path)
        if found is None:
            raise CheckpointError(f"no checkpoints found in directory {path}")
        path = found
    if not path.is_file():
        raise CheckpointError(f"checkpoint file {path} does not exist")
    try:
        with np.load(path, allow_pickle=False) as archive:
            missing = [k for k in (*_ARRAY_KEYS, _META_KEY) if k not in archive]
            if missing:
                raise CheckpointError(
                    f"checkpoint {path} is missing keys {missing} — truncated "
                    "or not an optimizer checkpoint"
                )
            arrays = {k: np.array(archive[k], dtype=np.float64) for k in _ARRAY_KEYS}
            meta = json.loads(str(archive[_META_KEY]))
    except CheckpointError:
        raise
    except Exception as exc:  # zipfile/json/npz corruption
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc

    version = meta.get("version")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint {path} has format version {version}, expected "
            f"{CHECKPOINT_VERSION}"
        )
    return OptimizerCheckpoint(
        iteration=int(meta["iteration"]),
        params=arrays["params"],
        adam_m=arrays["adam_m"],
        adam_v=arrays["adam_v"],
        best_params=arrays["best_params"],
        best_value=float(meta["best_value"]),
        best_iteration=int(meta["best_iteration"]),
        step_scale=float(meta["step_scale"]),
        history=OptimizationHistory.from_jsonl(meta.get("history_jsonl", "").splitlines()),
        theta_m=float(meta["theta_m"]),
        grid_shape=tuple(meta.get("grid_shape", ())),
    )
