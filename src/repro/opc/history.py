"""Optimization trajectory recording (used by the Fig. 6 convergence bench).

Histories serialize to the same JSONL schema the observability event
emitter streams live (one ``{"event": "iteration", ...}`` object per
line), so a saved trajectory and a captured event stream are
interchangeable: ``OptimizationHistory.from_jsonl`` reads either.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union


@dataclass(frozen=True)
class IterationRecord:
    """Snapshot of one gradient-descent iteration.

    Attributes:
        iteration: 0-based iteration index.
        objective: total objective F at the start of the iteration.
        gradient_rms: RMS of the parameter-space gradient.
        step_size: step actually applied — after jump boosts *and* after
            any line-search backtracking shrank it.
        term_values: per-term objective values of a composite objective,
            keyed by term name (see ``CompositeObjective.term_names``).
        epe_violations: optional evaluated metric (convergence studies).
        pv_band_nm2: optional evaluated metric.
        score: optional evaluated contest score.
    """

    iteration: int
    objective: float
    gradient_rms: float
    step_size: float
    term_values: Dict[str, float] = field(default_factory=dict)
    epe_violations: Optional[int] = None
    pv_band_nm2: Optional[float] = None
    score: Optional[float] = None

    def to_event(self) -> Dict[str, object]:
        """The record as a JSONL iteration event (emitter-compatible)."""
        event: Dict[str, object] = {"event": "iteration"}
        event.update(asdict(self))
        return event

    @classmethod
    def from_event(cls, event: Dict[str, object]) -> "IterationRecord":
        """Rebuild a record from one parsed iteration event."""
        known = {f for f in cls.__dataclass_fields__}
        fields = {k: v for k, v in event.items() if k in known}
        fields["term_values"] = dict(fields.get("term_values") or {})
        return cls(**fields)


@dataclass
class OptimizationHistory:
    """Ordered list of iteration records with series accessors."""

    records: List[IterationRecord] = field(default_factory=list)

    def append(self, record: IterationRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def series(self, attribute: str) -> List:
        """Extract one attribute across iterations (e.g. ``"objective"``)."""
        return [getattr(r, attribute) for r in self.records]

    @property
    def objectives(self) -> List[float]:
        return self.series("objective")

    @property
    def final(self) -> Optional[IterationRecord]:
        return self.records[-1] if self.records else None

    def to_jsonl(self, path: Optional[Union[str, Path]] = None) -> str:
        """Serialize as JSONL iteration events (optionally writing a file).

        Returns:
            The JSONL text (one event per line, trailing newline when
            non-empty) — identical to what the event emitter streams for
            the same trajectory.
        """
        text = "".join(json.dumps(r.to_event()) + "\n" for r in self.records)
        if path is not None:
            Path(path).write_text(text)
        return text

    @classmethod
    def from_jsonl(cls, source: Union[str, Path, Iterable[str]]) -> "OptimizationHistory":
        """Rebuild a history from JSONL text, a file path, or lines.

        Non-iteration events (``run_start``, ``run_end``, harness cells)
        are skipped, so a raw ``--log-json`` capture loads directly.
        """
        if isinstance(source, Path):
            lines: Iterable[str] = source.read_text().splitlines()
        elif isinstance(source, str):
            path = Path(source)
            if "\n" not in source and path.is_file():
                lines = path.read_text().splitlines()
            else:
                lines = source.splitlines()
        else:
            lines = source
        history = cls()
        for line in lines:
            line = line.strip()
            if not line:
                continue
            event = json.loads(line)
            if event.get("event") == "iteration":
                history.append(IterationRecord.from_event(event))
        return history
