"""Optimization trajectory recording (used by the Fig. 6 convergence bench)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass(frozen=True)
class IterationRecord:
    """Snapshot of one gradient-descent iteration.

    Attributes:
        iteration: 0-based iteration index.
        objective: total objective F at the start of the iteration.
        gradient_rms: RMS of the parameter-space gradient.
        step_size: step actually applied (reflects jump boosts).
        term_values: per-term objective values of a composite objective.
        epe_violations: optional evaluated metric (convergence studies).
        pv_band_nm2: optional evaluated metric.
        score: optional evaluated contest score.
    """

    iteration: int
    objective: float
    gradient_rms: float
    step_size: float
    term_values: Dict[int, float] = field(default_factory=dict)
    epe_violations: Optional[int] = None
    pv_band_nm2: Optional[float] = None
    score: Optional[float] = None


@dataclass
class OptimizationHistory:
    """Ordered list of iteration records with series accessors."""

    records: List[IterationRecord] = field(default_factory=list)

    def append(self, record: IterationRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def series(self, attribute: str) -> List:
        """Extract one attribute across iterations (e.g. ``"objective"``)."""
        return [getattr(r, attribute) for r in self.records]

    @property
    def objectives(self) -> List[float]:
        return self.series("objective")

    @property
    def final(self) -> Optional[IterationRecord]:
        return self.records[-1] if self.records else None
