"""Gradient-descent ILT engine (paper Alg. 1).

The loop:

1. ``M <- initial mask`` (typically target + rule-based SRAFs),
2. ``P <- sig^-1(M) / theta_M`` (unconstrained relaxation, Eq. 8),
3. repeat: evaluate ``F`` and ``dF/dP``, step ``P <- P - step * g``,
   rebuild ``M = sig(theta_M P)``; stop at th_iter iterations or when
   ``RMS(dF/dP) < th_g``;
4. return the iterate with the lowest objective seen (Alg. 1 line 9).

The step is normalized by the gradient's max magnitude, which makes one
``step_size`` work across grids, kernel counts and objective scales.  The
"jump technique" (ref [12]) periodically boosts the step to hop between
local minima of the nonconvex landscape.

The engine is fault tolerant: a :class:`~repro.opc.recovery.RecoveryPolicy`
turns non-finite evaluations and objective blow-ups into bounded
rollback/backoff/restart actions instead of immediate failure, and an
optional :class:`~repro.opc.checkpoint.CheckpointConfig` periodically
freezes the full optimizer state (params, Adam moments, best-so-far,
history) to disk atomically, so an interrupted run resumes
mid-trajectory via ``run(..., resume_from=...)`` with a bit-identical
continuation.  SIGINT (and any ``KeyboardInterrupt`` reaching the loop)
flushes a final checkpoint before propagating.

The engine is instrumented: iteration/objective/line-search spans on the
tracer, ``line_search_backtracks`` / ``jump_activations`` /
``recovery_*`` / ``checkpoints_written`` counters and a gradient-RMS
histogram on the metrics registry, and one JSONL event per iteration
plus run-lifecycle and ``recovery`` / ``checkpoint`` events on the
emitter.  All of it is no-op when the simulator's instrumentation is
disabled (the default).
"""

from __future__ import annotations

import logging
import signal
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional, Tuple, Union

import numpy as np

from ..config import OptimizerConfig
from ..errors import OptimizationError
from ..litho.simulator import LithographySimulator
from ..mask.mask import binarize
from ..mask.transform import mask_from_params, mask_param_derivative, params_from_mask
from ..obs import Instrumentation
from ..utils.timer import Timer
from .checkpoint import (
    CheckpointConfig,
    OptimizerCheckpoint,
    load_checkpoint,
    save_checkpoint,
)
from .history import IterationRecord, OptimizationHistory
from .objectives.base import Objective
from .recovery import FaultKind, RecoveryPolicy, classify_fault

logger = logging.getLogger(__name__)

#: Guards against division by a vanishing gradient when normalizing steps.
_GRAD_EPS = 1e-12


@dataclass
class OptimizationResult:
    """Output of one ILT run.

    Attributes:
        mask: continuous optimized mask M in (0, 1).
        binary_mask: M binarized at 0.5 — the manufacturable output.
        history: per-iteration trajectory.
        iterations: iterations executed.
        converged: True when the RMS-gradient tolerance stopped the loop.
        best_iteration: iteration whose objective the returned mask had.
        runtime_s: wall-clock seconds of the optimization loop.
        recovered_faults: recovery actions taken during the run (0 for a
            clean run); details are on the metrics/events telemetry.
    """

    mask: np.ndarray
    binary_mask: np.ndarray
    history: OptimizationHistory
    iterations: int
    converged: bool
    best_iteration: int
    runtime_s: float
    recovered_faults: int = 0


class _LoopState:
    """Mutable descent state, separable from the loop for checkpointing."""

    def __init__(self, params: np.ndarray, theta_m: float) -> None:
        self.params = params
        self.mask = mask_from_params(params, theta_m)
        self.adam_m = np.zeros_like(params)
        self.adam_v = np.zeros_like(params)
        self.iteration = 0
        self.step_scale = 1.0
        self.history = OptimizationHistory()
        self.best_value = np.inf
        self.best_params = params.copy()
        self.best_mask = self.mask.copy()
        self.best_iteration = 0

    def load(self, ckpt: OptimizerCheckpoint, theta_m: float) -> None:
        self.params = ckpt.params
        self.mask = mask_from_params(ckpt.params, theta_m)
        self.adam_m = ckpt.adam_m
        self.adam_v = ckpt.adam_v
        self.iteration = ckpt.iteration
        self.step_scale = ckpt.step_scale
        self.history = ckpt.history
        self.best_value = ckpt.best_value
        self.best_params = ckpt.best_params
        self.best_mask = mask_from_params(ckpt.best_params, theta_m)
        self.best_iteration = ckpt.best_iteration


class GradientDescentOptimizer:
    """Runs Alg. 1 for any :class:`Objective`.

    Args:
        sim: forward lithography simulator.
        objective: differentiable objective F(M).
        config: descent hyper-parameters (paper defaults via
            ``OptimizerConfig.paper()``).
        iteration_callback: optional hook ``f(iteration, mask, record)``
            called after each iteration — used by convergence benches to
            attach evaluated metrics to the history.
        obs: optional instrumentation bundle; defaults to the
            simulator's (which itself defaults to disabled).
        recovery: divergence-recovery policy; defaults to
            ``RecoveryPolicy()`` (bounded rollback + step backoff).  Pass
            ``RecoveryPolicy.strict()`` for the legacy raise-on-first-NaN
            contract.
        checkpoint: optional checkpoint configuration; when given the
            run periodically flushes atomic state snapshots and installs
            a SIGINT handler that writes a final checkpoint before the
            interrupt propagates.
    """

    def __init__(
        self,
        sim: LithographySimulator,
        objective: Objective,
        config: Optional[OptimizerConfig] = None,
        iteration_callback: Optional[Callable[[int, np.ndarray, IterationRecord], IterationRecord]] = None,
        obs: Optional[Instrumentation] = None,
        recovery: Optional[RecoveryPolicy] = None,
        checkpoint: Optional[CheckpointConfig] = None,
    ) -> None:
        self.sim = sim
        self.objective = objective
        self.config = config or OptimizerConfig()
        self.iteration_callback = iteration_callback
        self.obs = obs or sim.obs
        self.recovery = recovery or RecoveryPolicy()
        self.checkpoint = checkpoint
        self._interrupted = False

    def _step_size_at(self, iteration: int) -> float:
        cfg = self.config
        step = cfg.step_size
        if cfg.use_jump and iteration > 0 and iteration % cfg.jump_period == 0:
            step *= cfg.jump_factor
            self.obs.metrics.counter("jump_activations").inc()
        return step

    def _line_search(
        self,
        params: np.ndarray,
        direction: np.ndarray,
        step: float,
        current_value: float,
    ) -> Tuple[np.ndarray, np.ndarray, float]:
        """Backtracking line search (ref [12]): shrink the step until the
        objective decreases, accepting the smallest step if nothing does.

        Returns:
            ``(params, mask, accepted_step)`` — the accepted iterate and
            the step size actually taken after backtracking.
        """
        cfg = self.config
        backtracks = self.obs.metrics.counter("line_search_backtracks")
        trial_params = params - step * direction
        trial_mask = mask_from_params(trial_params, cfg.theta_m)
        for _ in range(cfg.line_search_max_steps - 1):
            trial_value = self.objective.value(self.sim.context(trial_mask))
            if trial_value < current_value:
                break
            backtracks.inc()
            step *= cfg.line_search_shrink
            trial_params = params - step * direction
            trial_mask = mask_from_params(trial_params, cfg.theta_m)
        return trial_params, trial_mask, step

    # -- checkpointing -----------------------------------------------------

    def _checkpoint_state(self, state: _LoopState) -> OptimizerCheckpoint:
        """Freeze a copy of the committed loop state for serialization."""
        return OptimizerCheckpoint(
            iteration=state.iteration,
            params=state.params.copy(),
            adam_m=state.adam_m.copy(),
            adam_v=state.adam_v.copy(),
            best_params=state.best_params.copy(),
            best_value=float(state.best_value),
            best_iteration=state.best_iteration,
            step_scale=state.step_scale,
            history=OptimizationHistory(records=list(state.history.records)),
            theta_m=self.config.theta_m,
            grid_shape=tuple(self.sim.grid.shape),
        )

    def _flush_checkpoint(
        self, frozen: Optional[OptimizerCheckpoint], reason: str
    ) -> Optional[Path]:
        """Write one checkpoint (if checkpointing is configured)."""
        if self.checkpoint is None or frozen is None:
            return None
        path = save_checkpoint(self.checkpoint, frozen)
        self.obs.metrics.counter("checkpoints_written").inc()
        self.obs.events.emit(
            "checkpoint",
            iteration=frozen.iteration,
            path=str(path),
            reason=reason,
        )
        logger.info("checkpoint at iteration %d -> %s (%s)",
                    frozen.iteration, path, reason)
        return path

    def _resolve_resume(
        self, resume_from: Union[str, Path, OptimizerCheckpoint, None]
    ) -> Optional[OptimizerCheckpoint]:
        if resume_from is None:
            return None
        if isinstance(resume_from, OptimizerCheckpoint):
            ckpt = resume_from
        else:
            ckpt = load_checkpoint(resume_from)
        ckpt.validate_against(tuple(self.sim.grid.shape), self.config.theta_m)
        if ckpt.iteration > self.config.max_iterations:
            raise OptimizationError(
                f"checkpoint is at iteration {ckpt.iteration} but "
                f"max_iterations={self.config.max_iterations}; nothing to resume"
            )
        return ckpt

    # -- recovery ----------------------------------------------------------

    def _recover(
        self,
        state: _LoopState,
        last_good: Tuple[np.ndarray, np.ndarray, np.ndarray],
        fault: str,
        value: float,
        consecutive_failures: int,
    ) -> None:
        """React to one classified fault by mutating ``state`` in place.

        Rollback restores the last good ``(params, Adam moments)``
        snapshot; blow-up restarts from the best iterate with fresh Adam
        moments.  Both back off the global step scale.  The caller
        re-runs the iteration from the repaired state.

        Raises:
            OptimizationError: when the retry budget is exhausted.
        """
        policy = self.recovery
        obs = self.obs
        if consecutive_failures >= policy.max_retries:
            obs.events.emit(
                "recovery",
                action="exhausted",
                reason=fault,
                iteration=state.iteration,
                retries_used=consecutive_failures,
            )
            raise OptimizationError(
                f"{fault} at iteration {state.iteration}: recovery exhausted "
                f"after {consecutive_failures} attempt(s) "
                f"(max_retries={policy.max_retries})"
            )
        old_scale = state.step_scale
        state.step_scale = policy.backed_off(state.step_scale)
        obs.metrics.counter("recovery_step_backoffs").inc()

        if fault == FaultKind.OBJECTIVE_BLOWUP:
            # Descending further into a divergent basin is pointless;
            # restart from the best iterate with fresh Adam moments.
            state.params = state.best_params.copy()
            state.adam_m = np.zeros_like(state.params)
            state.adam_v = np.zeros_like(state.params)
            action = "restart_from_best"
            obs.metrics.counter("recovery_restarts").inc()
        else:
            good_params, good_m, good_v = last_good
            state.params = good_params.copy()
            state.adam_m = good_m.copy()
            state.adam_v = good_v.copy()
            action = "rollback"
            obs.metrics.counter("recovery_rollbacks").inc()
        state.mask = mask_from_params(state.params, self.config.theta_m)

        obs.events.emit(
            "recovery",
            action=action,
            reason=fault,
            iteration=state.iteration,
            objective=value if np.isfinite(value) else None,
            step_scale_before=old_scale,
            step_scale_after=state.step_scale,
            retries_used=consecutive_failures + 1,
        )
        logger.warning(
            "recovery at iteration %d: %s (%s), step scale %.4g -> %.4g",
            state.iteration, action, fault, old_scale, state.step_scale,
        )

    # -- main loop ---------------------------------------------------------

    def run(
        self,
        initial_mask: np.ndarray,
        resume_from: Union[str, Path, OptimizerCheckpoint, None] = None,
    ) -> OptimizationResult:
        """Optimize starting from ``initial_mask`` (binary or continuous).

        Args:
            initial_mask: the optimizer seed (ignored for the trajectory
                when ``resume_from`` is given, but still shape-checked).
            resume_from: a checkpoint file, a checkpoint directory (the
                newest checkpoint is used), or a loaded
                :class:`OptimizerCheckpoint` — the run continues
                mid-trajectory from its state and reproduces the
                uninterrupted run exactly.
        """
        cfg = self.config
        obs = self.obs
        policy = self.recovery
        initial_mask = np.asarray(initial_mask, dtype=np.float64)
        if initial_mask.shape != self.sim.grid.shape:
            raise OptimizationError(
                f"initial mask {initial_mask.shape} != grid {self.sim.grid.shape}"
            )
        state = _LoopState(params_from_mask(initial_mask, cfg.theta_m), cfg.theta_m)
        resumed = self._resolve_resume(resume_from)
        if resumed is not None:
            state.load(resumed, cfg.theta_m)
            obs.events.emit(
                "resume",
                iteration=state.iteration,
                best_objective=state.best_value,
                step_scale=state.step_scale,
            )
            logger.info("resuming at iteration %d (best F=%.6g)",
                        state.iteration, state.best_value)

        history = state.history
        converged = False
        recovered_faults = 0
        consecutive_failures = 0
        # Snapshot of the last successfully *evaluated* iterate (params +
        # pre-update Adam moments): the rollback target.
        last_good = (state.params.copy(), state.adam_m.copy(), state.adam_v.copy())
        # Last committed inter-iteration state (what checkpoints write).
        frozen: Optional[OptimizerCheckpoint] = (
            self._checkpoint_state(state) if self.checkpoint is not None else None
        )

        obs.events.emit(
            "run_start",
            grid_shape=list(self.sim.grid.shape),
            max_iterations=cfg.max_iterations,
            descent_mode=cfg.descent_mode,
            use_line_search=cfg.use_line_search,
            resumed_at=state.iteration if resumed is not None else None,
        )
        obs.heartbeat.beat(phase="setup", iteration=state.iteration, force=True)
        rms_hist = obs.metrics.histogram("gradient_rms")
        iterations_total = obs.metrics.counter("iterations_total")
        # Register the loop counters up front so a metrics dump always
        # carries them, even when the run never backtracks, jumps, faults
        # or checkpoints.
        obs.metrics.counter("line_search_backtracks")
        obs.metrics.counter("jump_activations")
        obs.metrics.counter("recovery_rollbacks")
        obs.metrics.counter("recovery_step_backoffs")
        obs.metrics.counter("recovery_restarts")
        obs.metrics.counter("recovery_sanitized_gradients")
        if self.checkpoint is not None:
            obs.metrics.counter("checkpoints_written")

        self._interrupted = False
        previous_handler: Optional[object] = None
        install_handler = (
            self.checkpoint is not None
            and threading.current_thread() is threading.main_thread()
        )
        if install_handler:
            def _on_sigint(signum, frame):  # pragma: no cover - signal path
                self._interrupted = True
            previous_handler = signal.signal(signal.SIGINT, _on_sigint)

        try:
            with Timer() as timer, obs.tracer.span("optimize"):
                while state.iteration < cfg.max_iterations:
                    iteration = state.iteration
                    with obs.tracer.span("iteration"):
                        ctx = self.sim.context(state.mask)
                        with obs.tracer.span("objective"):
                            value, grad_mask = self.objective.value_and_gradient(ctx)

                        if not policy.enabled:
                            if not np.isfinite(value) or not np.all(np.isfinite(grad_mask)):
                                raise OptimizationError(
                                    f"non-finite objective/gradient at iteration {iteration}"
                                )
                        else:
                            fault = classify_fault(
                                value, grad_mask, state.best_value, policy
                            )
                            if fault is not None:
                                if (
                                    fault == FaultKind.NONFINITE_GRADIENT
                                    and policy.nonfinite_action == "sanitize"
                                ):
                                    if consecutive_failures >= policy.max_retries:
                                        raise OptimizationError(
                                            f"{fault} at iteration {iteration}: recovery "
                                            f"exhausted after {consecutive_failures} "
                                            f"attempt(s) (max_retries={policy.max_retries})"
                                        )
                                    grad_mask = policy.sanitize_gradient(grad_mask)
                                    obs.metrics.counter(
                                        "recovery_sanitized_gradients"
                                    ).inc()
                                    obs.events.emit(
                                        "recovery",
                                        action="sanitize_gradient",
                                        reason=fault,
                                        iteration=iteration,
                                        retries_used=consecutive_failures + 1,
                                    )
                                    consecutive_failures += 1
                                    recovered_faults += 1
                                    # Fall through: the repaired gradient
                                    # drives a normal descent step.
                                else:
                                    self._recover(
                                        state, last_good, fault, value,
                                        consecutive_failures,
                                    )
                                    consecutive_failures += 1
                                    recovered_faults += 1
                                    continue  # retry this iteration index
                            else:
                                consecutive_failures = 0

                        grad_params = grad_mask * mask_param_derivative(
                            state.mask, cfg.theta_m
                        )
                        rms = float(np.sqrt(np.mean(grad_params**2)))
                        step = self._step_size_at(iteration) * state.step_scale
                        iterations_total.inc()
                        rms_hist.observe(rms)

                        # Capture per-term values now: a line search
                        # re-evaluates the composite and would overwrite
                        # them.  Duck-typed so objective wrappers (fault
                        # injection, adapters) keep the telemetry flowing.
                        last_terms = getattr(self.objective, "last_term_values", None)
                        term_values = dict(last_terms) if last_terms else {}
                        current_mask = state.mask
                        converged = rms < cfg.gradient_rms_tol
                        accepted_step = step

                        # The rollback target: this iterate evaluated finite.
                        last_good = (
                            state.params.copy(),
                            state.adam_m.copy(),
                            state.adam_v.copy(),
                        )

                        if not converged:
                            if cfg.descent_mode == "adam":
                                # Adaptive-moment direction.  Adam's per-pixel
                                # normalization turns noise-scale gradients into
                                # full-size steps, so pixels whose raw gradient is
                                # negligible (< 0.1% of the max) are gated out —
                                # otherwise the background fills with mask texture.
                                state.adam_m = (
                                    cfg.adam_beta1 * state.adam_m
                                    + (1 - cfg.adam_beta1) * grad_params
                                )
                                state.adam_v = (
                                    cfg.adam_beta2 * state.adam_v
                                    + (1 - cfg.adam_beta2) * grad_params**2
                                )
                                m_hat = state.adam_m / (1 - cfg.adam_beta1 ** (iteration + 1))
                                v_hat = state.adam_v / (1 - cfg.adam_beta2 ** (iteration + 1))
                                direction = m_hat / (np.sqrt(v_hat) + _GRAD_EPS)
                                gate = np.abs(grad_params) > 1e-3 * float(
                                    np.max(np.abs(grad_params))
                                )
                                direction = direction * gate
                                direction /= max(float(np.max(np.abs(direction))), 1.0)
                            else:
                                # Paper-style max-normalized step: scale-free across
                                # objectives.
                                max_grad = float(np.max(np.abs(grad_params)))
                                direction = grad_params / (max_grad + _GRAD_EPS)
                            if cfg.use_line_search:
                                with obs.tracer.span("line_search"):
                                    state.params, state.mask, accepted_step = (
                                        self._line_search(
                                            state.params, direction, step, value
                                        )
                                    )
                            else:
                                state.params = state.params - step * direction
                                state.mask = mask_from_params(state.params, cfg.theta_m)

                        record = IterationRecord(
                            iteration=iteration,
                            objective=value,
                            gradient_rms=rms,
                            step_size=accepted_step,
                            term_values=term_values,
                        )
                        if self.iteration_callback is not None:
                            record = self.iteration_callback(
                                iteration, current_mask, record
                            )
                        history.append(record)
                        obs.events.emit(**record.to_event())
                        obs.heartbeat.beat(
                            phase="optimize",
                            iteration=iteration,
                            objective=value if np.isfinite(value) else None,
                        )
                        logger.debug(
                            "iteration %d: F=%.6g rms=%.3g step=%.3g",
                            iteration, value, rms, accepted_step,
                        )

                        if value < state.best_value:
                            state.best_value = value
                            state.best_params = last_good[0]
                            state.best_mask = current_mask.copy()
                            state.best_iteration = iteration

                    state.iteration = iteration + 1
                    if self.checkpoint is not None:
                        frozen = self._checkpoint_state(state)
                        if state.iteration % self.checkpoint.every == 0:
                            self._flush_checkpoint(frozen, reason="periodic")
                    if self._interrupted:
                        self._flush_checkpoint(frozen, reason="sigint")
                        obs.events.emit("interrupted", iteration=state.iteration)
                        raise KeyboardInterrupt

                    if converged:
                        break

                # Consider the final iterate too (the loop records pre-update
                # values).
                obs.heartbeat.beat(
                    phase="final_eval", iteration=state.iteration, force=True
                )
                with obs.tracer.span("final_eval"):
                    final_ctx = self.sim.context(state.mask)
                    final_value = self.objective.value(final_ctx)
                best_value = state.best_value
                best_mask = state.best_mask
                best_iteration = state.best_iteration
                if not cfg.keep_best or final_value < best_value:
                    best_value = final_value
                    best_mask = state.mask
                    best_iteration = len(history)
        except KeyboardInterrupt:
            # An interrupt that bypassed the cooperative flag (delivered
            # mid-iteration from a callback, or with no handler installed)
            # still flushes the last committed state before propagating.
            if not self._interrupted:
                self._flush_checkpoint(frozen, reason="interrupt")
                obs.events.emit(
                    "interrupted",
                    iteration=frozen.iteration if frozen is not None else None,
                )
            raise
        finally:
            if install_handler:
                signal.signal(signal.SIGINT, previous_handler)

        obs.metrics.gauge("best_objective").set(best_value)
        obs.events.emit(
            "run_end",
            iterations=len(history),
            converged=converged,
            best_iteration=best_iteration,
            best_objective=best_value,
            runtime_s=timer.elapsed,
            recovered_faults=recovered_faults,
        )
        logger.info(
            "optimization finished: %d iterations, converged=%s, best F=%.6g "
            "at iteration %d (%.2f s, %d recovered fault(s))",
            len(history), converged, best_value, best_iteration, timer.elapsed,
            recovered_faults,
        )
        return OptimizationResult(
            mask=best_mask,
            binary_mask=binarize(best_mask),
            history=history,
            iterations=len(history),
            converged=converged,
            best_iteration=best_iteration,
            runtime_s=timer.elapsed,
            recovered_faults=recovered_faults,
        )
